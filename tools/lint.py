#!/usr/bin/env python3
"""Repo-specific lint rules clang-tidy cannot express.

Rules (each can be suppressed per line with a trailing `NOLINT` or
`NOLINT(<rule>)` comment):

  include-guard    .h files use the canonical guard EMIGRE_<PATH>_H_
                   (path relative to the repo root, `src/` stripped).
  using-namespace  no `using namespace` at any scope inside headers.
  nodiscard        every Status/Result<T>-returning declaration in a
                   header carries [[nodiscard]], and the Status/Result
                   class definitions themselves are [[nodiscard]].
  naked-new        no `new` expressions in library/tool code; use
                   std::make_unique (intentional leaky singletons carry
                   a NOLINT marker).
  bench-metrics    every bench/bench_<name>.cc records its run with
                   WriteBenchMetrics("<name>") so BENCH_<name>.json
                   lands in the perf trajectory.
  dense-reset      no `.assign(...)` / `.resize(...)` dense clears in
                   src/ppr/ — push state goes through the epoch-stamped
                   PushWorkspace so a push touching k nodes costs O(k),
                   not O(n). Intentional warm-up growth and one-off
                   dense exports carry NOLINT(dense-reset).
  fault-site       every EMIGRE_FAULT_POINT / EMIGRE_FAULT_POINT_STATUS
                   site name is unique across the repo, so a fault spec
                   or a fault.<site>.fired counter names exactly one
                   code location (docs/robustness.md).
  obs-name         every EMIGRE_COUNTER / EMIGRE_GAUGE / EMIGRE_HISTOGRAM /
                   EMIGRE_SPAN name literal matches [a-z0-9_./]+ and is
                   declared in exactly one file (repeats within a file are
                   fine — cached-handle call sites), so the perf gate's
                   flattened series and the trace tree each name one code
                   location (docs/observability.md).
  ondisk-assert    every struct named *OnDisk in src/ (the serialized
                   layouts of emigre.bin.v1 / emigre.csr.v1,
                   docs/data_format.md) is static_assert-ed on exact
                   sizeof and std::is_trivially_copyable_v in the same
                   file, so a refactor cannot silently change an on-disk
                   file format.
  guarded-by       inside any class/struct that owns a `std::mutex` or
                   `util::Mutex` member, every sibling data member carries
                   GUARDED_BY/PT_GUARDED_BY (or an explicit
                   NOLINT(guarded-by) justification) so Clang's
                   -Wthread-safety analysis covers it. Atomics and
                   synchronization primitives themselves are exempt
                   (docs/static_analysis.md). Keeps annotations from
                   silently rotting on GCC-only changes, where the macros
                   compile to nothing.

Usage:
  tools/lint.py [--root DIR] [paths...]   lint the repo (or just paths)
  tools/lint.py --self-test               verify each rule fires on a
                                          seeded violation

Exit status: 0 clean, 1 violations found, 2 internal error.
"""

import argparse
import os
import re
import sys
import tempfile

RULES = (
    "include-guard",
    "using-namespace",
    "nodiscard",
    "naked-new",
    "bench-metrics",
    "dense-reset",
    "fault-site",
    "obs-name",
    "ondisk-assert",
    "guarded-by",
)

# dense-reset guards the PPR hot paths only: everywhere else a dense
# assign/resize is normal C++.
DENSE_RESET_DIRS = ("src/ppr",)

# Directories scanned when no explicit paths are given, relative to root.
DEFAULT_DIRS = ("src", "tools", "bench", "tests", "examples")

# naked-new is enforced for library and tool code; tests/examples may
# exercise raw pointers deliberately.
NAKED_NEW_DIRS = ("src", "tools", "bench")

NOLINT_RE = re.compile(r"NOLINT(?:\(([^)]*)\))?")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_suppressed(line, rule):
    m = NOLINT_RE.search(line)
    if not m:
        return False
    rules = m.group(1)
    return rules is None or rule in rules


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces, keeping
    line structure so reported line numbers stay valid."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(relpath):
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/"):]
    stem = re.sub(r"[^A-Za-z0-9]", "_", path)
    return f"EMIGRE_{stem.upper()}_"


def check_include_guard(relpath, lines, violations):
    guard = expected_guard(relpath)
    ifndef_re = re.compile(r"^\s*#ifndef\s+(\S+)")
    for idx, line in enumerate(lines):
        m = ifndef_re.match(line)
        if not m:
            continue
        if is_suppressed(line, "include-guard"):
            return
        got = m.group(1)
        if got != guard:
            violations.append(Violation(
                relpath, idx + 1, "include-guard",
                f"include guard is {got}, expected {guard}"))
        elif idx + 1 >= len(lines) or not re.match(
                rf"^\s*#define\s+{re.escape(guard)}\s*$", lines[idx + 1]):
            violations.append(Violation(
                relpath, idx + 2, "include-guard",
                f"#define {guard} must directly follow the #ifndef"))
        return
    violations.append(Violation(
        relpath, 1, "include-guard",
        f"missing include guard (expected #ifndef {guard})"))


def check_using_namespace(relpath, stripped_lines, raw_lines, violations):
    pat = re.compile(r"^\s*using\s+namespace\b")
    for idx, line in enumerate(stripped_lines):
        if pat.match(line) and not is_suppressed(raw_lines[idx], "using-namespace"):
            violations.append(Violation(
                relpath, idx + 1, "using-namespace",
                "headers must not contain `using namespace`"))


# A declaration line whose return type is Status or Result<...>. Anchored at
# line start (after qualifiers) so parameters and comments don't match.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|friend\s+|inline\s+|constexpr\s+)*"
    r"(?:::)?(?:\w+::)*"
    r"(Status|Result<[^;={}]*>)\s+"
    r"(~?\w+)\s*\(")

CLASS_DEF_RE = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?class\s+"
                          r"(?:\[\[nodiscard\]\]\s+)?(Status|Result)\b")


def check_nodiscard(relpath, stripped_lines, raw_lines, violations):
    for idx, line in enumerate(stripped_lines):
        m = CLASS_DEF_RE.match(line)
        if m and ";" not in line:  # skip forward declarations
            if "[[nodiscard]]" not in line and not is_suppressed(
                    raw_lines[idx], "nodiscard"):
                violations.append(Violation(
                    relpath, idx + 1, "nodiscard",
                    f"class {m.group(1)} must be declared "
                    f"`class [[nodiscard]] {m.group(1)}`"))
            continue
        m = STATUS_DECL_RE.match(line)
        if not m:
            continue
        if is_suppressed(raw_lines[idx], "nodiscard"):
            continue
        # Attribute may sit on the same line or the previous non-blank line.
        prev = stripped_lines[idx - 1].strip() if idx > 0 else ""
        if "[[nodiscard]]" in line or prev.endswith("[[nodiscard]]"):
            continue
        violations.append(Violation(
            relpath, idx + 1, "nodiscard",
            f"{m.group(1)}-returning declaration `{m.group(2)}` must be "
            f"[[nodiscard]]"))


NEW_RE = re.compile(r"(?:^|[^\w.>])new\b\s*[\w:(<]")


def check_naked_new(relpath, stripped_lines, raw_lines, violations):
    for idx, line in enumerate(stripped_lines):
        if NEW_RE.search(line) and not is_suppressed(raw_lines[idx],
                                                     "naked-new"):
            violations.append(Violation(
                relpath, idx + 1, "naked-new",
                "no naked `new`; use std::make_unique or mark the leaky "
                "singleton with NOLINT(naked-new)"))


DENSE_RESET_RE = re.compile(r"\.\s*(?:assign|resize)\s*\(")


def check_dense_reset(relpath, stripped_lines, raw_lines, violations):
    for idx, line in enumerate(stripped_lines):
        if DENSE_RESET_RE.search(line) and not is_suppressed(
                raw_lines[idx], "dense-reset"):
            violations.append(Violation(
                relpath, idx + 1, "dense-reset",
                "O(n) dense clear/growth in a PPR hot path; use the "
                "epoch-stamped PushWorkspace, or mark intentional warm-up "
                "growth with NOLINT(dense-reset)"))


# Matches a fault-point invocation with a literal site name. The macro
# definition itself (unquoted parameter) and the kFaultSites catalog (plain
# strings, no macro) do not match.
FAULT_POINT_RE = re.compile(
    r'EMIGRE_FAULT_POINT(?:_STATUS)?\s*\(\s*"([^"]+)"')


def check_fault_sites(relpath, stripped_lines, raw_lines, violations,
                      seen_sites):
    """Every fault-point site name must be globally unique: specs and the
    fault.<site>.fired counters address sites by name, so a duplicate would
    silently arm (and count) two code locations at once. `seen_sites` maps
    site -> (path, line) across every file of the run."""
    for idx, line in enumerate(raw_lines):
        if is_suppressed(line, "fault-site"):
            continue
        # Site names live in string literals, so match on the raw line —
        # but only where the stripped line shows a real macro invocation
        # (mentions in comments don't count).
        if "EMIGRE_FAULT_POINT" not in stripped_lines[idx]:
            continue
        for m in FAULT_POINT_RE.finditer(line):
            site = m.group(1)
            prev = seen_sites.get(site)
            if prev is not None:
                violations.append(Violation(
                    relpath, idx + 1, "fault-site",
                    f'duplicate fault site "{site}" (already used at '
                    f"{prev[0]}:{prev[1]}); every EMIGRE_FAULT_POINT site "
                    f"name must be unique"))
            else:
                seen_sites[site] = (relpath, idx + 1)


# Matches a metric/span declaration with a literal name. The macro
# definitions themselves (unquoted `name` parameter) do not match.
OBS_NAME_RE = re.compile(
    r'EMIGRE_(COUNTER|GAUGE|HISTOGRAM|SPAN)\s*\(\s*"([^"]*)"')

OBS_NAME_CHARSET_RE = re.compile(r"[a-z0-9_./]+")


def check_obs_names(relpath, stripped_lines, raw_lines, violations,
                    seen_names):
    """Metric and span names are addresses: the perf gate skips/fails them
    by name and the trace tree groups by them, so a name must be lowercase
    dotted ([a-z0-9_./]+) and must be declared in exactly one file. Repeats
    inside one file are normal (cached-handle call sites); the same name in
    a second file would silently merge two series. `seen_names` maps
    name -> (path, line) across every file of the run."""
    for idx, line in enumerate(raw_lines):
        if is_suppressed(line, "obs-name"):
            continue
        # Names live in string literals, so capture from the raw line — but
        # only where the stripped line shows a real macro invocation
        # (mentions in comments and doc examples don't count).
        if "EMIGRE_" not in stripped_lines[idx]:
            continue
        if not re.search(r"EMIGRE_(?:COUNTER|GAUGE|HISTOGRAM|SPAN)\b",
                         stripped_lines[idx]):
            continue
        for m in OBS_NAME_RE.finditer(line):
            kind, name = m.group(1), m.group(2)
            if not OBS_NAME_CHARSET_RE.fullmatch(name):
                violations.append(Violation(
                    relpath, idx + 1, "obs-name",
                    f'EMIGRE_{kind} name "{name}" must match [a-z0-9_./]+'))
                continue
            prev = seen_names.get(name)
            if prev is not None and prev[0] != relpath:
                violations.append(Violation(
                    relpath, idx + 1, "obs-name",
                    f'metric/span name "{name}" is already declared in '
                    f"{prev[0]}:{prev[1]}; a name must live in exactly one "
                    f"file"))
            elif prev is None:
                seen_names[name] = (relpath, idx + 1)


# A definition (not a forward declaration, not a use) of an on-disk layout
# struct. The trailing `(?!\s*;)` admits `struct FooOnDisk {` and the
# brace-on-next-line style while rejecting `struct FooOnDisk;`.
ONDISK_STRUCT_RE = re.compile(r"^\s*struct\s+(\w*OnDisk)\b(?!\s*;)")


def check_ondisk_assert(relpath, stripped_lines, raw_lines, violations):
    """Structs that are memcpy'd to disk (named *OnDisk by convention,
    docs/data_format.md) must pin their layout with a
    static_assert(sizeof(...) == N) and assert trivial copyability in the
    same file, so adding a member or a vtable breaks the build instead of
    the file format."""
    text = "\n".join(stripped_lines)
    for idx, line in enumerate(stripped_lines):
        m = ONDISK_STRUCT_RE.match(line)
        if not m:
            continue
        if is_suppressed(raw_lines[idx], "ondisk-assert"):
            continue
        name = re.escape(m.group(1))
        has_size = re.search(
            rf"static_assert\s*\(\s*sizeof\s*\(\s*{name}\s*\)\s*==", text)
        has_trivial = re.search(
            rf"static_assert\s*\(\s*std::is_trivially_copyable_v\s*<"
            rf"\s*{name}\s*>", text)
        missing = []
        if not has_size:
            missing.append(f"static_assert(sizeof({m.group(1)}) == ...)")
        if not has_trivial:
            missing.append("static_assert(std::is_trivially_copyable_v<"
                           f"{m.group(1)}>)")
        if missing:
            violations.append(Violation(
                relpath, idx + 1, "ondisk-assert",
                f"on-disk struct {m.group(1)} is missing "
                f"{' and '.join(missing)}; the serialized layout must be "
                f"pinned in this file"))


MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:std::mutex|util::Mutex|Mutex)\s+\w+\s*"
    r"(?:ACQUIRED_(?:BEFORE|AFTER)\s*\([^;]*\))?\s*;")

# A plain data-member declaration: `Type name_;` possibly with an
# initializer. Lines containing `(` are functions/constructors/macros and
# never match; the annotation macros contain `(` so they are cut off first.
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?P<type>[\w:]+(?:<[\w:<>,\s\*&]*>)?(?:\s*[\*&])?)\s+"
    r"(?P<name>\w+)\s*(?:\[[^\]]*\])?\s*"
    r"(?:=[^;]*|\{[^;{}]*\})?;")

# Member types that are their own synchronization (or the lock itself) and
# therefore need no GUARDED_BY.
GUARDED_BY_EXEMPT_TYPE_RE = re.compile(
    r"std::mutex|util::Mutex|\bMutex\b|\bCondVar\b|condition_variable|"
    r"std::atomic\b|\batomic<")

MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:using|typedef|friend|static|constexpr|enum|class|struct|"
    r"public|private|protected|template|#)")

# Deleted/defaulted special members read like `T& operator=(...) = delete;`
# and would otherwise parse as a data member named `operator`.
OPERATOR_RE = re.compile(r"\boperator\b")


def class_blocks(stripped_lines):
    """Yields (header_idx, [member_line_indices]) for each class/struct
    body, where member lines are the body lines at the block's own brace
    level (nested blocks' lines belong to the nested block)."""
    header_re = re.compile(r"\b(?:class|struct)\s+[\w:]*")
    stack = []  # (is_class_block, header_idx, member_line_indices)
    blocks = []
    pending_header = None
    for idx, line in enumerate(stripped_lines):
        code = line
        for pos, ch in enumerate(code):
            if ch == "{":
                is_class = False
                header_idx = idx
                head = code[:pos]
                if header_re.search(head):
                    is_class = True
                elif pending_header is not None and not head.strip():
                    is_class, header_idx = True, pending_header
                stack.append([is_class, header_idx, []])
            elif ch == "}":
                if stack:
                    done = stack.pop()
                    if done[0]:
                        blocks.append((done[1], done[2]))
        # A line with no braces belongs to the innermost open block.
        if "{" not in code and "}" not in code and stack:
            stack[-1][2].append(idx)
        # Track a class/struct header whose `{` sits on the next line.
        if header_re.search(code) and "{" not in code and ";" not in code:
            pending_header = idx
        elif code.strip():
            pending_header = None
    return blocks


def check_guarded_by(relpath, stripped_lines, raw_lines, violations):
    """Every class that owns a mutex must annotate its other data members
    with GUARDED_BY (or justify the exception with NOLINT(guarded-by)), so
    the -Wthread-safety analysis actually covers the shared state. The
    check runs on the stripped text with the annotation macros still
    visible, but inspects the raw line for GUARDED_BY because the macro may
    share the line with a comment."""
    for _, member_lines in class_blocks(stripped_lines):
        mutex_lines = [i for i in member_lines
                       if MUTEX_MEMBER_RE.match(stripped_lines[i])]
        if not mutex_lines:
            continue
        for i in member_lines:
            line = stripped_lines[i]
            if i in mutex_lines or not line.strip():
                continue
            if MEMBER_SKIP_RE.match(line) or "(" in line.split("=")[0]:
                # GUARDED_BY(...) itself adds parens; strip the macros
                # before deciding this is a function.
                demacroed = re.sub(
                    r"(?:PT_)?GUARDED_BY\s*\([^)]*\)", "", line)
                if MEMBER_SKIP_RE.match(demacroed) or "(" in demacroed:
                    continue
                line = demacroed
            else:
                line = re.sub(r"(?:PT_)?GUARDED_BY\s*\([^)]*\)", "", line)
            if OPERATOR_RE.search(line) or not MEMBER_DECL_RE.match(line):
                continue
            m = MEMBER_DECL_RE.match(line)
            if GUARDED_BY_EXEMPT_TYPE_RE.search(m.group("type")):
                continue
            if re.search(r"(?:PT_)?GUARDED_BY\s*\(", stripped_lines[i]):
                continue
            if is_suppressed(raw_lines[i], "guarded-by"):
                continue
            violations.append(Violation(
                relpath, i + 1, "guarded-by",
                f"member `{m.group('name')}` sits next to a mutex but has "
                f"no GUARDED_BY annotation; annotate it or justify with "
                f"NOLINT(guarded-by)"))


FAULT_CATALOG_RE = re.compile(
    r"kFaultSites\[\]\s*=\s*\{(?P<body>.*?)\};", re.S)


def check_fault_catalog(root, seen_sites, violations):
    """The reverse direction of the fault-site rule: every name in the
    `kFaultSites` catalog must correspond to a real EMIGRE_FAULT_POINT
    site in src/, otherwise the chaos harness arms schedules against code
    that no longer exists and the soak silently loses coverage."""
    catalog_path = os.path.join(root, "src/fault/fault.h")
    try:
        with open(catalog_path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return  # partial trees (self-test fixtures) simply have no catalog
    m = FAULT_CATALOG_RE.search(strip_comments_and_strings(text))
    raw_m = FAULT_CATALOG_RE.search(text)
    if not raw_m:
        return
    src_sites = {site for site, (path, _) in seen_sites.items()
                 if path.startswith("src/")}
    body_start_line = text[:raw_m.start()].count("\n") + 1
    for offset, line in enumerate(raw_m.group("body").split("\n")):
        entry = re.search(r'"([^"]+)"', line)
        if entry is None or is_suppressed(line, "fault-site"):
            continue
        site = entry.group(1)
        if site not in src_sites:
            violations.append(Violation(
                "src/fault/fault.h", body_start_line + offset, "fault-site",
                f'catalog entry "{site}" has no EMIGRE_FAULT_POINT site in '
                f"src/; remove the stale entry or re-add the site"))


def check_bench_metrics(relpath, text, violations):
    name = os.path.basename(relpath)
    m = re.match(r"bench_(\w+)\.cc$", name)
    if not m:
        return
    bench = m.group(1)
    # Whole-file rule: a NOLINT(bench-metrics) anywhere opts the binary out.
    if "NOLINT(bench-metrics)" in text:
        return
    if f'WriteBenchMetrics("{bench}")' not in text:
        violations.append(Violation(
            relpath, 1, "bench-metrics",
            f'bench binary must call WriteBenchMetrics("{bench}") so it '
            f"writes BENCH_{bench}.json"))


def lint_file(root, relpath, seen_fault_sites=None, seen_obs_names=None):
    violations = []
    full = os.path.join(root, relpath)
    try:
        with open(full, encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as e:
        violations.append(Violation(relpath, 0, "io", str(e)))
        return violations
    raw_lines = text.split("\n")
    stripped = strip_comments_and_strings(text).split("\n")
    is_header = relpath.endswith(".h")

    if is_header:
        check_include_guard(relpath, raw_lines, violations)
        check_using_namespace(relpath, stripped, raw_lines, violations)
        check_nodiscard(relpath, stripped, raw_lines, violations)
    top = relpath.split("/", 1)[0]
    if top in NAKED_NEW_DIRS and relpath.endswith((".h", ".cc")):
        check_naked_new(relpath, stripped, raw_lines, violations)
    if relpath.endswith(".cc"):
        check_bench_metrics(relpath, text, violations)
    if relpath.endswith((".h", ".cc")) and any(
            relpath.startswith(d + "/") for d in DENSE_RESET_DIRS):
        check_dense_reset(relpath, stripped, raw_lines, violations)
    if relpath.startswith("src/") and relpath.endswith((".h", ".cc")):
        check_ondisk_assert(relpath, stripped, raw_lines, violations)
    if relpath.endswith((".h", ".cc")):
        check_guarded_by(relpath, stripped, raw_lines, violations)
        # Single-file runs (and the self-test) still catch intra-file
        # duplicates; run_lint threads one map through every file so the
        # rule is global.
        check_fault_sites(relpath, stripped, raw_lines, violations,
                          {} if seen_fault_sites is None else seen_fault_sites)
        check_obs_names(relpath, stripped, raw_lines, violations,
                        {} if seen_obs_names is None else seen_obs_names)
    return violations


def collect_files(root, paths):
    rels = []
    if paths:
        for p in paths:
            full = os.path.abspath(p)
            if os.path.isdir(full):
                for dirpath, _, names in os.walk(full):
                    for n in sorted(names):
                        if n.endswith((".h", ".cc")):
                            rels.append(os.path.relpath(
                                os.path.join(dirpath, n), root))
            else:
                rels.append(os.path.relpath(full, root))
    else:
        for d in DEFAULT_DIRS:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, names in os.walk(base):
                for n in sorted(names):
                    if n.endswith((".h", ".cc")):
                        rels.append(os.path.relpath(
                            os.path.join(dirpath, n), root))
    return sorted(set(r.replace(os.sep, "/") for r in rels))


def run_lint(root, paths):
    violations = []
    seen_fault_sites = {}
    seen_obs_names = {}
    for rel in collect_files(root, paths):
        violations.extend(
            lint_file(root, rel, seen_fault_sites, seen_obs_names))
    if not paths:
        check_fault_catalog(root, seen_fault_sites, violations)
    for v in violations:
        print(v)
    if violations:
        print(f"lint.py: {len(violations)} violation(s)")
        return 1
    return 0


# --- self-test --------------------------------------------------------------

SEEDED = {
    "include-guard": (
        "src/util/bad_guard.h",
        "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n"),
    "using-namespace": (
        "src/util/uses_ns.h",
        "#ifndef EMIGRE_UTIL_USES_NS_H_\n#define EMIGRE_UTIL_USES_NS_H_\n"
        "using namespace std;\n#endif  // EMIGRE_UTIL_USES_NS_H_\n"),
    "nodiscard": (
        "src/util/drops.h",
        "#ifndef EMIGRE_UTIL_DROPS_H_\n#define EMIGRE_UTIL_DROPS_H_\n"
        "Status DoWrite(int fd);\n"
        "#endif  // EMIGRE_UTIL_DROPS_H_\n"),
    "naked-new": (
        "src/util/leaky.cc",
        "void* Make() { return new int(7); }\n"),
    "bench-metrics": (
        "bench/bench_silent.cc",
        "int main() { return 0; }\n"),
    "dense-reset": (
        "src/ppr/dense_clear.cc",
        "void Reset(std::vector<double>& v, size_t n) {"
        " v.assign(n, 0.0); }\n"),
    "fault-site": (
        "src/util/dup_site.cc",
        'void A() { EMIGRE_FAULT_POINT("dup.site"); }\n'
        'void B() { EMIGRE_FAULT_POINT_STATUS("dup.site"); }\n'),
    "obs-name": (
        "src/util/shouty_metric.cc",
        'void F() { EMIGRE_COUNTER("Shouty.Name").Increment(); }\n'),
    "ondisk-assert": (
        "src/data/unpinned.h",
        "#ifndef EMIGRE_DATA_UNPINNED_H_\n#define EMIGRE_DATA_UNPINNED_H_\n"
        "struct RecordOnDisk {\n"
        "  unsigned int bytes;\n"
        "};\n"
        "static_assert(sizeof(RecordOnDisk) == 4);\n"
        "struct TrailerOnDisk {\n"
        "  unsigned int crc;\n"
        "};\n"
        "#endif  // EMIGRE_DATA_UNPINNED_H_\n"),
    "guarded-by": (
        "src/util/unguarded.h",
        "#ifndef EMIGRE_UTIL_UNGUARDED_H_\n"
        "#define EMIGRE_UTIL_UNGUARDED_H_\n"
        "class Cache {\n"
        " private:\n"
        "  std::mutex mutex_;\n"
        "  size_t hits_ = 0;\n"
        "};\n"
        "#endif  // EMIGRE_UTIL_UNGUARDED_H_\n"),
}

CLEAN_FILE = (
    "src/util/clean.h",
    "#ifndef EMIGRE_UTIL_CLEAN_H_\n#define EMIGRE_UTIL_CLEAN_H_\n"
    "// A Status in a comment; \"using namespace\" in a string is fine.\n"
    "[[nodiscard]] Status DoWrite(int fd);\n"
    "[[nodiscard]]\nStatus DoWriteWrapped(int fd);\n"
    "class [[nodiscard]] Status {};\n"
    "struct PinnedOnDisk {\n"
    "  unsigned int bytes;\n"
    "};\n"
    "static_assert(sizeof(PinnedOnDisk) == 4);\n"
    "static_assert(std::is_trivially_copyable_v<PinnedOnDisk>);\n"
    "struct ForwardOnDisk;\n"
    "class Guarded {\n"
    " public:\n"
    "  [[nodiscard]] Status Flush(int fd);\n"
    " private:\n"
    "  mutable util::Mutex mutex_;\n"
    "  std::map<int, int> index_ GUARDED_BY(mutex_);\n"
    "  size_t hits_ GUARDED_BY(mutex_) = 0;\n"
    "  std::unique_ptr<int> cell_ PT_GUARDED_BY(mutex_);\n"
    "  std::atomic<size_t> fast_count_{0};\n"
    "  util::CondVar ready_;\n"
    "};\n"
    "#endif  // EMIGRE_UTIL_CLEAN_H_\n")


def self_test_fault_catalog():
    """The fault-site rule's reverse direction: a kFaultSites entry with no
    EMIGRE_FAULT_POINT in src/ fires; NOLINT(fault-site) on the entry
    suppresses."""
    failures = 0
    catalog = (
        "inline constexpr const char* kFaultSites[] = {\n"
        '    "real.site",\n'
        '    "ghost.site",{suffix}\n'
        "};\n")
    site_cc = 'void F() { EMIGRE_FAULT_POINT("real.site"); }\n'
    for suffix, expect_fire in (("", True),
                                ("  // NOLINT(fault-site)", False)):
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src/fault"), exist_ok=True)
            with open(os.path.join(tmp, "src/fault/fault.h"), "w",
                      encoding="utf-8") as f:
                f.write(catalog.replace("{suffix}", suffix))
            with open(os.path.join(tmp, "src/fault/site.cc"), "w",
                      encoding="utf-8") as f:
                f.write(site_cc)
            violations = []
            seen = {}
            for rel in collect_files(tmp, []):
                lint_file(tmp, rel, seen, {})
            check_fault_catalog(tmp, seen, violations)
            fired = [v for v in violations if "ghost.site" in v.message]
            if expect_fire and not fired:
                print("SELF-TEST FAIL: stale kFaultSites entry did not "
                      "fire the fault-site rule")
                failures += 1
            elif not expect_fire and fired:
                print("SELF-TEST FAIL: NOLINT(fault-site) did not suppress "
                      f"the catalog check: {fired[0]}")
                failures += 1
            elif [v for v in violations if "real.site" in v.message]:
                print("SELF-TEST FAIL: live catalog entry flagged as stale")
                failures += 1
    if not failures:
        print("self-test ok: fault-site catalog reverse direction verified")
    return failures


def self_test():
    failures = 0
    for rule, (relpath, content) in SEEDED.items():
        with tempfile.TemporaryDirectory() as tmp:
            full = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(content)
            violations = lint_file(tmp, relpath)
            hit = [v for v in violations if v.rule == rule]
            if not hit:
                print(f"SELF-TEST FAIL: rule {rule} did not fire on "
                      f"{relpath}")
                failures += 1
            else:
                print(f"self-test ok: {rule} fired ({hit[0].message})")
            # The same file with a NOLINT marker must pass.
            if rule == "bench-metrics":  # whole-file rule, file-level marker
                suppressed = "// NOLINT(bench-metrics)\n" + content
            else:
                suppressed = "\n".join(
                    line + ("  // NOLINT" if line.strip() and
                            not line.lstrip().startswith("#endif") else "")
                    for line in content.split("\n"))
            with open(full, "w", encoding="utf-8") as f:
                f.write(suppressed)
            violations = [v for v in lint_file(tmp, relpath)
                          if v.rule == rule]
            if violations:
                print(f"SELF-TEST FAIL: NOLINT did not suppress {rule}: "
                      f"{violations[0]}")
                failures += 1
    failures += self_test_fault_catalog()
    with tempfile.TemporaryDirectory() as tmp:
        relpath, content = CLEAN_FILE
        full = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as f:
            f.write(content)
        violations = lint_file(tmp, relpath)
        if violations:
            print("SELF-TEST FAIL: clean file reported violations:")
            for v in violations:
                print(f"  {v}")
            failures += 1
        else:
            print("self-test ok: clean file passes")
    if failures:
        print(f"lint.py self-test: {failures} failure(s)")
        return 1
    print("lint.py self-test: all rules verified")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return run_lint(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
