// emigre — command-line interface to the library.
//
// Subcommands:
//   generate    synthesize an Amazon-style dataset and write CSVs
//   build-graph run the §6.1 preprocessing pipeline and save the HIN
//   stats       print Table-4-style degree statistics of a saved graph
//   recommend   print a user's top-k recommendation list
//   explain     answer a Why-Not question
//   experiment  run the §6.2 evaluation and write reports + records CSV
//   selfcheck   run the invariant validators (docs/invariants.md)
//   chaos       seeded fault-injection soak (docs/robustness.md)
//   perfgate    gate a bench run against its checked-in baseline
//
// Exit codes: 0 success, 1 internal error, 2 usage error, 3 the Why-Not
// question was valid but no explanation exists. For perfgate: 0 within
// tolerances, 1 regression, 2 usage.
//
// Examples:
//   emigre generate --dir /tmp/ds --users 120 --items 2000
//   emigre build-graph --dataset /tmp/ds --out /tmp/amazon.graph
//   emigre stats --graph /tmp/amazon.graph
//   emigre recommend --graph /tmp/amazon.graph --user 17 --top 10
//   emigre explain --graph /tmp/amazon.graph --user 17 --item 261
//       --mode add --heuristic incremental
//   emigre experiment --graph /tmp/amazon.graph --out /tmp/records.csv
//   emigre selfcheck --graph /tmp/amazon.graph --level full
//   emigre perfgate --baseline bench/baselines/BENCH_ppr_kernels.json
//       --current BENCH_ppr_kernels.json --config bench/baselines/perfgate.json

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "check/check_level.h"
#include "check/selfcheck.h"
#include "data/amazon_lite.h"
#include "data/csv_io.h"
#include "data/synthetic_amazon.h"
#include "eval/chaos.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "explain/emigre.h"
#include "explain/format.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "fault/fault.h"
#include <fstream>
#include <sstream>

#include "graph/io.h"
#include "graph/stats.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/perfgate.h"
#include "obs/query_log.h"
#include "ppr/options.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace emigre::cli {
namespace {

// Exit-code contract, asserted by tests/cli_smoke_test.sh.
constexpr int kExitInternal = 1;       ///< infrastructure / internal failure
constexpr int kExitUsage = 2;          ///< bad flags, unknown command
constexpr int kExitNoExplanation = 3;  ///< valid question, no explanation

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kInvalidArgument ? kExitUsage
                                                       : kExitInternal;
}

/// Observability flags shared by the query subcommands; see
/// docs/observability.md.
void AddObsFlags(FlagParser* parser) {
  parser->AddFlag("trace", "print the span tree and metrics delta", "false");
  parser->AddFlag("metrics-out", "write the metrics delta as JSON to FILE",
                  "");
  parser->AddFlag("trace-out",
                  "write a chrome://tracing timeline JSON to FILE", "");
  parser->AddFlag("query-log",
                  "append one emigre.query.v1 record per Explain to FILE",
                  "");
}

/// Push-engine selection shared by the query subcommands. `fast` gives up
/// bitwise replay against the other two engines for throughput on
/// push-bound rows (docs/performance.md has the contract).
void AddEngineFlag(FlagParser* parser) {
  parser->AddFlag("push-engine", "PPR push schedule: legacy | kernel | fast",
                  "kernel");
}

Status ApplyEngineFlag(const FlagParser& parser,
                       explain::EmigreOptions* opts) {
  std::string name = parser.GetString("push-engine").ValueOrDie();
  if (name == "legacy") {
    opts->rec.ppr.engine = ppr::PushEngine::kLegacy;
  } else if (name == "kernel") {
    opts->rec.ppr.engine = ppr::PushEngine::kKernel;
  } else if (name == "fast") {
    opts->rec.ppr.engine = ppr::PushEngine::kFast;
  } else {
    return Status::InvalidArgument("unknown --push-engine " + name);
  }
  return Status::OK();
}

/// Captures a registry baseline at construction; Finish() prints and/or
/// writes the delta accumulated since then, so the output reflects only this
/// command's work. Call Finish on every post-query exit path (found and
/// not-found alike). Construct before the engine: `query_log()` must be
/// wired into EmigreOptions ahead of the first query.
class ObsSession {
 public:
  explicit ObsSession(const FlagParser& parser)
      : trace_(parser.GetBool("trace").ValueOrDie()),
        metrics_out_(parser.GetString("metrics-out").ValueOrDie()),
        trace_out_(parser.GetString("trace-out").ValueOrDie()) {
    if (trace_ || !trace_out_.empty()) {
      obs::ResetTrace();
      obs::SetTracingEnabled(true);
    }
    if (!trace_out_.empty()) {
      obs::ResetTimeline();
      obs::SetTimelineEnabled(true);
    }
    std::string query_log_path = parser.GetString("query-log").ValueOrDie();
    if (!query_log_path.empty()) {
      Result<std::unique_ptr<obs::QueryLog>> log =
          obs::QueryLog::Open(query_log_path);
      if (log.ok()) {
        query_log_ = std::move(log).value();
      } else {
        init_status_ = log.status();
      }
    }
    before_ = obs::Registry::Global().Snapshot();
  }

  /// Non-OK when a sink could not be opened; callers bail out via Fail.
  const Status& init_status() const { return init_status_; }

  /// The audit sink to wire into EmigreOptions (null when --query-log is
  /// not set).
  obs::QueryLog* query_log() const { return query_log_.get(); }

  int Finish(int exit_code) {
    obs::MetricsSnapshot delta =
        obs::Delta(before_, obs::Registry::Global().Snapshot());
    std::vector<obs::SpanStat> spans = obs::TraceSnapshot();
    if (trace_) {
      std::printf("\n== trace ==\n%s", obs::FormatTraceTree(spans).c_str());
      std::printf("\n== metrics ==\n%s",
                  obs::FormatMetricsTable(delta).c_str());
    }
    if (!metrics_out_.empty()) {
      Status st = obs::WriteMetricsJson(metrics_out_, delta, spans);
      if (!st.ok()) return Fail(st);
      std::printf("metrics -> %s\n", metrics_out_.c_str());
    }
    if (!trace_out_.empty()) {
      Status st = obs::WriteChromeTrace(trace_out_);
      if (!st.ok()) return Fail(st);
      std::printf("timeline -> %s\n", trace_out_.c_str());
    }
    if (query_log_ != nullptr) {
      std::printf("query log -> %s\n", query_log_->path().c_str());
    }
    return exit_code;
  }

 private:
  bool trace_;
  std::string metrics_out_;
  std::string trace_out_;
  std::unique_ptr<obs::QueryLog> query_log_;
  Status init_status_;
  obs::MetricsSnapshot before_;
};

/// Shared graph-loading + explainer-options wiring for the query commands.
struct LoadedGraph {
  graph::HinGraph g;
  explain::EmigreOptions opts;
};

Result<LoadedGraph> LoadForQueries(const std::string& path) {
  LoadedGraph lg;
  EMIGRE_ASSIGN_OR_RETURN(lg.g, graph::LoadGraph(path));
  graph::NodeTypeId item_type = lg.g.FindNodeType("item");
  if (item_type == graph::kInvalidNodeType) {
    return Status::InvalidArgument(
        "graph has no 'item' node type; was it built by `emigre "
        "build-graph`?");
  }
  lg.opts.rec.item_type = item_type;
  for (const char* name : {"rated", "reviewed"}) {
    graph::EdgeTypeId t = lg.g.FindEdgeType(name);
    if (t != graph::kInvalidEdgeType) {
      lg.opts.allowed_edge_types.push_back(t);
    }
  }
  lg.opts.add_edge_type = lg.g.FindEdgeType("rated");
  lg.opts.rec.ppr.epsilon = 1e-7;
  lg.opts.deadline_seconds = 5.0;
  return lg;
}

int RunGenerate(const std::vector<std::string>& args) {
  FlagParser parser("emigre generate — synthesize the Amazon-style dataset");
  parser.AddFlag("dir", "output directory for the CSV files", "");
  parser.AddFlag("users", "number of users", "120");
  parser.AddFlag("items", "number of items", "2000");
  parser.AddFlag("categories", "number of categories", "32");
  parser.AddFlag("seed", "generator seed", "20240416");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string dir = parser.GetString("dir").ValueOrDie();
  if (dir.empty()) return Fail(Status::InvalidArgument("--dir is required"));

  data::SyntheticAmazonOptions gen;
  gen.num_users = static_cast<size_t>(parser.GetInt("users").ValueOrDie());
  gen.num_items = static_cast<size_t>(parser.GetInt("items").ValueOrDie());
  gen.num_categories =
      static_cast<size_t>(parser.GetInt("categories").ValueOrDie());
  gen.seed = static_cast<uint64_t>(parser.GetInt("seed").ValueOrDie());

  Result<data::Dataset> ds = data::GenerateSyntheticAmazon(gen);
  if (!ds.ok()) return Fail(ds.status());
  std::filesystem::create_directories(dir);
  st = data::SaveDatasetCsv(ds.value(), dir);
  if (!st.ok()) return Fail(st);
  std::printf("dataset: %zu users, %zu items, %zu ratings, %zu reviews -> "
              "%s\n",
              ds->users.size(), ds->items.size(), ds->ratings.size(),
              ds->reviews.size(), dir.c_str());
  return 0;
}

int RunBuildGraph(const std::vector<std::string>& args) {
  FlagParser parser("emigre build-graph — §6.1 preprocessing pipeline");
  parser.AddFlag("dataset", "directory with dataset CSVs", "");
  parser.AddFlag("out", "output graph file", "");
  parser.AddFlag("min-stars", "keep ratings strictly above this", "3");
  parser.AddFlag("hops", "neighborhood hops around sampled users (0=all)",
                 "4");
  parser.AddFlag("sample-users", "moderate/active users to sample", "100");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string dataset = parser.GetString("dataset").ValueOrDie();
  std::string out = parser.GetString("out").ValueOrDie();
  if (dataset.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--dataset and --out are required"));
  }

  Result<data::Dataset> ds = data::LoadDatasetCsv(dataset);
  if (!ds.ok()) return Fail(ds.status());
  data::AmazonLiteOptions lite_opts;
  lite_opts.min_stars_exclusive =
      static_cast<int>(parser.GetInt("min-stars").ValueOrDie());
  lite_opts.neighborhood_hops =
      static_cast<size_t>(parser.GetInt("hops").ValueOrDie());
  lite_opts.sample_users =
      static_cast<size_t>(parser.GetInt("sample-users").ValueOrDie());
  Result<data::AmazonLiteGraph> lite =
      data::BuildAmazonLite(ds.value(), lite_opts);
  if (!lite.ok()) return Fail(lite.status());
  st = graph::SaveGraph(lite->graph, out);
  if (!st.ok()) return Fail(st);
  std::printf("graph: %zu nodes, %zu edges -> %s\n", lite->graph.NumNodes(),
              lite->graph.NumEdges(), out.c_str());
  std::printf("sampled evaluation users:");
  for (graph::NodeId u : lite->eval_users) std::printf(" %u", u);
  std::printf("\n");
  return 0;
}

int RunStats(const std::vector<std::string>& args) {
  FlagParser parser("emigre stats — degree statistics per node type");
  parser.AddFlag("graph", "graph file", "");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<graph::HinGraph> g =
      graph::LoadGraph(parser.GetString("graph").ValueOrDie());
  if (!g.ok()) return Fail(g.status());
  std::printf("%zu nodes, %zu edges\n%s", g->NumNodes(), g->NumEdges(),
              graph::FormatDegreeStats(graph::ComputeDegreeStats(g.value()))
                  .c_str());
  return 0;
}

int RunRecommend(const std::vector<std::string>& args) {
  FlagParser parser("emigre recommend — a user's top-k list");
  parser.AddFlag("graph", "graph file", "");
  parser.AddFlag("user", "user node id", "-1");
  parser.AddFlag("top", "list length", "10");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<LoadedGraph> lg =
      LoadForQueries(parser.GetString("graph").ValueOrDie());
  if (!lg.ok()) return Fail(lg.status());
  st = ApplyEngineFlag(parser, &lg->opts);
  if (!st.ok()) return Fail(st);
  int64_t user = parser.GetInt("user").ValueOrDie();
  if (user < 0 || !lg->g.IsValidNode(static_cast<graph::NodeId>(user))) {
    return Fail(Status::InvalidArgument("--user must be a valid node id"));
  }
  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  explain::Emigre engine(lg->g, lg->opts);
  auto ranking = engine.CurrentRanking(static_cast<graph::NodeId>(user))
                     .TopN(static_cast<size_t>(
                         parser.GetInt("top").ValueOrDie()));
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("%2zu. [%u] %-24s %.6f\n", i + 1, ranking.at(i).item,
                lg->g.DisplayName(ranking.at(i).item).c_str(),
                ranking.at(i).score);
  }
  return obs.Finish(0);
}

int RunExplain(const std::vector<std::string>& args) {
  FlagParser parser("emigre explain — answer a Why-Not question");
  parser.AddFlag("graph", "graph file", "");
  parser.AddFlag("user", "user node id", "-1");
  parser.AddFlag("item", "Why-Not item node id", "-1");
  parser.AddFlag("mode", "add | remove | auto", "auto");
  parser.AddFlag("heuristic",
                 "incremental | powerset | exhaustive | brute", "incremental");
  parser.AddFlag("test-threads",
                 "candidate-verification threads (1=serial, 0=all cores); "
                 "deterministic at any setting, see docs/parallelism.md",
                 "1");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<LoadedGraph> lg =
      LoadForQueries(parser.GetString("graph").ValueOrDie());
  if (!lg.ok()) return Fail(lg.status());
  st = ApplyEngineFlag(parser, &lg->opts);
  if (!st.ok()) return Fail(st);
  lg->opts.test_threads =
      static_cast<size_t>(parser.GetInt("test-threads").ValueOrDie());
  graph::NodeId user =
      static_cast<graph::NodeId>(parser.GetInt("user").ValueOrDie());
  graph::NodeId item =
      static_cast<graph::NodeId>(parser.GetInt("item").ValueOrDie());

  explain::Heuristic heuristic;
  std::string h = parser.GetString("heuristic").ValueOrDie();
  if (h == "incremental") {
    heuristic = explain::Heuristic::kIncremental;
  } else if (h == "powerset") {
    heuristic = explain::Heuristic::kPowerset;
  } else if (h == "exhaustive") {
    heuristic = explain::Heuristic::kExhaustive;
  } else if (h == "brute") {
    heuristic = explain::Heuristic::kBruteForce;
  } else {
    return Fail(Status::InvalidArgument("unknown --heuristic " + h));
  }

  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  lg->opts.query_log = obs.query_log();
  explain::Emigre engine(lg->g, lg->opts);
  explain::WhyNotQuestion q{user, item};
  std::string mode = parser.GetString("mode").ValueOrDie();
  Result<explain::Explanation> result =
      mode == "auto"
          ? engine.ExplainAuto(q, heuristic)
          : engine.Explain(q,
                           mode == "add" ? explain::Mode::kAdd
                                         : explain::Mode::kRemove,
                           heuristic);
  if (!result.ok()) return Fail(result.status());
  const explain::Explanation& e = result.value();
  if (!e.found) {
    std::printf("no explanation (%s)\n",
                std::string(FailureReasonName(e.failure)).c_str());
    // Meta-explanation for the failure (§6.4).
    auto space = e.mode == explain::Mode::kRemove
                     ? explain::BuildRemoveSearchSpace(
                           lg->g, user, e.original_rec, item, lg->opts)
                     : explain::BuildAddSearchSpace(
                           lg->g, user, e.original_rec, item, lg->opts);
    if (space.ok()) {
      std::printf("diagnosis: %s\n",
                  explain::DiagnoseFailure(lg->g, space.value(), e, lg->opts)
                      .message.c_str());
    }
    return obs.Finish(kExitNoExplanation);
  }
  std::printf("%s\n", explain::FormatExplanationSentence(lg->g, e).c_str());
  std::printf("(%s mode, %zu action(s), %s heuristic, %zu TESTs, %.1f ms)\n",
              std::string(ModeName(e.mode)).c_str(), e.size(),
              std::string(HeuristicName(e.heuristic)).c_str(),
              e.tests_performed, e.seconds * 1e3);
  for (const auto& edge : e.edges) {
    std::printf("  %s (%s -> %s [%s])\n",
                e.mode == explain::Mode::kAdd ? "PERFORM" : "UNDO",
                lg->g.DisplayName(edge.src).c_str(),
                lg->g.DisplayName(edge.dst).c_str(),
                lg->g.EdgeTypeName(edge.type).c_str());
  }
  return obs.Finish(0);
}

int RunExperiment(const std::vector<std::string>& args) {
  FlagParser parser("emigre experiment — the §6.2 evaluation");
  parser.AddFlag("graph", "graph file", "");
  parser.AddFlag("out", "records CSV output path", "");
  parser.AddFlag("top", "recommendation list length per user", "10");
  parser.AddFlag("per-user", "Why-Not positions per user (0=all)", "3");
  parser.AddFlag("deadline", "per-attempt budget in seconds", "2.0");
  parser.AddFlag("threads", "scenario worker threads (0=all cores)", "0");
  parser.AddFlag("test-threads",
                 "candidate-verification threads per scenario worker "
                 "(1=serial, 0=all cores); the runner caps scenario workers "
                 "so the product stays within the machine",
                 "1");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<LoadedGraph> lg =
      LoadForQueries(parser.GetString("graph").ValueOrDie());
  if (!lg.ok()) return Fail(lg.status());
  st = ApplyEngineFlag(parser, &lg->opts);
  if (!st.ok()) return Fail(st);
  lg->opts.deadline_seconds = parser.GetDouble("deadline").ValueOrDie();
  lg->opts.test_threads =
      static_cast<size_t>(parser.GetInt("test-threads").ValueOrDie());

  // Evaluation users: every user-typed node with at least one action.
  std::vector<graph::NodeId> users;
  graph::NodeTypeId user_type = lg->g.FindNodeType("user");
  for (graph::NodeId n = 0; n < lg->g.NumNodes(); ++n) {
    if (lg->g.NodeType(n) == user_type && lg->g.OutDegree(n) > 0) {
      users.push_back(n);
    }
  }
  Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
      lg->g, users, lg->opts,
      static_cast<size_t>(parser.GetInt("top").ValueOrDie()),
      static_cast<size_t>(parser.GetInt("per-user").ValueOrDie()));
  if (!scenarios.ok()) return Fail(scenarios.status());
  std::printf("%zu users, %zu scenarios\n", users.size(), scenarios->size());

  eval::RunnerOptions run_opts;
  run_opts.num_threads =
      static_cast<size_t>(parser.GetInt("threads").ValueOrDie());
  run_opts.progress_every = 10;
  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  lg->opts.query_log = obs.query_log();
  Result<eval::ExperimentResult> result = eval::RunExperiment(
      lg->g, scenarios.value(), eval::PaperMethods(), lg->opts, run_opts);
  if (!result.ok()) return Fail(result.status());

  std::vector<std::string> names;
  for (const auto& m : eval::PaperMethods()) names.push_back(m.name);
  auto aggregates = eval::Aggregate(result.value(), names);
  std::printf("%s\n%s\n%s\n", eval::FormatFigure4(aggregates).c_str(),
              eval::FormatFigure6(aggregates).c_str(),
              eval::FormatTable5(aggregates).c_str());

  std::string out = parser.GetString("out").ValueOrDie();
  if (!out.empty()) {
    st = eval::WriteRecordsCsv(result.value(), out);
    if (!st.ok()) return Fail(st);
    std::printf("records -> %s\n", out.c_str());
  }
  return obs.Finish(0);
}

int RunSelfCheck(const std::vector<std::string>& args) {
  FlagParser parser("emigre selfcheck — run the invariant validators");
  parser.AddFlag("graph", "graph file", "");
  parser.AddFlag("level", "off | basic | full", "full");
  parser.AddFlag("samples", "sampled sources/targets per PPR suite", "3");
  parser.AddFlag("edits", "random edge edits exercised", "3");
  parser.AddFlag("seed", "sampling seed", "20240416");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<LoadedGraph> lg =
      LoadForQueries(parser.GetString("graph").ValueOrDie());
  if (!lg.ok()) return Fail(lg.status());
  st = ApplyEngineFlag(parser, &lg->opts);
  if (!st.ok()) return Fail(st);

  check::SelfCheckOptions sc;
  std::string level = parser.GetString("level").ValueOrDie();
  if (!check::CheckLevelFromName(level, &sc.level)) {
    return Fail(Status::InvalidArgument("unknown --level " + level));
  }
  sc.num_samples =
      static_cast<size_t>(parser.GetInt("samples").ValueOrDie());
  sc.num_edits = static_cast<size_t>(parser.GetInt("edits").ValueOrDie());
  sc.seed = static_cast<uint64_t>(parser.GetInt("seed").ValueOrDie());

  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  Result<check::SelfCheckReport> report =
      check::RunSelfCheck(lg->g, lg->opts, sc);
  if (!report.ok()) return Fail(report.status());
  for (const std::string& line : report->lines) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("selfcheck (%s): %zu check(s), %zu violation(s)\n",
              std::string(check::CheckLevelName(sc.level)).c_str(),
              report->checks_run, report->violations);
  return obs.Finish(report->ok() ? 0 : 1);
}

int RunChaos(const std::vector<std::string>& args) {
  FlagParser parser(
      "emigre chaos — seeded fault-injection soak (docs/robustness.md)");
  parser.AddFlag("seeds", "number of independent fault schedules", "20");
  parser.AddFlag("base-seed", "seed of schedule 0", "20240416");
  parser.AddFlag("queries", "explain queries per schedule", "3");
  parser.AddFlag("users", "synthetic dataset users", "60");
  parser.AddFlag("items", "synthetic dataset items", "400");
  parser.AddFlag("test-threads",
                 "candidate-verification threads during the soak", "2");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  if (!fault::kFaultInjectionEnabled) {
    std::fprintf(stderr,
                 "warning: built without -DEMIGRE_FAULT_INJECTION=ON; fault "
                 "sites are compiled out, so this soak exercises only the "
                 "plain pipeline\n");
  }

  // The soak runs on a synthetic graph so it needs no input files.
  data::SyntheticAmazonOptions gen;
  gen.num_users = static_cast<size_t>(parser.GetInt("users").ValueOrDie());
  gen.num_items = static_cast<size_t>(parser.GetInt("items").ValueOrDie());
  gen.seed = static_cast<uint64_t>(parser.GetInt("base-seed").ValueOrDie());
  Result<data::Dataset> ds = data::GenerateSyntheticAmazon(gen);
  if (!ds.ok()) return Fail(ds.status());
  Result<data::AmazonLiteGraph> lite =
      data::BuildAmazonLite(ds.value(), data::AmazonLiteOptions{});
  if (!lite.ok()) return Fail(lite.status());

  explain::EmigreOptions opts;
  opts.rec.item_type = lite->graph.FindNodeType("item");
  for (const char* name : {"rated", "reviewed"}) {
    graph::EdgeTypeId t = lite->graph.FindEdgeType(name);
    if (t != graph::kInvalidEdgeType) opts.allowed_edge_types.push_back(t);
  }
  opts.add_edge_type = lite->graph.FindEdgeType("rated");
  opts.deadline_seconds = 2.0;
  st = ApplyEngineFlag(parser, &opts);
  if (!st.ok()) return Fail(st);

  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  opts.query_log = obs.query_log();

  Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
      lite->graph, lite->eval_users, opts, /*top_k=*/5, /*max_per_user=*/2);
  if (!scenarios.ok()) return Fail(scenarios.status());

  eval::ChaosOptions chaos_opts;
  chaos_opts.base_seed =
      static_cast<uint64_t>(parser.GetInt("base-seed").ValueOrDie());
  chaos_opts.num_schedules =
      static_cast<size_t>(parser.GetInt("seeds").ValueOrDie());
  chaos_opts.queries_per_schedule =
      static_cast<size_t>(parser.GetInt("queries").ValueOrDie());
  chaos_opts.test_threads =
      static_cast<size_t>(parser.GetInt("test-threads").ValueOrDie());
  Result<eval::ChaosReport> report =
      eval::RunChaosSoak(lite->graph, scenarios.value(), opts, chaos_opts);
  if (!report.ok()) return Fail(report.status());

  std::printf(
      "chaos: %zu schedule(s), %zu query(ies), %zu fault(s) fired, %zu typed "
      "failure(s), %zu degraded, %zu explanation(s) found\n",
      report->schedules_run, report->queries_run, report->faults_fired,
      report->typed_failures, report->degraded_results,
      report->explanations_found);
  for (const std::string& v : report->violations) {
    std::fprintf(stderr, "violation: %s\n", v.c_str());
  }
  if (!report->ok()) {
    std::fprintf(stderr, "chaos soak FAILED: %zu violation(s)\n",
                 report->violations.size());
    return obs.Finish(kExitInternal);
  }
  std::printf("chaos soak passed\n");
  return obs.Finish(0);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) {
    // InvalidArgument (not IOError): a bench file the user pointed at but
    // that cannot be read is a usage error under the exit-code contract.
    return Status::InvalidArgument(StrFormat("cannot read %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int RunPerfGate(const std::vector<std::string>& args) {
  // Exit codes (asserted by tests/cli_smoke_test.sh): 0 within tolerances,
  // 1 regression / out-of-band drift, 2 usage (bad flags, unreadable or
  // mismatched inputs).
  FlagParser parser(
      "emigre perfgate — gate a bench run against its checked-in baseline");
  parser.AddFlag("baseline", "baseline emigre.bench.v1 JSON file", "");
  parser.AddFlag("current", "fresh emigre.bench.v1 JSON file", "");
  parser.AddFlag("config",
                 "emigre.perfgate.v1 tolerance config "
                 "(bench/baselines/perfgate.json)",
                 "");
  parser.AddFlag("counter-tol",
                 "relative tolerance for counts (-1 = config/default)", "-1");
  parser.AddFlag("latency-tol",
                 "relative tolerance for *seconds sums (-1 = config/default)",
                 "-1");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string baseline_path = parser.GetString("baseline").ValueOrDie();
  std::string current_path = parser.GetString("current").ValueOrDie();
  if (baseline_path.empty() || current_path.empty()) {
    return Fail(
        Status::InvalidArgument("--baseline and --current are required"));
  }

  obs::PerfGateOptions opts;
  std::string config_path = parser.GetString("config").ValueOrDie();
  if (!config_path.empty()) {
    Result<std::string> config_text = ReadFileToString(config_path);
    if (!config_text.ok()) return Fail(config_text.status());
    Result<obs::PerfGateOptions> parsed =
        obs::ParsePerfGateConfig(config_text.value());
    if (!parsed.ok()) return Fail(parsed.status());
    opts = std::move(parsed).value();
  }
  double counter_tol = parser.GetDouble("counter-tol").ValueOrDie();
  double latency_tol = parser.GetDouble("latency-tol").ValueOrDie();
  if (counter_tol >= 0.0) opts.counter_tol = counter_tol;
  if (latency_tol >= 0.0) opts.latency_tol = latency_tol;

  Result<std::string> baseline_text = ReadFileToString(baseline_path);
  if (!baseline_text.ok()) return Fail(baseline_text.status());
  Result<std::string> current_text = ReadFileToString(current_path);
  if (!current_text.ok()) return Fail(current_text.status());
  Result<obs::BenchDoc> baseline =
      obs::ParseBenchJson(baseline_text.value());
  if (!baseline.ok()) return Fail(baseline.status());
  Result<obs::BenchDoc> current = obs::ParseBenchJson(current_text.value());
  if (!current.ok()) return Fail(current.status());

  Result<obs::PerfGateReport> report =
      obs::ComparePerf(baseline.value(), current.value(), opts);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->Format().c_str());
  return report->pass ? 0 : kExitInternal;
}

int Main(int argc, char** argv) {
  const std::string usage =
      "usage: emigre <generate|build-graph|stats|recommend|explain|"
      "experiment|selfcheck|chaos|perfgate> [flags]\n";
  if (argc < 2) {
    std::fprintf(stderr, "%s", usage.c_str());
    return kExitUsage;
  }
  std::string command = argv[1];
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);

  if (command == "generate") return RunGenerate(rest);
  if (command == "build-graph") return RunBuildGraph(rest);
  if (command == "stats") return RunStats(rest);
  if (command == "recommend") return RunRecommend(rest);
  if (command == "explain") return RunExplain(rest);
  if (command == "experiment") return RunExperiment(rest);
  if (command == "selfcheck") return RunSelfCheck(rest);
  if (command == "chaos") return RunChaos(rest);
  if (command == "perfgate") return RunPerfGate(rest);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(),
               usage.c_str());
  return kExitUsage;
}

}  // namespace
}  // namespace emigre::cli

int main(int argc, char** argv) { return emigre::cli::Main(argc, argv); }
