// emigre — command-line interface to the library.
//
// Subcommands:
//   generate    synthesize an Amazon-style dataset (CSV dir or bin file)
//   convert     dataset <-> binary container; dataset/graph -> CSR snapshot
//   inspect     peek into a binary dataset or snapshot without loading it
//   build-graph run the §6.1 preprocessing pipeline and save the HIN
//   stats       print Table-4-style degree statistics of a saved graph
//   recommend   print a user's top-k recommendation list
//   explain     answer a Why-Not question
//   experiment  run the §6.2 evaluation and write reports + records CSV
//   selfcheck   run the invariant validators (docs/invariants.md)
//   chaos       seeded fault-injection soak (docs/robustness.md)
//   perfgate    gate a bench run against its checked-in baseline
//
// The query commands (recommend, explain, experiment, selfcheck, stats)
// accept either a `emigre build-graph` HIN file or an `emigre.csr.v1`
// snapshot (docs/data_format.md) for --graph; snapshots are mmap'd and
// recommend/explain serve them without materializing a mutable graph.
//
// Exit codes: 0 success, 1 internal error, 2 usage error, 3 the Why-Not
// question was valid but no explanation exists. For perfgate: 0 within
// tolerances, 1 regression, 2 usage.
//
// Examples:
//   emigre generate --dir /tmp/ds --users 120 --items 2000
//   emigre generate --preset large --format bin --out /tmp/large.bin
//   emigre convert --in /tmp/ds --to bin --out /tmp/ds.bin
//   emigre convert --in /tmp/ds.bin --to snapshot --out /tmp/ds.csr
//   emigre inspect --in /tmp/ds.bin --section ratings --head 5
//   emigre build-graph --dataset /tmp/ds --out /tmp/amazon.graph
//   emigre stats --graph /tmp/amazon.graph
//   emigre recommend --graph /tmp/ds.csr --user 17 --top 10
//   emigre explain --graph /tmp/amazon.graph --user 17 --item 261
//       --mode add --heuristic incremental
//   emigre experiment --graph /tmp/amazon.graph --out /tmp/records.csv
//   emigre selfcheck --graph /tmp/amazon.graph --level full
//   emigre perfgate --baseline bench/baselines/BENCH_ppr_kernels.json
//       --current BENCH_ppr_kernels.json --config bench/baselines/perfgate.json

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "check/check_level.h"
#include "check/selfcheck.h"
#include "data/amazon_lite.h"
#include "data/bin_io.h"
#include "data/binfmt.h"
#include "data/csv_io.h"
#include "data/dataset_to_csr.h"
#include "data/synthetic_amazon.h"
#include "eval/chaos.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "explain/emigre.h"
#include "explain/format.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "fault/fault.h"
#include <fstream>
#include <sstream>

#include "graph/csr_snapshot.h"
#include "graph/io.h"
#include "graph/materialize.h"
#include "graph/stats.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/perfgate.h"
#include "obs/query_log.h"
#include "ppr/options.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emigre::cli {
namespace {

// Exit-code contract, asserted by tests/cli_smoke_test.sh.
constexpr int kExitInternal = 1;       ///< infrastructure / internal failure
constexpr int kExitUsage = 2;          ///< bad flags, unknown command
constexpr int kExitNoExplanation = 3;  ///< valid question, no explanation

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kInvalidArgument ? kExitUsage
                                                       : kExitInternal;
}

/// Observability flags shared by the query subcommands; see
/// docs/observability.md.
void AddObsFlags(FlagParser* parser) {
  parser->AddFlag("trace", "print the span tree and metrics delta", "false");
  parser->AddFlag("metrics-out", "write the metrics delta as JSON to FILE",
                  "");
  parser->AddFlag("trace-out",
                  "write a chrome://tracing timeline JSON to FILE", "");
  parser->AddFlag("query-log",
                  "append one emigre.query.v1 record per Explain to FILE",
                  "");
}

/// Push-engine selection shared by the query subcommands. `fast` gives up
/// bitwise replay against the other two engines for throughput on
/// push-bound rows (docs/performance.md has the contract).
void AddEngineFlag(FlagParser* parser) {
  parser->AddFlag("push-engine", "PPR push schedule: legacy | kernel | fast",
                  "kernel");
}

Status ApplyEngineFlag(const FlagParser& parser,
                       explain::EmigreOptions* opts) {
  std::string name = parser.GetString("push-engine").ValueOrDie();
  if (name == "legacy") {
    opts->rec.ppr.engine = ppr::PushEngine::kLegacy;
  } else if (name == "kernel") {
    opts->rec.ppr.engine = ppr::PushEngine::kKernel;
  } else if (name == "fast") {
    opts->rec.ppr.engine = ppr::PushEngine::kFast;
  } else {
    return Status::InvalidArgument("unknown --push-engine " + name);
  }
  return Status::OK();
}

/// Captures a registry baseline at construction; Finish() prints and/or
/// writes the delta accumulated since then, so the output reflects only this
/// command's work. Call Finish on every post-query exit path (found and
/// not-found alike). Construct before the engine: `query_log()` must be
/// wired into EmigreOptions ahead of the first query.
class ObsSession {
 public:
  explicit ObsSession(const FlagParser& parser)
      : trace_(parser.GetBool("trace").ValueOrDie()),
        metrics_out_(parser.GetString("metrics-out").ValueOrDie()),
        trace_out_(parser.GetString("trace-out").ValueOrDie()) {
    if (trace_ || !trace_out_.empty()) {
      obs::ResetTrace();
      obs::SetTracingEnabled(true);
    }
    if (!trace_out_.empty()) {
      obs::ResetTimeline();
      obs::SetTimelineEnabled(true);
    }
    std::string query_log_path = parser.GetString("query-log").ValueOrDie();
    if (!query_log_path.empty()) {
      Result<std::unique_ptr<obs::QueryLog>> log =
          obs::QueryLog::Open(query_log_path);
      if (log.ok()) {
        query_log_ = std::move(log).value();
      } else {
        init_status_ = log.status();
      }
    }
    before_ = obs::Registry::Global().Snapshot();
  }

  /// Non-OK when a sink could not be opened; callers bail out via Fail.
  const Status& init_status() const { return init_status_; }

  /// The audit sink to wire into EmigreOptions (null when --query-log is
  /// not set).
  obs::QueryLog* query_log() const { return query_log_.get(); }

  int Finish(int exit_code) {
    obs::MetricsSnapshot delta =
        obs::Delta(before_, obs::Registry::Global().Snapshot());
    std::vector<obs::SpanStat> spans = obs::TraceSnapshot();
    if (trace_) {
      std::printf("\n== trace ==\n%s", obs::FormatTraceTree(spans).c_str());
      std::printf("\n== metrics ==\n%s",
                  obs::FormatMetricsTable(delta).c_str());
    }
    if (!metrics_out_.empty()) {
      Status st = obs::WriteMetricsJson(metrics_out_, delta, spans);
      if (!st.ok()) return Fail(st);
      std::printf("metrics -> %s\n", metrics_out_.c_str());
    }
    if (!trace_out_.empty()) {
      Status st = obs::WriteChromeTrace(trace_out_);
      if (!st.ok()) return Fail(st);
      std::printf("timeline -> %s\n", trace_out_.c_str());
    }
    if (query_log_ != nullptr) {
      std::printf("query log -> %s\n", query_log_->path().c_str());
    }
    return exit_code;
  }

 private:
  bool trace_;
  std::string metrics_out_;
  std::string trace_out_;
  std::unique_ptr<obs::QueryLog> query_log_;
  Status init_status_;
  obs::MetricsSnapshot before_;
};

/// Explainer-options wiring shared by the query commands; works on any
/// graph carrying the schema surface (HinGraph or CsrSnapshotView).
template <typename G>
Result<explain::EmigreOptions> QueryOptionsFor(const G& g) {
  explain::EmigreOptions opts;
  graph::NodeTypeId item_type = g.FindNodeType("item");
  if (item_type == graph::kInvalidNodeType) {
    return Status::InvalidArgument(
        "graph has no 'item' node type; was it built by `emigre "
        "build-graph`?");
  }
  opts.rec.item_type = item_type;
  for (const char* name : {"rated", "reviewed"}) {
    graph::EdgeTypeId t = g.FindEdgeType(name);
    if (t != graph::kInvalidEdgeType) {
      opts.allowed_edge_types.push_back(t);
    }
  }
  opts.add_edge_type = g.FindEdgeType("rated");
  opts.rec.ppr.epsilon = 1e-7;
  opts.deadline_seconds = 5.0;
  return opts;
}

/// Loads --graph as a mutable HinGraph for the commands that need one
/// (stats, experiment, selfcheck): a snapshot is materialized, anything
/// else goes through the HIN reader.
Result<graph::HinGraph> LoadHinGraphAny(const std::string& path) {
  if (graph::SniffCsrSnapshot(path)) {
    EMIGRE_ASSIGN_OR_RETURN(graph::CsrSnapshotView view,
                            graph::CsrSnapshotView::Load(path));
    return std::move(*graph::MaterializeHinGraph(view));
  }
  return graph::LoadGraph(path);
}

int RunGenerate(const std::vector<std::string>& args) {
  FlagParser parser("emigre generate — synthesize the Amazon-style dataset");
  parser.AddFlag("dir", "output directory for the CSV files", "");
  parser.AddFlag("out", "output file for --format bin", "");
  parser.AddFlag("format", "output container: csv | bin", "csv");
  parser.AddFlag("preset",
                 "workload band: small | medium | large (overrides "
                 "users/items/categories; see docs/data_format.md)",
                 "");
  parser.AddFlag("users", "number of users", "120");
  parser.AddFlag("items", "number of items", "2000");
  parser.AddFlag("categories", "number of categories", "32");
  parser.AddFlag("seed", "generator seed", "20240416");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);

  data::SyntheticAmazonOptions gen;
  std::string preset = parser.GetString("preset").ValueOrDie();
  if (!preset.empty()) {
    Result<data::SyntheticAmazonOptions> p =
        data::SyntheticAmazonPreset(preset);
    if (!p.ok()) return Fail(p.status());
    gen = p.value();
  } else {
    gen.num_users = static_cast<size_t>(parser.GetInt("users").ValueOrDie());
    gen.num_items = static_cast<size_t>(parser.GetInt("items").ValueOrDie());
    gen.num_categories =
        static_cast<size_t>(parser.GetInt("categories").ValueOrDie());
  }
  gen.seed = static_cast<uint64_t>(parser.GetInt("seed").ValueOrDie());

  std::string format = parser.GetString("format").ValueOrDie();
  if (format == "bin") {
    // Streamed: rows go straight to the container, so even the `large`
    // band generates in O(users + items) memory.
    std::string out = parser.GetString("out").ValueOrDie();
    if (out.empty()) {
      return Fail(
          Status::InvalidArgument("--out is required with --format bin"));
    }
    st = data::GenerateSyntheticAmazonBin(gen, out);
    if (!st.ok()) return Fail(st);
    Result<data::binfmt::BinReader> reader = data::binfmt::BinReader::Open(out);
    if (!reader.ok()) return Fail(reader.status());
    std::printf("dataset:");
    for (const data::binfmt::SectionInfo& s : reader->sections()) {
      std::printf(" %llu %s,", static_cast<unsigned long long>(s.row_count),
                  s.name.c_str());
    }
    std::printf(" -> %s\n", out.c_str());
    return 0;
  }
  if (format != "csv") {
    return Fail(Status::InvalidArgument("unknown --format " + format +
                                        " (want csv|bin)"));
  }
  std::string dir = parser.GetString("dir").ValueOrDie();
  if (dir.empty()) return Fail(Status::InvalidArgument("--dir is required"));
  Result<data::Dataset> ds = data::GenerateSyntheticAmazon(gen);
  if (!ds.ok()) return Fail(ds.status());
  std::filesystem::create_directories(dir);
  st = data::SaveDatasetCsv(ds.value(), dir);
  if (!st.ok()) return Fail(st);
  std::printf("dataset: %zu users, %zu items, %zu ratings, %zu reviews -> "
              "%s\n",
              ds->users.size(), ds->items.size(), ds->ratings.size(),
              ds->reviews.size(), dir.c_str());
  return 0;
}

int RunConvert(const std::vector<std::string>& args) {
  FlagParser parser(
      "emigre convert — re-encode a dataset, or cut a CSR snapshot");
  parser.AddFlag("in",
                 "input: CSV dataset directory, emigre.bin.v1 file, or (for "
                 "--to snapshot) a build-graph HIN file",
                 "");
  parser.AddFlag("out", "output path", "");
  parser.AddFlag("to", "target encoding: csv | bin | snapshot", "");
  parser.AddFlag("min-stars",
                 "snapshot from a dataset: keep ratings strictly above this",
                 "3");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string in = parser.GetString("in").ValueOrDie();
  std::string out = parser.GetString("out").ValueOrDie();
  std::string to = parser.GetString("to").ValueOrDie();
  if (in.empty() || out.empty() || to.empty()) {
    return Fail(
        Status::InvalidArgument("--in, --out and --to are required"));
  }

  if (to == "bin" || to == "csv") {
    Result<data::Dataset> ds = data::LoadDatasetAuto(in, "auto");
    if (!ds.ok()) return Fail(ds.status());
    if (to == "bin") {
      st = data::SaveDatasetBin(ds.value(), out);
    } else {
      std::filesystem::create_directories(out);
      st = data::SaveDatasetCsv(ds.value(), out);
    }
    if (!st.ok()) return Fail(st);
    std::printf("dataset: %zu users, %zu items, %zu ratings, %zu reviews -> "
                "%s (%s)\n",
                ds->users.size(), ds->items.size(), ds->ratings.size(),
                ds->reviews.size(), out.c_str(), to.c_str());
    return 0;
  }
  if (to != "snapshot") {
    return Fail(Status::InvalidArgument("unknown --to " + to +
                                        " (want csv|bin|snapshot)"));
  }

  // Snapshot targets. A binary dataset streams through the two-pass
  // converter (never materializing a HinGraph — the 10M-node path); a CSV
  // dataset goes through BuildAmazonLite with the same semantics
  // (similarity links off, no neighborhood restriction); a HIN file is
  // snapshotted as-is.
  data::DatasetToCsrOptions copts;
  copts.min_stars_exclusive =
      static_cast<int>(parser.GetInt("min-stars").ValueOrDie());
  if (data::binfmt::SniffBinDataset(in)) {
    Result<data::DatasetToCsrStats> stats =
        data::ConvertBinDatasetToCsrSnapshot(in, out, copts);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("snapshot: %llu nodes, %llu edges (%llu kept ratings, %llu "
                "kept reviews) -> %s\n",
                static_cast<unsigned long long>(stats->num_nodes),
                static_cast<unsigned long long>(stats->num_edges),
                static_cast<unsigned long long>(stats->kept_ratings),
                static_cast<unsigned long long>(stats->kept_reviews),
                out.c_str());
    return 0;
  }
  std::error_code ec;
  graph::HinGraph g;
  if (std::filesystem::is_directory(in, ec)) {
    Result<data::Dataset> ds = data::LoadDatasetCsv(in);
    if (!ds.ok()) return Fail(ds.status());
    data::AmazonLiteOptions lite_opts;
    lite_opts.min_stars_exclusive = copts.min_stars_exclusive;
    lite_opts.max_similar_per_review = 0;
    lite_opts.neighborhood_hops = 0;
    Result<data::AmazonLiteGraph> lite =
        data::BuildAmazonLite(ds.value(), lite_opts);
    if (!lite.ok()) return Fail(lite.status());
    g = std::move(lite->graph);
  } else {
    Result<graph::HinGraph> loaded = graph::LoadGraph(in);
    if (!loaded.ok()) return Fail(loaded.status());
    g = std::move(loaded).value();
  }
  st = graph::WriteGraphSnapshot(g, out);
  if (!st.ok()) return Fail(st);
  std::printf("snapshot: %zu nodes, %zu edges -> %s\n", g.NumNodes(),
              g.NumEdges(), out.c_str());
  return 0;
}

std::string_view SnapshotSectionName(uint32_t id) {
  switch (static_cast<graph::SnapshotSectionId>(id)) {
    case graph::SnapshotSectionId::kNodeType: return "node-type";
    case graph::SnapshotSectionId::kOutWeight: return "out-weight";
    case graph::SnapshotSectionId::kOutOffsets: return "out-offsets";
    case graph::SnapshotSectionId::kOutDst: return "out-dst";
    case graph::SnapshotSectionId::kOutType: return "out-type";
    case graph::SnapshotSectionId::kOutW: return "out-w";
    case graph::SnapshotSectionId::kInOffsets: return "in-offsets";
    case graph::SnapshotSectionId::kInSrc: return "in-src";
    case graph::SnapshotSectionId::kInType: return "in-type";
    case graph::SnapshotSectionId::kInW: return "in-w";
    case graph::SnapshotSectionId::kNodeTypeNames: return "node-type-names";
    case graph::SnapshotSectionId::kEdgeTypeNames: return "edge-type-names";
    case graph::SnapshotSectionId::kLabelOffsets: return "label-offsets";
    case graph::SnapshotSectionId::kLabelBytes: return "label-bytes";
  }
  return "unknown";
}

/// Prints the snapshot header + section table (raw, without mapping the
/// payloads) and the loaded type tables.
int InspectSnapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  graph::SnapshotHeaderOnDisk header{};
  if (!file.read(reinterpret_cast<char*>(&header), sizeof(header))) {
    return Fail(Status::IOError("cannot read snapshot header of " + path));
  }
  std::vector<graph::SnapshotSectionOnDisk> table(header.section_count);
  if (header.section_count > 0 &&
      !file.read(reinterpret_cast<char*>(table.data()),
                 static_cast<std::streamsize>(sizeof(table[0]) *
                                              table.size()))) {
    return Fail(Status::IOError("cannot read snapshot section table"));
  }
  Result<graph::CsrSnapshotView> view = graph::CsrSnapshotView::Load(path);
  if (!view.ok()) return Fail(view.status());
  std::printf("emigre.csr.v1 snapshot: %zu nodes, %zu edges\n",
              view->NumNodes(), view->NumEdges());
  std::printf("node types:");
  for (size_t t = 0; t < view->NumNodeTypes(); ++t) {
    std::printf(" %s", view->NodeTypeName(
        static_cast<graph::NodeTypeId>(t)).c_str());
  }
  std::printf("\nedge types:");
  for (size_t t = 0; t < view->NumEdgeTypes(); ++t) {
    std::printf(" %s", view->EdgeTypeName(
        static_cast<graph::EdgeTypeId>(t)).c_str());
  }
  std::printf("\nlabels: %s\n", view->has_labels() ? "yes" : "no");
  std::printf("backing: %s, %llu bytes\n",
              view->mmap_backed() ? "mmap" : "read",
              static_cast<unsigned long long>(view->file_bytes()));
  std::printf("sections:\n");
  for (const graph::SnapshotSectionOnDisk& s : table) {
    std::printf("  %-16s offset=%-12llu bytes=%-12llu crc=%08x\n",
                std::string(SnapshotSectionName(s.id)).c_str(),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.bytes), s.payload_crc);
  }
  return 0;
}

/// Prints one decoded dataset row, tab-separated, prefixed by its index.
void PrintRow(uint64_t index, const std::vector<std::string>& fields) {
  std::printf("%llu", static_cast<unsigned long long>(index));
  for (const std::string& f : fields) std::printf("\t%s", f.c_str());
  std::printf("\n");
}

int RunInspect(const std::vector<std::string>& args) {
  FlagParser parser(
      "emigre inspect — peek into a binary dataset or CSR snapshot");
  parser.AddFlag("in", "emigre.bin.v1 dataset or emigre.csr.v1 snapshot", "");
  parser.AddFlag("section", "dataset section to read rows from", "");
  parser.AddFlag("head", "print the first N rows of --section", "0");
  parser.AddFlag("tail", "print the last N rows of --section", "0");
  parser.AddFlag("sample",
                 "print N uniformly sampled rows of --section (seeded "
                 "reservoir; deterministic for a given --seed and file)",
                 "0");
  parser.AddFlag("seed", "sampling seed", "20240416");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string in = parser.GetString("in").ValueOrDie();
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));
  std::error_code ec;
  if (!std::filesystem::exists(in, ec)) {
    return Fail(Status::IOError("cannot open: " + in));
  }
  if (graph::SniffCsrSnapshot(in)) return InspectSnapshot(in);
  if (!data::binfmt::SniffBinDataset(in)) {
    return Fail(Status::InvalidArgument(
        in + " is neither an emigre.bin.v1 dataset nor an emigre.csr.v1 "
             "snapshot"));
  }

  Result<data::binfmt::BinReader> reader = data::binfmt::BinReader::Open(in);
  if (!reader.ok()) return Fail(reader.status());
  std::string section = parser.GetString("section").ValueOrDie();
  if (section.empty()) {
    // Section stats: the directory is header-only, so this never touches
    // the payloads no matter how big the file is.
    std::printf("emigre.bin.v1 dataset: %zu sections\n",
                reader->sections().size());
    for (const data::binfmt::SectionInfo& s : reader->sections()) {
      std::printf("section %s: %llu rows, %zu columns, %llu payload bytes\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.row_count),
                  s.columns.size(),
                  static_cast<unsigned long long>(s.payload_bytes));
      for (const data::binfmt::ColumnInfo& c : s.columns) {
        std::printf("  %-12s %s%-5s %12llu values %14llu bytes\n",
                    c.name.c_str(), c.is_list ? "list<" : "",
                    (std::string(data::binfmt::DtypeName(c.dtype)) +
                     (c.is_list ? ">" : ""))
                        .c_str(),
                    static_cast<unsigned long long>(c.value_count),
                    static_cast<unsigned long long>(c.payload_bytes));
      }
    }
    return 0;
  }

  int64_t head = parser.GetInt("head").ValueOrDie();
  int64_t tail = parser.GetInt("tail").ValueOrDie();
  int64_t sample = parser.GetInt("sample").ValueOrDie();
  if ((head > 0) + (tail > 0) + (sample > 0) != 1) {
    return Fail(Status::InvalidArgument(
        "exactly one of --head/--tail/--sample must be positive"));
  }
  Result<size_t> sect = reader->FindSection(section);
  if (!sect.ok()) return Fail(sect.status());
  Result<data::binfmt::RowReader> rows =
      data::binfmt::RowReader::Open(reader.value(), sect.value());
  if (!rows.ok()) return Fail(rows.status());
  std::printf("#");
  for (const data::binfmt::ColumnInfo& c : rows->columns()) {
    std::printf("\t%s", c.name.c_str());
  }
  std::printf("\n");

  std::vector<std::string> fields;
  if (head > 0) {
    uint64_t index = 0;
    while (index < static_cast<uint64_t>(head) && rows->NextRow(&fields)) {
      PrintRow(index++, fields);
    }
  } else {
    // Tail keeps a ring of the last N rows; sample keeps a seeded
    // reservoir. Both must scan the whole section (single forward pass).
    const uint64_t n = static_cast<uint64_t>(tail > 0 ? tail : sample);
    std::vector<std::pair<uint64_t, std::vector<std::string>>> kept;
    Rng rng(static_cast<uint64_t>(parser.GetInt("seed").ValueOrDie()));
    uint64_t index = 0;
    while (rows->NextRow(&fields)) {
      if (kept.size() < n) {
        kept.emplace_back(index, fields);
      } else if (tail > 0) {
        kept[index % n] = {index, fields};
      } else {
        uint64_t j = static_cast<uint64_t>(
            rng.NextInt(0, static_cast<int64_t>(index)));
        if (j < n) kept[j] = {index, fields};
      }
      ++index;
    }
    std::sort(kept.begin(), kept.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [idx, row] : kept) PrintRow(idx, row);
  }
  if (!rows->status().ok()) return Fail(rows->status());
  return 0;
}

int RunBuildGraph(const std::vector<std::string>& args) {
  FlagParser parser("emigre build-graph — §6.1 preprocessing pipeline");
  parser.AddFlag("dataset", "dataset: CSV directory or emigre.bin.v1 file",
                 "");
  parser.AddFlag("format", "dataset container: auto | csv | bin", "auto");
  parser.AddFlag("out", "output graph file", "");
  parser.AddFlag("min-stars", "keep ratings strictly above this", "3");
  parser.AddFlag("hops", "neighborhood hops around sampled users (0=all)",
                 "4");
  parser.AddFlag("sample-users", "moderate/active users to sample", "100");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string dataset = parser.GetString("dataset").ValueOrDie();
  std::string out = parser.GetString("out").ValueOrDie();
  if (dataset.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--dataset and --out are required"));
  }

  Result<data::Dataset> ds = data::LoadDatasetAuto(
      dataset, parser.GetString("format").ValueOrDie());
  if (!ds.ok()) return Fail(ds.status());
  data::AmazonLiteOptions lite_opts;
  lite_opts.min_stars_exclusive =
      static_cast<int>(parser.GetInt("min-stars").ValueOrDie());
  lite_opts.neighborhood_hops =
      static_cast<size_t>(parser.GetInt("hops").ValueOrDie());
  lite_opts.sample_users =
      static_cast<size_t>(parser.GetInt("sample-users").ValueOrDie());
  Result<data::AmazonLiteGraph> lite =
      data::BuildAmazonLite(ds.value(), lite_opts);
  if (!lite.ok()) return Fail(lite.status());
  st = graph::SaveGraph(lite->graph, out);
  if (!st.ok()) return Fail(st);
  std::printf("graph: %zu nodes, %zu edges -> %s\n", lite->graph.NumNodes(),
              lite->graph.NumEdges(), out.c_str());
  std::printf("sampled evaluation users:");
  for (graph::NodeId u : lite->eval_users) std::printf(" %u", u);
  std::printf("\n");
  return 0;
}

int RunStats(const std::vector<std::string>& args) {
  FlagParser parser("emigre stats — degree statistics per node type");
  parser.AddFlag("graph", "graph file or CSR snapshot", "");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<graph::HinGraph> g =
      LoadHinGraphAny(parser.GetString("graph").ValueOrDie());
  if (!g.ok()) return Fail(g.status());
  std::printf("%zu nodes, %zu edges\n%s", g->NumNodes(), g->NumEdges(),
              graph::FormatDegreeStats(graph::ComputeDegreeStats(g.value()))
                  .c_str());
  return 0;
}

/// Body of `emigre recommend`, generic over the graph backing (HIN file or
/// mmap'd snapshot — the engines run on either unchanged).
template <typename G>
int RecommendOn(const G& g, const FlagParser& parser) {
  Result<explain::EmigreOptions> optsr = QueryOptionsFor(g);
  if (!optsr.ok()) return Fail(optsr.status());
  explain::EmigreOptions opts = std::move(optsr).value();
  Status st = ApplyEngineFlag(parser, &opts);
  if (!st.ok()) return Fail(st);
  int64_t user = parser.GetInt("user").ValueOrDie();
  if (user < 0 || !g.IsValidNode(static_cast<graph::NodeId>(user))) {
    return Fail(Status::InvalidArgument("--user must be a valid node id"));
  }
  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  explain::EmigreT<G> engine(g, opts);
  auto ranking = engine.CurrentRanking(static_cast<graph::NodeId>(user))
                     .TopN(static_cast<size_t>(
                         parser.GetInt("top").ValueOrDie()));
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("%2zu. [%u] %-24s %.6f\n", i + 1, ranking.at(i).item,
                g.DisplayName(ranking.at(i).item).c_str(),
                ranking.at(i).score);
  }
  return obs.Finish(0);
}

int RunRecommend(const std::vector<std::string>& args) {
  FlagParser parser("emigre recommend — a user's top-k list");
  parser.AddFlag("graph", "graph file or CSR snapshot", "");
  parser.AddFlag("user", "user node id", "-1");
  parser.AddFlag("top", "list length", "10");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string path = parser.GetString("graph").ValueOrDie();
  if (graph::SniffCsrSnapshot(path)) {
    Result<graph::CsrSnapshotView> view = graph::CsrSnapshotView::Load(path);
    if (!view.ok()) return Fail(view.status());
    return RecommendOn(view.value(), parser);
  }
  Result<graph::HinGraph> g = graph::LoadGraph(path);
  if (!g.ok()) return Fail(g.status());
  return RecommendOn(g.value(), parser);
}

/// Body of `emigre explain`, generic over the graph backing.
template <typename G>
int ExplainOn(const G& g, const FlagParser& parser) {
  Result<explain::EmigreOptions> optsr = QueryOptionsFor(g);
  if (!optsr.ok()) return Fail(optsr.status());
  explain::EmigreOptions opts = std::move(optsr).value();
  Status st = ApplyEngineFlag(parser, &opts);
  if (!st.ok()) return Fail(st);
  opts.test_threads =
      static_cast<size_t>(parser.GetInt("test-threads").ValueOrDie());
  graph::NodeId user =
      static_cast<graph::NodeId>(parser.GetInt("user").ValueOrDie());
  graph::NodeId item =
      static_cast<graph::NodeId>(parser.GetInt("item").ValueOrDie());

  explain::Heuristic heuristic;
  std::string h = parser.GetString("heuristic").ValueOrDie();
  if (h == "incremental") {
    heuristic = explain::Heuristic::kIncremental;
  } else if (h == "powerset") {
    heuristic = explain::Heuristic::kPowerset;
  } else if (h == "exhaustive") {
    heuristic = explain::Heuristic::kExhaustive;
  } else if (h == "brute") {
    heuristic = explain::Heuristic::kBruteForce;
  } else {
    return Fail(Status::InvalidArgument("unknown --heuristic " + h));
  }

  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  opts.query_log = obs.query_log();
  explain::EmigreT<G> engine(g, opts);
  explain::WhyNotQuestion q{user, item};
  std::string mode = parser.GetString("mode").ValueOrDie();
  Result<explain::Explanation> result =
      mode == "auto"
          ? engine.ExplainAuto(q, heuristic)
          : engine.Explain(q,
                           mode == "add" ? explain::Mode::kAdd
                                         : explain::Mode::kRemove,
                           heuristic);
  if (!result.ok()) return Fail(result.status());
  const explain::Explanation& e = result.value();
  if (!e.found) {
    std::printf("no explanation (%s)\n",
                std::string(FailureReasonName(e.failure)).c_str());
    // Meta-explanation for the failure (§6.4).
    auto space = e.mode == explain::Mode::kRemove
                     ? explain::BuildRemoveSearchSpace(
                           g, user, e.original_rec, item, opts)
                     : explain::BuildAddSearchSpace(
                           g, user, e.original_rec, item, opts);
    if (space.ok()) {
      std::printf("diagnosis: %s\n",
                  explain::DiagnoseFailure(g, space.value(), e, opts)
                      .message.c_str());
    }
    return obs.Finish(kExitNoExplanation);
  }
  std::printf("%s\n", explain::FormatExplanationSentence(g, e).c_str());
  std::printf("(%s mode, %zu action(s), %s heuristic, %zu TESTs, %.1f ms)\n",
              std::string(ModeName(e.mode)).c_str(), e.size(),
              std::string(HeuristicName(e.heuristic)).c_str(),
              e.tests_performed, e.seconds * 1e3);
  for (const auto& edge : e.edges) {
    std::printf("  %s (%s -> %s [%s])\n",
                e.mode == explain::Mode::kAdd ? "PERFORM" : "UNDO",
                g.DisplayName(edge.src).c_str(),
                g.DisplayName(edge.dst).c_str(),
                g.EdgeTypeName(edge.type).c_str());
  }
  return obs.Finish(0);
}

int RunExplain(const std::vector<std::string>& args) {
  FlagParser parser("emigre explain — answer a Why-Not question");
  parser.AddFlag("graph", "graph file or CSR snapshot", "");
  parser.AddFlag("user", "user node id", "-1");
  parser.AddFlag("item", "Why-Not item node id", "-1");
  parser.AddFlag("mode", "add | remove | auto", "auto");
  parser.AddFlag("heuristic",
                 "incremental | powerset | exhaustive | brute", "incremental");
  parser.AddFlag("test-threads",
                 "candidate-verification threads (1=serial, 0=all cores); "
                 "deterministic at any setting, see docs/parallelism.md",
                 "1");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string path = parser.GetString("graph").ValueOrDie();
  if (graph::SniffCsrSnapshot(path)) {
    Result<graph::CsrSnapshotView> view = graph::CsrSnapshotView::Load(path);
    if (!view.ok()) return Fail(view.status());
    return ExplainOn(view.value(), parser);
  }
  Result<graph::HinGraph> g = graph::LoadGraph(path);
  if (!g.ok()) return Fail(g.status());
  return ExplainOn(g.value(), parser);
}

int RunExperiment(const std::vector<std::string>& args) {
  FlagParser parser("emigre experiment — the §6.2 evaluation");
  parser.AddFlag("graph", "graph file", "");
  parser.AddFlag("out", "records CSV output path", "");
  parser.AddFlag("top", "recommendation list length per user", "10");
  parser.AddFlag("per-user", "Why-Not positions per user (0=all)", "3");
  parser.AddFlag("deadline", "per-attempt budget in seconds", "2.0");
  parser.AddFlag("threads", "scenario worker threads (0=all cores)", "0");
  parser.AddFlag("test-threads",
                 "candidate-verification threads per scenario worker "
                 "(1=serial, 0=all cores); the runner caps scenario workers "
                 "so the product stays within the machine",
                 "1");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  // The evaluation harness mutates per-method scratch graphs, so a
  // snapshot input is materialized once up front.
  Result<graph::HinGraph> gres =
      LoadHinGraphAny(parser.GetString("graph").ValueOrDie());
  if (!gres.ok()) return Fail(gres.status());
  const graph::HinGraph& g = gres.value();
  Result<explain::EmigreOptions> optsr = QueryOptionsFor(g);
  if (!optsr.ok()) return Fail(optsr.status());
  explain::EmigreOptions opts = std::move(optsr).value();
  st = ApplyEngineFlag(parser, &opts);
  if (!st.ok()) return Fail(st);
  opts.deadline_seconds = parser.GetDouble("deadline").ValueOrDie();
  opts.test_threads =
      static_cast<size_t>(parser.GetInt("test-threads").ValueOrDie());

  // Evaluation users: every user-typed node with at least one action.
  std::vector<graph::NodeId> users;
  graph::NodeTypeId user_type = g.FindNodeType("user");
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.NodeType(n) == user_type && g.OutDegree(n) > 0) {
      users.push_back(n);
    }
  }
  Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
      g, users, opts,
      static_cast<size_t>(parser.GetInt("top").ValueOrDie()),
      static_cast<size_t>(parser.GetInt("per-user").ValueOrDie()));
  if (!scenarios.ok()) return Fail(scenarios.status());
  std::printf("%zu users, %zu scenarios\n", users.size(), scenarios->size());

  eval::RunnerOptions run_opts;
  run_opts.num_threads =
      static_cast<size_t>(parser.GetInt("threads").ValueOrDie());
  run_opts.progress_every = 10;
  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  opts.query_log = obs.query_log();
  Result<eval::ExperimentResult> result = eval::RunExperiment(
      g, scenarios.value(), eval::PaperMethods(), opts, run_opts);
  if (!result.ok()) return Fail(result.status());

  std::vector<std::string> names;
  for (const auto& m : eval::PaperMethods()) names.push_back(m.name);
  auto aggregates = eval::Aggregate(result.value(), names);
  std::printf("%s\n%s\n%s\n", eval::FormatFigure4(aggregates).c_str(),
              eval::FormatFigure6(aggregates).c_str(),
              eval::FormatTable5(aggregates).c_str());

  std::string out = parser.GetString("out").ValueOrDie();
  if (!out.empty()) {
    st = eval::WriteRecordsCsv(result.value(), out);
    if (!st.ok()) return Fail(st);
    std::printf("records -> %s\n", out.c_str());
  }
  return obs.Finish(0);
}

int RunSelfCheck(const std::vector<std::string>& args) {
  FlagParser parser("emigre selfcheck — run the invariant validators");
  parser.AddFlag("graph", "graph file or CSR snapshot", "");
  parser.AddFlag("level", "off | basic | full", "full");
  parser.AddFlag("samples", "sampled sources/targets per PPR suite", "3");
  parser.AddFlag("edits", "random edge edits exercised", "3");
  parser.AddFlag("seed", "sampling seed", "20240416");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  Result<graph::HinGraph> gres =
      LoadHinGraphAny(parser.GetString("graph").ValueOrDie());
  if (!gres.ok()) return Fail(gres.status());
  const graph::HinGraph& g = gres.value();
  Result<explain::EmigreOptions> optsr = QueryOptionsFor(g);
  if (!optsr.ok()) return Fail(optsr.status());
  explain::EmigreOptions opts = std::move(optsr).value();
  st = ApplyEngineFlag(parser, &opts);
  if (!st.ok()) return Fail(st);

  check::SelfCheckOptions sc;
  std::string level = parser.GetString("level").ValueOrDie();
  if (!check::CheckLevelFromName(level, &sc.level)) {
    return Fail(Status::InvalidArgument("unknown --level " + level));
  }
  sc.num_samples =
      static_cast<size_t>(parser.GetInt("samples").ValueOrDie());
  sc.num_edits = static_cast<size_t>(parser.GetInt("edits").ValueOrDie());
  sc.seed = static_cast<uint64_t>(parser.GetInt("seed").ValueOrDie());

  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  Result<check::SelfCheckReport> report =
      check::RunSelfCheck(g, opts, sc);
  if (!report.ok()) return Fail(report.status());
  for (const std::string& line : report->lines) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("selfcheck (%s): %zu check(s), %zu violation(s)\n",
              std::string(check::CheckLevelName(sc.level)).c_str(),
              report->checks_run, report->violations);
  return obs.Finish(report->ok() ? 0 : 1);
}

int RunChaos(const std::vector<std::string>& args) {
  FlagParser parser(
      "emigre chaos — seeded fault-injection soak (docs/robustness.md)");
  parser.AddFlag("seeds", "number of independent fault schedules", "20");
  parser.AddFlag("base-seed", "seed of schedule 0", "20240416");
  parser.AddFlag("queries", "explain queries per schedule", "3");
  parser.AddFlag("users", "synthetic dataset users", "60");
  parser.AddFlag("items", "synthetic dataset items", "400");
  parser.AddFlag("test-threads",
                 "candidate-verification threads during the soak", "2");
  AddEngineFlag(&parser);
  AddObsFlags(&parser);
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  if (!fault::kFaultInjectionEnabled) {
    std::fprintf(stderr,
                 "warning: built without -DEMIGRE_FAULT_INJECTION=ON; fault "
                 "sites are compiled out, so this soak exercises only the "
                 "plain pipeline\n");
  }

  // The soak runs on a synthetic graph so it needs no input files.
  data::SyntheticAmazonOptions gen;
  gen.num_users = static_cast<size_t>(parser.GetInt("users").ValueOrDie());
  gen.num_items = static_cast<size_t>(parser.GetInt("items").ValueOrDie());
  gen.seed = static_cast<uint64_t>(parser.GetInt("base-seed").ValueOrDie());
  Result<data::Dataset> ds = data::GenerateSyntheticAmazon(gen);
  if (!ds.ok()) return Fail(ds.status());
  Result<data::AmazonLiteGraph> lite =
      data::BuildAmazonLite(ds.value(), data::AmazonLiteOptions{});
  if (!lite.ok()) return Fail(lite.status());

  explain::EmigreOptions opts;
  opts.rec.item_type = lite->graph.FindNodeType("item");
  for (const char* name : {"rated", "reviewed"}) {
    graph::EdgeTypeId t = lite->graph.FindEdgeType(name);
    if (t != graph::kInvalidEdgeType) opts.allowed_edge_types.push_back(t);
  }
  opts.add_edge_type = lite->graph.FindEdgeType("rated");
  opts.deadline_seconds = 2.0;
  st = ApplyEngineFlag(parser, &opts);
  if (!st.ok()) return Fail(st);

  ObsSession obs(parser);
  if (!obs.init_status().ok()) return Fail(obs.init_status());
  opts.query_log = obs.query_log();

  Result<std::vector<eval::Scenario>> scenarios = eval::GenerateScenarios(
      lite->graph, lite->eval_users, opts, /*top_k=*/5, /*max_per_user=*/2);
  if (!scenarios.ok()) return Fail(scenarios.status());

  eval::ChaosOptions chaos_opts;
  chaos_opts.base_seed =
      static_cast<uint64_t>(parser.GetInt("base-seed").ValueOrDie());
  chaos_opts.num_schedules =
      static_cast<size_t>(parser.GetInt("seeds").ValueOrDie());
  chaos_opts.queries_per_schedule =
      static_cast<size_t>(parser.GetInt("queries").ValueOrDie());
  chaos_opts.test_threads =
      static_cast<size_t>(parser.GetInt("test-threads").ValueOrDie());
  Result<eval::ChaosReport> report =
      eval::RunChaosSoak(lite->graph, scenarios.value(), opts, chaos_opts);
  if (!report.ok()) return Fail(report.status());

  std::printf(
      "chaos: %zu schedule(s), %zu query(ies), %zu fault(s) fired, %zu typed "
      "failure(s), %zu degraded, %zu explanation(s) found\n",
      report->schedules_run, report->queries_run, report->faults_fired,
      report->typed_failures, report->degraded_results,
      report->explanations_found);
  for (const std::string& v : report->violations) {
    std::fprintf(stderr, "violation: %s\n", v.c_str());
  }
  if (!report->ok()) {
    std::fprintf(stderr, "chaos soak FAILED: %zu violation(s)\n",
                 report->violations.size());
    return obs.Finish(kExitInternal);
  }
  std::printf("chaos soak passed\n");
  return obs.Finish(0);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) {
    // InvalidArgument (not IOError): a bench file the user pointed at but
    // that cannot be read is a usage error under the exit-code contract.
    return Status::InvalidArgument(StrFormat("cannot read %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int RunPerfGate(const std::vector<std::string>& args) {
  // Exit codes (asserted by tests/cli_smoke_test.sh): 0 within tolerances,
  // 1 regression / out-of-band drift, 2 usage (bad flags, unreadable or
  // mismatched inputs).
  FlagParser parser(
      "emigre perfgate — gate a bench run against its checked-in baseline");
  parser.AddFlag("baseline", "baseline emigre.bench.v1 JSON file", "");
  parser.AddFlag("current", "fresh emigre.bench.v1 JSON file", "");
  parser.AddFlag("config",
                 "emigre.perfgate.v1 tolerance config "
                 "(bench/baselines/perfgate.json)",
                 "");
  parser.AddFlag("counter-tol",
                 "relative tolerance for counts (-1 = config/default)", "-1");
  parser.AddFlag("latency-tol",
                 "relative tolerance for *seconds sums (-1 = config/default)",
                 "-1");
  Status st = parser.Parse(args);
  if (!st.ok()) return Fail(st);
  std::string baseline_path = parser.GetString("baseline").ValueOrDie();
  std::string current_path = parser.GetString("current").ValueOrDie();
  if (baseline_path.empty() || current_path.empty()) {
    return Fail(
        Status::InvalidArgument("--baseline and --current are required"));
  }

  obs::PerfGateOptions opts;
  std::string config_path = parser.GetString("config").ValueOrDie();
  if (!config_path.empty()) {
    Result<std::string> config_text = ReadFileToString(config_path);
    if (!config_text.ok()) return Fail(config_text.status());
    Result<obs::PerfGateOptions> parsed =
        obs::ParsePerfGateConfig(config_text.value());
    if (!parsed.ok()) return Fail(parsed.status());
    opts = std::move(parsed).value();
  }
  double counter_tol = parser.GetDouble("counter-tol").ValueOrDie();
  double latency_tol = parser.GetDouble("latency-tol").ValueOrDie();
  if (counter_tol >= 0.0) opts.counter_tol = counter_tol;
  if (latency_tol >= 0.0) opts.latency_tol = latency_tol;

  Result<std::string> baseline_text = ReadFileToString(baseline_path);
  if (!baseline_text.ok()) return Fail(baseline_text.status());
  Result<std::string> current_text = ReadFileToString(current_path);
  if (!current_text.ok()) return Fail(current_text.status());
  Result<obs::BenchDoc> baseline =
      obs::ParseBenchJson(baseline_text.value());
  if (!baseline.ok()) return Fail(baseline.status());
  Result<obs::BenchDoc> current = obs::ParseBenchJson(current_text.value());
  if (!current.ok()) return Fail(current.status());

  Result<obs::PerfGateReport> report =
      obs::ComparePerf(baseline.value(), current.value(), opts);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->Format().c_str());
  return report->pass ? 0 : kExitInternal;
}

int Main(int argc, char** argv) {
  const std::string usage =
      "usage: emigre <generate|convert|inspect|build-graph|stats|recommend|"
      "explain|experiment|selfcheck|chaos|perfgate> [flags]\n";
  if (argc < 2) {
    std::fprintf(stderr, "%s", usage.c_str());
    return kExitUsage;
  }
  std::string command = argv[1];
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) rest.emplace_back(argv[i]);

  if (command == "generate") return RunGenerate(rest);
  if (command == "convert") return RunConvert(rest);
  if (command == "inspect") return RunInspect(rest);
  if (command == "build-graph") return RunBuildGraph(rest);
  if (command == "stats") return RunStats(rest);
  if (command == "recommend") return RunRecommend(rest);
  if (command == "explain") return RunExplain(rest);
  if (command == "experiment") return RunExperiment(rest);
  if (command == "selfcheck") return RunSelfCheck(rest);
  if (command == "chaos") return RunChaos(rest);
  if (command == "perfgate") return RunPerfGate(rest);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(),
               usage.c_str());
  return kExitUsage;
}

}  // namespace
}  // namespace emigre::cli

int main(int argc, char** argv) { return emigre::cli::Main(argc, argv); }
