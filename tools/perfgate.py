#!/usr/bin/env python3
"""Benchmark perf-gate driver: compare fresh BENCH_*.json runs against the
checked-in baselines in bench/baselines/, or refresh those baselines.

The per-metric comparison itself lives in one place — `emigre perfgate`
(src/obs/perfgate.cc) — so the tolerances cannot drift between CI and local
runs; this script discovers the bench/baseline file pairs, drives the
binary once per pair, and aggregates the verdicts.

Usage:
  tools/perfgate.py --current DIR [--baselines DIR] [--emigre BIN]
                    [--config FILE] [--counter-tol X] [--latency-tol X]
                    [--report FILE]
  tools/perfgate.py --current DIR --update-baselines

Exit codes: 0 all benches within tolerances, 1 at least one regression or
missing baseline, 2 usage error (no bench files, binary not found).
"""

import argparse
import glob
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_emigre(explicit):
    if explicit:
        if os.path.isfile(explicit) and os.access(explicit, os.X_OK):
            return explicit
        return None
    for candidate in (
        os.path.join(REPO_ROOT, "build", "tools", "emigre"),
        os.path.join(REPO_ROOT, "build", "emigre"),
    ):
        if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
            return candidate
    return None


def bench_name(path):
    """BENCH_ppr_kernels.json -> ppr_kernels (trusting the filename only for
    pairing; the binary re-checks the embedded bench name and scale)."""
    base = os.path.basename(path)
    if base.startswith("BENCH_") and base.endswith(".json"):
        return base[len("BENCH_"):-len(".json")]
    return None


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--current", default=".",
                        help="directory with fresh BENCH_*.json files")
    parser.add_argument("--baselines",
                        default=os.path.join(REPO_ROOT, "bench", "baselines"),
                        help="directory with checked-in baselines")
    parser.add_argument("--emigre", default=None,
                        help="path to the emigre binary "
                             "(default: build/tools/emigre)")
    parser.add_argument("--config", default=None,
                        help="emigre.perfgate.v1 tolerance config "
                             "(default: <baselines>/perfgate.json when present)")
    parser.add_argument("--counter-tol", type=float, default=None,
                        help="override the count tolerance")
    parser.add_argument("--latency-tol", type=float, default=None,
                        help="override the *seconds tolerance")
    parser.add_argument("--report", default=None,
                        help="also write the aggregated report to FILE")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy the current BENCH_*.json files over the "
                             "baselines instead of comparing")
    args = parser.parse_args()

    current_files = sorted(glob.glob(os.path.join(args.current,
                                                  "BENCH_*.json")))
    current_files = [p for p in current_files if bench_name(p)]
    if not current_files:
        print(f"perfgate.py: no BENCH_*.json files in {args.current}",
              file=sys.stderr)
        return 2

    if args.update_baselines:
        os.makedirs(args.baselines, exist_ok=True)
        for path in current_files:
            # Refuse to baseline a file the comparator would reject later.
            with open(path) as f:
                doc = json.load(f)
            if doc.get("schema") != "emigre.bench.v1":
                print(f"perfgate.py: {path} is not emigre.bench.v1; skipped",
                      file=sys.stderr)
                continue
            dest = os.path.join(args.baselines, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"perfgate.py: baseline {dest} <- {path} "
                  f"(bench {doc.get('bench')}, scale {doc.get('scale')})")
        return 0

    emigre = find_emigre(args.emigre)
    if emigre is None:
        print("perfgate.py: emigre binary not found (build it, or pass "
              "--emigre)", file=sys.stderr)
        return 2

    config = args.config
    if config is None:
        default_config = os.path.join(args.baselines, "perfgate.json")
        if os.path.isfile(default_config):
            config = default_config

    report_lines = []
    failures = 0
    for path in current_files:
        name = bench_name(path)
        baseline = os.path.join(args.baselines, os.path.basename(path))
        if not os.path.isfile(baseline):
            failures += 1
            report_lines.append(
                f"== {name}: NO BASELINE ({baseline}) — refresh with "
                f"tools/perfgate.py --update-baselines ==")
            continue
        cmd = [emigre, "perfgate", "--baseline", baseline, "--current", path]
        if config:
            cmd += ["--config", config]
        if args.counter_tol is not None:
            cmd += ["--counter-tol", str(args.counter_tol)]
        if args.latency_tol is not None:
            cmd += ["--latency-tol", str(args.latency_tol)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        report_lines.append(f"== {name} ==")
        report_lines.append(proc.stdout.rstrip())
        if proc.returncode == 2:
            # A usage-level failure (mismatched scale, bad schema) is not a
            # perf regression, but the gate must not silently pass either.
            failures += 1
            report_lines.append(f"usage error: {proc.stderr.strip()}")
        elif proc.returncode != 0:
            failures += 1

    report = "\n".join(report_lines) + "\n"
    summary = (f"perfgate.py: {len(current_files)} bench(es), "
               f"{failures} failure(s)\n")
    sys.stdout.write(report + summary)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report + summary)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
