#!/bin/sh
# Developer pre-submit check: Debug build with ASan+UBSan, full test suite,
# then a ThreadSanitizer pass over the concurrency-sensitive tests (thread
# pool, PPR cache, observability registry, parallel tester).
#
#   tools/check.sh [build-dir] [tsan-build-dir]
#
# Build directories default to build-asan/ and build-tsan/ next to the
# source tree and are reused across runs (delete to force a clean
# configure). Set EMIGRE_SKIP_TSAN=1 to run only the ASan/UBSan stage.
set -e

SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$SRC_DIR/build-asan}"
TSAN_BUILD_DIR="${2:-$SRC_DIR/build-tsan}"
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all tests passed under ASan/UBSan"

if [ "${EMIGRE_SKIP_TSAN:-0}" = "1" ]; then
  echo "check.sh: EMIGRE_SKIP_TSAN=1, skipping ThreadSanitizer stage"
  exit 0
fi

# TSan is incompatible with ASan, so it gets its own build tree. Only the
# tests that exercise cross-thread state run here — the full suite under
# TSan is slow and the serial tests add no coverage.
TSAN_TESTS='util_thread_pool_test|ppr_cache_test|obs_metrics_test|obs_trace_test|explain_parallel_tester_test'

cmake -B "$TSAN_BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="thread"
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" \
  --target util_thread_pool_test ppr_cache_test obs_metrics_test \
           obs_trace_test explain_parallel_tester_test
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R "$TSAN_TESTS"
echo "check.sh: concurrency tests passed under TSan"
