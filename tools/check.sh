#!/bin/sh
# Developer pre-submit check: Debug build with ASan+UBSan, full test suite.
#
#   tools/check.sh [build-dir]
#
# The build directory defaults to build-asan/ next to the source tree and is
# reused across runs (delete it to force a clean configure).
set -e

SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$SRC_DIR/build-asan}"
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all tests passed under ASan/UBSan"
