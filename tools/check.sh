#!/bin/sh
# Developer pre-submit check: static analysis (tools/lint.py, the Clang
# -Wthread-safety capability analysis, clang-tidy), Debug build with
# ASan+UBSan, full test suite, then a ThreadSanitizer pass over the
# concurrency-sensitive tests (thread pool, PPR cache, observability
# registry, parallel tester).
#
#   tools/check.sh [build-dir] [tsan-build-dir] [chaos-build-dir]
#
# Build directories default to build-asan/, build-tsan/, build-chaos/ and
# build-analyze/ next to the source tree and are reused across runs
# (delete to force a clean configure). Set EMIGRE_SKIP_TSAN=1 to skip the
# TSan stage, EMIGRE_SKIP_CHAOS=1 to skip the fault-injection stage, and
# EMIGRE_SKIP_ANALYZE=1 to skip the thread-safety analysis stage. The
# analyze stage needs a Clang frontend: point EMIGRE_CLANGXX at one, or it
# is found on PATH; without one the stage is skipped with a notice — or
# fails hard when $CI is set, so the analysis can never silently rot out
# of CI.
set -e

SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$SRC_DIR/build-asan}"
TSAN_BUILD_DIR="${2:-$SRC_DIR/build-tsan}"
CHAOS_BUILD_DIR="${3:-$SRC_DIR/build-chaos}"
ANALYZE_BUILD_DIR="${EMIGRE_ANALYZE_BUILD_DIR:-$SRC_DIR/build-analyze}"
JOBS=$(nproc 2>/dev/null || echo 4)

# The concurrency-sensitive tests. This single list drives both the TSan
# build targets and the ctest selection below — keep it the only copy.
TSAN_TESTS="util_mutex_test util_thread_pool_test ppr_cache_test \
obs_metrics_test obs_trace_test explain_parallel_tester_test"

# Static analysis first: it is the cheapest stage and fails fastest.
python3 "$SRC_DIR/tools/lint.py"
echo "check.sh: tools/lint.py clean"

# Thread-safety capability analysis (docs/static_analysis.md): a Clang
# configure turns the GUARDED_BY/REQUIRES annotations into hard errors
# (-Werror=thread-safety, set by CMakeLists.txt for Clang) and registers
# the negative-compile tests that prove the analysis rejects seeded
# violations.
if [ "${EMIGRE_SKIP_ANALYZE:-0}" = "1" ]; then
  echo "check.sh: EMIGRE_SKIP_ANALYZE=1, skipping thread-safety analysis"
else
  CLANGXX="${EMIGRE_CLANGXX:-}"
  if [ -z "$CLANGXX" ]; then
    for candidate in clang++ clang++-18 clang++-17 clang++-16 clang++-15 \
        clang++-14; do
      if command -v "$candidate" >/dev/null 2>&1; then
        CLANGXX="$candidate"
        break
      fi
    done
  fi
  if [ -z "$CLANGXX" ]; then
    if [ -n "${CI:-}" ]; then
      echo "check.sh: FATAL: no clang++ found and CI is set —" \
           "the thread-safety analysis must run in CI" >&2
      exit 1
    fi
    echo "check.sh: notice: no clang++ found, skipping thread-safety" \
         "analysis (set EMIGRE_CLANGXX to enable)"
  else
    cmake -B "$ANALYZE_BUILD_DIR" -S "$SRC_DIR" \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_COMPILER="$CLANGXX"
    cmake --build "$ANALYZE_BUILD_DIR" -j "$JOBS"
    ctest --test-dir "$ANALYZE_BUILD_DIR" --output-on-failure -j "$JOBS" \
      -R "^negcompile_"
    echo "check.sh: thread-safety analysis clean ($CLANGXX)"
  fi
fi

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="address;undefined"
# The tidy target uses the compilation database of whichever build tree
# runs it; it degrades to a notice when clang-tidy is not installed.
cmake --build "$BUILD_DIR" --target tidy
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all tests passed under ASan/UBSan"

if [ "${EMIGRE_SKIP_TSAN:-0}" = "1" ]; then
  echo "check.sh: EMIGRE_SKIP_TSAN=1, skipping ThreadSanitizer stage"
  exit 0
fi

# TSan is incompatible with ASan, so it gets its own build tree. Only the
# tests that exercise cross-thread state run here — the full suite under
# TSan is slow and the serial tests add no coverage.
TSAN_REGEX=$(echo "$TSAN_TESTS" | tr -s ' ' '|')

cmake -B "$TSAN_BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="thread"
# shellcheck disable=SC2086  # word splitting is the point
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target $TSAN_TESTS
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R "^($TSAN_REGEX)\$"
echo "check.sh: concurrency tests passed under TSan"

if [ "${EMIGRE_SKIP_CHAOS:-0}" = "1" ]; then
  echo "check.sh: EMIGRE_SKIP_CHAOS=1, skipping fault-injection stage"
  exit 0
fi

# Fault-injection stage (docs/robustness.md): compile every
# EMIGRE_FAULT_POINT site in, run the suite with the sites live, then
# replay the fixed-seed chaos soak through the CLI.
cmake -B "$CHAOS_BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Release \
  -DEMIGRE_FAULT_INJECTION=ON
cmake --build "$CHAOS_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$CHAOS_BUILD_DIR" --output-on-failure -j "$JOBS"
"$CHAOS_BUILD_DIR/tools/emigre" chaos --seeds 20 --base-seed 20240416
echo "check.sh: chaos soak passed with fault injection live"
