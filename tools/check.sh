#!/bin/sh
# Developer pre-submit check: static analysis (tools/lint.py + clang-tidy),
# Debug build with ASan+UBSan, full test suite, then a ThreadSanitizer pass
# over the concurrency-sensitive tests (thread pool, PPR cache,
# observability registry, parallel tester).
#
#   tools/check.sh [build-dir] [tsan-build-dir] [chaos-build-dir]
#
# Build directories default to build-asan/, build-tsan/ and build-chaos/
# next to the source tree and are reused across runs (delete to force a
# clean configure). Set EMIGRE_SKIP_TSAN=1 to skip the TSan stage and
# EMIGRE_SKIP_CHAOS=1 to skip the fault-injection stage.
set -e

SRC_DIR=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$SRC_DIR/build-asan}"
TSAN_BUILD_DIR="${2:-$SRC_DIR/build-tsan}"
CHAOS_BUILD_DIR="${3:-$SRC_DIR/build-chaos}"
JOBS=$(nproc 2>/dev/null || echo 4)

# The concurrency-sensitive tests. This single list drives both the TSan
# build targets and the ctest selection below — keep it the only copy.
TSAN_TESTS="util_thread_pool_test ppr_cache_test obs_metrics_test \
obs_trace_test explain_parallel_tester_test"

# Static analysis first: it is the cheapest stage and fails fastest.
python3 "$SRC_DIR/tools/lint.py"
echo "check.sh: tools/lint.py clean"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="address;undefined"
# The tidy target uses the compilation database of whichever build tree
# runs it; it degrades to a notice when clang-tidy is not installed.
cmake --build "$BUILD_DIR" --target tidy
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: all tests passed under ASan/UBSan"

if [ "${EMIGRE_SKIP_TSAN:-0}" = "1" ]; then
  echo "check.sh: EMIGRE_SKIP_TSAN=1, skipping ThreadSanitizer stage"
  exit 0
fi

# TSan is incompatible with ASan, so it gets its own build tree. Only the
# tests that exercise cross-thread state run here — the full suite under
# TSan is slow and the serial tests add no coverage.
TSAN_REGEX=$(echo "$TSAN_TESTS" | tr -s ' ' '|')

cmake -B "$TSAN_BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DEMIGRE_SANITIZE="thread"
# shellcheck disable=SC2086  # word splitting is the point
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target $TSAN_TESTS
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R "^($TSAN_REGEX)\$"
echo "check.sh: concurrency tests passed under TSan"

if [ "${EMIGRE_SKIP_CHAOS:-0}" = "1" ]; then
  echo "check.sh: EMIGRE_SKIP_CHAOS=1, skipping fault-injection stage"
  exit 0
fi

# Fault-injection stage (docs/robustness.md): compile every
# EMIGRE_FAULT_POINT site in, run the suite with the sites live, then
# replay the fixed-seed chaos soak through the CLI.
cmake -B "$CHAOS_BUILD_DIR" -S "$SRC_DIR" \
  -DCMAKE_BUILD_TYPE=Release \
  -DEMIGRE_FAULT_INJECTION=ON
cmake --build "$CHAOS_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$CHAOS_BUILD_DIR" --output-on-failure -j "$JOBS"
"$CHAOS_BUILD_DIR/tools/emigre" chaos --seeds 20 --base-seed 20240416
echo "check.sh: chaos soak passed with fault injection live"
