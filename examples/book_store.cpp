// The paper's motivating example (Figures 1 and 2): a graph book
// recommendation system where Paul asks "Why not Harry Potter?".
//
// Walks through:
//   * the initial PPR ranking,
//   * a Remove-mode Why-Not explanation ("had you not read ..."),
//   * an Add-mode Why-Not explanation ("had you read ..."),
//   * the PRINCE contrast: a Why explanation of the *existing*
//     recommendation, whose replacement item is generally NOT the item the
//     user asked about (paper Fig. 2).
//
// Run: ./build/examples/book_store

#include <cstdio>
#include <string>

#include "explain/emigre.h"
#include "explain/prince.h"
#include "graph/hin_graph.h"
#include "recsys/recommender.h"

namespace {

using emigre::explain::Emigre;
using emigre::explain::EmigreOptions;
using emigre::explain::Explanation;
using emigre::explain::Heuristic;
using emigre::explain::Mode;
using emigre::explain::WhyNotQuestion;
using emigre::graph::HinGraph;
using emigre::graph::NodeId;

struct BookStore {
  HinGraph g;
  emigre::graph::NodeTypeId item_type;
  emigre::graph::EdgeTypeId rated;
  NodeId paul = 0;
  NodeId harry_potter = 0;
};

BookStore Build() {
  BookStore s;
  HinGraph& g = s.g;
  auto user_type = g.RegisterNodeType("user");
  s.item_type = g.RegisterNodeType("item");
  auto category_type = g.RegisterNodeType("category");
  s.rated = g.RegisterEdgeType("rated");
  auto follows = g.RegisterEdgeType("follows");
  auto belongs = g.RegisterEdgeType("belongs-to");

  s.paul = g.AddNode(user_type, "Paul");
  NodeId alice = g.AddNode(user_type, "Alice");
  NodeId bob = g.AddNode(user_type, "Bob");
  NodeId carol = g.AddNode(user_type, "Carol");

  s.harry_potter = g.AddNode(s.item_type, "Harry Potter");
  NodeId lotr = g.AddNode(s.item_type, "The Lord of the Rings");
  NodeId python = g.AddNode(s.item_type, "Python");
  NodeId c_lang = g.AddNode(s.item_type, "C");
  NodeId candide = g.AddNode(s.item_type, "Candide");
  NodeId alchemist = g.AddNode(s.item_type, "The Alchemist");
  NodeId hobbit = g.AddNode(s.item_type, "The Hobbit");

  NodeId fantasy = g.AddNode(category_type, "Fantasy");
  NodeId programming = g.AddNode(category_type, "Programming");
  NodeId classics = g.AddNode(category_type, "Classics");

  auto rate = [&](NodeId u, NodeId i) {
    g.AddBidirectional(u, i, s.rated).CheckOK();
  };
  auto in_category = [&](NodeId i, NodeId c) {
    g.AddBidirectional(i, c, belongs).CheckOK();
  };
  in_category(s.harry_potter, fantasy);
  in_category(lotr, fantasy);
  in_category(hobbit, fantasy);
  in_category(python, programming);
  in_category(c_lang, programming);
  in_category(candide, classics);
  in_category(alchemist, classics);

  // Alice reads fantasy and classics; Bob reads programming; Carol reads
  // fantasy. Paul has read Candide and C so far, and follows Alice and Bob.
  rate(alice, s.harry_potter);
  rate(alice, lotr);
  rate(alice, hobbit);
  rate(alice, candide);
  rate(bob, python);
  rate(bob, c_lang);
  rate(bob, alchemist);
  rate(carol, s.harry_potter);
  rate(carol, hobbit);
  rate(s.paul, candide);
  rate(s.paul, c_lang);
  g.AddEdge(s.paul, alice, follows).CheckOK();
  g.AddEdge(s.paul, bob, follows).CheckOK();
  return s;
}

void PrintExplanation(const HinGraph& g, const Explanation& e) {
  if (!e.found) {
    std::printf("  -> no explanation in %s mode (%s)\n",
                std::string(ModeName(e.mode)).c_str(),
                std::string(FailureReasonName(e.failure)).c_str());
    return;
  }
  std::printf("  -> \"Had you %s",
              e.mode == Mode::kRemove ? "NOT interacted with"
                                      : "interacted with");
  for (size_t i = 0; i < e.edges.size(); ++i) {
    std::printf("%s %s", i == 0 ? "" : (i + 1 == e.edges.size() ? " and" :
                                                                   ","),
                g.DisplayName(e.edges[i].dst).c_str());
  }
  std::printf(", your top recommendation would be %s\"\n",
              g.DisplayName(e.new_rec).c_str());
  std::printf("     (%zu action(s), %s heuristic, %zu TESTs, %.1f ms)\n",
              e.size(), std::string(HeuristicName(e.heuristic)).c_str(),
              e.tests_performed, e.seconds * 1e3);
}

}  // namespace

int main() {
  BookStore store = Build();
  const HinGraph& g = store.g;

  EmigreOptions opts;
  opts.rec.item_type = store.item_type;
  opts.allowed_edge_types = {store.rated};  // privacy: user-item actions only
  opts.add_edge_type = store.rated;

  Emigre engine(g, opts);
  auto ranking = engine.CurrentRanking(store.paul);
  std::printf("Paul's top-5 recommendation list:\n");
  for (size_t i = 0; i < ranking.size() && i < 5; ++i) {
    std::printf("  %zu. %-22s %.4f\n", i + 1,
                g.DisplayName(ranking.at(i).item).c_str(),
                ranking.at(i).score);
  }
  NodeId rec = ranking.Top();
  std::printf("\nPaul is recommended '%s' and asks: \"Why not %s?\"\n\n",
              g.DisplayName(rec).c_str(),
              g.DisplayName(store.harry_potter).c_str());

  WhyNotQuestion question{store.paul, store.harry_potter};

  std::printf("[Remove mode] searching Paul's past actions (Fig. 1a):\n");
  auto removal = engine.Explain(question, Mode::kRemove,
                                Heuristic::kPowerset);
  removal.status().CheckOK();
  PrintExplanation(g, removal.value());

  std::printf("\n[Add mode] searching actions Paul could take (Fig. 1b):\n");
  auto addition = engine.Explain(question, Mode::kAdd,
                                 Heuristic::kIncremental);
  addition.status().CheckOK();
  PrintExplanation(g, addition.value());

  // --- The PRINCE contrast (paper Fig. 2). ---------------------------------
  std::printf(
      "\n[PRINCE] a Why explanation of the existing recommendation:\n");
  emigre::explain::PrinceOptions prince_opts;
  prince_opts.emigre = opts;
  auto prince = emigre::explain::RunPrince(g, store.paul, prince_opts);
  prince.status().CheckOK();
  if (prince->found) {
    std::printf("  -> \"Had you not interacted with");
    for (size_t i = 0; i < prince->actions.size(); ++i) {
      std::printf("%s %s", i == 0 ? "" : ",",
                  g.DisplayName(prince->actions[i].dst).c_str());
    }
    std::printf(", you would have been recommended %s\"\n",
                g.DisplayName(prince->replacement).c_str());
    if (prince->replacement != store.harry_potter) {
      std::printf(
          "  Note: the replacement is %s, not %s — a Why explanation does "
          "not answer Paul's Why-Not question (paper §1, Fig. 2).\n",
          g.DisplayName(prince->replacement).c_str(),
          g.DisplayName(store.harry_potter).c_str());
    }
  } else {
    std::printf("  -> PRINCE found no counterfactual for the top-1.\n");
  }
  return 0;
}
