// Quickstart: build a tiny heterogeneous graph, run the PPR recommender,
// ask a Why-Not question, and print the counterfactual explanation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "explain/emigre.h"
#include "graph/hin_graph.h"
#include "recsys/recommender.h"

using emigre::explain::Emigre;
using emigre::explain::EmigreOptions;
using emigre::explain::Explanation;
using emigre::explain::Heuristic;
using emigre::explain::Mode;
using emigre::explain::WhyNotQuestion;
using emigre::graph::HinGraph;
using emigre::graph::NodeId;

int main() {
  // --- 1. Model your data as a Heterogeneous Information Network. ----------
  HinGraph g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  auto rated = g.RegisterEdgeType("rated");

  NodeId ana = g.AddNode(user_type, "Ana");
  NodeId ben = g.AddNode(user_type, "Ben");
  NodeId cam = g.AddNode(user_type, "Cam");
  NodeId guitar = g.AddNode(item_type, "Guitar");
  NodeId ukulele = g.AddNode(item_type, "Ukulele");
  NodeId drums = g.AddNode(item_type, "Drums");
  NodeId sticks = g.AddNode(item_type, "Drumsticks");

  // Interactions are bidirectional relations in this dataset.
  g.AddBidirectional(ben, guitar, rated).CheckOK();
  g.AddBidirectional(ben, ukulele, rated).CheckOK();
  g.AddBidirectional(cam, drums, rated).CheckOK();
  g.AddBidirectional(cam, sticks, rated).CheckOK();
  g.AddBidirectional(ana, guitar, rated).CheckOK();

  // --- 2. Configure the recommender and the explainer. ---------------------
  EmigreOptions opts;
  opts.rec.item_type = item_type;          // what is recommendable
  opts.allowed_edge_types = {rated};       // the action vocabulary T_e
  opts.add_edge_type = rated;              // type of suggested new actions

  Emigre engine(g, opts);

  // --- 3. What does Ana get, and what does she ask about? ------------------
  auto ranking = engine.CurrentRanking(ana);
  std::printf("Ana's recommendation list:\n");
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("  %zu. %-12s score=%.4f\n", i + 1,
                g.DisplayName(ranking.at(i).item).c_str(),
                ranking.at(i).score);
  }

  NodeId wni = drums;
  std::printf("\nAna asks: \"Why not %s?\"\n", g.DisplayName(wni).c_str());

  // --- 4. Ask EMiGRe. -------------------------------------------------------
  auto result = engine.ExplainAuto(WhyNotQuestion{ana, wni});
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const Explanation& e = result.value();
  if (!e.found) {
    std::printf("No explanation found (%s)\n",
                std::string(FailureReasonName(e.failure)).c_str());
    return 0;
  }
  std::printf("\nWhy-Not explanation (%s mode, %s heuristic):\n",
              std::string(ModeName(e.mode)).c_str(),
              std::string(HeuristicName(e.heuristic)).c_str());
  for (const auto& edge : e.edges) {
    std::printf("  %s the action (%s -> %s)\n",
                e.mode == Mode::kAdd ? "PERFORM" : "UNDO",
                g.DisplayName(edge.src).c_str(),
                g.DisplayName(edge.dst).c_str());
  }
  std::printf("... and your top recommendation becomes %s.\n",
              g.DisplayName(e.new_rec).c_str());
  return 0;
}
