// A system-developer debugging session (the paper's expert-user story, §1):
// sweep every Why-Not question for a sampled user over the synthetic
// Amazon-style dataset, and for each failure print the §6.4
// meta-explanation (cold start / popular item / out of scope) plus what the
// combined Add+Remove mode (the paper's future-work extension) can rescue.
//
// Run: ./build/examples/debug_session

#include <cstdio>
#include <string>

#include "data/amazon_lite.h"
#include "data/synthetic_amazon.h"
#include "explain/combined.h"
#include "explain/emigre.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "recsys/recommender.h"

using namespace emigre;  // example code; the library itself never does this

int main() {
  // --- A small synthetic marketplace. ---------------------------------------
  data::SyntheticAmazonOptions gen;
  gen.num_users = 60;
  gen.num_items = 500;
  gen.num_categories = 12;
  gen.min_actions_per_user = 8;
  gen.max_actions_per_user = 40;
  auto dataset = data::GenerateSyntheticAmazon(gen);
  dataset.status().CheckOK();

  data::AmazonLiteOptions lite_opts;
  lite_opts.sample_users = 5;
  lite_opts.min_user_actions = 8;
  auto lite = data::BuildAmazonLite(dataset.value(), lite_opts);
  lite.status().CheckOK();
  const graph::HinGraph& g = lite->graph;
  std::printf("Graph: %zu nodes, %zu edges; %zu sampled users\n\n",
              g.NumNodes(), g.NumEdges(), lite->eval_users.size());

  explain::EmigreOptions opts;
  opts.rec.item_type = lite->item_type;
  opts.allowed_edge_types = {lite->rated_type, lite->reviewed_type};
  opts.add_edge_type = lite->rated_type;
  opts.rec.ppr.epsilon = 1e-7;   // scaled-down graph: relaxed push epsilon
  opts.deadline_seconds = 2.0;   // keep the session interactive

  explain::Emigre engine(g, opts);
  graph::NodeId user = lite->eval_users.front();
  auto ranking = engine.CurrentRanking(user).TopN(6);
  std::printf("Debugging user %s; top-%zu list:\n",
              g.DisplayName(user).c_str(), ranking.size());
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf("  %zu. %s (%.5f)\n", i + 1,
                g.DisplayName(ranking.at(i).item).c_str(),
                ranking.at(i).score);
  }

  // --- Why-Not every item below the top. ------------------------------------
  for (size_t rank = 1; rank < ranking.size(); ++rank) {
    graph::NodeId wni = ranking.at(rank).item;
    explain::WhyNotQuestion q{user, wni};
    std::printf("\n== Why not '%s' (rank %zu)?\n",
                g.DisplayName(wni).c_str(), rank + 1);

    for (explain::Mode mode :
         {explain::Mode::kRemove, explain::Mode::kAdd}) {
      auto result =
          engine.Explain(q, mode, explain::Heuristic::kIncremental);
      result.status().CheckOK();
      const explain::Explanation& e = result.value();
      if (e.found) {
        std::printf("  [%s] explanation of size %zu:",
                    std::string(ModeName(mode)).c_str(), e.size());
        for (const auto& edge : e.edges) {
          std::printf(" %s", g.DisplayName(edge.dst).c_str());
        }
        std::printf("\n");
        continue;
      }
      // Failure: produce the §6.4 meta-explanation.
      auto space =
          mode == explain::Mode::kRemove
              ? explain::BuildRemoveSearchSpace(g, user, e.original_rec,
                                                wni, opts)
              : explain::BuildAddSearchSpace(g, user, e.original_rec, wni,
                                             opts);
      space.status().CheckOK();
      explain::MetaExplanation meta =
          explain::DiagnoseFailure(g, space.value(), e, opts);
      std::printf("  [%s] FAILED — %s\n",
                  std::string(ModeName(mode)).c_str(), meta.message.c_str());

      if (meta.reason == explain::FailureReason::kSearchExhausted &&
          mode == explain::Mode::kAdd) {
        auto combined = explain::RunCombinedIncremental(g, q, opts);
        combined.status().CheckOK();
        if (combined->found) {
          std::printf(
              "      combined add/remove mode rescues it: +%zu/-%zu "
              "actions\n",
              combined->added.size(), combined->removed.size());
        } else {
          std::printf("      combined add/remove mode fails too (%s)\n",
                      std::string(
                          FailureReasonName(combined->failure))
                          .c_str());
        }
      }
    }
  }
  return 0;
}
