// End-to-end reproduction pipeline on the synthetic Amazon substitute:
//   generate dataset -> export CSVs -> build the Amazon-Lite HIN (§6.1
//   preprocessing) -> print Table-4-style degree statistics -> run a small
//   instance of the paper's experimental design (§6.2) -> print per-method
//   success rates and dump the raw records CSV.
//
// Run: ./build/examples/amazon_pipeline [output_dir]

#include <cstdio>
#include <filesystem>
#include <string>

#include "data/amazon_lite.h"
#include "data/csv_io.h"
#include "data/synthetic_amazon.h"
#include "eval/methods.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "eval/scenario.h"
#include "graph/stats.h"

using namespace emigre;  // example code; the library itself never does this

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "/tmp/emigre_pipeline";
  std::filesystem::create_directories(out_dir);

  // --- 1. Synthesize the dataset (substitute for the withdrawn Amazon
  //        Customer Review dump; see DESIGN.md §2). -------------------------
  data::SyntheticAmazonOptions gen;
  gen.num_users = 80;
  gen.num_items = 700;
  gen.num_categories = 16;
  auto dataset = data::GenerateSyntheticAmazon(gen);
  dataset.status().CheckOK();
  std::printf("dataset: %zu users, %zu items, %zu ratings, %zu reviews\n",
              dataset->users.size(), dataset->items.size(),
              dataset->ratings.size(), dataset->reviews.size());

  data::SaveDatasetCsv(dataset.value(), out_dir).CheckOK();
  std::printf("CSV export -> %s/{categories,items,users,ratings,reviews}"
              ".csv\n\n", out_dir.c_str());

  // --- 2. Paper §6.1 preprocessing. -----------------------------------------
  data::AmazonLiteOptions lite_opts;
  lite_opts.sample_users = 12;
  auto lite = data::BuildAmazonLite(dataset.value(), lite_opts);
  lite.status().CheckOK();
  std::printf("Amazon-Lite graph: %zu nodes, %zu edges\n",
              lite->graph.NumNodes(), lite->graph.NumEdges());
  std::printf("%s\n",
              graph::FormatDegreeStats(
                  graph::ComputeDegreeStats(lite->graph))
                  .c_str());

  // --- 3. The experimental design of §6.2, scaled down. ---------------------
  explain::EmigreOptions opts;
  opts.rec.item_type = lite->item_type;
  opts.allowed_edge_types = {lite->rated_type, lite->reviewed_type};
  opts.add_edge_type = lite->rated_type;
  opts.rec.ppr.epsilon = 1e-7;
  opts.deadline_seconds = 1.0;

  auto scenarios = eval::GenerateScenarios(lite->graph, lite->eval_users,
                                           opts, /*top_k=*/5,
                                           /*max_per_user=*/2);
  scenarios.status().CheckOK();
  std::printf("scenarios: %zu (user, Why-Not item) pairs\n\n",
              scenarios->size());

  std::vector<eval::MethodSpec> methods = eval::PaperMethods();
  eval::RunnerOptions run_opts;
  run_opts.num_threads = 0;  // all cores
  auto result = eval::RunExperiment(lite->graph, scenarios.value(), methods,
                                    opts, run_opts);
  result.status().CheckOK();

  std::vector<std::string> names;
  for (const auto& m : methods) names.push_back(m.name);
  auto aggregates = eval::Aggregate(result.value(), names);
  std::printf("%s\n", eval::FormatFigure4(aggregates).c_str());
  std::printf("%s\n", eval::FormatFigure6(aggregates).c_str());
  std::printf("%s\n", eval::FormatTable5(aggregates).c_str());

  std::string records = out_dir + "/records.csv";
  eval::WriteRecordsCsv(result.value(), records).CheckOK();
  std::printf("raw records -> %s\n", records.c_str());
  return 0;
}
