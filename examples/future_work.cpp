// The paper's §7 future-work directions, implemented:
//
//   * weight-based Why-Not explanations — "You should have rated book A
//     with 5 stars to get recommended book B";
//   * coarser-granularity Why-Not questions — "Why no Fantasy book?"
//     (a category instead of a single item);
//   * the combined Add/Remove mode (also §6.4 "Out Of Scope Item").
//
// Run: ./build/examples/future_work

#include <cstdio>

#include "explain/combined.h"
#include "explain/emigre.h"
#include "explain/group.h"
#include "explain/weighted.h"
#include "graph/hin_graph.h"
#include "recsys/recommender.h"

using namespace emigre;  // example code; the library itself never does this

namespace {

struct Shop {
  graph::HinGraph g;
  explain::EmigreOptions opts;
  graph::NodeId paul, fantasy;
  graph::NodeId harry_potter;
};

Shop Build() {
  Shop s;
  graph::HinGraph& g = s.g;
  auto user_type = g.RegisterNodeType("user");
  auto item_type = g.RegisterNodeType("item");
  auto category_type = g.RegisterNodeType("category");
  auto rated = g.RegisterEdgeType("rated");
  auto belongs = g.RegisterEdgeType("belongs-to");

  s.paul = g.AddNode(user_type, "Paul");
  graph::NodeId alice = g.AddNode(user_type, "Alice");
  graph::NodeId bob = g.AddNode(user_type, "Bob");
  s.harry_potter = g.AddNode(item_type, "Harry Potter");
  graph::NodeId lotr = g.AddNode(item_type, "The Lord of the Rings");
  graph::NodeId python = g.AddNode(item_type, "Python");
  graph::NodeId c_lang = g.AddNode(item_type, "C");
  graph::NodeId candide = g.AddNode(item_type, "Candide");
  s.fantasy = g.AddNode(category_type, "Fantasy");
  graph::NodeId programming = g.AddNode(category_type, "Programming");
  graph::NodeId classics = g.AddNode(category_type, "Classics");

  auto rate = [&](graph::NodeId u, graph::NodeId i, double stars) {
    g.AddBidirectional(u, i, rated, stars).CheckOK();
  };
  auto cat = [&](graph::NodeId i, graph::NodeId c) {
    g.AddBidirectional(i, c, belongs).CheckOK();
  };
  cat(s.harry_potter, s.fantasy);
  cat(lotr, s.fantasy);
  cat(python, programming);
  cat(c_lang, programming);
  cat(candide, classics);
  rate(alice, s.harry_potter, 5);
  rate(alice, lotr, 4);
  rate(alice, candide, 3);
  rate(bob, python, 5);
  rate(bob, c_lang, 4);
  // Paul loves C (5 stars) and merely liked Candide (2): the rating
  // weights drive his recommendation toward Programming.
  rate(s.paul, c_lang, 5);
  rate(s.paul, candide, 2);

  s.opts.rec.item_type = item_type;
  s.opts.allowed_edge_types = {rated};
  s.opts.add_edge_type = rated;
  // Suggested new actions are enthusiastic: "had you rated it 5 stars".
  s.opts.add_edge_weight = 5.0;
  return s;
}

}  // namespace

int main() {
  Shop shop = Build();
  const graph::HinGraph& g = shop.g;
  explain::Emigre engine(g, shop.opts);

  auto ranking = engine.CurrentRanking(shop.paul);
  std::printf("Paul's ranking:");
  for (size_t i = 0; i < ranking.size(); ++i) {
    std::printf(" %zu.%s", i + 1,
                g.DisplayName(ranking.at(i).item).c_str());
  }
  std::printf("\n\n");

  // --- 1. Weight-based explanation. ------------------------------------------
  std::printf("[Weights] \"Why not %s?\" answered with star ratings:\n",
              g.DisplayName(shop.harry_potter).c_str());
  auto weighted = explain::RunWeightedIncremental(
      g, explain::WhyNotQuestion{shop.paul, shop.harry_potter}, shop.opts);
  weighted.status().CheckOK();
  if (weighted->found) {
    for (const auto& adj : weighted->adjustments) {
      std::printf("  had you rated %-12s %.1f stars instead of %.1f\n",
                  g.DisplayName(adj.edge.dst).c_str(), adj.new_weight,
                  adj.old_weight);
    }
    std::printf("  ... your recommendation would be %s\n",
                g.DisplayName(weighted->new_rec).c_str());
  } else {
    std::printf("  no weight-only explanation (%s)\n",
                std::string(FailureReasonName(weighted->failure)).c_str());
  }

  // --- 2. Category-granularity question. --------------------------------------
  std::printf("\n[Category] \"Why no %s book?\":\n",
              g.DisplayName(shop.fantasy).c_str());
  explain::WhyNotGroupQuestion group_q;
  group_q.user = shop.paul;
  group_q.items = explain::ItemsOfCategory(
      g, shop.fantasy, g.FindEdgeType("belongs-to"),
      g.FindNodeType("item"));
  auto group = explain::ExplainGroup(engine, group_q, explain::Mode::kAdd,
                                     explain::Heuristic::kIncremental);
  group.status().CheckOK();
  if (group->found) {
    std::printf("  the category member promoted: %s; do this:\n",
                g.DisplayName(group->promoted_item).c_str());
    for (const auto& e : group->explanation.edges) {
      std::printf("    interact with %s\n", g.DisplayName(e.dst).c_str());
    }
  } else {
    std::printf("  no member of the category can be promoted "
                "(%zu attempted, %zu skipped)\n",
                group->attempts, group->skipped.size());
  }

  // --- 3. Combined add/remove mode. --------------------------------------------
  std::printf("\n[Combined] mixing past and new actions:\n");
  auto combined = explain::RunCombinedIncremental(
      g, explain::WhyNotQuestion{shop.paul, shop.harry_potter}, shop.opts);
  combined.status().CheckOK();
  if (combined->found) {
    for (const auto& e : combined->removed) {
      std::printf("  undo    (Paul, %s)\n", g.DisplayName(e.dst).c_str());
    }
    for (const auto& e : combined->added) {
      std::printf("  perform (Paul, %s)\n", g.DisplayName(e.dst).c_str());
    }
    std::printf("  ... and %s becomes the recommendation.\n",
                g.DisplayName(combined->new_rec).c_str());
  } else {
    std::printf("  combined mode found nothing (%s)\n",
                std::string(FailureReasonName(combined->failure)).c_str());
  }
  return 0;
}
