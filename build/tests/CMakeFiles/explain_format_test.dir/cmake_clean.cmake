file(REMOVE_RECURSE
  "CMakeFiles/explain_format_test.dir/explain_format_test.cc.o"
  "CMakeFiles/explain_format_test.dir/explain_format_test.cc.o.d"
  "explain_format_test"
  "explain_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
