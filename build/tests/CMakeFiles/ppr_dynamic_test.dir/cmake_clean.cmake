file(REMOVE_RECURSE
  "CMakeFiles/ppr_dynamic_test.dir/ppr_dynamic_test.cc.o"
  "CMakeFiles/ppr_dynamic_test.dir/ppr_dynamic_test.cc.o.d"
  "ppr_dynamic_test"
  "ppr_dynamic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
