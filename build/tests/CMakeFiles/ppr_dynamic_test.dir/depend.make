# Empty dependencies file for ppr_dynamic_test.
# This may be replaced when dependencies are built.
