file(REMOVE_RECURSE
  "CMakeFiles/ppr_cache_test.dir/ppr_cache_test.cc.o"
  "CMakeFiles/ppr_cache_test.dir/ppr_cache_test.cc.o.d"
  "ppr_cache_test"
  "ppr_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
