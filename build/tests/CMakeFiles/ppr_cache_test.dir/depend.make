# Empty dependencies file for ppr_cache_test.
# This may be replaced when dependencies are built.
