file(REMOVE_RECURSE
  "CMakeFiles/explain_internal_test.dir/explain_internal_test.cc.o"
  "CMakeFiles/explain_internal_test.dir/explain_internal_test.cc.o.d"
  "explain_internal_test"
  "explain_internal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_internal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
