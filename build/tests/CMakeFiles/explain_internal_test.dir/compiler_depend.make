# Empty compiler generated dependencies file for explain_internal_test.
# This may be replaced when dependencies are built.
