file(REMOVE_RECURSE
  "CMakeFiles/recsys_test.dir/recsys_test.cc.o"
  "CMakeFiles/recsys_test.dir/recsys_test.cc.o.d"
  "recsys_test"
  "recsys_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
