# Empty compiler generated dependencies file for ppr_power_test.
# This may be replaced when dependencies are built.
