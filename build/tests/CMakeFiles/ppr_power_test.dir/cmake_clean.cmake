file(REMOVE_RECURSE
  "CMakeFiles/ppr_power_test.dir/ppr_power_test.cc.o"
  "CMakeFiles/ppr_power_test.dir/ppr_power_test.cc.o.d"
  "ppr_power_test"
  "ppr_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
