file(REMOVE_RECURSE
  "CMakeFiles/explain_search_space_test.dir/explain_search_space_test.cc.o"
  "CMakeFiles/explain_search_space_test.dir/explain_search_space_test.cc.o.d"
  "explain_search_space_test"
  "explain_search_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_search_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
