file(REMOVE_RECURSE
  "CMakeFiles/graph_overlay_test.dir/graph_overlay_test.cc.o"
  "CMakeFiles/graph_overlay_test.dir/graph_overlay_test.cc.o.d"
  "graph_overlay_test"
  "graph_overlay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_overlay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
