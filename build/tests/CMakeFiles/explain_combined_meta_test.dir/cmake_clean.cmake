file(REMOVE_RECURSE
  "CMakeFiles/explain_combined_meta_test.dir/explain_combined_meta_test.cc.o"
  "CMakeFiles/explain_combined_meta_test.dir/explain_combined_meta_test.cc.o.d"
  "explain_combined_meta_test"
  "explain_combined_meta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_combined_meta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
