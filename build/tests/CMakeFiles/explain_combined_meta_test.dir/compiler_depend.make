# Empty compiler generated dependencies file for explain_combined_meta_test.
# This may be replaced when dependencies are built.
