file(REMOVE_RECURSE
  "CMakeFiles/explain_fast_tester_test.dir/explain_fast_tester_test.cc.o"
  "CMakeFiles/explain_fast_tester_test.dir/explain_fast_tester_test.cc.o.d"
  "explain_fast_tester_test"
  "explain_fast_tester_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_fast_tester_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
