# Empty compiler generated dependencies file for explain_fast_tester_test.
# This may be replaced when dependencies are built.
