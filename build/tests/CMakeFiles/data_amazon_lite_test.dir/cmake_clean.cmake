file(REMOVE_RECURSE
  "CMakeFiles/data_amazon_lite_test.dir/data_amazon_lite_test.cc.o"
  "CMakeFiles/data_amazon_lite_test.dir/data_amazon_lite_test.cc.o.d"
  "data_amazon_lite_test"
  "data_amazon_lite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_amazon_lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
