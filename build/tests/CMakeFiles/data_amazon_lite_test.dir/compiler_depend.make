# Empty compiler generated dependencies file for data_amazon_lite_test.
# This may be replaced when dependencies are built.
