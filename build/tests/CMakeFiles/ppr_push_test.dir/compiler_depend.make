# Empty compiler generated dependencies file for ppr_push_test.
# This may be replaced when dependencies are built.
