file(REMOVE_RECURSE
  "CMakeFiles/ppr_push_test.dir/ppr_push_test.cc.o"
  "CMakeFiles/ppr_push_test.dir/ppr_push_test.cc.o.d"
  "ppr_push_test"
  "ppr_push_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_push_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
