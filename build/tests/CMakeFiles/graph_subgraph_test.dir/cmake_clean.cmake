file(REMOVE_RECURSE
  "CMakeFiles/graph_subgraph_test.dir/graph_subgraph_test.cc.o"
  "CMakeFiles/graph_subgraph_test.dir/graph_subgraph_test.cc.o.d"
  "graph_subgraph_test"
  "graph_subgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
