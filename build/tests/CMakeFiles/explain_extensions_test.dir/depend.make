# Empty dependencies file for explain_extensions_test.
# This may be replaced when dependencies are built.
