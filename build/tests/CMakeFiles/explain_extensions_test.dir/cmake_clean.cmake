file(REMOVE_RECURSE
  "CMakeFiles/explain_extensions_test.dir/explain_extensions_test.cc.o"
  "CMakeFiles/explain_extensions_test.dir/explain_extensions_test.cc.o.d"
  "explain_extensions_test"
  "explain_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
