file(REMOVE_RECURSE
  "libemigre_test_util.a"
)
