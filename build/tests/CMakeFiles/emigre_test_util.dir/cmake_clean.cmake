file(REMOVE_RECURSE
  "CMakeFiles/emigre_test_util.dir/test_util.cc.o"
  "CMakeFiles/emigre_test_util.dir/test_util.cc.o.d"
  "libemigre_test_util.a"
  "libemigre_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
