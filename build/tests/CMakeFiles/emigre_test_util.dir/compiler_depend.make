# Empty compiler generated dependencies file for emigre_test_util.
# This may be replaced when dependencies are built.
