file(REMOVE_RECURSE
  "CMakeFiles/explain_exhaustive_test.dir/explain_exhaustive_test.cc.o"
  "CMakeFiles/explain_exhaustive_test.dir/explain_exhaustive_test.cc.o.d"
  "explain_exhaustive_test"
  "explain_exhaustive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_exhaustive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
