# Empty dependencies file for explain_exhaustive_test.
# This may be replaced when dependencies are built.
