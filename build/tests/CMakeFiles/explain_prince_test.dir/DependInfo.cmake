
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/explain_prince_test.cc" "tests/CMakeFiles/explain_prince_test.dir/explain_prince_test.cc.o" "gcc" "tests/CMakeFiles/explain_prince_test.dir/explain_prince_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/emigre_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/emigre_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/emigre_data.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/emigre_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/recsys/CMakeFiles/emigre_recsys.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/emigre_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emigre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
