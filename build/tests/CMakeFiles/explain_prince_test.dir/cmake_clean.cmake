file(REMOVE_RECURSE
  "CMakeFiles/explain_prince_test.dir/explain_prince_test.cc.o"
  "CMakeFiles/explain_prince_test.dir/explain_prince_test.cc.o.d"
  "explain_prince_test"
  "explain_prince_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_prince_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
