file(REMOVE_RECURSE
  "CMakeFiles/explain_heuristics_test.dir/explain_heuristics_test.cc.o"
  "CMakeFiles/explain_heuristics_test.dir/explain_heuristics_test.cc.o.d"
  "explain_heuristics_test"
  "explain_heuristics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
