file(REMOVE_RECURSE
  "CMakeFiles/explain_emigre_test.dir/explain_emigre_test.cc.o"
  "CMakeFiles/explain_emigre_test.dir/explain_emigre_test.cc.o.d"
  "explain_emigre_test"
  "explain_emigre_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_emigre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
