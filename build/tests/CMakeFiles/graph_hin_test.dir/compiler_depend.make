# Empty compiler generated dependencies file for graph_hin_test.
# This may be replaced when dependencies are built.
