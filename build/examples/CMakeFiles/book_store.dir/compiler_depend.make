# Empty compiler generated dependencies file for book_store.
# This may be replaced when dependencies are built.
