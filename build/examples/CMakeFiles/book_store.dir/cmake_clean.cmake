file(REMOVE_RECURSE
  "CMakeFiles/book_store.dir/book_store.cpp.o"
  "CMakeFiles/book_store.dir/book_store.cpp.o.d"
  "book_store"
  "book_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/book_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
