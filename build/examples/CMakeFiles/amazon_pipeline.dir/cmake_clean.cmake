file(REMOVE_RECURSE
  "CMakeFiles/amazon_pipeline.dir/amazon_pipeline.cpp.o"
  "CMakeFiles/amazon_pipeline.dir/amazon_pipeline.cpp.o.d"
  "amazon_pipeline"
  "amazon_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amazon_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
