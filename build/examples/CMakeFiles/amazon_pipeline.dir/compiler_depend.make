# Empty compiler generated dependencies file for amazon_pipeline.
# This may be replaced when dependencies are built.
