# Empty compiler generated dependencies file for emigre_util.
# This may be replaced when dependencies are built.
