file(REMOVE_RECURSE
  "libemigre_util.a"
)
