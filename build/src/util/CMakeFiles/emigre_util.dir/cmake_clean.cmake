file(REMOVE_RECURSE
  "CMakeFiles/emigre_util.dir/csv.cc.o"
  "CMakeFiles/emigre_util.dir/csv.cc.o.d"
  "CMakeFiles/emigre_util.dir/flags.cc.o"
  "CMakeFiles/emigre_util.dir/flags.cc.o.d"
  "CMakeFiles/emigre_util.dir/logging.cc.o"
  "CMakeFiles/emigre_util.dir/logging.cc.o.d"
  "CMakeFiles/emigre_util.dir/rng.cc.o"
  "CMakeFiles/emigre_util.dir/rng.cc.o.d"
  "CMakeFiles/emigre_util.dir/status.cc.o"
  "CMakeFiles/emigre_util.dir/status.cc.o.d"
  "CMakeFiles/emigre_util.dir/string_util.cc.o"
  "CMakeFiles/emigre_util.dir/string_util.cc.o.d"
  "CMakeFiles/emigre_util.dir/table.cc.o"
  "CMakeFiles/emigre_util.dir/table.cc.o.d"
  "CMakeFiles/emigre_util.dir/thread_pool.cc.o"
  "CMakeFiles/emigre_util.dir/thread_pool.cc.o.d"
  "libemigre_util.a"
  "libemigre_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
