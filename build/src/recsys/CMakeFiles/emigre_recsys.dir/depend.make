# Empty dependencies file for emigre_recsys.
# This may be replaced when dependencies are built.
