file(REMOVE_RECURSE
  "libemigre_recsys.a"
)
