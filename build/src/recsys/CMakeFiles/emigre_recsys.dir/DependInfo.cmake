
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recsys/rec_list.cc" "src/recsys/CMakeFiles/emigre_recsys.dir/rec_list.cc.o" "gcc" "src/recsys/CMakeFiles/emigre_recsys.dir/rec_list.cc.o.d"
  "/root/repo/src/recsys/recwalk.cc" "src/recsys/CMakeFiles/emigre_recsys.dir/recwalk.cc.o" "gcc" "src/recsys/CMakeFiles/emigre_recsys.dir/recwalk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/emigre_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emigre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
