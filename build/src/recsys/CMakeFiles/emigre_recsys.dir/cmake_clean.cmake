file(REMOVE_RECURSE
  "CMakeFiles/emigre_recsys.dir/rec_list.cc.o"
  "CMakeFiles/emigre_recsys.dir/rec_list.cc.o.d"
  "CMakeFiles/emigre_recsys.dir/recwalk.cc.o"
  "CMakeFiles/emigre_recsys.dir/recwalk.cc.o.d"
  "libemigre_recsys.a"
  "libemigre_recsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_recsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
