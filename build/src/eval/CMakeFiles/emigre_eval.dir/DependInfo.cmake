
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/methods.cc" "src/eval/CMakeFiles/emigre_eval.dir/methods.cc.o" "gcc" "src/eval/CMakeFiles/emigre_eval.dir/methods.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/emigre_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/emigre_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/emigre_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/emigre_eval.dir/report.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/eval/CMakeFiles/emigre_eval.dir/runner.cc.o" "gcc" "src/eval/CMakeFiles/emigre_eval.dir/runner.cc.o.d"
  "/root/repo/src/eval/scenario.cc" "src/eval/CMakeFiles/emigre_eval.dir/scenario.cc.o" "gcc" "src/eval/CMakeFiles/emigre_eval.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explain/CMakeFiles/emigre_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/recsys/CMakeFiles/emigre_recsys.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/emigre_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emigre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
