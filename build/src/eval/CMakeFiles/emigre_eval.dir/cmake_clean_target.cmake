file(REMOVE_RECURSE
  "libemigre_eval.a"
)
