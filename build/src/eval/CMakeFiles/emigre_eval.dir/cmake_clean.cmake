file(REMOVE_RECURSE
  "CMakeFiles/emigre_eval.dir/methods.cc.o"
  "CMakeFiles/emigre_eval.dir/methods.cc.o.d"
  "CMakeFiles/emigre_eval.dir/metrics.cc.o"
  "CMakeFiles/emigre_eval.dir/metrics.cc.o.d"
  "CMakeFiles/emigre_eval.dir/report.cc.o"
  "CMakeFiles/emigre_eval.dir/report.cc.o.d"
  "CMakeFiles/emigre_eval.dir/runner.cc.o"
  "CMakeFiles/emigre_eval.dir/runner.cc.o.d"
  "CMakeFiles/emigre_eval.dir/scenario.cc.o"
  "CMakeFiles/emigre_eval.dir/scenario.cc.o.d"
  "libemigre_eval.a"
  "libemigre_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
