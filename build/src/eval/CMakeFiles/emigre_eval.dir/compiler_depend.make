# Empty compiler generated dependencies file for emigre_eval.
# This may be replaced when dependencies are built.
