
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/brute_force.cc" "src/explain/CMakeFiles/emigre_explain.dir/brute_force.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/brute_force.cc.o.d"
  "/root/repo/src/explain/combined.cc" "src/explain/CMakeFiles/emigre_explain.dir/combined.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/combined.cc.o.d"
  "/root/repo/src/explain/emigre.cc" "src/explain/CMakeFiles/emigre_explain.dir/emigre.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/emigre.cc.o.d"
  "/root/repo/src/explain/exhaustive.cc" "src/explain/CMakeFiles/emigre_explain.dir/exhaustive.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/exhaustive.cc.o.d"
  "/root/repo/src/explain/explanation.cc" "src/explain/CMakeFiles/emigre_explain.dir/explanation.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/explanation.cc.o.d"
  "/root/repo/src/explain/fast_tester.cc" "src/explain/CMakeFiles/emigre_explain.dir/fast_tester.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/fast_tester.cc.o.d"
  "/root/repo/src/explain/format.cc" "src/explain/CMakeFiles/emigre_explain.dir/format.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/format.cc.o.d"
  "/root/repo/src/explain/group.cc" "src/explain/CMakeFiles/emigre_explain.dir/group.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/group.cc.o.d"
  "/root/repo/src/explain/incremental.cc" "src/explain/CMakeFiles/emigre_explain.dir/incremental.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/incremental.cc.o.d"
  "/root/repo/src/explain/internal.cc" "src/explain/CMakeFiles/emigre_explain.dir/internal.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/internal.cc.o.d"
  "/root/repo/src/explain/meta.cc" "src/explain/CMakeFiles/emigre_explain.dir/meta.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/meta.cc.o.d"
  "/root/repo/src/explain/powerset.cc" "src/explain/CMakeFiles/emigre_explain.dir/powerset.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/powerset.cc.o.d"
  "/root/repo/src/explain/prince.cc" "src/explain/CMakeFiles/emigre_explain.dir/prince.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/prince.cc.o.d"
  "/root/repo/src/explain/search_space.cc" "src/explain/CMakeFiles/emigre_explain.dir/search_space.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/search_space.cc.o.d"
  "/root/repo/src/explain/tester.cc" "src/explain/CMakeFiles/emigre_explain.dir/tester.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/tester.cc.o.d"
  "/root/repo/src/explain/weighted.cc" "src/explain/CMakeFiles/emigre_explain.dir/weighted.cc.o" "gcc" "src/explain/CMakeFiles/emigre_explain.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/recsys/CMakeFiles/emigre_recsys.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/emigre_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emigre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
