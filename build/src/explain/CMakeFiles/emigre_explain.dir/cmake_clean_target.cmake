file(REMOVE_RECURSE
  "libemigre_explain.a"
)
