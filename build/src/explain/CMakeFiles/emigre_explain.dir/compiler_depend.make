# Empty compiler generated dependencies file for emigre_explain.
# This may be replaced when dependencies are built.
