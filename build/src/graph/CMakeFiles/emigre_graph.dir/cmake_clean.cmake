file(REMOVE_RECURSE
  "CMakeFiles/emigre_graph.dir/hin_graph.cc.o"
  "CMakeFiles/emigre_graph.dir/hin_graph.cc.o.d"
  "CMakeFiles/emigre_graph.dir/io.cc.o"
  "CMakeFiles/emigre_graph.dir/io.cc.o.d"
  "CMakeFiles/emigre_graph.dir/overlay.cc.o"
  "CMakeFiles/emigre_graph.dir/overlay.cc.o.d"
  "CMakeFiles/emigre_graph.dir/stats.cc.o"
  "CMakeFiles/emigre_graph.dir/stats.cc.o.d"
  "CMakeFiles/emigre_graph.dir/subgraph.cc.o"
  "CMakeFiles/emigre_graph.dir/subgraph.cc.o.d"
  "CMakeFiles/emigre_graph.dir/validate.cc.o"
  "CMakeFiles/emigre_graph.dir/validate.cc.o.d"
  "libemigre_graph.a"
  "libemigre_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
