
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/hin_graph.cc" "src/graph/CMakeFiles/emigre_graph.dir/hin_graph.cc.o" "gcc" "src/graph/CMakeFiles/emigre_graph.dir/hin_graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/emigre_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/emigre_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/overlay.cc" "src/graph/CMakeFiles/emigre_graph.dir/overlay.cc.o" "gcc" "src/graph/CMakeFiles/emigre_graph.dir/overlay.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/emigre_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/emigre_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/emigre_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/emigre_graph.dir/subgraph.cc.o.d"
  "/root/repo/src/graph/validate.cc" "src/graph/CMakeFiles/emigre_graph.dir/validate.cc.o" "gcc" "src/graph/CMakeFiles/emigre_graph.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emigre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
