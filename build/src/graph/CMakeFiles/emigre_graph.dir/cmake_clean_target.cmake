file(REMOVE_RECURSE
  "libemigre_graph.a"
)
