# Empty compiler generated dependencies file for emigre_graph.
# This may be replaced when dependencies are built.
