# Empty dependencies file for emigre_data.
# This may be replaced when dependencies are built.
