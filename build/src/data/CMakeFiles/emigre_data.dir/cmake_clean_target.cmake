file(REMOVE_RECURSE
  "libemigre_data.a"
)
