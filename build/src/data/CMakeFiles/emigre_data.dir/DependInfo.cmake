
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/amazon_lite.cc" "src/data/CMakeFiles/emigre_data.dir/amazon_lite.cc.o" "gcc" "src/data/CMakeFiles/emigre_data.dir/amazon_lite.cc.o.d"
  "/root/repo/src/data/csv_io.cc" "src/data/CMakeFiles/emigre_data.dir/csv_io.cc.o" "gcc" "src/data/CMakeFiles/emigre_data.dir/csv_io.cc.o.d"
  "/root/repo/src/data/embedding.cc" "src/data/CMakeFiles/emigre_data.dir/embedding.cc.o" "gcc" "src/data/CMakeFiles/emigre_data.dir/embedding.cc.o.d"
  "/root/repo/src/data/synthetic_amazon.cc" "src/data/CMakeFiles/emigre_data.dir/synthetic_amazon.cc.o" "gcc" "src/data/CMakeFiles/emigre_data.dir/synthetic_amazon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/emigre_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emigre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
