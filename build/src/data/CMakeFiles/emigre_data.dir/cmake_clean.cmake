file(REMOVE_RECURSE
  "CMakeFiles/emigre_data.dir/amazon_lite.cc.o"
  "CMakeFiles/emigre_data.dir/amazon_lite.cc.o.d"
  "CMakeFiles/emigre_data.dir/csv_io.cc.o"
  "CMakeFiles/emigre_data.dir/csv_io.cc.o.d"
  "CMakeFiles/emigre_data.dir/embedding.cc.o"
  "CMakeFiles/emigre_data.dir/embedding.cc.o.d"
  "CMakeFiles/emigre_data.dir/synthetic_amazon.cc.o"
  "CMakeFiles/emigre_data.dir/synthetic_amazon.cc.o.d"
  "libemigre_data.a"
  "libemigre_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
