file(REMOVE_RECURSE
  "CMakeFiles/emigre_bench_common.dir/common.cc.o"
  "CMakeFiles/emigre_bench_common.dir/common.cc.o.d"
  "libemigre_bench_common.a"
  "libemigre_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
