# Empty dependencies file for emigre_bench_common.
# This may be replaced when dependencies are built.
