file(REMOVE_RECURSE
  "libemigre_bench_common.a"
)
