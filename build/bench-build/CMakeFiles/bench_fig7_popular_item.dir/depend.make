# Empty dependencies file for bench_fig7_popular_item.
# This may be replaced when dependencies are built.
