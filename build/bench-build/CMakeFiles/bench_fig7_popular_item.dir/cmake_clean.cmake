file(REMOVE_RECURSE
  "../bench/bench_fig7_popular_item"
  "../bench/bench_fig7_popular_item.pdb"
  "CMakeFiles/bench_fig7_popular_item.dir/bench_fig7_popular_item.cc.o"
  "CMakeFiles/bench_fig7_popular_item.dir/bench_fig7_popular_item.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_popular_item.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
