# Empty compiler generated dependencies file for bench_fig6_explanation_size.
# This may be replaced when dependencies are built.
