# Empty compiler generated dependencies file for bench_fig5_relative_success.
# This may be replaced when dependencies are built.
