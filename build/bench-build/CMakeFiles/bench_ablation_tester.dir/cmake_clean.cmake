file(REMOVE_RECURSE
  "../bench/bench_ablation_tester"
  "../bench/bench_ablation_tester.pdb"
  "CMakeFiles/bench_ablation_tester.dir/bench_ablation_tester.cc.o"
  "CMakeFiles/bench_ablation_tester.dir/bench_ablation_tester.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
