# Empty compiler generated dependencies file for bench_ablation_tester.
# This may be replaced when dependencies are built.
