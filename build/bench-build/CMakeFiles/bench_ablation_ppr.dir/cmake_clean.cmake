file(REMOVE_RECURSE
  "../bench/bench_ablation_ppr"
  "../bench/bench_ablation_ppr.pdb"
  "CMakeFiles/bench_ablation_ppr.dir/bench_ablation_ppr.cc.o"
  "CMakeFiles/bench_ablation_ppr.dir/bench_ablation_ppr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
