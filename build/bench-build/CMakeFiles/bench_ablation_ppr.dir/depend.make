# Empty dependencies file for bench_ablation_ppr.
# This may be replaced when dependencies are built.
