# Empty compiler generated dependencies file for emigre_cli.
# This may be replaced when dependencies are built.
