file(REMOVE_RECURSE
  "CMakeFiles/emigre_cli.dir/emigre_cli.cc.o"
  "CMakeFiles/emigre_cli.dir/emigre_cli.cc.o.d"
  "emigre"
  "emigre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emigre_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
