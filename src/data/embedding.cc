#include "data/embedding.h"

#include <cmath>

#include "util/logging.h"

namespace emigre::data {

TopicEmbedder::TopicEmbedder(size_t dim, size_t num_topics, uint64_t seed)
    : dim_(dim) {
  EMIGRE_CHECK(dim > 0) << "embedding dim must be positive";
  Rng rng(seed);
  topics_.reserve(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    std::vector<float> v(dim);
    double norm_sq = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.NextGaussian());
      norm_sq += static_cast<double>(v[i]) * v[i];
    }
    double norm = std::sqrt(norm_sq);
    if (norm <= 0.0) norm = 1.0;
    for (float& x : v) x = static_cast<float>(x / norm);
    topics_.push_back(std::move(v));
  }
}

std::vector<float> TopicEmbedder::Embed(size_t topic, double noise,
                                        Rng& rng) const {
  const std::vector<float>& base = topics_.at(topic);
  std::vector<float> v(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    v[i] = base[i] + static_cast<float>(noise * rng.NextGaussian());
  }
  return v;
}

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace emigre::data
