#include "data/amazon_lite.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "data/embedding.h"
#include "graph/subgraph.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emigre::data {

namespace {

using graph::HinGraph;
using graph::NodeId;

/// Adds an edge in one or both directions per the pipeline's convention.
Status Link(HinGraph* g, NodeId a, NodeId b, graph::EdgeTypeId type,
            double weight, bool bidirectional) {
  if (bidirectional) return g->AddBidirectional(a, b, type, weight);
  return g->AddEdge(a, b, type, weight);
}

}  // namespace

Result<AmazonLiteGraph> BuildAmazonLite(const Dataset& ds,
                                        const AmazonLiteOptions& opts) {
  AmazonLiteGraph out;
  HinGraph full;

  out.user_type = full.RegisterNodeType("user");
  out.item_type = full.RegisterNodeType("item");
  out.review_type = full.RegisterNodeType("review");
  out.category_type = full.RegisterNodeType("category");

  out.rated_type = full.RegisterEdgeType("rated");
  out.reviewed_type = full.RegisterEdgeType("reviewed");
  out.has_review_type = full.RegisterEdgeType("has-review");
  out.belongs_to_type = full.RegisterEdgeType("belongs-to");
  out.similar_type = full.RegisterEdgeType("similar-review");

  // --- Nodes -------------------------------------------------------------------
  std::vector<NodeId> user_nodes(ds.users.size());
  std::vector<NodeId> item_nodes(ds.items.size());
  std::vector<NodeId> category_nodes(ds.categories.size());
  for (const User& u : ds.users) {
    user_nodes[u.id] = full.AddNode(out.user_type, u.name);
  }
  for (const Item& i : ds.items) {
    item_nodes[i.id] = full.AddNode(out.item_type, i.name);
  }
  for (const Category& c : ds.categories) {
    category_nodes[c.id] = full.AddNode(out.category_type, c.name);
  }

  // --- Good-ratings filter + rated edges ----------------------------------------
  // Track kept (user, item) pairs so reviews on filtered-out interactions
  // are dropped with them.
  std::unordered_set<uint64_t> kept_pairs;
  auto pair_key = [](UserId u, ItemId i) {
    return (static_cast<uint64_t>(u) << 32) | i;
  };
  for (const Rating& r : ds.ratings) {
    if (r.stars <= opts.min_stars_exclusive) continue;
    kept_pairs.insert(pair_key(r.user, r.item));
    EMIGRE_RETURN_IF_ERROR(Link(&full, user_nodes[r.user],
                                item_nodes[r.item], out.rated_type, 1.0,
                                opts.bidirectional));
  }

  // --- Reviews: nodes, reviewed + has-review edges -------------------------------
  std::vector<NodeId> review_nodes(ds.reviews.size(), graph::kInvalidNode);
  std::vector<const Review*> kept_reviews;
  for (const Review& review : ds.reviews) {
    if (kept_pairs.count(pair_key(review.user, review.item)) == 0) continue;
    NodeId rn = full.AddNode(out.review_type,
                             StrFormat("review-%05u", review.id));
    review_nodes[review.id] = rn;
    kept_reviews.push_back(&review);
    EMIGRE_RETURN_IF_ERROR(Link(&full, user_nodes[review.user],
                                item_nodes[review.item], out.reviewed_type,
                                1.0, opts.bidirectional));
    EMIGRE_RETURN_IF_ERROR(Link(&full, item_nodes[review.item], rn,
                                out.has_review_type, 1.0,
                                opts.bidirectional));
  }

  // --- belongs-to edges -----------------------------------------------------------
  for (const Item& item : ds.items) {
    EMIGRE_RETURN_IF_ERROR(Link(&full, item_nodes[item.id],
                                category_nodes[item.category],
                                out.belongs_to_type, 1.0,
                                opts.bidirectional));
  }

  // --- Review–review similarity links ("enriched the data set with
  // review-review links representing the similarity between each pair of
  // reviews", weighted by embedding cosine). Top-k per review keeps the
  // review degree profile close to Table 4. --------------------------------------
  if (opts.max_similar_per_review > 0 &&
      opts.review_similarity_threshold < 1.0) {
    struct SimPair {
      size_t a, b;  // indices into kept_reviews
      double cos;
    };
    std::vector<std::vector<SimPair>> best(kept_reviews.size());
    for (size_t a = 0; a < kept_reviews.size(); ++a) {
      for (size_t b = a + 1; b < kept_reviews.size(); ++b) {
        double cos = CosineSimilarity(kept_reviews[a]->embedding,
                                      kept_reviews[b]->embedding);
        if (cos < opts.review_similarity_threshold) continue;
        best[a].push_back(SimPair{a, b, cos});
        best[b].push_back(SimPair{a, b, cos});
      }
    }
    std::unordered_set<uint64_t> emitted;
    for (size_t i = 0; i < best.size(); ++i) {
      auto& list = best[i];
      std::sort(list.begin(), list.end(),
                [](const SimPair& x, const SimPair& y) {
                  if (x.cos != y.cos) return x.cos > y.cos;
                  if (x.a != y.a) return x.a < y.a;
                  return x.b < y.b;
                });
      if (list.size() > opts.max_similar_per_review) {
        list.resize(opts.max_similar_per_review);
      }
      for (const SimPair& p : list) {
        uint64_t key = (static_cast<uint64_t>(p.a) << 32) | p.b;
        if (!emitted.insert(key).second) continue;
        NodeId na = review_nodes[kept_reviews[p.a]->id];
        NodeId nb = review_nodes[kept_reviews[p.b]->id];
        EMIGRE_RETURN_IF_ERROR(
            Link(&full, na, nb, out.similar_type, p.cos,
                 opts.bidirectional));
      }
    }
  }

  // --- Moderate/active user sampling ----------------------------------------------
  // "Actions" = user–item interactions kept after the ratings filter.
  std::vector<NodeId> moderate_users;
  for (const User& u : ds.users) {
    NodeId n = user_nodes[u.id];
    size_t actions = 0;
    for (const graph::Edge& e : full.OutEdges(n)) {
      if (e.type == out.rated_type || e.type == out.reviewed_type) ++actions;
    }
    if (actions >= opts.min_user_actions &&
        actions <= opts.max_user_actions) {
      moderate_users.push_back(n);
    }
  }
  Rng rng(opts.sample_seed);
  std::vector<size_t> picked = rng.SampleWithoutReplacement(
      moderate_users.size(),
      std::min(opts.sample_users, moderate_users.size()));
  std::sort(picked.begin(), picked.end());
  std::vector<NodeId> sampled;
  sampled.reserve(picked.size());
  for (size_t idx : picked) sampled.push_back(moderate_users[idx]);

  // --- k-hop neighborhood restriction -----------------------------------------------
  if (opts.neighborhood_hops == 0 || sampled.empty()) {
    out.graph = std::move(full);
    out.eval_users = std::move(sampled);
    return out;
  }

  EMIGRE_ASSIGN_OR_RETURN(
      graph::Subgraph lite,
      graph::ExtractNeighborhood(full, sampled, opts.neighborhood_hops));
  out.graph = std::move(lite.graph);
  out.eval_users.reserve(sampled.size());
  for (NodeId s : sampled) out.eval_users.push_back(lite.old_to_new[s]);
  return out;
}

}  // namespace emigre::data
