#include "data/binfmt.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <limits>

#include "fault/fault.h"
#include "util/string_util.h"

namespace emigre::data::binfmt {

namespace {

/// Upper bound on section/column name lengths — a corrupt length prefix
/// must not drive a multi-gigabyte allocation.
constexpr uint32_t kMaxNameLen = 1u << 16;

/// Chunk size for CRC sweeps and temp-file copies.
constexpr size_t kCopyChunk = 256u << 10;

void PutU32(std::string* buf, uint32_t v) {
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutBytes(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}

bool ReadExact(std::ifstream& in, void* dst, size_t n) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  return static_cast<size_t>(in.gcount()) == n && !in.bad();
}

}  // namespace

std::string_view DtypeName(Dtype dtype) {
  switch (dtype) {
    case Dtype::kU8: return "u8";
    case Dtype::kU16: return "u16";
    case Dtype::kU32: return "u32";
    case Dtype::kU64: return "u64";
    case Dtype::kI32: return "i32";
    case Dtype::kF32: return "f32";
    case Dtype::kF64: return "f64";
    case Dtype::kStr: return "str";
  }
  return "?";
}

size_t DtypeWidth(Dtype dtype) {
  switch (dtype) {
    case Dtype::kU8: return 1;
    case Dtype::kU16: return 2;
    case Dtype::kU32: return 4;
    case Dtype::kU64: return 8;
    case Dtype::kI32: return 4;
    case Dtype::kF32: return 4;
    case Dtype::kF64: return 8;
    case Dtype::kStr: return 0;
  }
  return 0;
}

bool SniffBinDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char magic[8] = {};
  if (!ReadExact(in, magic, sizeof(magic))) return false;
  return std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

// --- Writer ------------------------------------------------------------------

/// Per-column payload accumulator: an in-memory buffer that spills to a
/// temporary file once it crosses the writer's threshold, with the CRC and
/// element count folded in on the fly.
struct BinWriter::ColumnSink {
  std::string buffer;
  std::ofstream spill;
  std::string spill_path;
  bool spilled = false;
  uint64_t payload_bytes = 0;
  uint64_t value_count = 0;
  uint64_t cells = 0;
  Crc32 crc;

  [[nodiscard]] Status Append(const void* p, size_t n, size_t threshold) {
    crc.Update(p, n);
    payload_bytes += n;
    buffer.append(static_cast<const char*>(p), n);
    if (buffer.size() >= threshold) {
      if (!spilled) {
        spill.open(spill_path, std::ios::binary | std::ios::trunc);
        if (!spill.is_open()) {
          return Status::IOError("cannot open spill file: " + spill_path);
        }
        spilled = true;
      }
      spill.write(buffer.data(),
                  static_cast<std::streamsize>(buffer.size()));
      if (!spill.good()) {
        return Status::IOError("spill write failed: " + spill_path);
      }
      buffer.clear();
    }
    return Status::OK();
  }
};

/// One open (or ended) section: its declared schema, per-column sinks and
/// row bookkeeping.
struct BinWriter::SectionState {
  std::string name;
  std::vector<ColumnSpec> specs;
  std::vector<std::unique_ptr<ColumnSink>> sinks;
  uint64_t row_count = 0;
  bool open = true;
};

BinWriter::BinWriter(const std::string& path, size_t spill_threshold_bytes)
    : path_(path),
      spill_threshold_(spill_threshold_bytes),
      out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for writing: " + path);
    return;
  }
  // Placeholder header; Finish() patches the section count and CRC.
  HeaderOnDisk header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.endian = kEndianTag;
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (!out_.good()) status_ = Status::IOError("header write failed: " + path);
}

BinWriter::~BinWriter() {
  for (const auto& section : sections_) {
    if (!section) continue;
    for (const auto& sink : section->sinks) {
      if (sink && sink->spilled) {
        if (sink->spill.is_open()) sink->spill.close();
        std::remove(sink->spill_path.c_str());
      }
    }
  }
}

Result<size_t> BinWriter::BeginSection(std::string_view name,
                                       std::vector<ColumnSpec> columns) {
  EMIGRE_RETURN_IF_ERROR(status_);
  if (finished_) {
    return status_ = Status::FailedPrecondition("writer already finished");
  }
  if (columns.empty()) {
    return status_ = Status::InvalidArgument("section needs >= 1 column");
  }
  for (const ColumnSpec& spec : columns) {
    if (DtypeWidth(spec.dtype) == 0 && spec.dtype != Dtype::kStr) {
      return status_ = Status::InvalidArgument("bad dtype in column spec");
    }
    if (spec.is_list && spec.dtype == Dtype::kStr) {
      return status_ = Status::InvalidArgument(
                 "list<str> columns are not supported");
    }
  }
  auto section = std::make_unique<SectionState>();
  section->name = std::string(name);
  section->specs = std::move(columns);
  const size_t handle = sections_.size();
  for (size_t i = 0; i < section->specs.size(); ++i) {
    auto sink = std::make_unique<ColumnSink>();
    sink->spill_path = path_ + ".s" + StrFormat("%zu", handle) + ".c" +
                       StrFormat("%zu", i) + ".tmp";
    section->sinks.push_back(std::move(sink));
  }
  sections_.push_back(std::move(section));
  return handle;
}

Status BinWriter::AppendCell(size_t sect, size_t col, Dtype dtype,
                             bool is_list, const void* data, size_t bytes,
                             uint64_t elements) {
  EMIGRE_RETURN_IF_ERROR(status_);
  if (sect >= sections_.size() || !sections_[sect]->open) {
    return status_ = Status::FailedPrecondition("Append to a closed section");
  }
  SectionState& section = *sections_[sect];
  if (col >= section.specs.size()) {
    return status_ = Status::InvalidArgument(
               StrFormat("column index %zu out of range", col));
  }
  const ColumnSpec& spec = section.specs[col];
  if (spec.dtype != dtype || spec.is_list != is_list) {
    return status_ = Status::InvalidArgument(
               "cell type mismatch for column \"" + spec.name + "\"");
  }
  ColumnSink& sink = *section.sinks[col];
  if (sink.cells != section.row_count) {
    return status_ = Status::FailedPrecondition(
               "column \"" + spec.name + "\" already has a cell in this row");
  }
  if (is_list || dtype == Dtype::kStr) {
    if (elements > std::numeric_limits<uint32_t>::max()) {
      return status_ = Status::InvalidArgument("cell too large");
    }
    const uint32_t count = static_cast<uint32_t>(elements);
    EMIGRE_RETURN_IF_ERROR(
        status_ = sink.Append(&count, sizeof(count), spill_threshold_));
  }
  EMIGRE_RETURN_IF_ERROR(status_ = sink.Append(data, bytes, spill_threshold_));
  sink.value_count += elements;
  ++sink.cells;
  return Status::OK();
}

Status BinWriter::AppendU8(size_t sect, size_t col, uint8_t v) {
  return AppendCell(sect, col, Dtype::kU8, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendU16(size_t sect, size_t col, uint16_t v) {
  return AppendCell(sect, col, Dtype::kU16, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendU32(size_t sect, size_t col, uint32_t v) {
  return AppendCell(sect, col, Dtype::kU32, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendU64(size_t sect, size_t col, uint64_t v) {
  return AppendCell(sect, col, Dtype::kU64, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendI32(size_t sect, size_t col, int32_t v) {
  return AppendCell(sect, col, Dtype::kI32, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendF32(size_t sect, size_t col, float v) {
  return AppendCell(sect, col, Dtype::kF32, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendF64(size_t sect, size_t col, double v) {
  return AppendCell(sect, col, Dtype::kF64, false, &v, sizeof(v), 1);
}
Status BinWriter::AppendStr(size_t sect, size_t col, std::string_view s) {
  return AppendCell(sect, col, Dtype::kStr, false, s.data(), s.size(),
                    s.size());
}
Status BinWriter::AppendListU32(size_t sect, size_t col, const uint32_t* v,
                                size_t n) {
  return AppendCell(sect, col, Dtype::kU32, true, v, n * sizeof(*v), n);
}
Status BinWriter::AppendListF32(size_t sect, size_t col, const float* v,
                                size_t n) {
  return AppendCell(sect, col, Dtype::kF32, true, v, n * sizeof(*v), n);
}
Status BinWriter::AppendListF64(size_t sect, size_t col, const double* v,
                                size_t n) {
  return AppendCell(sect, col, Dtype::kF64, true, v, n * sizeof(*v), n);
}

Status BinWriter::EndRow(size_t sect) {
  EMIGRE_RETURN_IF_ERROR(status_);
  if (sect >= sections_.size() || !sections_[sect]->open) {
    return status_ = Status::FailedPrecondition("EndRow on a closed section");
  }
  SectionState& section = *sections_[sect];
  for (size_t i = 0; i < section.sinks.size(); ++i) {
    if (section.sinks[i]->cells != section.row_count + 1) {
      return status_ = Status::FailedPrecondition(
                 "row ended without a cell for column \"" +
                 section.specs[i].name + "\"");
    }
  }
  ++section.row_count;
  return Status::OK();
}

Status BinWriter::EndSection(size_t sect) {
  EMIGRE_RETURN_IF_ERROR(status_);
  if (sect >= sections_.size() || !sections_[sect]->open) {
    return status_ = Status::FailedPrecondition(
               "EndSection on a closed section");
  }
  SectionState& state = *sections_[sect];
  auto& specs_ = state.specs;
  auto& sinks_ = state.sinks;
  const std::string& section_name_ = state.name;
  const uint64_t row_count_ = state.row_count;
  for (size_t i = 0; i < sinks_.size(); ++i) {
    if (sinks_[i]->cells != row_count_) {
      return status_ = Status::FailedPrecondition(
                 "unterminated row (column \"" + specs_[i].name + "\")");
    }
  }

  // Metadata block: name, fixed section struct, column descriptors. The
  // section CRC is computed over the block with its own field zeroed, then
  // patched in.
  std::string meta;
  PutU32(&meta, static_cast<uint32_t>(section_name_.size()));
  PutBytes(&meta, section_name_.data(), section_name_.size());
  SectionOnDisk section = {};
  section.row_count = row_count_;
  section.column_count = static_cast<uint32_t>(specs_.size());
  for (const auto& sink : sinks_) section.payload_bytes += sink->payload_bytes;
  const size_t section_pos = meta.size();
  PutBytes(&meta, &section, sizeof(section));
  for (size_t i = 0; i < specs_.size(); ++i) {
    PutU32(&meta, static_cast<uint32_t>(specs_[i].name.size()));
    PutBytes(&meta, specs_[i].name.data(), specs_[i].name.size());
    ColumnOnDisk col = {};
    col.payload_bytes = sinks_[i]->payload_bytes;
    col.value_count = sinks_[i]->value_count;
    col.dtype = static_cast<uint32_t>(specs_[i].dtype);
    col.is_list = specs_[i].is_list ? 1 : 0;
    col.payload_crc = sinks_[i]->crc.value();
    PutBytes(&meta, &col, sizeof(col));
  }
  const uint32_t section_crc = Crc32Of(meta.data(), meta.size());
  std::memcpy(meta.data() + section_pos + offsetof(SectionOnDisk, section_crc),
              &section_crc, sizeof(section_crc));
  out_.write(meta.data(), static_cast<std::streamsize>(meta.size()));
  if (!out_.good()) {
    return status_ = Status::IOError("section header write failed: " + path_);
  }

  // Stream the payloads column after column.
  std::vector<char> chunk;
  for (auto& sink : sinks_) {
    if (sink->spilled) {
      // Flush the tail of the buffer, then copy the temp file through.
      if (!sink->buffer.empty()) {
        sink->spill.write(sink->buffer.data(),
                          static_cast<std::streamsize>(sink->buffer.size()));
        sink->buffer.clear();
      }
      sink->spill.close();
      if (!sink->spill.good()) {
        return status_ =
                   Status::IOError("spill flush failed: " + sink->spill_path);
      }
      std::ifstream in(sink->spill_path, std::ios::binary);
      if (!in.is_open()) {
        return status_ =
                   Status::IOError("cannot reopen spill: " + sink->spill_path);
      }
      chunk.resize(kCopyChunk);
      uint64_t left = sink->payload_bytes;
      while (left > 0) {
        const size_t n = static_cast<size_t>(
            left < kCopyChunk ? left : static_cast<uint64_t>(kCopyChunk));
        if (!ReadExact(in, chunk.data(), n)) {
          return status_ =
                     Status::IOError("spill read failed: " + sink->spill_path);
        }
        out_.write(chunk.data(), static_cast<std::streamsize>(n));
        left -= n;
      }
      in.close();
      std::remove(sink->spill_path.c_str());
      sink->spilled = false;
    } else {
      out_.write(sink->buffer.data(),
                 static_cast<std::streamsize>(sink->buffer.size()));
    }
    if (!out_.good()) {
      return status_ = Status::IOError("payload write failed: " + path_);
    }
  }

  ++sections_written_;
  state.open = false;
  state.sinks.clear();
  state.specs.clear();
  return Status::OK();
}

Status BinWriter::Finish() {
  EMIGRE_RETURN_IF_ERROR(status_);
  for (const auto& section : sections_) {
    if (section->open) {
      return status_ = Status::FailedPrecondition(
                 "Finish while section \"" + section->name + "\" is open");
    }
  }
  if (finished_) return Status::OK();
  HeaderOnDisk header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.endian = kEndianTag;
  header.section_count = sections_written_;
  header.header_crc =
      Crc32Of(&header, offsetof(HeaderOnDisk, header_crc));
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out_.flush();
  out_.close();
  if (!out_.good()) {
    return status_ = Status::IOError("finish failed: " + path_);
  }
  finished_ = true;
  return Status::OK();
}

// --- Reader ------------------------------------------------------------------

Result<BinReader> BinReader::Open(const std::string& path) {
  EMIGRE_FAULT_POINT_STATUS("data.bin.read");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);

  HeaderOnDisk header = {};
  if (!ReadExact(in, &header, sizeof(header))) {
    return Status::IOError("truncated header: " + path);
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic (not an emigre.bin file): " +
                                   path);
  }
  if (header.version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported emigre.bin version %u", header.version));
  }
  if (header.endian != kEndianTag) {
    return Status::InvalidArgument(
        "endianness mismatch (file written on an incompatible host): " + path);
  }
  if (header.header_crc !=
      Crc32Of(&header, offsetof(HeaderOnDisk, header_crc))) {
    return Status::InvalidArgument("header checksum mismatch: " + path);
  }

  BinReader reader;
  reader.path_ = path;
  for (uint32_t s = 0; s < header.section_count; ++s) {
    // Re-accumulate the metadata block byte-for-byte so the CRC check
    // covers exactly what the writer checksummed.
    std::string meta;
    uint32_t name_len = 0;
    if (!ReadExact(in, &name_len, sizeof(name_len))) {
      return Status::IOError("truncated section header: " + path);
    }
    if (name_len > kMaxNameLen) {
      return Status::InvalidArgument("corrupt section name length: " + path);
    }
    PutU32(&meta, name_len);
    SectionInfo section;
    section.name.resize(name_len);
    if (name_len > 0 && !ReadExact(in, section.name.data(), name_len)) {
      return Status::IOError("truncated section name: " + path);
    }
    PutBytes(&meta, section.name.data(), name_len);
    SectionOnDisk fixed = {};
    if (!ReadExact(in, &fixed, sizeof(fixed))) {
      return Status::IOError("truncated section header: " + path);
    }
    const size_t section_pos = meta.size();
    PutBytes(&meta, &fixed, sizeof(fixed));
    section.row_count = fixed.row_count;
    section.payload_bytes = fixed.payload_bytes;
    if (fixed.column_count == 0 || fixed.column_count > kMaxNameLen) {
      return Status::InvalidArgument("corrupt column count: " + path);
    }
    for (uint32_t c = 0; c < fixed.column_count; ++c) {
      uint32_t col_name_len = 0;
      if (!ReadExact(in, &col_name_len, sizeof(col_name_len))) {
        return Status::IOError("truncated column descriptor: " + path);
      }
      if (col_name_len > kMaxNameLen) {
        return Status::InvalidArgument("corrupt column name length: " + path);
      }
      PutU32(&meta, col_name_len);
      ColumnInfo info;
      info.name.resize(col_name_len);
      if (col_name_len > 0 && !ReadExact(in, info.name.data(), col_name_len)) {
        return Status::IOError("truncated column name: " + path);
      }
      PutBytes(&meta, info.name.data(), col_name_len);
      ColumnOnDisk col = {};
      if (!ReadExact(in, &col, sizeof(col))) {
        return Status::IOError("truncated column descriptor: " + path);
      }
      PutBytes(&meta, &col, sizeof(col));
      if (col.dtype < static_cast<uint32_t>(Dtype::kU8) ||
          col.dtype > static_cast<uint32_t>(Dtype::kStr) || col.is_list > 1) {
        return Status::InvalidArgument("corrupt column descriptor: " + path);
      }
      info.dtype = static_cast<Dtype>(col.dtype);
      info.is_list = col.is_list == 1;
      info.payload_bytes = col.payload_bytes;
      info.value_count = col.value_count;
      info.payload_crc = col.payload_crc;
      section.columns.push_back(std::move(info));
    }
    // Verify the section metadata checksum (field zeroed, as written).
    const uint32_t stored_crc = fixed.section_crc;
    const uint32_t zero = 0;
    std::memcpy(meta.data() + section_pos + offsetof(SectionOnDisk,
                                                     section_crc),
                &zero, sizeof(zero));
    if (stored_crc != Crc32Of(meta.data(), meta.size())) {
      return Status::InvalidArgument("section \"" + section.name +
                                     "\" metadata checksum mismatch: " + path);
    }
    // Assign payload offsets and bound them against the file size.
    uint64_t cursor = static_cast<uint64_t>(in.tellg());
    uint64_t total = 0;
    for (ColumnInfo& info : section.columns) {
      info.file_offset = cursor;
      cursor += info.payload_bytes;
      total += info.payload_bytes;
    }
    if (total != section.payload_bytes || cursor > file_size) {
      return Status::IOError("section \"" + section.name +
                             "\" payload truncated: " + path);
    }
    in.seekg(static_cast<std::streamoff>(cursor));
    reader.sections_.push_back(std::move(section));
  }
  return reader;
}

Result<size_t> BinReader::FindSection(std::string_view name) const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name == name) return i;
  }
  return Status::NotFound("no section \"" + std::string(name) + "\" in " +
                          path_);
}

Result<ColumnCursor> BinReader::OpenColumn(size_t section,
                                           size_t column) const {
  if (section >= sections_.size() ||
      column >= sections_[section].columns.size()) {
    return Status::OutOfRange("no such section/column");
  }
  ColumnCursor cursor(path_, sections_[section].columns[column]);
  EMIGRE_RETURN_IF_ERROR(cursor.status());
  return cursor;
}

ColumnCursor::ColumnCursor(const std::string& path, ColumnInfo info)
    : info_(std::move(info)), in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for reading: " + path);
    return;
  }
  in_.seekg(static_cast<std::streamoff>(info_.file_offset));
  if (!in_.good()) status_ = Status::IOError("seek failed: " + path);
}

bool ColumnCursor::ReadBytes(void* dst, size_t n) {
  if (!status_.ok()) return false;
  if (bytes_read_ + n > info_.payload_bytes) {
    status_ = Status::InvalidArgument("cell overruns column \"" + info_.name +
                                      "\" payload (corrupt length prefix)");
    return false;
  }
  if (!ReadExact(in_, dst, n)) {
    status_ = Status::IOError("truncated column \"" + info_.name + "\"");
    return false;
  }
  crc_.Update(dst, n);
  bytes_read_ += n;
  return true;
}

bool ColumnCursor::NextScalar(Dtype want, void* dst) {
  if (!status_.ok()) return false;
  if (info_.dtype != want || info_.is_list) {
    status_ = Status::InvalidArgument("dtype mismatch reading column \"" +
                                      info_.name + "\"");
    return false;
  }
  if (bytes_read_ == info_.payload_bytes) return false;  // clean end
  return ReadBytes(dst, DtypeWidth(want));
}

template <typename T>
bool ColumnCursor::NextList(Dtype want, std::vector<T>* v) {
  if (!status_.ok()) return false;
  if (info_.dtype != want || !info_.is_list) {
    status_ = Status::InvalidArgument("dtype mismatch reading column \"" +
                                      info_.name + "\"");
    return false;
  }
  if (bytes_read_ == info_.payload_bytes) return false;
  uint32_t count = 0;
  if (!ReadBytes(&count, sizeof(count))) return false;
  v->resize(count);
  return count == 0 || ReadBytes(v->data(), count * sizeof(T));
}

bool ColumnCursor::NextU8(uint8_t* v) { return NextScalar(Dtype::kU8, v); }
bool ColumnCursor::NextU16(uint16_t* v) { return NextScalar(Dtype::kU16, v); }
bool ColumnCursor::NextU32(uint32_t* v) { return NextScalar(Dtype::kU32, v); }
bool ColumnCursor::NextU64(uint64_t* v) { return NextScalar(Dtype::kU64, v); }
bool ColumnCursor::NextI32(int32_t* v) { return NextScalar(Dtype::kI32, v); }
bool ColumnCursor::NextF32(float* v) { return NextScalar(Dtype::kF32, v); }
bool ColumnCursor::NextF64(double* v) { return NextScalar(Dtype::kF64, v); }

bool ColumnCursor::NextStr(std::string* v) {
  if (!status_.ok()) return false;
  if (info_.dtype != Dtype::kStr || info_.is_list) {
    status_ = Status::InvalidArgument("dtype mismatch reading column \"" +
                                      info_.name + "\"");
    return false;
  }
  if (bytes_read_ == info_.payload_bytes) return false;
  uint32_t len = 0;
  if (!ReadBytes(&len, sizeof(len))) return false;
  v->resize(len);
  return len == 0 || ReadBytes(v->data(), len);
}

bool ColumnCursor::NextListU32(std::vector<uint32_t>* v) {
  return NextList(Dtype::kU32, v);
}
bool ColumnCursor::NextListF32(std::vector<float>* v) {
  return NextList(Dtype::kF32, v);
}
bool ColumnCursor::NextListF64(std::vector<double>* v) {
  return NextList(Dtype::kF64, v);
}

bool ColumnCursor::NextCellString(std::string* out) {
  out->clear();
  if (info_.dtype == Dtype::kStr) return NextStr(out);
  if (!info_.is_list) {
    switch (info_.dtype) {
      case Dtype::kU8: {
        uint8_t v;
        if (!NextU8(&v)) return false;
        *out = StrFormat("%u", v);
        return true;
      }
      case Dtype::kU16: {
        uint16_t v;
        if (!NextU16(&v)) return false;
        *out = StrFormat("%u", v);
        return true;
      }
      case Dtype::kU32: {
        uint32_t v;
        if (!NextU32(&v)) return false;
        *out = StrFormat("%u", v);
        return true;
      }
      case Dtype::kU64: {
        uint64_t v;
        if (!NextU64(&v)) return false;
        *out = StrFormat("%llu", static_cast<unsigned long long>(v));
        return true;
      }
      case Dtype::kI32: {
        int32_t v;
        if (!NextI32(&v)) return false;
        *out = StrFormat("%d", v);
        return true;
      }
      case Dtype::kF32: {
        float v;
        if (!NextF32(&v)) return false;
        *out = StrFormat("%.8g", v);
        return true;
      }
      case Dtype::kF64: {
        double v;
        if (!NextF64(&v)) return false;
        *out = StrFormat("%.10g", v);
        return true;
      }
      default:
        break;
    }
    status_ = Status::Internal("unreachable dtype");
    return false;
  }
  switch (info_.dtype) {
    case Dtype::kU32: {
      std::vector<uint32_t> v;
      if (!NextListU32(&v)) return false;
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) *out += ';';
        *out += StrFormat("%u", v[i]);
      }
      return true;
    }
    case Dtype::kF32: {
      std::vector<float> v;
      if (!NextListF32(&v)) return false;
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) *out += ';';
        *out += StrFormat("%.8g", v[i]);
      }
      return true;
    }
    case Dtype::kF64: {
      std::vector<double> v;
      if (!NextListF64(&v)) return false;
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) *out += ';';
        *out += StrFormat("%.10g", v[i]);
      }
      return true;
    }
    default:
      status_ = Status::InvalidArgument("unsupported list dtype in column \"" +
                                        info_.name + "\"");
      return false;
  }
}

Status ColumnCursor::Finish() {
  EMIGRE_RETURN_IF_ERROR(status_);
  std::vector<char> chunk(kCopyChunk);
  while (bytes_read_ < info_.payload_bytes) {
    const uint64_t left = info_.payload_bytes - bytes_read_;
    const size_t n = static_cast<size_t>(
        left < kCopyChunk ? left : static_cast<uint64_t>(kCopyChunk));
    if (!ReadBytes(chunk.data(), n)) return status_;
  }
  if (crc_.value() != info_.payload_crc) {
    return status_ = Status::InvalidArgument(
               "column \"" + info_.name + "\" payload checksum mismatch");
  }
  return Status::OK();
}

Result<RowReader> RowReader::Open(const BinReader& reader, size_t section) {
  if (section >= reader.sections().size()) {
    return Status::OutOfRange("no such section");
  }
  const SectionInfo& info = reader.sections()[section];
  RowReader rows;
  rows.row_count_ = info.row_count;
  rows.columns_ = info.columns;
  for (size_t c = 0; c < info.columns.size(); ++c) {
    EMIGRE_ASSIGN_OR_RETURN(ColumnCursor cursor,
                            reader.OpenColumn(section, c));
    rows.cursors_.push_back(std::move(cursor));
  }
  return rows;
}

bool RowReader::NextRow(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  if (rows_read_ == row_count_) return false;
  fields->resize(cursors_.size());
  for (size_t c = 0; c < cursors_.size(); ++c) {
    if (!cursors_[c].NextCellString(&(*fields)[c])) {
      status_ = cursors_[c].status();
      if (status_.ok()) {
        status_ = Status::IOError("column \"" + columns_[c].name +
                                  "\" ended before the declared row count");
      }
      return false;
    }
  }
  ++rows_read_;
  return true;
}

}  // namespace emigre::data::binfmt
