#include "data/synthetic_amazon.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/embedding.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emigre::data {

namespace {

/// Star rating from latent quality/leniency: base 3.5 plus biases plus
/// noise, clamped to 1..5. Skews positive (most published ratings are),
/// which matters because the pipeline keeps only ratings > 3 (§6.1).
int DrawStars(double item_quality, double user_bias, Rng& rng) {
  double latent =
      3.5 + 1.2 * item_quality + 0.6 * user_bias + 0.9 * rng.NextGaussian();
  int stars = static_cast<int>(std::lround(latent));
  return std::clamp(stars, 1, 5);
}

/// Collects the streamed rows back into a `Dataset` (the in-memory API).
class CollectingSink : public DatasetSink {
 public:
  Status OnCategory(const Category& c) override {
    ds.categories.push_back(c);
    return Status::OK();
  }
  Status OnItem(const Item& item) override {
    ds.items.push_back(item);
    return Status::OK();
  }
  Status OnUser(const User& u) override {
    ds.users.push_back(u);
    return Status::OK();
  }
  Status OnRating(const Rating& r) override {
    ds.ratings.push_back(r);
    return Status::OK();
  }
  Status OnReview(const Review& r) override {
    ds.reviews.push_back(r);
    return Status::OK();
  }

  Dataset ds;
};

}  // namespace

Result<SyntheticAmazonOptions> SyntheticAmazonPreset(std::string_view name) {
  SyntheticAmazonOptions opts;  // "small" == the defaults above
  if (name == "small") return opts;
  if (name == "medium") {
    opts.num_users = 2000;
    opts.num_items = 20000;
    opts.num_categories = 48;
    opts.embedding_dim = 16;
    return opts;
  }
  if (name == "large") {
    // The 10M-node band: 1.3M users + 1.2M items + 64 categories plus the
    // kept-review nodes (~0.35 reviews/rating, of which the default
    // min-stars pruning keeps about half — ≈7 review nodes per user) land
    // at ≈11.5M graph nodes *after* BuildAmazonLite's rating cut, with the
    // Table-4 shape (heavy-tailed categories, users with tens of actions,
    // items with low average degree). Narrower action interval than the
    // paper's 10..100 keeps total edge count predictable at this scale.
    opts.num_users = 1300000;
    opts.num_items = 1200000;
    opts.num_categories = 64;
    opts.min_actions_per_user = 20;
    opts.max_actions_per_user = 60;
    opts.embedding_dim = 8;
    return opts;
  }
  return Status::InvalidArgument(
      StrFormat("unknown preset '%s' (small | medium | large)",
                std::string(name).c_str()));
}

Status GenerateSyntheticAmazonTo(const SyntheticAmazonOptions& opts,
                                 DatasetSink* sink) {
  if (opts.num_users == 0 || opts.num_items == 0 ||
      opts.num_categories == 0) {
    return Status::InvalidArgument(
        "synthetic dataset needs at least one user, item and category");
  }
  if (opts.min_actions_per_user > opts.max_actions_per_user) {
    return Status::InvalidArgument("min_actions_per_user > max");
  }
  if (opts.min_user_categories > opts.max_user_categories ||
      opts.min_user_categories == 0) {
    return Status::InvalidArgument("bad user-category interval");
  }

  Rng rng(opts.seed);

  // --- Categories ------------------------------------------------------------
  for (size_t c = 0; c < opts.num_categories; ++c) {
    EMIGRE_RETURN_IF_ERROR(sink->OnCategory(
        Category{static_cast<CategoryId>(c), StrFormat("category-%02zu", c)}));
  }

  // --- Items: Zipf category sizes, Zipf within-category popularity. ----------
  // Only the slim draw state (category, quality, per-category popularity
  // pools) is retained; the full rows stream out.
  std::vector<CategoryId> item_category(opts.num_items);
  std::vector<double> item_quality(opts.num_items);
  std::vector<std::vector<ItemId>> items_by_category(opts.num_categories);
  std::vector<std::vector<double>> weights_by_category(opts.num_categories);
  for (size_t i = 0; i < opts.num_items; ++i) {
    Item item;
    item.id = static_cast<ItemId>(i);
    item.name = StrFormat("item-%05zu", i);
    item.category = static_cast<CategoryId>(
        rng.NextZipf(opts.num_categories, opts.category_zipf));
    // Zipf rank drawn independently of id: popular items are spread across
    // the id space.
    size_t rank = rng.NextZipf(100, opts.item_zipf);
    item.popularity = 1.0 / static_cast<double>(rank + 1);
    item.quality = std::clamp(0.4 * rng.NextGaussian(), -1.0, 1.0);
    item_category[i] = item.category;
    item_quality[i] = item.quality;
    items_by_category[item.category].push_back(item.id);
    weights_by_category[item.category].push_back(item.popularity);
    EMIGRE_RETURN_IF_ERROR(sink->OnItem(item));
  }

  // The per-category popularity pools are drawn from once per action —
  // tens of millions of times at the `large` band — so build the O(log n)
  // inverse-CDF tables up front. Bit-identical to NextWeighted on the raw
  // weight vectors.
  std::vector<std::optional<WeightedSampler>> category_samplers(
      opts.num_categories);
  for (size_t c = 0; c < opts.num_categories; ++c) {
    if (!weights_by_category[c].empty()) {
      category_samplers[c].emplace(weights_by_category[c]);
    }
  }

  // --- Users ------------------------------------------------------------------
  std::vector<double> user_bias(opts.num_users);
  std::vector<std::vector<std::pair<CategoryId, double>>> user_prefs(
      opts.num_users);
  for (size_t u = 0; u < opts.num_users; ++u) {
    User user;
    user.id = static_cast<UserId>(u);
    user.name = StrFormat("user-%04zu", u);
    user.rating_bias = std::clamp(0.5 * rng.NextGaussian(), -1.0, 1.0);
    size_t num_prefs = static_cast<size_t>(rng.NextInt(
        static_cast<int64_t>(opts.min_user_categories),
        static_cast<int64_t>(
            std::min(opts.max_user_categories, opts.num_categories))));
    std::unordered_set<CategoryId> chosen;
    while (chosen.size() < num_prefs) {
      CategoryId c = static_cast<CategoryId>(
          rng.NextZipf(opts.num_categories, opts.category_zipf));
      if (items_by_category[c].empty()) continue;
      chosen.insert(c);
      // Every non-empty category is eventually drawable; bail out if the
      // dataset is too small to satisfy num_prefs.
      size_t non_empty = 0;
      for (const auto& v : items_by_category) non_empty += !v.empty();
      if (chosen.size() >= non_empty) break;
    }
    for (CategoryId c : chosen) {
      user.preferences.emplace_back(c, 0.5 + rng.NextDouble());
    }
    std::sort(user.preferences.begin(), user.preferences.end());
    user_bias[u] = user.rating_bias;
    user_prefs[u] = user.preferences;
    EMIGRE_RETURN_IF_ERROR(sink->OnUser(user));
  }

  // --- Ratings & reviews -------------------------------------------------------
  TopicEmbedder embedder(opts.embedding_dim, opts.num_categories,
                         opts.seed ^ 0xE5CEBE11ull);
  ReviewId next_review_id = 0;
  // Per-user duplicate rejection: pairs are keyed by (user, item), so a
  // per-user set is draw-for-draw identical to a global pair set while
  // keeping memory at O(actions of one user).
  std::unordered_set<ItemId> rated_items;

  for (size_t u = 0; u < opts.num_users; ++u) {
    const UserId user_id = static_cast<UserId>(u);
    size_t actions = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(opts.min_actions_per_user),
                    static_cast<int64_t>(opts.max_actions_per_user)));
    const auto& preferences = user_prefs[u];
    std::vector<double> pref_weights;
    pref_weights.reserve(preferences.size());
    for (const auto& [c, w] : preferences) pref_weights.push_back(w);

    rated_items.clear();
    size_t placed = 0;
    size_t attempts = 0;
    const size_t max_attempts = actions * 20 + 100;
    while (placed < actions && attempts < max_attempts) {
      ++attempts;
      CategoryId c = preferences[rng.NextWeighted(pref_weights)].first;
      const auto& pool = items_by_category[c];
      if (pool.empty()) continue;
      ItemId item = pool[category_samplers[c]->Sample(rng)];
      if (!rated_items.insert(item).second) {
        continue;  // already rated; redraw
      }
      int stars = DrawStars(item_quality[item], user_bias[u], rng);
      EMIGRE_RETURN_IF_ERROR(sink->OnRating(Rating{user_id, item, stars}));
      ++placed;

      if (rng.NextBool(opts.review_probability)) {
        Review review;
        review.id = next_review_id++;
        review.user = user_id;
        review.item = item;
        review.embedding =
            embedder.Embed(item_category[item], opts.embedding_noise, rng);
        EMIGRE_RETURN_IF_ERROR(sink->OnReview(review));
      }
    }
  }

  return Status::OK();
}

Result<Dataset> GenerateSyntheticAmazon(const SyntheticAmazonOptions& opts) {
  CollectingSink sink;
  EMIGRE_RETURN_IF_ERROR(GenerateSyntheticAmazonTo(opts, &sink));
  return std::move(sink.ds);
}

}  // namespace emigre::data
