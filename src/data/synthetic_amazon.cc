#include "data/synthetic_amazon.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "data/embedding.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emigre::data {

namespace {

/// Star rating from latent quality/leniency: base 3.5 plus biases plus
/// noise, clamped to 1..5. Skews positive (most published ratings are),
/// which matters because the pipeline keeps only ratings > 3 (§6.1).
int DrawStars(double item_quality, double user_bias, Rng& rng) {
  double latent =
      3.5 + 1.2 * item_quality + 0.6 * user_bias + 0.9 * rng.NextGaussian();
  int stars = static_cast<int>(std::lround(latent));
  return std::clamp(stars, 1, 5);
}

}  // namespace

Result<Dataset> GenerateSyntheticAmazon(const SyntheticAmazonOptions& opts) {
  if (opts.num_users == 0 || opts.num_items == 0 ||
      opts.num_categories == 0) {
    return Status::InvalidArgument(
        "synthetic dataset needs at least one user, item and category");
  }
  if (opts.min_actions_per_user > opts.max_actions_per_user) {
    return Status::InvalidArgument("min_actions_per_user > max");
  }
  if (opts.min_user_categories > opts.max_user_categories ||
      opts.min_user_categories == 0) {
    return Status::InvalidArgument("bad user-category interval");
  }

  Rng rng(opts.seed);
  Dataset ds;

  // --- Categories ------------------------------------------------------------
  ds.categories.reserve(opts.num_categories);
  for (size_t c = 0; c < opts.num_categories; ++c) {
    ds.categories.push_back(
        Category{static_cast<CategoryId>(c), StrFormat("category-%02zu", c)});
  }

  // --- Items: Zipf category sizes, Zipf within-category popularity. ----------
  ds.items.reserve(opts.num_items);
  for (size_t i = 0; i < opts.num_items; ++i) {
    Item item;
    item.id = static_cast<ItemId>(i);
    item.name = StrFormat("item-%05zu", i);
    item.category = static_cast<CategoryId>(
        rng.NextZipf(opts.num_categories, opts.category_zipf));
    // Zipf rank drawn independently of id: popular items are spread across
    // the id space.
    size_t rank = rng.NextZipf(100, opts.item_zipf);
    item.popularity = 1.0 / static_cast<double>(rank + 1);
    item.quality = std::clamp(0.4 * rng.NextGaussian(), -1.0, 1.0);
    ds.items.push_back(std::move(item));
  }

  // Per-category item index + popularity weights for fast draws.
  std::vector<std::vector<ItemId>> items_by_category(opts.num_categories);
  std::vector<std::vector<double>> weights_by_category(opts.num_categories);
  for (const Item& item : ds.items) {
    items_by_category[item.category].push_back(item.id);
    weights_by_category[item.category].push_back(item.popularity);
  }

  // --- Users ------------------------------------------------------------------
  ds.users.reserve(opts.num_users);
  for (size_t u = 0; u < opts.num_users; ++u) {
    User user;
    user.id = static_cast<UserId>(u);
    user.name = StrFormat("user-%04zu", u);
    user.rating_bias = std::clamp(0.5 * rng.NextGaussian(), -1.0, 1.0);
    size_t num_prefs = static_cast<size_t>(rng.NextInt(
        static_cast<int64_t>(opts.min_user_categories),
        static_cast<int64_t>(
            std::min(opts.max_user_categories, opts.num_categories))));
    std::unordered_set<CategoryId> chosen;
    while (chosen.size() < num_prefs) {
      CategoryId c = static_cast<CategoryId>(
          rng.NextZipf(opts.num_categories, opts.category_zipf));
      if (items_by_category[c].empty()) continue;
      chosen.insert(c);
      // Every non-empty category is eventually drawable; bail out if the
      // dataset is too small to satisfy num_prefs.
      size_t non_empty = 0;
      for (const auto& v : items_by_category) non_empty += !v.empty();
      if (chosen.size() >= non_empty) break;
    }
    for (CategoryId c : chosen) {
      user.preferences.emplace_back(c, 0.5 + rng.NextDouble());
    }
    std::sort(user.preferences.begin(), user.preferences.end());
    ds.users.push_back(std::move(user));
  }

  // --- Ratings & reviews -------------------------------------------------------
  TopicEmbedder embedder(opts.embedding_dim, opts.num_categories,
                         opts.seed ^ 0xE5CEBE11ull);
  std::unordered_set<uint64_t> rated_pairs;
  auto pair_key = [](UserId u, ItemId i) {
    return (static_cast<uint64_t>(u) << 32) | i;
  };

  for (const User& user : ds.users) {
    size_t actions = static_cast<size_t>(
        rng.NextInt(static_cast<int64_t>(opts.min_actions_per_user),
                    static_cast<int64_t>(opts.max_actions_per_user)));
    std::vector<double> pref_weights;
    pref_weights.reserve(user.preferences.size());
    for (const auto& [c, w] : user.preferences) pref_weights.push_back(w);

    size_t placed = 0;
    size_t attempts = 0;
    const size_t max_attempts = actions * 20 + 100;
    while (placed < actions && attempts < max_attempts) {
      ++attempts;
      CategoryId c =
          user.preferences[rng.NextWeighted(pref_weights)].first;
      const auto& pool = items_by_category[c];
      if (pool.empty()) continue;
      ItemId item = pool[rng.NextWeighted(weights_by_category[c])];
      if (!rated_pairs.insert(pair_key(user.id, item)).second) {
        continue;  // already rated; redraw
      }
      int stars = DrawStars(ds.items[item].quality, user.rating_bias, rng);
      ds.ratings.push_back(Rating{user.id, item, stars});
      ++placed;

      if (rng.NextBool(opts.review_probability)) {
        Review review;
        review.id = static_cast<ReviewId>(ds.reviews.size());
        review.user = user.id;
        review.item = item;
        review.embedding =
            embedder.Embed(ds.items[item].category, opts.embedding_noise,
                           rng);
        ds.reviews.push_back(std::move(review));
      }
    }
  }

  return ds;
}

}  // namespace emigre::data
