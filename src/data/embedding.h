#ifndef EMIGRE_DATA_EMBEDDING_H_
#define EMIGRE_DATA_EMBEDDING_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace emigre::data {

/// \brief Deterministic stand-in for the Universal Sentence Encoder.
///
/// The paper embeds review texts with Google's USE [5] and links review
/// pairs by cosine similarity. Only the induced similarity structure
/// reaches the graph, so we synthesize embeddings directly: each category
/// owns a unit "topic" direction, and a review's embedding is its item's
/// topic plus Gaussian noise. Reviews about same-category items are
/// therefore similar (high cosine) and cross-category reviews nearly
/// orthogonal — reproducing the clustered review–review edges of the
/// paper's preprocessing without any text.
class TopicEmbedder {
 public:
  /// `dim` is the embedding dimension; `num_topics` topic directions are
  /// generated deterministically from `seed`.
  TopicEmbedder(size_t dim, size_t num_topics, uint64_t seed);

  size_t dim() const { return dim_; }
  size_t num_topics() const { return topics_.size(); }

  /// Embedding for a review on topic `topic` with the given noise level;
  /// draws from `rng` (caller-owned for reproducibility).
  std::vector<float> Embed(size_t topic, double noise, Rng& rng) const;

  /// The unit direction of `topic`.
  const std::vector<float>& Topic(size_t topic) const {
    return topics_.at(topic);
  }

 private:
  size_t dim_;
  std::vector<std::vector<float>> topics_;
};

/// Cosine similarity of two equal-length vectors (0 when either is zero).
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace emigre::data

#endif  // EMIGRE_DATA_EMBEDDING_H_
