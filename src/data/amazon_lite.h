#ifndef EMIGRE_DATA_AMAZON_LITE_H_
#define EMIGRE_DATA_AMAZON_LITE_H_

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "graph/hin_graph.h"
#include "util/result.h"

namespace emigre::data {

/// \brief Parameters of the paper's preprocessing pipeline (§6.1).
struct AmazonLiteOptions {
  /// Keep only ratings strictly above this ("included only good ratings
  /// (over 3)").
  int min_stars_exclusive = 3;

  /// Review–review similarity edges: cosine threshold and a per-review
  /// top-k cap that keeps review degrees near the paper's Table-4 profile.
  double review_similarity_threshold = 0.6;
  size_t max_similar_per_review = 4;

  /// Relationships are materialized in both directions ("we consider any
  /// type of relationship to be bidirectional").
  bool bidirectional = true;

  /// Evaluation-user sampling: "randomly sampled 100 users from the set of
  /// 'moderate/active' users, i.e., those having between 10 and 100
  /// actions".
  size_t sample_users = 100;
  size_t min_user_actions = 10;
  size_t max_user_actions = 100;
  uint64_t sample_seed = 7;

  /// Neighborhood extraction: hops of the union ball kept around the
  /// sampled users ("extracted their four-hop neighborhood"). 0 keeps the
  /// full graph.
  size_t neighborhood_hops = 4;
};

/// \brief The "Amazon Lite" evaluation graph plus its schema handles.
struct AmazonLiteGraph {
  graph::HinGraph graph;

  graph::NodeTypeId user_type = graph::kInvalidNodeType;
  graph::NodeTypeId item_type = graph::kInvalidNodeType;
  graph::NodeTypeId review_type = graph::kInvalidNodeType;
  graph::NodeTypeId category_type = graph::kInvalidNodeType;

  graph::EdgeTypeId rated_type = graph::kInvalidEdgeType;
  graph::EdgeTypeId reviewed_type = graph::kInvalidEdgeType;
  graph::EdgeTypeId has_review_type = graph::kInvalidEdgeType;
  graph::EdgeTypeId belongs_to_type = graph::kInvalidEdgeType;
  graph::EdgeTypeId similar_type = graph::kInvalidEdgeType;

  /// Sampled moderate/active users (graph node ids) to evaluate on.
  std::vector<graph::NodeId> eval_users;
};

/// \brief Builds the evaluation HIN from a dataset, following §6.1:
/// node types user/item/review/category; edge types "rated", "reviewed",
/// "has-review", "belongs-to" (all bidirectionalized) plus cosine-weighted
/// review–review similarity links; good-ratings filter; moderate/active
/// user sampling; k-hop neighborhood restriction.
[[nodiscard]] Result<AmazonLiteGraph> BuildAmazonLite(const Dataset& ds,
                                        const AmazonLiteOptions& opts = {});

}  // namespace emigre::data

#endif  // EMIGRE_DATA_AMAZON_LITE_H_
