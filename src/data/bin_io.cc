#include "data/bin_io.h"

#include <filesystem>
#include <utility>

#include "data/csv_io.h"

namespace emigre::data {

using binfmt::BinReader;
using binfmt::BinWriter;
using binfmt::ColumnCursor;
using binfmt::ColumnSpec;
using binfmt::Dtype;

std::vector<ColumnSpec> CategoryColumns() {
  return {{"id", Dtype::kU32, false}, {"name", Dtype::kStr, false}};
}

std::vector<ColumnSpec> ItemColumns() {
  return {{"id", Dtype::kU32, false},
          {"name", Dtype::kStr, false},
          {"category", Dtype::kU32, false},
          {"popularity", Dtype::kF64, false},
          {"quality", Dtype::kF64, false}};
}

std::vector<ColumnSpec> UserColumns() {
  return {{"id", Dtype::kU32, false},
          {"name", Dtype::kStr, false},
          {"rating_bias", Dtype::kF64, false},
          {"pref_cat", Dtype::kU32, true},
          {"pref_w", Dtype::kF64, true}};
}

std::vector<ColumnSpec> RatingColumns() {
  return {{"user", Dtype::kU32, false},
          {"item", Dtype::kU32, false},
          {"stars", Dtype::kI32, false}};
}

std::vector<ColumnSpec> ReviewColumns() {
  return {{"id", Dtype::kU32, false},
          {"user", Dtype::kU32, false},
          {"item", Dtype::kU32, false},
          {"embedding", Dtype::kF32, true}};
}

Status AppendCategoryRow(BinWriter* w, size_t sect, const Category& c) {
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 0, c.id));
  EMIGRE_RETURN_IF_ERROR(w->AppendStr(sect, 1, c.name));
  return w->EndRow(sect);
}

Status AppendItemRow(BinWriter* w, size_t sect, const Item& item) {
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 0, item.id));
  EMIGRE_RETURN_IF_ERROR(w->AppendStr(sect, 1, item.name));
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 2, item.category));
  EMIGRE_RETURN_IF_ERROR(w->AppendF64(sect, 3, item.popularity));
  EMIGRE_RETURN_IF_ERROR(w->AppendF64(sect, 4, item.quality));
  return w->EndRow(sect);
}

Status AppendUserRow(BinWriter* w, size_t sect, const User& u) {
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 0, u.id));
  EMIGRE_RETURN_IF_ERROR(w->AppendStr(sect, 1, u.name));
  EMIGRE_RETURN_IF_ERROR(w->AppendF64(sect, 2, u.rating_bias));
  std::vector<uint32_t> cats;
  std::vector<double> weights;
  cats.reserve(u.preferences.size());
  weights.reserve(u.preferences.size());
  for (const auto& [c, wgt] : u.preferences) {
    cats.push_back(c);
    weights.push_back(wgt);
  }
  EMIGRE_RETURN_IF_ERROR(w->AppendListU32(sect, 3, cats.data(), cats.size()));
  EMIGRE_RETURN_IF_ERROR(
      w->AppendListF64(sect, 4, weights.data(), weights.size()));
  return w->EndRow(sect);
}

Status AppendRatingRow(BinWriter* w, size_t sect, const Rating& r) {
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 0, r.user));
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 1, r.item));
  EMIGRE_RETURN_IF_ERROR(w->AppendI32(sect, 2, r.stars));
  return w->EndRow(sect);
}

Status AppendReviewRow(BinWriter* w, size_t sect, const Review& r) {
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 0, r.id));
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 1, r.user));
  EMIGRE_RETURN_IF_ERROR(w->AppendU32(sect, 2, r.item));
  EMIGRE_RETURN_IF_ERROR(
      w->AppendListF32(sect, 3, r.embedding.data(), r.embedding.size()));
  return w->EndRow(sect);
}

Status SaveDatasetBin(const Dataset& ds, const std::string& path) {
  BinWriter w(path);
  EMIGRE_RETURN_IF_ERROR(w.status());
  EMIGRE_ASSIGN_OR_RETURN(size_t sect,
                          w.BeginSection("categories", CategoryColumns()));
  for (const Category& c : ds.categories) {
    EMIGRE_RETURN_IF_ERROR(AppendCategoryRow(&w, sect, c));
  }
  EMIGRE_RETURN_IF_ERROR(w.EndSection(sect));
  EMIGRE_ASSIGN_OR_RETURN(sect, w.BeginSection("items", ItemColumns()));
  for (const Item& item : ds.items) {
    EMIGRE_RETURN_IF_ERROR(AppendItemRow(&w, sect, item));
  }
  EMIGRE_RETURN_IF_ERROR(w.EndSection(sect));
  EMIGRE_ASSIGN_OR_RETURN(sect, w.BeginSection("users", UserColumns()));
  for (const User& u : ds.users) {
    EMIGRE_RETURN_IF_ERROR(AppendUserRow(&w, sect, u));
  }
  EMIGRE_RETURN_IF_ERROR(w.EndSection(sect));
  EMIGRE_ASSIGN_OR_RETURN(sect, w.BeginSection("ratings", RatingColumns()));
  for (const Rating& r : ds.ratings) {
    EMIGRE_RETURN_IF_ERROR(AppendRatingRow(&w, sect, r));
  }
  EMIGRE_RETURN_IF_ERROR(w.EndSection(sect));
  EMIGRE_ASSIGN_OR_RETURN(sect, w.BeginSection("reviews", ReviewColumns()));
  for (const Review& r : ds.reviews) {
    EMIGRE_RETURN_IF_ERROR(AppendReviewRow(&w, sect, r));
  }
  EMIGRE_RETURN_IF_ERROR(w.EndSection(sect));
  return w.Finish();
}

Status BinDatasetSink::EnsurePhase(Phase p) {
  EMIGRE_RETURN_IF_ERROR(w_.status());
  if (p < phase_) {
    return Status::InvalidArgument(
        "dataset rows arrived out of phase order (want categories, items, "
        "users, then ratings/reviews)");
  }
  while (phase_ < p) {
    if (phase_ != kNone) {
      EMIGRE_RETURN_IF_ERROR(w_.EndSection(sect_[phase_]));
    }
    phase_ = static_cast<Phase>(phase_ + 1);
    switch (phase_) {
      case kCategories: {
        EMIGRE_ASSIGN_OR_RETURN(
            sect_[0], w_.BeginSection("categories", CategoryColumns()));
        break;
      }
      case kItems: {
        EMIGRE_ASSIGN_OR_RETURN(sect_[1],
                                w_.BeginSection("items", ItemColumns()));
        break;
      }
      case kUsers: {
        EMIGRE_ASSIGN_OR_RETURN(sect_[2],
                                w_.BeginSection("users", UserColumns()));
        break;
      }
      case kRatingsReviews: {
        EMIGRE_ASSIGN_OR_RETURN(sect_[3],
                                w_.BeginSection("ratings", RatingColumns()));
        EMIGRE_ASSIGN_OR_RETURN(sect_[4],
                                w_.BeginSection("reviews", ReviewColumns()));
        break;
      }
      case kNone:
        break;  // unreachable: phase_ only advances
    }
  }
  return Status::OK();
}

Status BinDatasetSink::OnCategory(const Category& c) {
  EMIGRE_RETURN_IF_ERROR(EnsurePhase(kCategories));
  return AppendCategoryRow(&w_, sect_[0], c);
}

Status BinDatasetSink::OnItem(const Item& item) {
  EMIGRE_RETURN_IF_ERROR(EnsurePhase(kItems));
  return AppendItemRow(&w_, sect_[1], item);
}

Status BinDatasetSink::OnUser(const User& u) {
  EMIGRE_RETURN_IF_ERROR(EnsurePhase(kUsers));
  return AppendUserRow(&w_, sect_[2], u);
}

Status BinDatasetSink::OnRating(const Rating& r) {
  EMIGRE_RETURN_IF_ERROR(EnsurePhase(kRatingsReviews));
  return AppendRatingRow(&w_, sect_[3], r);
}

Status BinDatasetSink::OnReview(const Review& r) {
  EMIGRE_RETURN_IF_ERROR(EnsurePhase(kRatingsReviews));
  return AppendReviewRow(&w_, sect_[4], r);
}

Status BinDatasetSink::Finish() {
  EMIGRE_RETURN_IF_ERROR(EnsurePhase(kRatingsReviews));
  EMIGRE_RETURN_IF_ERROR(w_.EndSection(sect_[3]));
  EMIGRE_RETURN_IF_ERROR(w_.EndSection(sect_[4]));
  return w_.Finish();
}

Status GenerateSyntheticAmazonBin(const SyntheticAmazonOptions& opts,
                                  const std::string& path) {
  BinDatasetSink sink(path);
  EMIGRE_RETURN_IF_ERROR(GenerateSyntheticAmazonTo(opts, &sink));
  return sink.Finish();
}

namespace {

/// Opens the named section and all its columns, verifying the column count
/// against the schema.
struct SectionCursors {
  uint64_t rows = 0;
  std::vector<ColumnCursor> cols;
};

Result<SectionCursors> OpenSection(const BinReader& reader,
                                   std::string_view name,
                                   size_t expected_columns) {
  EMIGRE_ASSIGN_OR_RETURN(size_t idx, reader.FindSection(name));
  const binfmt::SectionInfo& info = reader.sections()[idx];
  if (info.columns.size() != expected_columns) {
    return Status::InvalidArgument(
        "section \"" + std::string(name) + "\" has " +
        std::to_string(info.columns.size()) + " columns, expected " +
        std::to_string(expected_columns));
  }
  SectionCursors out;
  out.rows = info.row_count;
  for (size_t c = 0; c < expected_columns; ++c) {
    EMIGRE_ASSIGN_OR_RETURN(ColumnCursor cursor, reader.OpenColumn(idx, c));
    out.cols.push_back(std::move(cursor));
  }
  return out;
}

/// Completes every cursor, verifying payload CRCs.
Status FinishSection(SectionCursors* s) {
  for (ColumnCursor& c : s->cols) {
    EMIGRE_RETURN_IF_ERROR(c.Finish());
  }
  return Status::OK();
}

Status RowDecodeError(const SectionCursors& s, std::string_view section) {
  for (const ColumnCursor& c : s.cols) {
    if (!c.status().ok()) return c.status();
  }
  return Status::IOError("section \"" + std::string(section) +
                         "\" ended before its declared row count");
}

}  // namespace

Result<Dataset> LoadDatasetBin(const std::string& path) {
  EMIGRE_ASSIGN_OR_RETURN(BinReader reader, BinReader::Open(path));
  Dataset ds;
  {
    EMIGRE_ASSIGN_OR_RETURN(SectionCursors s,
                            OpenSection(reader, "categories", 2));
    ds.categories.reserve(s.rows);
    for (uint64_t r = 0; r < s.rows; ++r) {
      Category c;
      if (!s.cols[0].NextU32(&c.id) || !s.cols[1].NextStr(&c.name)) {
        return RowDecodeError(s, "categories");
      }
      ds.categories.push_back(std::move(c));
    }
    EMIGRE_RETURN_IF_ERROR(FinishSection(&s));
  }
  {
    EMIGRE_ASSIGN_OR_RETURN(SectionCursors s, OpenSection(reader, "items", 5));
    ds.items.reserve(s.rows);
    for (uint64_t r = 0; r < s.rows; ++r) {
      Item item;
      if (!s.cols[0].NextU32(&item.id) || !s.cols[1].NextStr(&item.name) ||
          !s.cols[2].NextU32(&item.category) ||
          !s.cols[3].NextF64(&item.popularity) ||
          !s.cols[4].NextF64(&item.quality)) {
        return RowDecodeError(s, "items");
      }
      ds.items.push_back(std::move(item));
    }
    EMIGRE_RETURN_IF_ERROR(FinishSection(&s));
  }
  {
    EMIGRE_ASSIGN_OR_RETURN(SectionCursors s, OpenSection(reader, "users", 5));
    ds.users.reserve(s.rows);
    std::vector<uint32_t> cats;
    std::vector<double> weights;
    for (uint64_t r = 0; r < s.rows; ++r) {
      User u;
      if (!s.cols[0].NextU32(&u.id) || !s.cols[1].NextStr(&u.name) ||
          !s.cols[2].NextF64(&u.rating_bias) ||
          !s.cols[3].NextListU32(&cats) || !s.cols[4].NextListF64(&weights)) {
        return RowDecodeError(s, "users");
      }
      if (cats.size() != weights.size()) {
        return Status::InvalidArgument(
            "users row has mismatched preference lists");
      }
      u.preferences.reserve(cats.size());
      for (size_t i = 0; i < cats.size(); ++i) {
        u.preferences.emplace_back(cats[i], weights[i]);
      }
      ds.users.push_back(std::move(u));
    }
    EMIGRE_RETURN_IF_ERROR(FinishSection(&s));
  }
  {
    EMIGRE_ASSIGN_OR_RETURN(SectionCursors s,
                            OpenSection(reader, "ratings", 3));
    ds.ratings.reserve(s.rows);
    for (uint64_t r = 0; r < s.rows; ++r) {
      Rating rating;
      if (!s.cols[0].NextU32(&rating.user) ||
          !s.cols[1].NextU32(&rating.item) ||
          !s.cols[2].NextI32(&rating.stars)) {
        return RowDecodeError(s, "ratings");
      }
      ds.ratings.push_back(rating);
    }
    EMIGRE_RETURN_IF_ERROR(FinishSection(&s));
  }
  {
    EMIGRE_ASSIGN_OR_RETURN(SectionCursors s,
                            OpenSection(reader, "reviews", 4));
    ds.reviews.reserve(s.rows);
    for (uint64_t r = 0; r < s.rows; ++r) {
      Review review;
      if (!s.cols[0].NextU32(&review.id) || !s.cols[1].NextU32(&review.user) ||
          !s.cols[2].NextU32(&review.item) ||
          !s.cols[3].NextListF32(&review.embedding)) {
        return RowDecodeError(s, "reviews");
      }
      ds.reviews.push_back(std::move(review));
    }
    EMIGRE_RETURN_IF_ERROR(FinishSection(&s));
  }
  return ds;
}

Result<Dataset> LoadDatasetAuto(const std::string& path,
                                const std::string& format) {
  if (format == "csv") return LoadDatasetCsv(path);
  if (format == "bin") return LoadDatasetBin(path);
  if (format != "auto") {
    return Status::InvalidArgument("unknown dataset format \"" + format +
                                   "\" (want auto|csv|bin)");
  }
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return LoadDatasetCsv(path);
  if (binfmt::SniffBinDataset(path)) return LoadDatasetBin(path);
  return Status::InvalidArgument(
      "cannot auto-detect dataset format of " + path +
      " (not a CSV directory, no emigre.bin magic)");
}

}  // namespace emigre::data
