#ifndef EMIGRE_DATA_BIN_IO_H_
#define EMIGRE_DATA_BIN_IO_H_

#include <string>
#include <vector>

#include "data/binfmt.h"
#include "data/schema.h"
#include "data/synthetic_amazon.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::data {

/// \brief Dataset <-> `emigre.bin.v1` container mapping.
///
/// One section per relation, mirroring the CSV layout (csv_io.h) so
/// `emigre convert` is lossless in both directions:
///   categories(id u32, name str)
///   items(id u32, name str, category u32, popularity f64, quality f64)
///   users(id u32, name str, rating_bias f64,
///         pref_cat list<u32>, pref_w list<f64>)
///   ratings(user u32, item u32, stars i32)
///   reviews(id u32, user u32, item u32, embedding list<f32>)

/// Column specs for each section, used by `SaveDatasetBin` and by the
/// streaming synthetic generator (which writes rows as it draws them and
/// never holds the dataset in memory).
std::vector<binfmt::ColumnSpec> CategoryColumns();
std::vector<binfmt::ColumnSpec> ItemColumns();
std::vector<binfmt::ColumnSpec> UserColumns();
std::vector<binfmt::ColumnSpec> RatingColumns();
std::vector<binfmt::ColumnSpec> ReviewColumns();

/// Row appenders (call between BeginSection/EndSection of the matching
/// section; each ends the row). `sect` is the handle BeginSection returned.
[[nodiscard]] Status AppendCategoryRow(binfmt::BinWriter* w, size_t sect,
                                       const Category& c);
[[nodiscard]] Status AppendItemRow(binfmt::BinWriter* w, size_t sect,
                                   const Item& item);
[[nodiscard]] Status AppendUserRow(binfmt::BinWriter* w, size_t sect,
                                   const User& u);
[[nodiscard]] Status AppendRatingRow(binfmt::BinWriter* w, size_t sect,
                                     const Rating& r);
[[nodiscard]] Status AppendReviewRow(binfmt::BinWriter* w, size_t sect,
                                     const Review& r);

/// Writes the dataset as a single `emigre.bin.v1` file.
[[nodiscard]] Status SaveDatasetBin(const Dataset& ds,
                                    const std::string& path);

/// \brief `DatasetSink` that streams rows straight into an `emigre.bin.v1`
/// file — the writer behind `emigre generate --format bin`.
///
/// Rows must arrive in the generator's phase order (categories, items,
/// users, then ratings/reviews); a row from an earlier phase after a later
/// one began returns InvalidArgument. The ratings and reviews sections stay
/// open simultaneously because their rows interleave; `BinWriter` buffers
/// each section's columns independently (spilling large ones to temp
/// files), so peak memory stays bounded regardless of dataset size.
///
/// Call `Finish()` exactly once after the last row; without it the file is
/// left truncated (no directory) and unreadable by design.
class BinDatasetSink : public DatasetSink {
 public:
  explicit BinDatasetSink(const std::string& path) : w_(path) {}

  [[nodiscard]] Status OnCategory(const Category& c) override;
  [[nodiscard]] Status OnItem(const Item& item) override;
  [[nodiscard]] Status OnUser(const User& u) override;
  [[nodiscard]] Status OnRating(const Rating& r) override;
  [[nodiscard]] Status OnReview(const Review& r) override;

  /// Closes every section (creating still-unopened ones empty, so all five
  /// are always present) and finalizes the container.
  [[nodiscard]] Status Finish();

 private:
  /// Phases follow the sink's row order; kRatingsReviews opens two
  /// sections at once.
  enum Phase : int {
    kNone = -1,
    kCategories = 0,
    kItems = 1,
    kUsers = 2,
    kRatingsReviews = 3,
  };

  /// Advances to `p`, closing finished sections and opening new ones.
  [[nodiscard]] Status EnsurePhase(Phase p);

  binfmt::BinWriter w_;
  Phase phase_ = kNone;
  size_t sect_[5] = {0, 0, 0, 0, 0};  ///< handles: cat/item/user/rating/review
};

/// Draws the synthetic dataset with `opts` and streams it to `path` as
/// `emigre.bin.v1` without materializing it (peak memory O(users + items)).
/// Row-identical to `SaveDatasetBin(GenerateSyntheticAmazon(opts), path)`.
[[nodiscard]] Status GenerateSyntheticAmazonBin(
    const SyntheticAmazonOptions& opts, const std::string& path);

/// Loads a dataset written by `SaveDatasetBin` (or the streaming
/// generator). Verifies every column checksum; corruption returns the
/// binfmt reader's typed errors.
[[nodiscard]] Result<Dataset> LoadDatasetBin(const std::string& path);

/// Loads a dataset from `path` in either format: a directory is CSV
/// (csv_io.h), a file with the binary magic is `emigre.bin.v1`. `format`
/// is "auto", "csv" or "bin".
[[nodiscard]] Result<Dataset> LoadDatasetAuto(const std::string& path,
                                              const std::string& format);

}  // namespace emigre::data

#endif  // EMIGRE_DATA_BIN_IO_H_
