#ifndef EMIGRE_DATA_CSV_IO_H_
#define EMIGRE_DATA_CSV_IO_H_

#include <string>

#include "data/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::data {

/// Writes the dataset as five CSV files under `dir` (created by the
/// caller): categories.csv, items.csv, users.csv, ratings.csv, reviews.csv.
/// The layout mirrors the public Amazon Customer Review dump's spirit
/// (one relation per file, header row first) so external tooling can
/// inspect the synthetic data.
[[nodiscard]] Status SaveDatasetCsv(const Dataset& ds, const std::string& dir);

/// Loads a dataset previously written by `SaveDatasetCsv`.
[[nodiscard]] Result<Dataset> LoadDatasetCsv(const std::string& dir);

}  // namespace emigre::data

#endif  // EMIGRE_DATA_CSV_IO_H_
