#include "data/dataset_to_csr.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "data/bin_io.h"
#include "data/binfmt.h"
#include "graph/csr.h"
#include "graph/csr_snapshot.h"
#include "graph/types.h"
#include "util/string_util.h"

namespace emigre::data {

namespace {

using binfmt::BinReader;
using binfmt::ColumnCursor;
using graph::EdgeTypeId;
using graph::NodeId;
using graph::NodeTypeId;

// Schema ids in `BuildAmazonLite`'s registration order — the converter
// reproduces them positionally so the snapshot's type tables match.
constexpr NodeTypeId kUserType = 0;
constexpr NodeTypeId kItemType = 1;
constexpr NodeTypeId kReviewType = 2;
constexpr NodeTypeId kCategoryType = 3;
constexpr EdgeTypeId kRated = 0;
constexpr EdgeTypeId kReviewed = 1;
constexpr EdgeTypeId kHasReview = 2;
constexpr EdgeTypeId kBelongsTo = 3;

constexpr uint32_t kUnassigned = 0xFFFFFFFFu;

/// Cursors over a subset of a section's columns (the converter never opens
/// the ones it does not need — notably the review embeddings).
struct Cursors {
  uint64_t rows = 0;
  std::vector<ColumnCursor> cols;
};

Result<Cursors> OpenCols(const BinReader& reader, std::string_view section,
                         size_t expected_columns,
                         std::initializer_list<size_t> wanted) {
  EMIGRE_ASSIGN_OR_RETURN(size_t idx, reader.FindSection(section));
  const binfmt::SectionInfo& info = reader.sections()[idx];
  if (info.columns.size() != expected_columns) {
    return Status::InvalidArgument(
        "section \"" + std::string(section) + "\" has " +
        std::to_string(info.columns.size()) + " columns, expected " +
        std::to_string(expected_columns));
  }
  Cursors out;
  out.rows = info.row_count;
  for (size_t c : wanted) {
    EMIGRE_ASSIGN_OR_RETURN(ColumnCursor cursor, reader.OpenColumn(idx, c));
    out.cols.push_back(std::move(cursor));
  }
  return out;
}

/// Completes every cursor, verifying the column CRCs.
Status FinishCols(Cursors* s) {
  for (ColumnCursor& c : s->cols) {
    EMIGRE_RETURN_IF_ERROR(c.Finish());
  }
  return Status::OK();
}

Status ShortSection(std::string_view section, const Cursors& s) {
  for (const ColumnCursor& c : s.cols) {
    if (!c.status().ok()) return c.status();
  }
  return Status::IOError("section \"" + std::string(section) +
                         "\" ended before its declared row count");
}

/// Registers `id -> position`; dense unique ids only (mirrors the
/// `nodes[id] = AddNode(...)` indexing in BuildAmazonLite).
Status AssignPos(std::vector<uint32_t>* pos, uint32_t id,
                 uint32_t position, std::string_view what) {
  if (id >= pos->size()) {
    return Status::InvalidArgument(
        StrFormat("%s id %u out of range (section has %zu rows)",
                  std::string(what).c_str(), id, pos->size()));
  }
  if ((*pos)[id] != kUnassigned) {
    return Status::InvalidArgument(StrFormat(
        "duplicate %s id %u", std::string(what).c_str(), id));
  }
  (*pos)[id] = position;
  return Status::OK();
}

uint64_t PairKey(uint32_t user, uint32_t item) {
  return (static_cast<uint64_t>(user) << 32) | item;
}

}  // namespace

Result<DatasetToCsrStats> ConvertBinDatasetToCsrSnapshot(
    const std::string& bin_path, const std::string& out_path,
    const DatasetToCsrOptions& opts) {
  EMIGRE_ASSIGN_OR_RETURN(BinReader reader, BinReader::Open(bin_path));

  // --- Entity pass: ids, names, item->category -------------------------------
  EMIGRE_ASSIGN_OR_RETURN(Cursors cats,
                          OpenCols(reader, "categories", 2, {0, 1}));
  const uint64_t num_categories = cats.rows;
  std::vector<uint32_t> cat_pos(num_categories, kUnassigned);
  std::vector<std::string> cat_names(num_categories);
  for (uint64_t r = 0; r < num_categories; ++r) {
    uint32_t id = 0;
    std::string name;
    if (!cats.cols[0].NextU32(&id) || !cats.cols[1].NextStr(&name)) {
      return ShortSection("categories", cats);
    }
    EMIGRE_RETURN_IF_ERROR(
        AssignPos(&cat_pos, id, static_cast<uint32_t>(r), "category"));
    cat_names[r] = std::move(name);
  }
  EMIGRE_RETURN_IF_ERROR(FinishCols(&cats));

  EMIGRE_ASSIGN_OR_RETURN(Cursors items,
                          OpenCols(reader, "items", 5, {0, 1, 2}));
  const uint64_t num_items = items.rows;
  std::vector<uint32_t> item_pos(num_items, kUnassigned);
  std::vector<std::string> item_names(num_items);
  std::vector<uint32_t> item_cat(num_items);  ///< category *position*
  for (uint64_t r = 0; r < num_items; ++r) {
    uint32_t id = 0, cat = 0;
    std::string name;
    if (!items.cols[0].NextU32(&id) || !items.cols[1].NextStr(&name) ||
        !items.cols[2].NextU32(&cat)) {
      return ShortSection("items", items);
    }
    EMIGRE_RETURN_IF_ERROR(
        AssignPos(&item_pos, id, static_cast<uint32_t>(r), "item"));
    if (cat >= num_categories || cat_pos[cat] == kUnassigned) {
      return Status::InvalidArgument(
          StrFormat("item %u references unknown category %u", id, cat));
    }
    item_names[r] = std::move(name);
    item_cat[r] = cat_pos[cat];
  }
  EMIGRE_RETURN_IF_ERROR(FinishCols(&items));

  EMIGRE_ASSIGN_OR_RETURN(Cursors users, OpenCols(reader, "users", 5, {0, 1}));
  const uint64_t num_users = users.rows;
  std::vector<uint32_t> user_pos(num_users, kUnassigned);
  std::vector<std::string> user_names(num_users);
  for (uint64_t r = 0; r < num_users; ++r) {
    uint32_t id = 0;
    std::string name;
    if (!users.cols[0].NextU32(&id) || !users.cols[1].NextStr(&name)) {
      return ShortSection("users", users);
    }
    EMIGRE_RETURN_IF_ERROR(
        AssignPos(&user_pos, id, static_cast<uint32_t>(r), "user"));
    user_names[r] = std::move(name);
  }
  EMIGRE_RETURN_IF_ERROR(FinishCols(&users));

  // Node layout — users, items, categories, then kept reviews, exactly the
  // AddNode order of BuildAmazonLite.
  const uint64_t item_base = num_users;
  const uint64_t cat_base = num_users + num_items;
  const uint64_t review_base = cat_base + num_categories;

  auto user_node = [&](uint32_t id) -> Result<NodeId> {
    if (id >= num_users || user_pos[id] == kUnassigned) {
      return Status::InvalidArgument(StrFormat("unknown user id %u", id));
    }
    return static_cast<NodeId>(user_pos[id]);
  };
  auto item_node = [&](uint32_t id) -> Result<NodeId> {
    if (id >= num_items || item_pos[id] == kUnassigned) {
      return Status::InvalidArgument(StrFormat("unknown item id %u", id));
    }
    return static_cast<NodeId>(item_base + item_pos[id]);
  };

  // --- Degree pass -----------------------------------------------------------
  // Count every edge event's endpoint degrees without storing the events.
  // Kept review nodes are excluded from these arrays: each has exactly one
  // in-edge ("has-review") and, when bidirectional, one out-edge.
  std::vector<uint64_t> deg_out(review_base, 0);
  std::vector<uint64_t> deg_in(review_base, 0);
  const bool bidi = opts.bidirectional;
  auto count_link = [&](NodeId a, NodeId b) {
    ++deg_out[a];
    ++deg_in[b];
    if (bidi) {
      ++deg_out[b];
      ++deg_in[a];
    }
  };

  DatasetToCsrStats stats;
  stats.num_users = num_users;
  stats.num_items = num_items;
  stats.num_categories = num_categories;

  std::vector<uint64_t> kept_pairs;  ///< (user, item) keys of kept ratings
  {
    EMIGRE_ASSIGN_OR_RETURN(Cursors ratings,
                            OpenCols(reader, "ratings", 3, {0, 1, 2}));
    for (uint64_t r = 0; r < ratings.rows; ++r) {
      uint32_t u = 0, i = 0;
      int32_t stars = 0;
      if (!ratings.cols[0].NextU32(&u) || !ratings.cols[1].NextU32(&i) ||
          !ratings.cols[2].NextI32(&stars)) {
        return ShortSection("ratings", ratings);
      }
      if (stars <= opts.min_stars_exclusive) continue;
      EMIGRE_ASSIGN_OR_RETURN(NodeId un, user_node(u));
      EMIGRE_ASSIGN_OR_RETURN(NodeId in, item_node(i));
      kept_pairs.push_back(PairKey(u, i));
      count_link(un, in);
    }
    EMIGRE_RETURN_IF_ERROR(FinishCols(&ratings));
  }
  stats.kept_ratings = kept_pairs.size();
  std::sort(kept_pairs.begin(), kept_pairs.end());
  if (std::adjacent_find(kept_pairs.begin(), kept_pairs.end()) !=
      kept_pairs.end()) {
    // BuildAmazonLite surfaces this as AddEdge's AlreadyExists; match it.
    return Status::AlreadyExists("duplicate kept (user, item) rating pair");
  }
  auto pair_kept = [&](uint32_t u, uint32_t i) {
    return std::binary_search(kept_pairs.begin(), kept_pairs.end(),
                              PairKey(u, i));
  };

  std::vector<uint32_t> kept_review_ids;  ///< dataset ids, file order
  {
    EMIGRE_ASSIGN_OR_RETURN(Cursors reviews,
                            OpenCols(reader, "reviews", 4, {0, 1, 2}));
    std::vector<uint64_t> review_pairs;
    for (uint64_t r = 0; r < reviews.rows; ++r) {
      uint32_t id = 0, u = 0, i = 0;
      if (!reviews.cols[0].NextU32(&id) || !reviews.cols[1].NextU32(&u) ||
          !reviews.cols[2].NextU32(&i)) {
        return ShortSection("reviews", reviews);
      }
      if (!pair_kept(u, i)) continue;
      EMIGRE_ASSIGN_OR_RETURN(NodeId un, user_node(u));
      EMIGRE_ASSIGN_OR_RETURN(NodeId in, item_node(i));
      kept_review_ids.push_back(id);
      review_pairs.push_back(PairKey(u, i));
      count_link(un, in);  // "reviewed"
      ++deg_out[in];       // "has-review" toward the review node
      if (bidi) ++deg_in[in];
    }
    EMIGRE_RETURN_IF_ERROR(FinishCols(&reviews));
    std::sort(review_pairs.begin(), review_pairs.end());
    if (std::adjacent_find(review_pairs.begin(), review_pairs.end()) !=
        review_pairs.end()) {
      return Status::AlreadyExists(
          "multiple kept reviews share a (user, item) pair");
    }
  }
  stats.kept_reviews = kept_review_ids.size();

  for (uint64_t i = 0; i < num_items; ++i) {  // "belongs-to"
    count_link(static_cast<NodeId>(item_base + i),
               static_cast<NodeId>(cat_base + item_cat[i]));
  }

  // --- Columns ---------------------------------------------------------------
  const uint64_t num_nodes = review_base + stats.kept_reviews;
  const uint64_t review_out = bidi ? 1 : 0;
  uint64_t num_edges = 0;
  for (uint64_t d : deg_out) num_edges += d;
  num_edges += stats.kept_reviews * review_out;
  stats.num_nodes = num_nodes;
  stats.num_edges = num_edges;

  std::vector<NodeTypeId> node_type(num_nodes);
  std::vector<double> out_weight(num_nodes);
  std::vector<uint64_t> out_offsets(num_nodes + 1, 0);
  std::vector<uint64_t> in_offsets(num_nodes + 1, 0);
  for (uint64_t n = 0; n < num_nodes; ++n) {
    if (n < item_base) {
      node_type[n] = kUserType;
    } else if (n < cat_base) {
      node_type[n] = kItemType;
    } else if (n < review_base) {
      node_type[n] = kCategoryType;
    } else {
      node_type[n] = kReviewType;
    }
    const uint64_t od = n < review_base ? deg_out[n] : review_out;
    const uint64_t id = n < review_base ? deg_in[n] : 1;
    out_weight[n] = static_cast<double>(od);  // every edge weighs 1.0
    out_offsets[n + 1] = out_offsets[n] + od;
    in_offsets[n + 1] = in_offsets[n] + id;
  }
  deg_out = std::vector<uint64_t>();  // replay re-counts via next_out/next_in
  deg_in = std::vector<uint64_t>();

  std::vector<NodeId> out_dst(num_edges);
  std::vector<EdgeTypeId> out_type(num_edges);
  std::vector<double> out_w(num_edges);
  std::vector<NodeId> in_src(num_edges);
  std::vector<EdgeTypeId> in_type(num_edges);
  std::vector<double> in_w(num_edges);
  std::vector<uint64_t> next_out(num_nodes, 0);
  std::vector<uint64_t> next_in(num_nodes, 0);

  // --- Fill pass -------------------------------------------------------------
  // Replaying the identical global event order reproduces HinGraph's
  // per-node adjacency-list order (each AddEdge appends to one out-list
  // and one in-list), hence the exact CSR the HinGraph route serializes.
  auto emit = [&](NodeId src, NodeId dst, EdgeTypeId type) {
    const uint64_t p = out_offsets[src] + next_out[src]++;
    out_dst[p] = dst;
    out_type[p] = type;
    out_w[p] = 1.0;
    const uint64_t q = in_offsets[dst] + next_in[dst]++;
    in_src[q] = src;
    in_type[q] = type;
    in_w[q] = 1.0;
  };
  auto link = [&](NodeId a, NodeId b, EdgeTypeId type) {
    emit(a, b, type);
    if (bidi) emit(b, a, type);
  };

  {
    EMIGRE_ASSIGN_OR_RETURN(Cursors ratings,
                            OpenCols(reader, "ratings", 3, {0, 1, 2}));
    for (uint64_t r = 0; r < ratings.rows; ++r) {
      uint32_t u = 0, i = 0;
      int32_t stars = 0;
      if (!ratings.cols[0].NextU32(&u) || !ratings.cols[1].NextU32(&i) ||
          !ratings.cols[2].NextI32(&stars)) {
        return ShortSection("ratings", ratings);
      }
      if (stars <= opts.min_stars_exclusive) continue;
      link(static_cast<NodeId>(user_pos[u]),
           static_cast<NodeId>(item_base + item_pos[i]), kRated);
    }
  }
  {
    EMIGRE_ASSIGN_OR_RETURN(Cursors reviews,
                            OpenCols(reader, "reviews", 4, {1, 2}));
    uint64_t next_review = 0;
    for (uint64_t r = 0; r < reviews.rows; ++r) {
      uint32_t u = 0, i = 0;
      if (!reviews.cols[0].NextU32(&u) || !reviews.cols[1].NextU32(&i)) {
        return ShortSection("reviews", reviews);
      }
      if (!pair_kept(u, i)) continue;
      const NodeId rn = static_cast<NodeId>(review_base + next_review++);
      const NodeId in = static_cast<NodeId>(item_base + item_pos[i]);
      link(static_cast<NodeId>(user_pos[u]), in, kReviewed);
      link(in, rn, kHasReview);
    }
  }
  for (uint64_t i = 0; i < num_items; ++i) {
    link(static_cast<NodeId>(item_base + i),
         static_cast<NodeId>(cat_base + item_cat[i]), kBelongsTo);
  }

  // --- Snapshot --------------------------------------------------------------
  graph::CsrGraph::Columns cols;
  cols.num_nodes = num_nodes;
  cols.num_edges = num_edges;
  cols.node_type = node_type.data();
  cols.out_weight = out_weight.data();
  cols.out_offsets = out_offsets.data();
  cols.out_dst = out_dst.data();
  cols.out_type = out_type.data();
  cols.out_w = out_w.data();
  cols.in_offsets = in_offsets.data();
  cols.in_src = in_src.data();
  cols.in_type = in_type.data();
  cols.in_w = in_w.data();
  const graph::CsrGraph csr =
      graph::CsrGraph::Alias(cols, std::shared_ptr<const void>());

  graph::SnapshotMeta meta;
  meta.node_type_names = {"user", "item", "review", "category"};
  meta.edge_type_names = {"rated", "reviewed", "has-review", "belongs-to",
                          "similar-review"};
  meta.label = [&](NodeId n) -> std::string {
    if (n < item_base) return user_names[n];
    if (n < cat_base) return item_names[n - item_base];
    if (n < review_base) return cat_names[n - cat_base];
    return StrFormat("review-%05u", kept_review_ids[n - review_base]);
  };
  EMIGRE_RETURN_IF_ERROR(graph::WriteCsrSnapshot(csr, meta, out_path));
  return stats;
}

}  // namespace emigre::data
