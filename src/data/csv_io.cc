#include "data/csv_io.h"

#include "fault/fault.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace emigre::data {

namespace {

std::string EncodeFloats(const std::vector<float>& v) {
  std::vector<std::string> parts;
  parts.reserve(v.size());
  for (float x : v) parts.push_back(StrFormat("%.8g", x));
  return Join(parts, ";");
}

Result<std::vector<float>> DecodeFloats(const std::string& s) {
  std::vector<float> out;
  if (s.empty()) return out;
  for (const std::string& part : Split(s, ';')) {
    double v = 0.0;
    if (!ParseDouble(part, &v)) {
      return Status::InvalidArgument("bad embedding component: " + part);
    }
    out.push_back(static_cast<float>(v));
  }
  return out;
}

Result<int64_t> FieldInt(const std::vector<std::string>& row, size_t i) {
  int64_t v = 0;
  if (i >= row.size() || !ParseInt64(row[i], &v)) {
    return Status::InvalidArgument(
        StrFormat("bad integer field %zu", i));
  }
  return v;
}

Result<double> FieldDouble(const std::vector<std::string>& row, size_t i) {
  double v = 0.0;
  if (i >= row.size() || !ParseDouble(row[i], &v)) {
    return Status::InvalidArgument(StrFormat("bad double field %zu", i));
  }
  return v;
}

/// The row-count comment SaveDatasetCsv writes ahead of the header so
/// loaders can reserve their vectors up front ("# rows=N"). External CSVs
/// without the line load fine — it is an optimization hint, not schema.
constexpr std::string_view kRowCountPrefix = "# rows=";

/// Consumes the optional "# rows=N" comment and the header row, failing
/// loudly when the file is empty or the read errors — an absent header used
/// to be silently skipped, making a truncated file indistinguishable from
/// an empty dataset. Returns the declared row count (0 when absent or
/// unparsable; a malformed hint is ignored, never fatal).
Result<uint64_t> ReadHeader(CsvReader* r, const std::string& file) {
  std::vector<std::string> header;
  if (!r->ReadRow(&header)) {
    EMIGRE_RETURN_IF_ERROR(r->status());
    return Status::InvalidArgument("missing header row in " + file);
  }
  uint64_t declared = 0;
  if (!header.empty() && header[0].rfind(kRowCountPrefix, 0) == 0) {
    int64_t v = 0;
    if (ParseInt64(header[0].substr(kRowCountPrefix.size()), &v) && v >= 0) {
      declared = static_cast<uint64_t>(v);
    }
    if (!r->ReadRow(&header)) {
      EMIGRE_RETURN_IF_ERROR(r->status());
      return Status::InvalidArgument("missing header row in " + file);
    }
  }
  return declared;
}

Status WriteRowCount(CsvWriter* w, size_t rows) {
  return w->WriteRow({StrFormat("# rows=%zu", rows)});
}

}  // namespace

Status SaveDatasetCsv(const Dataset& ds, const std::string& dir) {
  {
    CsvWriter w(dir + "/categories.csv");
    EMIGRE_RETURN_IF_ERROR(w.status());
    EMIGRE_RETURN_IF_ERROR(WriteRowCount(&w, ds.categories.size()));
    EMIGRE_RETURN_IF_ERROR(w.WriteRow({"id", "name"}));
    for (const Category& c : ds.categories) {
      EMIGRE_RETURN_IF_ERROR(w.WriteRow({StrFormat("%u", c.id), c.name}));
    }
    EMIGRE_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(dir + "/items.csv");
    EMIGRE_RETURN_IF_ERROR(w.status());
    EMIGRE_RETURN_IF_ERROR(WriteRowCount(&w, ds.items.size()));
    EMIGRE_RETURN_IF_ERROR(
        w.WriteRow({"id", "name", "category", "popularity", "quality"}));
    for (const Item& i : ds.items) {
      EMIGRE_RETURN_IF_ERROR(w.WriteRow(
          {StrFormat("%u", i.id), i.name, StrFormat("%u", i.category),
           StrFormat("%.10g", i.popularity), StrFormat("%.10g", i.quality)}));
    }
    EMIGRE_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(dir + "/users.csv");
    EMIGRE_RETURN_IF_ERROR(w.status());
    EMIGRE_RETURN_IF_ERROR(WriteRowCount(&w, ds.users.size()));
    EMIGRE_RETURN_IF_ERROR(
        w.WriteRow({"id", "name", "rating_bias", "preferences"}));
    for (const User& u : ds.users) {
      std::vector<std::string> prefs;
      for (const auto& [c, wgt] : u.preferences) {
        prefs.push_back(StrFormat("%u:%.10g", c, wgt));
      }
      EMIGRE_RETURN_IF_ERROR(
          w.WriteRow({StrFormat("%u", u.id), u.name,
                      StrFormat("%.10g", u.rating_bias), Join(prefs, ";")}));
    }
    EMIGRE_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(dir + "/ratings.csv");
    EMIGRE_RETURN_IF_ERROR(w.status());
    EMIGRE_RETURN_IF_ERROR(WriteRowCount(&w, ds.ratings.size()));
    EMIGRE_RETURN_IF_ERROR(w.WriteRow({"user", "item", "stars"}));
    for (const Rating& r : ds.ratings) {
      EMIGRE_RETURN_IF_ERROR(w.WriteRow({StrFormat("%u", r.user),
                                         StrFormat("%u", r.item),
                                         StrFormat("%d", r.stars)}));
    }
    EMIGRE_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(dir + "/reviews.csv");
    EMIGRE_RETURN_IF_ERROR(w.status());
    EMIGRE_RETURN_IF_ERROR(WriteRowCount(&w, ds.reviews.size()));
    EMIGRE_RETURN_IF_ERROR(w.WriteRow({"id", "user", "item", "embedding"}));
    for (const Review& r : ds.reviews) {
      EMIGRE_RETURN_IF_ERROR(
          w.WriteRow({StrFormat("%u", r.id), StrFormat("%u", r.user),
                      StrFormat("%u", r.item), EncodeFloats(r.embedding)}));
    }
    EMIGRE_RETURN_IF_ERROR(w.Close());
  }
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& dir) {
  EMIGRE_FAULT_POINT_STATUS("data.load_dataset");
  Dataset ds;
  std::vector<std::string> row;
  {
    CsvReader r(dir + "/categories.csv");
    EMIGRE_RETURN_IF_ERROR(r.status());
    EMIGRE_ASSIGN_OR_RETURN(uint64_t declared_rows,
                            ReadHeader(&r, dir + "/categories.csv"));
    ds.categories.reserve(declared_rows);
    while (r.ReadRow(&row)) {
      EMIGRE_ASSIGN_OR_RETURN(int64_t id, FieldInt(row, 0));
      ds.categories.push_back(
          Category{static_cast<CategoryId>(id), row.size() > 1 ? row[1] : ""});
    }
    EMIGRE_RETURN_IF_ERROR(r.status());
  }
  {
    CsvReader r(dir + "/items.csv");
    EMIGRE_RETURN_IF_ERROR(r.status());
    EMIGRE_ASSIGN_OR_RETURN(uint64_t declared_rows,
                            ReadHeader(&r, dir + "/items.csv"));
    ds.items.reserve(declared_rows);
    while (r.ReadRow(&row)) {
      Item item;
      EMIGRE_ASSIGN_OR_RETURN(int64_t id, FieldInt(row, 0));
      item.id = static_cast<ItemId>(id);
      item.name = row.size() > 1 ? row[1] : "";
      EMIGRE_ASSIGN_OR_RETURN(int64_t cat, FieldInt(row, 2));
      item.category = static_cast<CategoryId>(cat);
      EMIGRE_ASSIGN_OR_RETURN(item.popularity, FieldDouble(row, 3));
      EMIGRE_ASSIGN_OR_RETURN(item.quality, FieldDouble(row, 4));
      ds.items.push_back(std::move(item));
    }
    EMIGRE_RETURN_IF_ERROR(r.status());
  }
  {
    CsvReader r(dir + "/users.csv");
    EMIGRE_RETURN_IF_ERROR(r.status());
    EMIGRE_ASSIGN_OR_RETURN(uint64_t declared_rows,
                            ReadHeader(&r, dir + "/users.csv"));
    ds.users.reserve(declared_rows);
    while (r.ReadRow(&row)) {
      User u;
      EMIGRE_ASSIGN_OR_RETURN(int64_t id, FieldInt(row, 0));
      u.id = static_cast<UserId>(id);
      u.name = row.size() > 1 ? row[1] : "";
      EMIGRE_ASSIGN_OR_RETURN(u.rating_bias, FieldDouble(row, 2));
      if (row.size() > 3 && !row[3].empty()) {
        for (const std::string& pref : Split(row[3], ';')) {
          std::vector<std::string> kv = Split(pref, ':');
          if (kv.size() != 2) {
            return Status::InvalidArgument("bad preference: " + pref);
          }
          int64_t c = 0;
          double wgt = 0.0;
          if (!ParseInt64(kv[0], &c) || !ParseDouble(kv[1], &wgt)) {
            return Status::InvalidArgument("bad preference: " + pref);
          }
          u.preferences.emplace_back(static_cast<CategoryId>(c), wgt);
        }
      }
      ds.users.push_back(std::move(u));
    }
    EMIGRE_RETURN_IF_ERROR(r.status());
  }
  {
    CsvReader r(dir + "/ratings.csv");
    EMIGRE_RETURN_IF_ERROR(r.status());
    EMIGRE_ASSIGN_OR_RETURN(uint64_t declared_rows,
                            ReadHeader(&r, dir + "/ratings.csv"));
    ds.ratings.reserve(declared_rows);
    while (r.ReadRow(&row)) {
      Rating rating;
      EMIGRE_ASSIGN_OR_RETURN(int64_t u, FieldInt(row, 0));
      EMIGRE_ASSIGN_OR_RETURN(int64_t i, FieldInt(row, 1));
      EMIGRE_ASSIGN_OR_RETURN(int64_t s, FieldInt(row, 2));
      rating.user = static_cast<UserId>(u);
      rating.item = static_cast<ItemId>(i);
      rating.stars = static_cast<int>(s);
      ds.ratings.push_back(rating);
    }
    EMIGRE_RETURN_IF_ERROR(r.status());
  }
  {
    CsvReader r(dir + "/reviews.csv");
    EMIGRE_RETURN_IF_ERROR(r.status());
    EMIGRE_ASSIGN_OR_RETURN(uint64_t declared_rows,
                            ReadHeader(&r, dir + "/reviews.csv"));
    ds.reviews.reserve(declared_rows);
    while (r.ReadRow(&row)) {
      Review review;
      EMIGRE_ASSIGN_OR_RETURN(int64_t id, FieldInt(row, 0));
      EMIGRE_ASSIGN_OR_RETURN(int64_t u, FieldInt(row, 1));
      EMIGRE_ASSIGN_OR_RETURN(int64_t i, FieldInt(row, 2));
      review.id = static_cast<ReviewId>(id);
      review.user = static_cast<UserId>(u);
      review.item = static_cast<ItemId>(i);
      EMIGRE_ASSIGN_OR_RETURN(review.embedding,
                              DecodeFloats(row.size() > 3 ? row[3] : ""));
      ds.reviews.push_back(std::move(review));
    }
    EMIGRE_RETURN_IF_ERROR(r.status());
  }
  return ds;
}

}  // namespace emigre::data
