#ifndef EMIGRE_DATA_BINFMT_H_
#define EMIGRE_DATA_BINFMT_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/crc32.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::data::binfmt {

/// \brief The `emigre.bin.v1` typed-column binary container
/// (docs/data_format.md).
///
/// A file is a fixed header followed by a sequence of named sections. Each
/// section is a row-count, a list of typed column descriptors, and the
/// column payloads stored column-after-column. Scalar columns are
/// little-endian fixed-width values; string and list columns are
/// length-prefixed pools (u32 count, then the bytes/elements). Every column
/// carries a CRC-32 of its payload and every section checksums its own
/// metadata block, so truncation and bit rot surface as typed errors
/// instead of garbage datasets.
///
/// Both the writer and the reader stream: the writer spills large columns
/// to temporary files instead of holding them in memory, and the reader
/// hands out per-column cursors that decode cell by cell. Neither ever
/// materializes a whole file.

/// Cell element types. Values are stable on-disk identifiers — append only.
enum class Dtype : uint32_t {
  kU8 = 1,
  kU16 = 2,
  kU32 = 3,
  kU64 = 4,
  kI32 = 5,
  kF32 = 6,
  kF64 = 7,
  /// Length-prefixed byte string (u32 length + raw bytes per cell).
  kStr = 8,
};

/// Human-readable dtype name ("u32", "str", ...).
std::string_view DtypeName(Dtype dtype);

/// Bytes per element for fixed-width dtypes; 0 for kStr.
size_t DtypeWidth(Dtype dtype);

/// \brief Declares one column of a section when writing.
struct ColumnSpec {
  std::string name;
  Dtype dtype = Dtype::kU32;
  /// When true each cell is a length-prefixed list of `dtype` elements
  /// (u32 count + elements). kStr cannot be a list element type.
  bool is_list = false;
};

// --- On-disk structs ---------------------------------------------------------
//
// Every struct serialized to disk is named *OnDisk and static_assert-ed on
// exact size and trivial copyability (tools/lint.py rule `ondisk-assert`),
// so a compiler or refactor cannot silently change the file format.

/// File header, at offset 0.
struct HeaderOnDisk {
  char magic[8];          ///< "EMGRBIN1"
  uint32_t version;       ///< 1
  uint32_t endian;        ///< kEndianTag as written by a little-endian host
  uint32_t section_count; ///< number of sections that follow
  uint32_t header_crc;    ///< CRC-32 of the preceding 20 bytes
};
static_assert(sizeof(HeaderOnDisk) == 24);
static_assert(std::is_trivially_copyable_v<HeaderOnDisk>);

/// Fixed part of a section header (preceded by the u32-length-prefixed
/// section name, followed by the column descriptors).
struct SectionOnDisk {
  uint64_t row_count;     ///< rows in this section
  uint64_t payload_bytes; ///< total bytes of all column payloads
  uint32_t column_count;  ///< descriptors that follow
  uint32_t section_crc;   ///< CRC-32 of the metadata block, this field as 0
};
static_assert(sizeof(SectionOnDisk) == 24);
static_assert(std::is_trivially_copyable_v<SectionOnDisk>);

/// Fixed part of a column descriptor (preceded by the u32-length-prefixed
/// column name).
struct ColumnOnDisk {
  uint64_t payload_bytes; ///< bytes of this column's payload
  uint64_t value_count;   ///< total elements (rows, or summed list lengths)
  uint32_t dtype;         ///< Dtype
  uint32_t is_list;       ///< 0 scalar, 1 list
  uint32_t payload_crc;   ///< CRC-32 of the payload bytes
  uint32_t reserved;      ///< 0
};
static_assert(sizeof(ColumnOnDisk) == 32);
static_assert(std::is_trivially_copyable_v<ColumnOnDisk>);

inline constexpr char kMagic[8] = {'E', 'M', 'G', 'R', 'B', 'I', 'N', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kEndianTag = 0x01020304u;

/// True when the first bytes of `path` carry the dataset magic. Used for
/// `--format=auto` sniffing; IO errors read as "not binary".
bool SniffBinDataset(const std::string& path);

// --- Writer ------------------------------------------------------------------

/// \brief Streaming writer. Append cells row-major (`Append* ... EndRow`).
///
/// Sections are addressed by the handle `BeginSection` returns, and any
/// number may be open at once — producers that interleave relations (the
/// synthetic generator emits ratings and reviews in the same pass) stream
/// rows into both. Column payloads accumulate in per-column buffers that
/// spill to temporary files above the threshold; `EndSection` writes the
/// section's metadata block followed by its payloads, so sections land in
/// the file in `EndSection` order.
class BinWriter {
 public:
  /// Default per-column in-memory buffer before spilling to a temp file.
  static constexpr size_t kDefaultSpillBytes = 4u << 20;

  /// Opens `path` for (over)writing. Check `status()` before use.
  explicit BinWriter(const std::string& path,
                     size_t spill_threshold_bytes = kDefaultSpillBytes);
  ~BinWriter();

  BinWriter(const BinWriter&) = delete;
  BinWriter& operator=(const BinWriter&) = delete;

  [[nodiscard]] Status status() const { return status_; }

  /// Starts a section and returns its handle. Columns are addressed by
  /// index in `columns` order.
  [[nodiscard]] Result<size_t> BeginSection(std::string_view name,
                                            std::vector<ColumnSpec> columns);

  /// Cell appends; the dtype must match the column spec exactly.
  [[nodiscard]] Status AppendU8(size_t sect, size_t col, uint8_t v);
  [[nodiscard]] Status AppendU16(size_t sect, size_t col, uint16_t v);
  [[nodiscard]] Status AppendU32(size_t sect, size_t col, uint32_t v);
  [[nodiscard]] Status AppendU64(size_t sect, size_t col, uint64_t v);
  [[nodiscard]] Status AppendI32(size_t sect, size_t col, int32_t v);
  [[nodiscard]] Status AppendF32(size_t sect, size_t col, float v);
  [[nodiscard]] Status AppendF64(size_t sect, size_t col, double v);
  [[nodiscard]] Status AppendStr(size_t sect, size_t col, std::string_view s);
  [[nodiscard]] Status AppendListU32(size_t sect, size_t col,
                                     const uint32_t* v, size_t n);
  [[nodiscard]] Status AppendListF32(size_t sect, size_t col, const float* v,
                                     size_t n);
  [[nodiscard]] Status AppendListF64(size_t sect, size_t col, const double* v,
                                     size_t n);

  /// Ends the section's current row; every column must have received
  /// exactly one cell since the previous EndRow.
  [[nodiscard]] Status EndRow(size_t sect);

  /// Flushes the section: writes its metadata block, then streams the
  /// buffered/spilled column payloads into the file.
  [[nodiscard]] Status EndSection(size_t sect);

  /// Patches the header (section count + CRC) and closes the file. Every
  /// section must have been ended.
  [[nodiscard]] Status Finish();

 private:
  struct ColumnSink;
  struct SectionState;

  [[nodiscard]] Status AppendCell(size_t sect, size_t col, Dtype dtype,
                                  bool is_list, const void* data, size_t bytes,
                                  uint64_t elements);

  std::string path_;
  size_t spill_threshold_;
  std::ofstream out_;
  Status status_;
  uint32_t sections_written_ = 0;
  bool finished_ = false;
  std::vector<std::unique_ptr<SectionState>> sections_;
};

// --- Reader ------------------------------------------------------------------

/// Parsed column descriptor plus its payload location.
struct ColumnInfo {
  std::string name;
  Dtype dtype = Dtype::kU32;
  bool is_list = false;
  uint64_t payload_bytes = 0;
  uint64_t value_count = 0;
  uint32_t payload_crc = 0;
  uint64_t file_offset = 0;  ///< absolute offset of the payload
};

/// Parsed section directory entry.
struct SectionInfo {
  std::string name;
  uint64_t row_count = 0;
  uint64_t payload_bytes = 0;
  std::vector<ColumnInfo> columns;
};

class ColumnCursor;

/// \brief Opens a file and parses the section directory (headers only; no
/// payload is read). Hand out `ColumnCursor`s to stream payloads.
class BinReader {
 public:
  /// Parses the header and every section's metadata block. Corruption maps
  /// to typed errors: bad magic/version/CRC -> InvalidArgument, truncation
  /// or read failure -> IOError.
  [[nodiscard]] static Result<BinReader> Open(const std::string& path);

  const std::string& path() const { return path_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// Section lookup by name; NotFound when absent.
  [[nodiscard]] Result<size_t> FindSection(std::string_view name) const;

  /// Streams the payload of one column. The cursor owns its own stream, so
  /// any number can be open at once (row-major iteration opens one per
  /// column).
  [[nodiscard]] Result<ColumnCursor> OpenColumn(size_t section,
                                                size_t column) const;

 private:
  BinReader() = default;

  std::string path_;
  std::vector<SectionInfo> sections_;
};

/// \brief Streaming cell decoder for one column.
///
/// `Next*` calls must match the column dtype; they return false at
/// end-of-column or on error (check `status()`). `Finish()` consumes any
/// unread remainder and verifies the payload CRC — a full load calls it on
/// every column, a head-only inspect may skip it.
class ColumnCursor {
 public:
  ColumnCursor(ColumnCursor&&) = default;
  ColumnCursor& operator=(ColumnCursor&&) = default;

  [[nodiscard]] Status status() const { return status_; }
  const ColumnInfo& info() const { return info_; }

  bool NextU8(uint8_t* v);
  bool NextU16(uint16_t* v);
  bool NextU32(uint32_t* v);
  bool NextU64(uint64_t* v);
  bool NextI32(int32_t* v);
  bool NextF32(float* v);
  bool NextF64(double* v);
  bool NextStr(std::string* v);
  bool NextListU32(std::vector<uint32_t>* v);
  bool NextListF32(std::vector<float>* v);
  bool NextListF64(std::vector<double>* v);

  /// Decodes the next cell into its display string (lists joined with ';').
  bool NextCellString(std::string* out);

  /// Consumes the rest of the payload in bounded chunks and verifies the
  /// column CRC. InvalidArgument on checksum mismatch.
  [[nodiscard]] Status Finish();

 private:
  friend class BinReader;
  ColumnCursor(const std::string& path, ColumnInfo info);

  bool ReadBytes(void* dst, size_t n);
  bool NextScalar(Dtype want, void* dst);
  template <typename T>
  bool NextList(Dtype want, std::vector<T>* v);

  ColumnInfo info_;
  std::ifstream in_;
  uint64_t bytes_read_ = 0;
  Crc32 crc_;
  Status status_;
};

/// \brief Row-major view over one section: opens a cursor per column and
/// yields each row as display strings (`emigre inspect`).
class RowReader {
 public:
  [[nodiscard]] static Result<RowReader> Open(const BinReader& reader,
                                              size_t section);

  uint64_t row_count() const { return row_count_; }
  const std::vector<ColumnInfo>& columns() const { return columns_; }

  /// Reads the next row; false at end or on error (check `status()`).
  bool NextRow(std::vector<std::string>* fields);

  [[nodiscard]] Status status() const { return status_; }

 private:
  RowReader() = default;

  uint64_t row_count_ = 0;
  uint64_t rows_read_ = 0;
  std::vector<ColumnInfo> columns_;
  std::vector<ColumnCursor> cursors_;
  Status status_;
};

}  // namespace emigre::data::binfmt

#endif  // EMIGRE_DATA_BINFMT_H_
