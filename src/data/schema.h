#ifndef EMIGRE_DATA_SCHEMA_H_
#define EMIGRE_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace emigre::data {

/// Dataset-level ids (independent of graph NodeIds; the graph builder maps
/// them).
using UserId = uint32_t;
using ItemId = uint32_t;
using CategoryId = uint32_t;
using ReviewId = uint32_t;

/// \brief A product category ("Books", "Electronics", ...).
struct Category {
  CategoryId id = 0;
  std::string name;
};

/// \brief A catalog item, assigned to one category with a latent
/// popularity/quality profile driving synthetic interactions.
struct Item {
  ItemId id = 0;
  std::string name;
  CategoryId category = 0;
  double popularity = 1.0;  ///< relative within-category draw weight
  double quality = 0.0;     ///< rating bias in [-1, 1]
};

/// \brief A platform user with latent category preferences.
struct User {
  UserId id = 0;
  std::string name;
  /// (category, preference weight) pairs the user draws interactions from.
  std::vector<std::pair<CategoryId, double>> preferences;
  double rating_bias = 0.0;  ///< leniency in [-1, 1]
};

/// \brief A star rating given by a user to an item.
struct Rating {
  UserId user = 0;
  ItemId item = 0;
  int stars = 0;  ///< 1..5
};

/// \brief A textual review, represented by its topic-mixture embedding
/// (the synthetic stand-in for the paper's Universal Sentence Encoder
/// vectors; see embedding.h).
struct Review {
  ReviewId id = 0;
  UserId user = 0;
  ItemId item = 0;
  std::vector<float> embedding;
};

/// \brief The full synthetic "Amazon Customer Review" substitute.
struct Dataset {
  std::vector<Category> categories;
  std::vector<Item> items;
  std::vector<User> users;
  std::vector<Rating> ratings;
  std::vector<Review> reviews;
};

}  // namespace emigre::data

#endif  // EMIGRE_DATA_SCHEMA_H_
