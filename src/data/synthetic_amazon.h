#ifndef EMIGRE_DATA_SYNTHETIC_AMAZON_H_
#define EMIGRE_DATA_SYNTHETIC_AMAZON_H_

#include <cstdint>
#include <string_view>

#include "data/schema.h"
#include "util/result.h"

namespace emigre::data {

/// \brief Generator parameters. Defaults approximate the profile the paper
/// reports for its Amazon Customer Review extraction (§6.1, Table 4):
/// 120 users averaging ~22 actions, 32 heavy-tailed categories, items with
/// low average degree, and roughly one review per three ratings.
///
/// The benchmark harness scales `num_items`/`num_users` down or up via
/// `EMIGRE_BENCH_SCALE` without changing the distributional shape.
struct SyntheticAmazonOptions {
  uint64_t seed = 20240416;  ///< ICDE'24 opening day; any value works.

  size_t num_users = 120;
  size_t num_items = 2000;   ///< paper: 7459 (scaled default for laptops)
  size_t num_categories = 32;

  /// Actions (ratings) per user, uniform in [min, max] — the paper samples
  /// "moderate/active" users with 10..100 actions.
  size_t min_actions_per_user = 10;
  size_t max_actions_per_user = 100;

  /// How many categories a user is interested in, uniform in [min, max].
  size_t min_user_categories = 2;
  size_t max_user_categories = 4;

  /// Zipf exponents for category size and within-category item popularity
  /// (heavy tails create the paper's "popular item" failure cases).
  double category_zipf = 1.1;
  double item_zipf = 0.9;

  /// Probability that a rating is accompanied by a textual review.
  double review_probability = 0.35;

  /// Embedding synthesis (see TopicEmbedder).
  size_t embedding_dim = 32;
  double embedding_noise = 0.35;
};

/// \brief Named workload bands (docs/data_format.md):
///  - "small":  the classic unit-test default (≈2.5k nodes).
///  - "medium": the benchmark band (≈30k nodes) — bench_graph_io's input.
///  - "large":  the 10M-node band (Table-4 degree shape at scale). Far too
///    big to materialize as CSVs comfortably; generate it straight to the
///    binary container (`GenerateSyntheticAmazonBin` / `emigre generate
///    --preset large --format bin`).
/// Unknown names return InvalidArgument.
[[nodiscard]] Result<SyntheticAmazonOptions> SyntheticAmazonPreset(
    std::string_view name);

/// \brief Row-streaming consumer of the synthetic generator.
///
/// Rows arrive in deterministic generation order: all categories, all
/// items, all users, then ratings interleaved with their reviews (a
/// review always follows its rating). Any non-OK status aborts the
/// generation and is returned as-is.
class DatasetSink {
 public:
  virtual ~DatasetSink() = default;
  [[nodiscard]] virtual Status OnCategory(const Category& c) = 0;
  [[nodiscard]] virtual Status OnItem(const Item& item) = 0;
  [[nodiscard]] virtual Status OnUser(const User& u) = 0;
  [[nodiscard]] virtual Status OnRating(const Rating& r) = 0;
  [[nodiscard]] virtual Status OnReview(const Review& r) = 0;
};

/// \brief Streaming core of the generator: draws the dataset row by row
/// and hands each row to `sink` without retaining it.
///
/// Deterministic in `opts.seed` and row-for-row identical to
/// `GenerateSyntheticAmazon` (which is this function with a collecting
/// sink). Peak memory is O(users + items), never O(ratings + reviews) —
/// this is what makes the `large` preset generable.
///
/// Users draw items category-first (their latent preferences) then
/// popularity-weighted within the category; star ratings combine item
/// quality and user leniency, skewing positive like real review corpora.
/// Duplicate (user, item) ratings are rejected by redraw, so each pair
/// appears at most once.
[[nodiscard]] Status GenerateSyntheticAmazonTo(
    const SyntheticAmazonOptions& opts, DatasetSink* sink);

/// \brief Generates the synthetic Amazon Customer Review dataset in memory.
[[nodiscard]]
Result<Dataset> GenerateSyntheticAmazon(const SyntheticAmazonOptions& opts);

}  // namespace emigre::data

#endif  // EMIGRE_DATA_SYNTHETIC_AMAZON_H_
