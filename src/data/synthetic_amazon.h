#ifndef EMIGRE_DATA_SYNTHETIC_AMAZON_H_
#define EMIGRE_DATA_SYNTHETIC_AMAZON_H_

#include <cstdint>

#include "data/schema.h"
#include "util/result.h"

namespace emigre::data {

/// \brief Generator parameters. Defaults approximate the profile the paper
/// reports for its Amazon Customer Review extraction (§6.1, Table 4):
/// 120 users averaging ~22 actions, 32 heavy-tailed categories, items with
/// low average degree, and roughly one review per three ratings.
///
/// The benchmark harness scales `num_items`/`num_users` down or up via
/// `EMIGRE_BENCH_SCALE` without changing the distributional shape.
struct SyntheticAmazonOptions {
  uint64_t seed = 20240416;  ///< ICDE'24 opening day; any value works.

  size_t num_users = 120;
  size_t num_items = 2000;   ///< paper: 7459 (scaled default for laptops)
  size_t num_categories = 32;

  /// Actions (ratings) per user, uniform in [min, max] — the paper samples
  /// "moderate/active" users with 10..100 actions.
  size_t min_actions_per_user = 10;
  size_t max_actions_per_user = 100;

  /// How many categories a user is interested in, uniform in [min, max].
  size_t min_user_categories = 2;
  size_t max_user_categories = 4;

  /// Zipf exponents for category size and within-category item popularity
  /// (heavy tails create the paper's "popular item" failure cases).
  double category_zipf = 1.1;
  double item_zipf = 0.9;

  /// Probability that a rating is accompanied by a textual review.
  double review_probability = 0.35;

  /// Embedding synthesis (see TopicEmbedder).
  size_t embedding_dim = 32;
  double embedding_noise = 0.35;
};

/// \brief Generates the synthetic Amazon Customer Review dataset.
///
/// Deterministic in `opts.seed`. Users draw items category-first (their
/// latent preferences) then popularity-weighted within the category; star
/// ratings combine item quality and user leniency, skewing positive like
/// real review corpora. Duplicate (user, item) ratings are rejected by
/// redraw, so each pair appears at most once.
[[nodiscard]]
Result<Dataset> GenerateSyntheticAmazon(const SyntheticAmazonOptions& opts);

}  // namespace emigre::data

#endif  // EMIGRE_DATA_SYNTHETIC_AMAZON_H_
