#ifndef EMIGRE_DATA_DATASET_TO_CSR_H_
#define EMIGRE_DATA_DATASET_TO_CSR_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace emigre::data {

/// \brief Streaming `emigre.bin.v1` dataset -> `emigre.csr.v1` snapshot
/// converter — the path that makes the 10M-node band servable.
///
/// `BuildAmazonLite` materializes a `HinGraph` (vector-of-vectors) before
/// snapshotting, which at the `large` preset costs an order of magnitude
/// more memory than the CSR it produces. This converter instead replays the
/// dataset's edge events twice over column cursors — once to count degrees,
/// once to fill the adjacency arrays — and writes the snapshot from flat
/// columns directly. Peak memory is the CSR columns themselves plus the
/// node-name pools; the review embeddings are never read at all.
///
/// The output is byte-identical to
///   `WriteGraphSnapshot(BuildAmazonLite(ds, lite_opts).graph, path)`
/// for `lite_opts` with the same `min_stars_exclusive` / `bidirectional`,
/// similarity links disabled (`max_similar_per_review = 0`) and no
/// neighborhood restriction (`neighborhood_hops = 0`): node order is users,
/// items, categories, then kept reviews; edge-event order is kept ratings,
/// then per kept review "reviewed" + "has-review", then "belongs-to"; and
/// the schema registers all five §6.1 edge types (similarity included,
/// with zero edges). dataset_to_csr_test.cc locks this equivalence in.
struct DatasetToCsrOptions {
  /// Keep only ratings strictly above this (§6.1 "good ratings").
  int min_stars_exclusive = 3;
  /// Materialize each relationship in both directions.
  bool bidirectional = true;
};

/// Conversion tally, reported by `emigre convert`.
struct DatasetToCsrStats {
  uint64_t num_users = 0;
  uint64_t num_items = 0;
  uint64_t num_categories = 0;
  uint64_t kept_ratings = 0;   ///< ratings above the star threshold
  uint64_t kept_reviews = 0;   ///< reviews whose rating survived
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;      ///< directed edges in the snapshot
};

/// Converts the dataset at `bin_path` into a CSR snapshot at `out_path`.
/// Dataset ids must be dense (id < row count of their section) and kept
/// (user, item) rating pairs unique — the same preconditions
/// `BuildAmazonLite` enforces by construction.
[[nodiscard]] Result<DatasetToCsrStats> ConvertBinDatasetToCsrSnapshot(
    const std::string& bin_path, const std::string& out_path,
    const DatasetToCsrOptions& opts = {});

}  // namespace emigre::data

#endif  // EMIGRE_DATA_DATASET_TO_CSR_H_
