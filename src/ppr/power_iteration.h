#ifndef EMIGRE_PPR_POWER_ITERATION_H_
#define EMIGRE_PPR_POWER_ITERATION_H_

#include <cmath>
#include <vector>

#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/options.h"
#include "ppr/workspace.h"
#include "util/timer.h"

namespace emigre::ppr {

/// \brief Exact (to tolerance) Personalized PageRank by power iteration.
///
/// Solves Eq. 1 of the paper,
///   PPR(s,·) = α·e_s + (1−α)·PPR(s,·)·W,
/// where W is the out-weight-normalized transition matrix of `g`. Dangling
/// nodes hold their probability mass in place (see `kDanglingSelfLoop`).
///
/// This is the reference scorer: the recommender's Eq. 2 argmax and the
/// EMiGRe TEST verifier both use it, and the local-push estimators are
/// property-tested against it.
///
/// Returns a dense distribution over all nodes (sums to 1).
///
/// `PowerIterationPprInto` writes into a caller-provided buffer (a
/// `PushWorkspace::DenseBuffer`) and reuses the workspace's second buffer
/// as the iteration scratch — the distribution is inherently dense, so the
/// workspace contribution here is only allocation reuse, not sparsity; the
/// arithmetic is identical to `PowerIterationPpr`.
template <graph::GraphLike G>
void PowerIterationPprInto(const G& g, graph::NodeId seed,
                           const PprOptions& opts, PushWorkspace& ws,
                           std::vector<double>** result) {
  EMIGRE_SPAN("power");
  const size_t n = g.NumNodes();
  std::vector<double>* p = &ws.DenseBuffer(0, n);
  std::vector<double>* next = &ws.DenseBuffer(1, n);
  std::fill(p->begin(), p->begin() + n, 0.0);
  *result = p;
  if (seed >= n) return;
  (*p)[seed] = 1.0;

  size_t iterations = 0;
  for (size_t iter = 0; iter < opts.max_power_iterations; ++iter) {
    // One iteration is an O(edges) sweep, so check the deadline per
    // iteration rather than per push.
    if (opts.deadline != nullptr && opts.deadline->Expired()) {
      throw DeadlineExceededError();
    }
    ++iterations;
    std::fill(next->begin(), next->begin() + n, 0.0);
    (*next)[seed] += opts.alpha;
    for (graph::NodeId u = 0; u < n; ++u) {
      double mass = (*p)[u];
      if (mass == 0.0) continue;
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) {
        // Dangling: the walk stays at u (implicit self-loop).
        (*next)[u] += (1.0 - opts.alpha) * mass;
        continue;
      }
      double scaled = (1.0 - opts.alpha) * mass / out_w;
      g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
        (*next)[v] += scaled * w;
      });
    }
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::abs((*next)[i] - (*p)[i]);
    std::swap(p, next);
    *result = p;
    if (delta < opts.power_tolerance) break;
  }

  EMIGRE_COUNTER("ppr.power.calls").Increment();
  EMIGRE_COUNTER("ppr.power.iterations").Increment(iterations);
}

template <graph::GraphLike G>
std::vector<double> PowerIterationPpr(const G& g, graph::NodeId seed,
                                      const PprOptions& opts = {}) {
  EMIGRE_SPAN("power");
  const size_t n = g.NumNodes();
  std::vector<double> p(n, 0.0);
  if (seed >= n) return p;
  std::vector<double> next(n, 0.0);
  p[seed] = 1.0;

  size_t iterations = 0;
  for (size_t iter = 0; iter < opts.max_power_iterations; ++iter) {
    // One iteration is an O(edges) sweep, so check the deadline per
    // iteration rather than per push.
    if (opts.deadline != nullptr && opts.deadline->Expired()) {
      throw DeadlineExceededError();
    }
    ++iterations;
    std::fill(next.begin(), next.end(), 0.0);
    next[seed] += opts.alpha;
    for (graph::NodeId u = 0; u < n; ++u) {
      double mass = p[u];
      if (mass == 0.0) continue;
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) {
        // Dangling: the walk stays at u (implicit self-loop).
        next[u] += (1.0 - opts.alpha) * mass;
        continue;
      }
      double scaled = (1.0 - opts.alpha) * mass / out_w;
      g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId,
                              double w) { next[v] += scaled * w; });
    }
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::abs(next[i] - p[i]);
    p.swap(next);
    if (delta < opts.power_tolerance) break;
  }

  EMIGRE_COUNTER("ppr.power.calls").Increment();
  EMIGRE_COUNTER("ppr.power.iterations").Increment(iterations);
  return p;
}

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_POWER_ITERATION_H_
