#ifndef EMIGRE_PPR_REVERSE_PUSH_H_
#define EMIGRE_PPR_REVERSE_PUSH_H_

#include <deque>
#include <vector>

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/forward_push.h"
#include "ppr/options.h"
#include "util/timer.h"

namespace emigre::ppr {

/// \brief Reverse Local Push [39], the RLP of paper §3.2.
///
/// Computes, in a single local exploration rooted at `target`, estimates of
/// PPR(s, target) for *every* source s simultaneously — the quantity EMiGRe
/// needs to score candidate neighbors (Eq. 5/6) and that Algorithm 2 uses to
/// enumerate the Add-mode search space (`PPR_WNI`).
///
/// Maintains the invariant of the paper's Eq. 4:
///   PPR(s,t) = P(s,t) + Σ_x PPR(s,x)·R(x,t)   for every s.
/// A node v with residual above ε converts α·r(v) into its estimate and
/// propagates (1−α)·r(v), split by each in-neighbor's transition probability
/// *into* v, backwards along in-edges.
///
/// Dangling nodes (implicit self-loop, see `kDanglingSelfLoop`) are handled
/// in closed form: the geometric series of self-pushes sums to r/α.
///
/// `result.estimate[s]` ≈ PPR(s, target); `result.residual` carries R(·, t).
template <graph::GraphLike G>
PushResult ReversePush(const G& g, graph::NodeId target,
                       const PprOptions& opts = {}) {
  EMIGRE_SPAN("rlp");
  EMIGRE_FAULT_POINT("ppr.rlp.legacy");
  const size_t n = g.NumNodes();
  PushResult out;
  out.estimate.assign(n, 0.0);  // NOLINT(dense-reset): legacy reference path
  out.residual.assign(n, 0.0);  // NOLINT(dense-reset): legacy reference path
  if (target >= n) return out;

  out.residual[target] = 1.0;
  out.residual_mass = 1.0;
  std::deque<graph::NodeId> queue;
  std::vector<char> queued(n, 0);
  queue.push_back(target);
  queued[target] = 1;

  size_t pushes = 0;
  size_t max_queue = queue.size();

  while (!queue.empty()) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, pushes)) throw DeadlineExceededError();
    graph::NodeId v = queue.front();
    queue.pop_front();
    queued[v] = 0;
    double r = out.residual[v];
    if (r < opts.epsilon) continue;
    out.residual[v] = 0.0;
    out.residual_mass -= r;
    ++pushes;

    bool dangling = g.OutWeight(v) <= 0.0;
    if (dangling) {
      // Walks at v never leave: every restart-free continuation stays here,
      // so the full residual converts (Σ_k α(1−α)^k·r = r) and in-neighbors
      // receive the series-amplified share r/α.
      out.estimate[v] += r;
      r /= opts.alpha;
    } else {
      out.estimate[v] += opts.alpha * r;
    }

    double spread = (1.0 - opts.alpha) * r;
    g.ForEachInEdge(v, [&](graph::NodeId u, graph::EdgeTypeId, double w) {
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) return;  // u unreachable as a walk step into v
      out.residual[u] += spread * w / out_w;
      out.residual_mass += spread * w / out_w;
      if (!queued[u] && out.residual[u] >= opts.epsilon) {
        queued[u] = 1;
        queue.push_back(u);
      }
    });
    if (queue.size() > max_queue) max_queue = queue.size();
  }

  EMIGRE_COUNTER("ppr.rlp.calls").Increment();
  EMIGRE_COUNTER("ppr.rlp.pushes").Increment(pushes);
  EMIGRE_GAUGE("ppr.rlp.max_queue").SetMax(static_cast<double>(max_queue));
  return out;
}

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_REVERSE_PUSH_H_
