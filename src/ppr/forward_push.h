#ifndef EMIGRE_PPR_FORWARD_PUSH_H_
#define EMIGRE_PPR_FORWARD_PUSH_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <vector>

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/options.h"
#include "util/timer.h"

namespace emigre::ppr {

/// \brief Output of a local-push computation: estimates and residuals.
///
/// For Forward Local Push from source s the invariant is the paper's Eq. 3:
///   PPR(s,t) = P(s,t) + Σ_x R(s,x)·PPR(x,t)   for every t,
/// i.e. `estimate` underestimates the true PPR vector and `residual` bounds
/// the unexplored probability mass. Both are dense over nodes.
struct PushResult {
  std::vector<double> estimate;
  std::vector<double> residual;

  /// Signed residual sum, maintained incrementally by the push engines.
  /// Reading it is O(1); the old O(n) scan survives only as the
  /// DCHECK-level cross-check below.
  double residual_mass = 0.0;

  /// Total residual mass still unpushed (error upper bound on the L1 sum).
  double ResidualMass() const {
#ifdef EMIGRE_DCHECK_INVARIANTS
    // Cross-check the incremental accounting against the direct scan. The
    // two accumulate in different orders, so compare under a small
    // float-rounding tolerance rather than exactly.
    double total = 0.0;
    for (double r : residual) total += r;
    if (std::abs(total - residual_mass) >
        1e-9 * std::max(1.0, std::abs(total))) {
      std::fprintf(stderr,
                   "PushResult::ResidualMass: incremental %.17g != scan "
                   "%.17g\n",
                   residual_mass, total);
      std::abort();
    }
#endif
    return residual_mass;
  }
};

/// \brief Forward Local Push [39], the FLP of paper §3.2.
///
/// Starts from `source` and repeatedly converts residual at a node into
/// estimate (an α fraction) while spreading the remaining (1−α) fraction
/// over the node's outgoing transitions. A node is pushed while its residual
/// exceeds ε·max(out_degree, 1); with ε→0 the estimate converges to the
/// exact PPR(source, ·).
///
/// Runs in time O(Σ pushes) independent of graph size for fixed ε — the
/// reason the paper adopts it for repeated counterfactual evaluations.
template <graph::GraphLike G>
PushResult ForwardPush(const G& g, graph::NodeId source,
                       const PprOptions& opts = {}) {
  EMIGRE_SPAN("flp");
  EMIGRE_FAULT_POINT("ppr.flp.legacy");
  const size_t n = g.NumNodes();
  PushResult out;
  out.estimate.assign(n, 0.0);  // NOLINT(dense-reset): legacy reference path
  out.residual.assign(n, 0.0);  // NOLINT(dense-reset): legacy reference path
  if (source >= n) return out;

  out.residual[source] = 1.0;
  out.residual_mass = 1.0;
  std::deque<graph::NodeId> queue;
  std::vector<char> queued(n, 0);
  queue.push_back(source);
  queued[source] = 1;

  auto threshold = [&](graph::NodeId u) {
    size_t deg = g.OutDegree(u);
    return opts.epsilon * static_cast<double>(deg > 0 ? deg : 1);
  };

  // Hot loop: accumulate locally, publish to the registry once per call.
  size_t pushes = 0;
  size_t max_queue = queue.size();

  while (!queue.empty()) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, pushes)) throw DeadlineExceededError();
    graph::NodeId u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    double r = out.residual[u];
    if (r < threshold(u)) continue;
    out.residual[u] = 0.0;
    out.residual_mass -= r;
    ++pushes;

    double out_w = g.OutWeight(u);
    if (out_w <= 0.0) {
      // Dangling node: the walk stays here forever, so the whole residual
      // eventually converts to estimate (geometric series sums to r).
      out.estimate[u] += r;
      continue;
    }
    out.estimate[u] += opts.alpha * r;
    double spread = (1.0 - opts.alpha) * r / out_w;
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      out.residual[v] += spread * w;
      out.residual_mass += spread * w;
      if (!queued[v] && out.residual[v] >= threshold(v)) {
        queued[v] = 1;
        queue.push_back(v);
      }
    });
    if (queue.size() > max_queue) max_queue = queue.size();
  }

  EMIGRE_COUNTER("ppr.flp.calls").Increment();
  EMIGRE_COUNTER("ppr.flp.pushes").Increment(pushes);
  EMIGRE_GAUGE("ppr.flp.max_queue").SetMax(static_cast<double>(max_queue));
  return out;
}

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_FORWARD_PUSH_H_
