#ifndef EMIGRE_PPR_KERNELS_H_
#define EMIGRE_PPR_KERNELS_H_

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/forward_push.h"
#include "ppr/options.h"
#include "ppr/workspace.h"
#include "util/timer.h"

namespace emigre::ppr {

/// \brief Scalar outputs of a kernel push; the vectors live in the workspace.
struct KernelResult {
  size_t pushes = 0;
  /// Signed residual sum, maintained incrementally (no O(n) scan).
  double residual_mass = 0.0;
};

/// \brief Forward Local Push into a reusable `PushWorkspace`.
///
/// Byte-for-byte the same push schedule and floating-point operation order
/// as the legacy `ForwardPush` — FIFO frontier, identical enqueue
/// conditions, identical accumulation order — so the estimates it produces
/// are bitwise identical to the legacy engine's on the same graph view. The
/// only difference is the state representation: epoch-stamped sparse
/// vectors and a flat ring frontier instead of freshly zero-filled dense
/// arrays and a `std::deque`, making a push that touches k nodes cost O(k)
/// instead of O(n).
///
/// On return the workspace holds the estimates/residuals for the touched
/// nodes (valid until the next `Begin`); read them with
/// `ws.Estimate(v)` / `ws.Residual(v)`, compact with
/// `ws.ExportSparseEstimates()`, or expand with `ExportDensePush` below.
template <graph::GraphLike G>
KernelResult ForwardPushKernel(const G& g, graph::NodeId source,
                               const PprOptions& opts, PushWorkspace& ws) {
  EMIGRE_SPAN("flp.kernel");
  EMIGRE_FAULT_POINT("ppr.flp.kernel");
  const size_t n = g.NumNodes();
  ws.Begin(n);
  KernelResult out;
  if (source >= n) return out;
  PushHotView hot(ws);

  hot.Touch(source);
  hot.ResidualRef(source) = 1.0;
  out.residual_mass = 1.0;
  hot.FrontierPush(source);

  auto threshold = [&](graph::NodeId u) {
    size_t deg = g.OutDegree(u);
    return opts.epsilon * static_cast<double>(deg > 0 ? deg : 1);
  };

  size_t max_queue = hot.FrontierSize();
  while (!hot.FrontierEmpty()) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, out.pushes)) throw DeadlineExceededError();
    graph::NodeId u = hot.FrontierPop();
    double r = hot.ResidualRef(u);
    if (r < threshold(u)) continue;
    hot.ResidualRef(u) = 0.0;
    out.residual_mass -= r;
    ++out.pushes;

    double out_w = g.OutWeight(u);
    if (out_w <= 0.0) {
      // Dangling node: see ForwardPush — the whole residual converts.
      hot.EstimateRef(u) += r;
      continue;
    }
    hot.EstimateRef(u) += opts.alpha * r;
    double spread = (1.0 - opts.alpha) * r / out_w;
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      hot.Touch(v);
      hot.ResidualRef(v) += spread * w;
      out.residual_mass += spread * w;
      if (!hot.InFrontier(v) && hot.ResidualRef(v) >= threshold(v)) {
        hot.FrontierPush(v);
      }
    });
    if (hot.FrontierSize() > max_queue) max_queue = hot.FrontierSize();
  }

  EMIGRE_COUNTER("ppr.flp.kernel.calls").Increment();
  EMIGRE_COUNTER("ppr.flp.kernel.pushes").Increment(out.pushes);
  EMIGRE_GAUGE("ppr.flp.kernel.max_queue")
      .SetMax(static_cast<double>(max_queue));
  return out;
}

/// \brief Reverse Local Push into a reusable `PushWorkspace`.
///
/// Kernelized `ReversePush` with the same bitwise-equivalence guarantee as
/// `ForwardPushKernel`: identical FIFO schedule and float-op order, sparse
/// workspace state. `ws.Estimate(s)` ≈ PPR(s, target) after the call.
template <graph::GraphLike G>
KernelResult ReversePushKernel(const G& g, graph::NodeId target,
                               const PprOptions& opts, PushWorkspace& ws) {
  EMIGRE_SPAN("rlp.kernel");
  EMIGRE_FAULT_POINT("ppr.rlp.kernel");
  const size_t n = g.NumNodes();
  ws.Begin(n);
  KernelResult out;
  if (target >= n) return out;
  PushHotView hot(ws);

  hot.Touch(target);
  hot.ResidualRef(target) = 1.0;
  out.residual_mass = 1.0;
  hot.FrontierPush(target);

  size_t max_queue = hot.FrontierSize();
  while (!hot.FrontierEmpty()) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, out.pushes)) throw DeadlineExceededError();
    graph::NodeId v = hot.FrontierPop();
    double r = hot.ResidualRef(v);
    if (r < opts.epsilon) continue;
    hot.ResidualRef(v) = 0.0;
    out.residual_mass -= r;
    ++out.pushes;

    bool dangling = g.OutWeight(v) <= 0.0;
    if (dangling) {
      // Geometric series of self-pushes: see ReversePush.
      hot.EstimateRef(v) += r;
      r /= opts.alpha;
    } else {
      hot.EstimateRef(v) += opts.alpha * r;
    }

    double spread = (1.0 - opts.alpha) * r;
    g.ForEachInEdge(v, [&](graph::NodeId u, graph::EdgeTypeId, double w) {
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) return;  // u unreachable as a walk step into v
      hot.Touch(u);
      hot.ResidualRef(u) += spread * w / out_w;
      out.residual_mass += spread * w / out_w;
      if (!hot.InFrontier(u) && hot.ResidualRef(u) >= opts.epsilon) {
        hot.FrontierPush(u);
      }
    });
    if (hot.FrontierSize() > max_queue) max_queue = hot.FrontierSize();
  }

  EMIGRE_COUNTER("ppr.rlp.kernel.calls").Increment();
  EMIGRE_COUNTER("ppr.rlp.kernel.pushes").Increment(out.pushes);
  EMIGRE_GAUGE("ppr.rlp.kernel.max_queue")
      .SetMax(static_cast<double>(max_queue));
  return out;
}

/// \brief Forward Local Push, best-residual-per-edge-first
/// (`PushEngine::kFast`).
///
/// Same per-push arithmetic as `ForwardPushKernel`, different schedule: a
/// bucketed priority frontier (`PushPriorityView`) pops an approximately
/// largest residual-per-out-edge first. Normalizing by the push's edge cost
/// matters on skewed-degree graphs: raw-residual order surfaces hubs every
/// band and re-scans their adjacency repeatedly, while r/deg order lets
/// hubs accumulate mass and clears cheap nodes early, so small residuals
/// often fall below the ε·deg threshold before they are ever popped —
/// less edge work than the FIFO order on push-bound graphs.
/// Deliberately NOT bitwise identical to the legacy/kernel engines: the
/// float-summation order changes, so estimates differ within the Eq. 3
/// tolerance. `check::ValidateForwardPushInvariant` is the correctness
/// oracle for this engine (it is schedule-independent), and the converged
/// state satisfies the same per-node bound residual(v) < ε·max(deg(v),1).
template <graph::GraphLike G>
KernelResult ForwardPushKernelFast(const G& g, graph::NodeId source,
                                   const PprOptions& opts,
                                   PushWorkspace& ws) {
  EMIGRE_SPAN("flp.fast");
  EMIGRE_FAULT_POINT("ppr.flp.fast");
  const size_t n = g.NumNodes();
  ws.Begin(n);
  KernelResult out;
  if (source >= n) return out;
  PushPriorityView pq(ws, opts.epsilon);

  auto out_cost = [&](graph::NodeId u) {
    size_t deg = g.OutDegree(u);
    return static_cast<double>(deg > 0 ? deg : 1);
  };

  pq.Touch(source);
  pq.ResidualRef(source) = 1.0;
  out.residual_mass = 1.0;
  pq.Push(source, 1.0, out_cost(source));

  for (graph::NodeId u; (u = pq.Pop()) != graph::kInvalidNode;) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, out.pushes)) throw DeadlineExceededError();
    double r = pq.ResidualRef(u);
    // Defensive re-check: forward residuals only grow while queued, so a
    // queued node stays above threshold — but a guard here keeps the loop
    // robust to future signed-residual callers.
    if (r < opts.epsilon * out_cost(u)) continue;
    pq.ResidualRef(u) = 0.0;
    out.residual_mass -= r;
    ++out.pushes;

    double out_w = g.OutWeight(u);
    if (out_w <= 0.0) {
      // Dangling node: see ForwardPush — the whole residual converts.
      pq.EstimateRef(u) += r;
      continue;
    }
    pq.EstimateRef(u) += opts.alpha * r;
    double spread = (1.0 - opts.alpha) * r / out_w;
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      pq.Touch(v);
      double rv = pq.ResidualRef(v) + spread * w;
      pq.ResidualRef(v) = rv;
      out.residual_mass += spread * w;
      if (pq.InRing(v)) return;  // re-read at pop; skip the degree load
      double deg = out_cost(v);
      if (rv >= opts.epsilon * deg) pq.Push(v, rv, deg);
    });
  }

  EMIGRE_COUNTER("ppr.flp.fast.calls").Increment();
  EMIGRE_COUNTER("ppr.flp.fast.pushes").Increment(out.pushes);
  return out;
}

/// \brief Reverse Local Push, best-residual-per-edge-first
/// (`PushEngine::kFast`).
///
/// Priority-scheduled `ReversePushKernel` with the same schedule-freedom
/// contract as `ForwardPushKernelFast`; `check::ValidateReversePushInvariant`
/// (Eq. 4) is the oracle. Unlike the forward kernel the priority key is
/// the RAW residual (cost = 1), not residual / in-degree: reverse mass
/// flows hub → many low-degree sources, and deferring a high-in-degree
/// node releases its accumulated mass late into regions that already
/// converged, re-activating them (measured slower and more total pushes).
/// Flooding hubs early lets downstream converge once.
/// `ws.Estimate(s)` ≈ PPR(s, target) after the call.
template <graph::GraphLike G>
KernelResult ReversePushKernelFast(const G& g, graph::NodeId target,
                                   const PprOptions& opts,
                                   PushWorkspace& ws) {
  EMIGRE_SPAN("rlp.fast");
  EMIGRE_FAULT_POINT("ppr.rlp.fast");
  const size_t n = g.NumNodes();
  ws.Begin(n);
  KernelResult out;
  if (target >= n) return out;
  PushPriorityView pq(ws, opts.epsilon);

  pq.Touch(target);
  pq.ResidualRef(target) = 1.0;
  out.residual_mass = 1.0;
  pq.Push(target, 1.0, 1.0);

  for (graph::NodeId v; (v = pq.Pop()) != graph::kInvalidNode;) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, out.pushes)) throw DeadlineExceededError();
    double r = pq.ResidualRef(v);
    if (r < opts.epsilon) continue;  // defensive, see ForwardPushKernelFast
    pq.ResidualRef(v) = 0.0;
    out.residual_mass -= r;
    ++out.pushes;

    bool dangling = g.OutWeight(v) <= 0.0;
    if (dangling) {
      // Geometric series of self-pushes: see ReversePush.
      pq.EstimateRef(v) += r;
      r /= opts.alpha;
    } else {
      pq.EstimateRef(v) += opts.alpha * r;
    }

    double spread = (1.0 - opts.alpha) * r;
    g.ForEachInEdge(v, [&](graph::NodeId u, graph::EdgeTypeId, double w) {
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) return;  // u unreachable as a walk step into v
      pq.Touch(u);
      double ru = pq.ResidualRef(u) + spread * w / out_w;
      pq.ResidualRef(u) = ru;
      out.residual_mass += spread * w / out_w;
      if (ru >= opts.epsilon) pq.Push(u, ru, 1.0);
    });
  }

  EMIGRE_COUNTER("ppr.rlp.fast.calls").Increment();
  EMIGRE_COUNTER("ppr.rlp.fast.pushes").Increment(out.pushes);
  return out;
}

/// \brief Scalar outputs of a batched reverse push.
struct BatchPushStats {
  /// Shared-traversal frontier pops (each may push several columns).
  size_t node_pops = 0;
  /// Per-column push operations — comparable to the per-target `pushes`
  /// of the single-target engines summed over the batch.
  size_t column_pushes = 0;
};

/// \brief Batched multi-target Reverse Local Push (`PushEngine::kFast`).
///
/// Maintains one reverse-PPR column per target in `targets` through a
/// SINGLE shared traversal: each touched node carries a B-wide row of
/// (estimate, residual) values addressed by its workspace slot, and one
/// in-edge scan of a popped node spreads the residuals of every
/// above-threshold column at once. For T targets over a shared frontier
/// this amortizes the adjacency traffic that T independent pushes would
/// repeat — the PRINCE-style sharing the TEST loop's repeated
/// PPR(·, target) derivations call for.
///
/// Column c of the returned vector is the compacted estimate vector for
/// `targets[c]`, exactly what `ReversePushCache` stores per target. Each
/// column independently satisfies the Eq. 4 invariant (residual(s) < ε for
/// every s); pass `dense_out` to export full per-column `PushResult` states
/// for the validators. Schedule-free like the other kFast kernels: columns
/// are NOT bitwise identical to single-target pushes.
template <graph::GraphLike G>
std::vector<SparseVector> ReversePushBatchKernel(
    const G& g, const std::vector<graph::NodeId>& targets,
    const PprOptions& opts, PushWorkspace& ws,
    BatchPushStats* stats = nullptr,
    std::vector<PushResult>* dense_out = nullptr) {
  EMIGRE_SPAN("rlp.fast.batch");
  EMIGRE_FAULT_POINT("ppr.rlp.fast.batch");
  const size_t n = g.NumNodes();
  const size_t B = targets.size();
  ws.Begin(n);
  std::vector<SparseVector> out(B);
  if (B == 0) return out;
  PushPriorityView pq(ws, opts.epsilon);

  // Column rows live in reusable dense buffers, addressed slot*B + c and
  // zeroed on first touch. Slots are append-only and `resize` preserves
  // contents, so growing capacity never moves a row relative to its slot.
  size_t row_cap = 64;
  std::vector<double>& est_rows = ws.DenseBuffer(6, row_cap * B);
  std::vector<double>& res_rows = ws.DenseBuffer(7, row_cap * B);
  size_t rows_ready = 0;
  auto touch_row = [&](graph::NodeId v) -> size_t {
    pq.Touch(v);
    size_t slot = pq.SlotOf(v);
    if (slot >= rows_ready) {
      if (slot >= row_cap) {
        while (row_cap <= slot) row_cap *= 2;
        ws.DenseBuffer(6, row_cap * B);
        ws.DenseBuffer(7, row_cap * B);
      }
      std::fill(est_rows.begin() + static_cast<ptrdiff_t>(slot * B),
                est_rows.begin() + static_cast<ptrdiff_t>((slot + 1) * B),
                0.0);
      std::fill(res_rows.begin() + static_cast<ptrdiff_t>(slot * B),
                res_rows.begin() + static_cast<ptrdiff_t>((slot + 1) * B),
                0.0);
      rows_ready = slot + 1;
    }
    return slot;
  };

  std::vector<double> residual_mass(B, 0.0);
  for (size_t c = 0; c < B; ++c) {
    graph::NodeId t = targets[c];
    if (t >= n) continue;
    size_t slot = touch_row(t);
    res_rows[slot * B + c] += 1.0;
    residual_mass[c] += 1.0;
    // Raw-residual key (cost = 1): see ReversePushKernelFast.
    pq.Push(t, res_rows[slot * B + c], 1.0);
  }

  std::vector<double> spread(B, 0.0);
  std::vector<uint32_t> active(B, 0);
  size_t node_pops = 0;
  size_t column_pushes = 0;
  for (graph::NodeId v; (v = pq.Pop()) != graph::kInvalidNode;) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, node_pops)) throw DeadlineExceededError();
    ++node_pops;
    size_t vslot = pq.SlotOf(v);
    double* vres = &res_rows[vslot * B];
    double* vest = &est_rows[vslot * B];
    bool dangling = g.OutWeight(v) <= 0.0;
    size_t n_active = 0;
    for (size_t c = 0; c < B; ++c) {
      double r = vres[c];
      if (r < opts.epsilon) continue;
      vres[c] = 0.0;
      residual_mass[c] -= r;
      if (dangling) {
        // Geometric series of self-pushes: see ReversePush.
        vest[c] += r;
        r /= opts.alpha;
      } else {
        vest[c] += opts.alpha * r;
      }
      spread[n_active] = (1.0 - opts.alpha) * r;
      active[n_active] = static_cast<uint32_t>(c);
      ++n_active;
    }
    if (n_active == 0) continue;  // every column converged since queueing
    column_pushes += n_active;
    g.ForEachInEdge(v, [&](graph::NodeId u, graph::EdgeTypeId, double w) {
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) return;  // u unreachable as a walk step into v
      double factor = w / out_w;
      size_t uslot = touch_row(u);
      double* ures = &res_rows[uslot * B];
      double max_r = 0.0;
      for (size_t i = 0; i < n_active; ++i) {
        size_t c = active[i];
        double delta = spread[i] * factor;
        double ru = ures[c] + delta;
        ures[c] = ru;
        residual_mass[c] += delta;
        if (ru > max_r) max_r = ru;
      }
      if (max_r >= opts.epsilon) pq.Push(u, max_r, 1.0);
    });
  }

  if (stats != nullptr) {
    stats->node_pops = node_pops;
    stats->column_pushes = column_pushes;
  }
  EMIGRE_COUNTER("ppr.rlp.fast.batch.calls").Increment();
  EMIGRE_COUNTER("ppr.rlp.fast.batch.targets").Increment(B);
  EMIGRE_COUNTER("ppr.rlp.fast.batch.pops").Increment(node_pops);
  EMIGRE_COUNTER("ppr.rlp.fast.batch.column_pushes")
      .Increment(column_pushes);

  const std::vector<graph::NodeId>& touched = ws.touched();
  for (size_t c = 0; c < B; ++c) {
    std::vector<graph::NodeId> ids;
    for (size_t s = 0; s < touched.size(); ++s) {
      if (est_rows[s * B + c] != 0.0) ids.push_back(touched[s]);
    }
    std::sort(ids.begin(), ids.end());
    std::vector<double> values(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      values[i] = est_rows[ws.SlotOf(ids[i]) * B + c];
    }
    out[c] = SparseVector(std::move(ids), std::move(values));
  }
  if (dense_out != nullptr) {
    dense_out->clear();
    dense_out->resize(B);
    for (size_t c = 0; c < B; ++c) {
      PushResult& pr = (*dense_out)[c];
      pr.estimate.assign(n, 0.0);  // NOLINT(dense-reset): validator export
      pr.residual.assign(n, 0.0);  // NOLINT(dense-reset): validator export
      for (size_t s = 0; s < touched.size(); ++s) {
        pr.estimate[touched[s]] = est_rows[s * B + c];
        pr.residual[touched[s]] = res_rows[s * B + c];
      }
      pr.residual_mass = residual_mass[c];
    }
  }
  return out;
}

/// \brief Expands the workspace state of the last kernel push into a dense
/// `PushResult` (for the Eq. 3/4 validators, equivalence tests, and the
/// one-off initial state of `DynamicForwardPush`). O(n) — not for hot loops.
inline PushResult ExportDensePush(const PushWorkspace& ws, size_t n,
                                  double residual_mass) {
  PushResult out;
  out.estimate.assign(n, 0.0);  // NOLINT(dense-reset): one-off dense export
  out.residual.assign(n, 0.0);  // NOLINT(dense-reset): one-off dense export
  for (graph::NodeId v : ws.touched()) {
    out.estimate[v] = ws.Estimate(v);
    out.residual[v] = ws.Residual(v);
  }
  out.residual_mass = residual_mass;
  return out;
}

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_KERNELS_H_
