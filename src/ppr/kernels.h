#ifndef EMIGRE_PPR_KERNELS_H_
#define EMIGRE_PPR_KERNELS_H_

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/forward_push.h"
#include "ppr/options.h"
#include "ppr/workspace.h"
#include "util/timer.h"

namespace emigre::ppr {

/// \brief Scalar outputs of a kernel push; the vectors live in the workspace.
struct KernelResult {
  size_t pushes = 0;
  /// Signed residual sum, maintained incrementally (no O(n) scan).
  double residual_mass = 0.0;
};

/// \brief Forward Local Push into a reusable `PushWorkspace`.
///
/// Byte-for-byte the same push schedule and floating-point operation order
/// as the legacy `ForwardPush` — FIFO frontier, identical enqueue
/// conditions, identical accumulation order — so the estimates it produces
/// are bitwise identical to the legacy engine's on the same graph view. The
/// only difference is the state representation: epoch-stamped sparse
/// vectors and a flat ring frontier instead of freshly zero-filled dense
/// arrays and a `std::deque`, making a push that touches k nodes cost O(k)
/// instead of O(n).
///
/// On return the workspace holds the estimates/residuals for the touched
/// nodes (valid until the next `Begin`); read them with
/// `ws.Estimate(v)` / `ws.Residual(v)`, compact with
/// `ws.ExportSparseEstimates()`, or expand with `ExportDensePush` below.
template <graph::GraphLike G>
KernelResult ForwardPushKernel(const G& g, graph::NodeId source,
                               const PprOptions& opts, PushWorkspace& ws) {
  EMIGRE_SPAN("flp.kernel");
  EMIGRE_FAULT_POINT("ppr.flp.kernel");
  const size_t n = g.NumNodes();
  ws.Begin(n);
  KernelResult out;
  if (source >= n) return out;
  PushHotView hot(ws);

  hot.Touch(source);
  hot.ResidualRef(source) = 1.0;
  out.residual_mass = 1.0;
  hot.FrontierPush(source);

  auto threshold = [&](graph::NodeId u) {
    size_t deg = g.OutDegree(u);
    return opts.epsilon * static_cast<double>(deg > 0 ? deg : 1);
  };

  size_t max_queue = hot.FrontierSize();
  while (!hot.FrontierEmpty()) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, out.pushes)) throw DeadlineExceededError();
    graph::NodeId u = hot.FrontierPop();
    double r = hot.ResidualRef(u);
    if (r < threshold(u)) continue;
    hot.ResidualRef(u) = 0.0;
    out.residual_mass -= r;
    ++out.pushes;

    double out_w = g.OutWeight(u);
    if (out_w <= 0.0) {
      // Dangling node: see ForwardPush — the whole residual converts.
      hot.EstimateRef(u) += r;
      continue;
    }
    hot.EstimateRef(u) += opts.alpha * r;
    double spread = (1.0 - opts.alpha) * r / out_w;
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      hot.Touch(v);
      hot.ResidualRef(v) += spread * w;
      out.residual_mass += spread * w;
      if (!hot.InFrontier(v) && hot.ResidualRef(v) >= threshold(v)) {
        hot.FrontierPush(v);
      }
    });
    if (hot.FrontierSize() > max_queue) max_queue = hot.FrontierSize();
  }

  EMIGRE_COUNTER("ppr.flp.kernel.calls").Increment();
  EMIGRE_COUNTER("ppr.flp.kernel.pushes").Increment(out.pushes);
  EMIGRE_GAUGE("ppr.flp.kernel.max_queue")
      .SetMax(static_cast<double>(max_queue));
  return out;
}

/// \brief Reverse Local Push into a reusable `PushWorkspace`.
///
/// Kernelized `ReversePush` with the same bitwise-equivalence guarantee as
/// `ForwardPushKernel`: identical FIFO schedule and float-op order, sparse
/// workspace state. `ws.Estimate(s)` ≈ PPR(s, target) after the call.
template <graph::GraphLike G>
KernelResult ReversePushKernel(const G& g, graph::NodeId target,
                               const PprOptions& opts, PushWorkspace& ws) {
  EMIGRE_SPAN("rlp.kernel");
  EMIGRE_FAULT_POINT("ppr.rlp.kernel");
  const size_t n = g.NumNodes();
  ws.Begin(n);
  KernelResult out;
  if (target >= n) return out;
  PushHotView hot(ws);

  hot.Touch(target);
  hot.ResidualRef(target) = 1.0;
  out.residual_mass = 1.0;
  hot.FrontierPush(target);

  size_t max_queue = hot.FrontierSize();
  while (!hot.FrontierEmpty()) {
    // Cooperative deadline: no-op unless the caller armed one.
    if (DeadlineExpired(opts, out.pushes)) throw DeadlineExceededError();
    graph::NodeId v = hot.FrontierPop();
    double r = hot.ResidualRef(v);
    if (r < opts.epsilon) continue;
    hot.ResidualRef(v) = 0.0;
    out.residual_mass -= r;
    ++out.pushes;

    bool dangling = g.OutWeight(v) <= 0.0;
    if (dangling) {
      // Geometric series of self-pushes: see ReversePush.
      hot.EstimateRef(v) += r;
      r /= opts.alpha;
    } else {
      hot.EstimateRef(v) += opts.alpha * r;
    }

    double spread = (1.0 - opts.alpha) * r;
    g.ForEachInEdge(v, [&](graph::NodeId u, graph::EdgeTypeId, double w) {
      double out_w = g.OutWeight(u);
      if (out_w <= 0.0) return;  // u unreachable as a walk step into v
      hot.Touch(u);
      hot.ResidualRef(u) += spread * w / out_w;
      out.residual_mass += spread * w / out_w;
      if (!hot.InFrontier(u) && hot.ResidualRef(u) >= opts.epsilon) {
        hot.FrontierPush(u);
      }
    });
    if (hot.FrontierSize() > max_queue) max_queue = hot.FrontierSize();
  }

  EMIGRE_COUNTER("ppr.rlp.kernel.calls").Increment();
  EMIGRE_COUNTER("ppr.rlp.kernel.pushes").Increment(out.pushes);
  EMIGRE_GAUGE("ppr.rlp.kernel.max_queue")
      .SetMax(static_cast<double>(max_queue));
  return out;
}

/// \brief Expands the workspace state of the last kernel push into a dense
/// `PushResult` (for the Eq. 3/4 validators, equivalence tests, and the
/// one-off initial state of `DynamicForwardPush`). O(n) — not for hot loops.
inline PushResult ExportDensePush(const PushWorkspace& ws, size_t n,
                                  double residual_mass) {
  PushResult out;
  out.estimate.assign(n, 0.0);  // NOLINT(dense-reset): one-off dense export
  out.residual.assign(n, 0.0);  // NOLINT(dense-reset): one-off dense export
  for (graph::NodeId v : ws.touched()) {
    out.estimate[v] = ws.Estimate(v);
    out.residual[v] = ws.Residual(v);
  }
  out.residual_mass = residual_mass;
  return out;
}

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_KERNELS_H_
