#ifndef EMIGRE_PPR_WORKSPACE_H_
#define EMIGRE_PPR_WORKSPACE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace emigre::ppr {

struct PushResult;

/// \brief A compacted sparse PPR vector: (node, value) pairs sorted by node.
///
/// Local-push results touch O(Σ pushes) nodes, not O(|V|); storing the
/// dense estimate vector wastes memory linear in graph size per cached
/// target. `SparseVector` keeps only the touched entries — the
/// `ReversePushCache` stores these, and callers that need whole-graph
/// indexing expand once with `ToDense`.
class SparseVector {
 public:
  SparseVector() = default;

  /// Takes ownership of parallel (id, value) arrays. `ids` must be sorted
  /// ascending and unique; entries with value 0.0 are kept as-is (callers
  /// compact before handing over).
  SparseVector(std::vector<graph::NodeId> ids, std::vector<double> values)
      : ids_(std::move(ids)), values_(std::move(values)) {}

  /// Number of stored (non-zero) entries.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Value at `node`, 0.0 when absent. O(log size).
  double Get(graph::NodeId node) const {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), node);
    if (it == ids_.end() || *it != node) return 0.0;
    return values_[static_cast<size_t>(it - ids_.begin())];
  }

  /// Expands into a dense vector over `n` nodes (zeros elsewhere).
  std::vector<double> ToDense(size_t n) const {
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] < n) out[ids_[i]] = values_[i];
    }
    return out;
  }

  /// Heap bytes held by this vector (the `ppr.cache.bytes` accounting).
  size_t MemoryBytes() const {
    return ids_.capacity() * sizeof(graph::NodeId) +
           values_.capacity() * sizeof(double);
  }

  const std::vector<graph::NodeId>& ids() const { return ids_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<graph::NodeId> ids_;
  std::vector<double> values_;
};

/// \brief Reusable sparse state for local-push computations.
///
/// The legacy push engines zero-fill dense `estimate`/`residual`/`queued`
/// arrays of size |V| on every call, so a push touching k nodes costs
/// O(|V| + Σ pushes). The workspace makes the same state reusable at O(k):
///
///  - **Epoch-stamped values.** `estimate_`/`residual_` stay dirty between
///    calls; a per-node stamp records the epoch that last wrote it. `Begin`
///    bumps the epoch (O(1)); the first touch of a node in an epoch lazily
///    resets its two values and records it on the touched list.
///  - **Ring-buffer frontier.** A flat power-of-two ring replaces
///    `std::deque`, with the same FIFO semantics and an epoch-stamped
///    "queued" flag per node, so kernels reproduce the legacy push schedule
///    (and therefore bitwise-identical estimates) without allocation.
///
/// After warm-up (the arrays reached graph size once), `Begin` performs no
/// O(|V|) work — `stats().dense_resets` counts the O(|V|) growth events so
/// benches can assert exactly that.
///
/// A third frontier mode serves the kFast engine: a **bucketed priority
/// frontier** (`PriorityPush`/`PriorityPop`) that pops an approximately
/// highest-residual node first, which converts large mass to estimate
/// early and lets small residuals converge below threshold without ever
/// being pushed — fewer pushes than FIFO on push-bound workloads. To keep
/// the per-edge cost identical to the FIFO ring (the priority structure
/// must not eat its own savings), the frontier is a *threshold sweep*:
///
/// The priority key is **cost-normalized**: key = |residual| / cost, where
/// cost is the degree the eventual push will pay (out-degree forward,
/// in-degree reverse). Raw-residual order is a trap on skewed-degree
/// graphs — hubs accumulate mass fastest, surface first, and get re-popped
/// every band, so the push count drops but *edge work rises*. Keying on
/// converted-mass-per-relaxed-edge makes hubs wait and accumulate while
/// cheap nodes clear, which is what actually reduces edge traffic.
///
/// The frontier runs in *rounds*. Round L has a key threshold τ (a power
/// of two anchored 16 binary orders below ε, so sub-ε keys of high-degree
/// nodes still discriminate); the shared FIFO ring holds the round's work,
/// and 64 exponent buckets hold everything smaller:
///
///  - **At-or-above τ: plain FIFO.** `PriorityPush` with magnitude ≥
///    τ·cost is exactly a ring enqueue — one multiply and compare over the
///    FIFO engines on the hot edge path, no division. That single test is
///    also the *promotion* test: a previously-small node crossing τ via an
///    incoming push enters the current round immediately, so a growing
///    residual is never processed late (the failure mode that makes
///    cruder schemes re-push converged regions).
///  - **Below τ·cost: file once.** The node is filed into the bucket of
///    its key's binary exponent (one division and bit-extract, once per
///    activation, not per edge) and not touched again until its round —
///    re-relaxations of a filed node cost one stamp check.
///  - **Round turnover.** When the ring drains, `PriorityPop` moves the
///    highest occupied bucket into the ring, sets τ to that bucket's lower
///    bound, and continues; filings during the round always land strictly
///    below τ, so every node with key ≥ τ runs in FIFO order within its
///    band before any smaller one.
///
/// A node promoted by the τ test leaves one stale bucket entry behind; the
/// turnover sweep discards it via the defer stamp and the recorded bucket.
/// Only one frontier mode (FIFO or priority) may be used per epoch — they
/// share the ring and the queued flags.
///
/// A workspace serves one push at a time and is not thread-safe; testers own
/// one each, giving one workspace per worker thread under `ParallelTester`.
class PushWorkspace {
  friend class PushHotView;
  friend class PushPriorityView;

 public:
  struct Stats {
    /// `Begin` calls (one per push).
    size_t begins = 0;
    /// O(|V|)-cost array growth/clear events. Stable after warm-up.
    size_t dense_resets = 0;
    /// Total nodes touched across all pushes (the Σ k the sparse reset
    /// actually paid for, vs. begins * |V| for the legacy dense reset).
    size_t touched_total = 0;
  };

  /// Starts a new push over an `n`-node graph. O(1) after warm-up.
  void Begin(size_t n) {
    ++stats_.begins;
    stats_.touched_total += touched_.size();
    if (n > stamp_.size()) Grow(n);
    touched_.clear();
    frontier_head_ = 0;
    frontier_count_ = 0;
    if (epoch_ == UINT32_MAX) {
      // Stamp wrap: one rare O(|V|) clear keeps stale stamps from aliasing.
      ++stats_.dense_resets;
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(queued_stamp_.begin(), queued_stamp_.end(), 0);
      std::fill(defer_stamp_.begin(), defer_stamp_.end(), 0);
      std::fill(mark_stamp_.begin(), mark_stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  size_t size() const { return stamp_.size(); }
  const Stats& stats() const { return stats_; }

  // --- Epoch-stamped estimate / residual ------------------------------------

  /// Lazily zeroes (estimate, residual) of `v` on first touch this epoch.
  /// Unlike the `PushHotView` fast path, also records the node's slot (its
  /// first-touch index) for `SlotOf` — the batched reverse kernel keys its
  /// per-node column rows off it.
  void Touch(graph::NodeId v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      estimate_[v] = 0.0;
      residual_[v] = 0.0;
      slot_[v] = static_cast<uint32_t>(touched_.size());
      touched_.push_back(v);
    }
  }

  double Estimate(graph::NodeId v) const {
    return stamp_[v] == epoch_ ? estimate_[v] : 0.0;
  }
  double Residual(graph::NodeId v) const {
    return stamp_[v] == epoch_ ? residual_[v] : 0.0;
  }

  /// Mutable refs for kernels; `Touch(v)` must have run this epoch.
  double& EstimateRef(graph::NodeId v) { return estimate_[v]; }
  double& ResidualRef(graph::NodeId v) { return residual_[v]; }

  /// Nodes touched this epoch, in first-touch order.
  const std::vector<graph::NodeId>& touched() const { return touched_; }

  /// First-touch index of `v` on the touched list this epoch. Valid only
  /// after `Touch(v)` ran this epoch through the workspace itself (the
  /// `PushHotView` fast path skips slot maintenance).
  uint32_t SlotOf(graph::NodeId v) const { return slot_[v]; }

  // --- FIFO frontier ---------------------------------------------------------

  bool FrontierEmpty() const { return frontier_count_ == 0; }

  /// True when `v` is currently enqueued (this epoch).
  bool InFrontier(graph::NodeId v) const {
    return queued_stamp_[v] == epoch_;
  }

  /// Enqueues `v` (caller checks `InFrontier` first, as the legacy engines
  /// check their `queued` flags).
  void FrontierPush(graph::NodeId v) {
    if (frontier_count_ == frontier_buf_.size()) GrowFrontier();
    frontier_buf_[(frontier_head_ + frontier_count_) &
                  (frontier_buf_.size() - 1)] = v;
    ++frontier_count_;
    queued_stamp_[v] = epoch_;
  }

  /// Pops the oldest enqueued node and clears its queued flag.
  graph::NodeId FrontierPop() {
    graph::NodeId v = frontier_buf_[frontier_head_];
    frontier_head_ = (frontier_head_ + 1) & (frontier_buf_.size() - 1);
    --frontier_count_;
    queued_stamp_[v] = 0;
    return v;
  }

  size_t FrontierSize() const { return frontier_count_; }

  // --- Priority frontier (kFast) --------------------------------------------
  // Threshold-sweep approximate max-queue over residual magnitudes; see the
  // class comment. Shares the ring and the epoch-stamped queued flag with
  // the FIFO frontier, so a single epoch must use one frontier mode only.

  static constexpr int kPriorityBuckets = 64;

  /// Reserved key range below ε: a node whose key (|r|/cost) is under ε —
  /// a large residual on a very high degree node — still files into a
  /// discriminating bucket instead of collapsing into bucket 0.
  static constexpr int kPriorityFloorShift = 16;

  /// Arms the priority frontier for this epoch. `epsilon` anchors the
  /// bucket scale: keys at or below ε/2^16 share the bottom bucket (they
  /// pop last and are usually discarded as converged).
  void PriorityBegin(double epsilon) {
    if (pri_buckets_.empty()) {
      pri_buckets_.resize(kPriorityBuckets);  // NOLINT(dense-reset): 64 rows
    }
    for (auto& bucket : pri_buckets_) bucket.clear();
    int floor = BiasedExponent(epsilon > 0.0 ? epsilon : 5e-324);
    pri_floor_ = floor > kPriorityFloorShift ? floor - kPriorityFloorShift : 0;
    pri_top_ = -1;
    pri_tau_ = std::numeric_limits<double>::infinity();  // file everything
  }

  /// Enqueues `v` with priority key `magnitude / cost` (|residual| over
  /// the degree its push will pay). At or above the current round's τ this
  /// is exactly a ring enqueue (the promotion path for previously-filed
  /// nodes included) and the division never runs; below it the node is
  /// filed into its key's bucket, once.
  void PriorityPush(graph::NodeId v, double magnitude, double cost = 1.0) {
    if (magnitude >= pri_tau_ * cost) {
      if (queued_stamp_[v] == epoch_) return;
      FrontierPush(v);
      return;
    }
    if (defer_stamp_[v] == epoch_) return;
    defer_stamp_[v] = epoch_;
    int b = BucketOf(magnitude / cost, pri_floor_);
    pri_bucket_of_[v] = static_cast<uint8_t>(b);
    pri_buckets_[static_cast<size_t>(b)].push_back(v);
    if (b > pri_top_) pri_top_ = b;
  }

  /// Pops the next node of the current round (FIFO within the ring);
  /// `graph::kInvalidNode` once ring and buckets drain. When the ring
  /// empties, turns the round over: moves the highest occupied bucket into
  /// the ring and lowers τ to that bucket's floor.
  graph::NodeId PriorityPop() {
    for (;;) {
      if (frontier_count_ > 0) {
        graph::NodeId v = frontier_buf_[frontier_head_];
        frontier_head_ = (frontier_head_ + 1) & (frontier_buf_.size() - 1);
        --frontier_count_;
        queued_stamp_[v] = 0;
        defer_stamp_[v] = 0;
        return v;
      }
      while (pri_top_ >= 0 &&
             pri_buckets_[static_cast<size_t>(pri_top_)].empty()) {
        --pri_top_;
      }
      if (pri_top_ < 0) return graph::kInvalidNode;
      int level = pri_top_;
      pri_tau_ = BucketFloorValue(pri_floor_ + level);
      auto& bucket = pri_buckets_[static_cast<size_t>(level)];
      for (graph::NodeId v : bucket) {
        // Skip stale entries: promoted to the ring in an earlier round, or
        // re-filed into a different bucket since.
        if (defer_stamp_[v] != epoch_ ||
            pri_bucket_of_[v] != static_cast<uint8_t>(level) ||
            queued_stamp_[v] == epoch_) {
          continue;
        }
        FrontierPush(v);
      }
      bucket.clear();
      --pri_top_;
    }
  }

  // --- Epoch-stamped node marks ---------------------------------------------
  // An independent scratch bitset (e.g. "items the user interacted with")
  // with the same O(touched) reset discipline. Valid until the next Begin.

  void Mark(graph::NodeId v) { mark_stamp_[v] = epoch_; }
  bool Marked(graph::NodeId v) const { return mark_stamp_[v] == epoch_; }

  // --- Exports ---------------------------------------------------------------

  /// Copies the touched entries into a compacted `SparseVector` (estimates
  /// only), dropping exact zeros. O(k log k) for the id sort.
  SparseVector ExportSparseEstimates() const {
    std::vector<graph::NodeId> ids;
    ids.reserve(touched_.size());
    for (graph::NodeId v : touched_) {
      if (estimate_[v] != 0.0) ids.push_back(v);
    }
    std::sort(ids.begin(), ids.end());
    std::vector<double> values(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) values[i] = estimate_[ids[i]];
    return SparseVector(std::move(ids), std::move(values));
  }

  // --- Dense scratch buffers -------------------------------------------------
  // Reused storage for the inherently-dense engines (power iteration's two
  // distribution vectors). The caller owns the contents; the buffer is only
  // guaranteed to have size `n`, not any particular values. References are
  // stable across later DenseBuffer calls (buffers are heap-boxed).

  std::vector<double>& DenseBuffer(size_t slot, size_t n) {
    if (slot >= dense_buffers_.size()) {
      dense_buffers_.resize(slot + 1);  // NOLINT(dense-reset): O(slots) table
    }
    if (dense_buffers_[slot] == nullptr) {
      dense_buffers_[slot] = std::make_unique<std::vector<double>>();
    }
    std::vector<double>& buf = *dense_buffers_[slot];
    if (buf.size() < n) buf.resize(n);  // NOLINT(dense-reset): scratch growth
    return buf;
  }

 private:
  void Grow(size_t n) {
    ++stats_.dense_resets;
    stamp_.resize(n, 0);          // NOLINT(dense-reset): warm-up growth
    queued_stamp_.resize(n, 0);   // NOLINT(dense-reset): warm-up growth
    defer_stamp_.resize(n, 0);    // NOLINT(dense-reset): warm-up growth
    mark_stamp_.resize(n, 0);     // NOLINT(dense-reset): warm-up growth
    estimate_.resize(n, 0.0);     // NOLINT(dense-reset): warm-up growth
    residual_.resize(n, 0.0);     // NOLINT(dense-reset): warm-up growth
    slot_.resize(n, 0);           // NOLINT(dense-reset): warm-up growth
    pri_bucket_of_.resize(n, 0);  // NOLINT(dense-reset): warm-up growth
    if (frontier_buf_.empty()) {
      frontier_buf_.resize(64);  // NOLINT(dense-reset): fixed initial ring
    }
  }

  /// Biased IEEE-754 exponent of `m` — a 3-instruction `ilogb` substitute
  /// (bit copy, shift, mask; the sign bit is masked away so the magnitude's
  /// exponent comes out for negative keys too). Zero and subnormals map to
  /// 0, far below any ε floor, which is exactly the "converged" bucket.
  static int BiasedExponent(double m) {
    uint64_t bits;
    std::memcpy(&bits, &m, sizeof(bits));
    return static_cast<int>((bits >> 52) & 0x7FF);
  }

  /// Bucket of a priority key: its binary exponent above the ε `floor`,
  /// clamped to the bucket range.
  static int BucketOf(double key, int floor) {
    int b = BiasedExponent(key) - floor;
    if (b < 0) return 0;
    if (b >= kPriorityBuckets) return kPriorityBuckets - 1;
    return b;
  }

  /// The double 2^(biased_exponent − 1023): the smallest magnitude whose
  /// biased exponent is `biased_exponent`, i.e. the floor of that bucket.
  static double BucketFloorValue(int biased_exponent) {
    uint64_t bits = static_cast<uint64_t>(biased_exponent) << 52;
    double out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
  }

  void GrowFrontier() {
    // Double and linearize: ring contents move to the front of the new
    // buffer in FIFO order.
    size_t old_cap = frontier_buf_.size();
    std::vector<graph::NodeId> bigger(old_cap == 0 ? 64 : old_cap * 2);
    for (size_t i = 0; i < frontier_count_; ++i) {
      bigger[i] = frontier_buf_[(frontier_head_ + i) & (old_cap - 1)];
    }
    frontier_buf_ = std::move(bigger);
    frontier_head_ = 0;
  }

  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> queued_stamp_;
  std::vector<uint32_t> mark_stamp_;
  std::vector<double> estimate_;
  std::vector<double> residual_;
  std::vector<graph::NodeId> touched_;

  std::vector<graph::NodeId> frontier_buf_;  // power-of-two ring
  size_t frontier_head_ = 0;
  size_t frontier_count_ = 0;

  std::vector<std::vector<graph::NodeId>> pri_buckets_;
  std::vector<uint8_t> pri_bucket_of_;  // filed bucket (stale-entry check)
  std::vector<uint32_t> defer_stamp_;   // epoch when filed sub-τ
  std::vector<uint32_t> slot_;
  int pri_floor_ = 0;
  int pri_top_ = -1;     // highest occupied bucket (hint; filing raises it)
  double pri_tau_ = 0.0;  // current round's magnitude threshold

  std::vector<std::unique_ptr<std::vector<double>>> dense_buffers_;

  Stats stats_;
};

/// \brief Raw-pointer view over a workspace epoch, for kernel hot loops.
///
/// Semantically identical to calling the `PushWorkspace` accessors, but the
/// array bases, the epoch, and the ring-frontier cursor are loaded ONCE at
/// construction instead of re-read through the workspace reference on every
/// relaxed edge / frontier operation (the compiler cannot hoist them past
/// the stores the push loop makes). Worth ~10% on push-dominated
/// workloads; bitwise-identical results.
///
/// Construct only after `Begin(n)` sized the arrays for this graph. The
/// view owns the frontier cursor while alive — do not touch the
/// workspace's frontier or start a new `Begin` until it is destroyed (the
/// destructor writes the cursor back).
class PushHotView {
 public:
  explicit PushHotView(PushWorkspace& ws)
      : ws_(ws),
        stamp_(ws.stamp_.data()),
        queued_(ws.queued_stamp_.data()),
        estimate_(ws.estimate_.data()),
        residual_(ws.residual_.data()),
        epoch_(ws.epoch_) {
    if (ws.frontier_buf_.empty()) ws.GrowFrontier();
    fbuf_ = ws.frontier_buf_.data();
    fmask_ = ws.frontier_buf_.size() - 1;
    fhead_ = ws.frontier_head_;
    fcount_ = ws.frontier_count_;
  }

  ~PushHotView() {
    ws_.frontier_head_ = fhead_;
    ws_.frontier_count_ = fcount_;
  }

  PushHotView(const PushHotView&) = delete;
  PushHotView& operator=(const PushHotView&) = delete;

  /// See PushWorkspace::Touch.
  void Touch(graph::NodeId v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      estimate_[v] = 0.0;
      residual_[v] = 0.0;
      ws_.touched_.push_back(v);
    }
  }

  double& EstimateRef(graph::NodeId v) { return estimate_[v]; }
  double& ResidualRef(graph::NodeId v) { return residual_[v]; }

  bool InFrontier(graph::NodeId v) const { return queued_[v] == epoch_; }
  bool FrontierEmpty() const { return fcount_ == 0; }
  size_t FrontierSize() const { return fcount_; }

  void FrontierPush(graph::NodeId v) {
    if (fcount_ == fmask_ + 1) {
      ws_.frontier_head_ = fhead_;
      ws_.frontier_count_ = fcount_;
      ws_.GrowFrontier();
      fbuf_ = ws_.frontier_buf_.data();
      fmask_ = ws_.frontier_buf_.size() - 1;
      fhead_ = 0;
    }
    fbuf_[(fhead_ + fcount_) & fmask_] = v;
    ++fcount_;
    queued_[v] = epoch_;
  }

  graph::NodeId FrontierPop() {
    graph::NodeId v = fbuf_[fhead_];
    fhead_ = (fhead_ + 1) & fmask_;
    --fcount_;
    queued_[v] = 0;
    return v;
  }

 private:
  PushWorkspace& ws_;
  uint32_t* stamp_;
  uint32_t* queued_;
  double* estimate_;
  double* residual_;
  uint32_t epoch_;

  graph::NodeId* fbuf_ = nullptr;  // ring cursor, written back in the dtor
  size_t fmask_ = 0;
  size_t fhead_ = 0;
  size_t fcount_ = 0;
};

/// \brief Raw-pointer view for the kFast kernels: the priority-frontier
/// analogue of `PushHotView`.
///
/// Arms the workspace's threshold-sweep priority frontier on construction
/// and exposes the same Touch/EstimateRef/ResidualRef fast path over raw
/// array bases, plus the ring cursor (owned while the view is alive,
/// written back in the destructor). Unlike `PushHotView`, `Touch` also
/// maintains the per-node slot (first-touch index) — the batched reverse
/// kernel addresses its column rows by slot.
///
/// Construct only after `Begin(n)` sized the arrays; one view per epoch,
/// and do not mix with the FIFO frontier in the same epoch (both share
/// ring and queued flags). The round threshold τ is cached in the view —
/// the hot `Push` path costs one double compare over `PushHotView`'s.
class PushPriorityView {
 public:
  PushPriorityView(PushWorkspace& ws, double epsilon)
      : ws_(ws),
        stamp_(ws.stamp_.data()),
        queued_(ws.queued_stamp_.data()),
        defer_(ws.defer_stamp_.data()),
        bucket_of_(ws.pri_bucket_of_.data()),
        slot_(ws.slot_.data()),
        estimate_(ws.estimate_.data()),
        residual_(ws.residual_.data()),
        epoch_(ws.epoch_) {
    ws.PriorityBegin(epsilon);
    tau_ = ws.pri_tau_;
    if (ws.frontier_buf_.empty()) ws.GrowFrontier();
    fbuf_ = ws.frontier_buf_.data();
    fmask_ = ws.frontier_buf_.size() - 1;
    fhead_ = ws.frontier_head_;
    fcount_ = ws.frontier_count_;
  }

  ~PushPriorityView() {
    ws_.frontier_head_ = fhead_;
    ws_.frontier_count_ = fcount_;
    ws_.pri_tau_ = tau_;
  }

  PushPriorityView(const PushPriorityView&) = delete;
  PushPriorityView& operator=(const PushPriorityView&) = delete;

  /// See PushWorkspace::Touch (slot-maintaining form).
  void Touch(graph::NodeId v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      estimate_[v] = 0.0;
      residual_[v] = 0.0;
      slot_[v] = static_cast<uint32_t>(ws_.touched_.size());
      ws_.touched_.push_back(v);
    }
  }

  double& EstimateRef(graph::NodeId v) { return estimate_[v]; }
  double& ResidualRef(graph::NodeId v) { return residual_[v]; }
  uint32_t SlotOf(graph::NodeId v) const { return slot_[v]; }

  /// True while `v` sits in the current round's ring. Callers check this
  /// BEFORE computing the enqueue threshold/cost: a ring-resident node
  /// re-reads its residual at pop time, so nothing needs to happen on
  /// further relaxations — and skipping early avoids the degree load (a
  /// cold adjacency-header access) on the hottest edge path.
  bool InRing(graph::NodeId v) const { return queued_[v] == epoch_; }

  /// See PushWorkspace::PriorityPush: ring enqueue when the key
  /// `magnitude / cost` is at or above τ (one multiply, no division; also
  /// the promotion path), one-time bucket filing below it.
  void Push(graph::NodeId v, double magnitude, double cost) {
    if (magnitude >= tau_ * cost) {
      if (queued_[v] == epoch_) return;
      queued_[v] = epoch_;
      RingPush(v);
      return;
    }
    if (defer_[v] == epoch_) return;
    defer_[v] = epoch_;
    int b = PushWorkspace::BucketOf(magnitude / cost, ws_.pri_floor_);
    bucket_of_[v] = static_cast<uint8_t>(b);
    ws_.pri_buckets_[static_cast<size_t>(b)].push_back(v);
    if (b > ws_.pri_top_) ws_.pri_top_ = b;
  }

  /// See PushWorkspace::PriorityPop (FIFO within the round; turnover moves
  /// the highest occupied bucket into the ring and lowers τ).
  graph::NodeId Pop() {
    for (;;) {
      if (fcount_ > 0) {
        graph::NodeId v = fbuf_[fhead_];
        fhead_ = (fhead_ + 1) & fmask_;
        --fcount_;
        queued_[v] = 0;
        defer_[v] = 0;
        return v;
      }
      while (ws_.pri_top_ >= 0 &&
             ws_.pri_buckets_[static_cast<size_t>(ws_.pri_top_)].empty()) {
        --ws_.pri_top_;
      }
      if (ws_.pri_top_ < 0) return graph::kInvalidNode;
      int level = ws_.pri_top_;
      tau_ = PushWorkspace::BucketFloorValue(ws_.pri_floor_ + level);
      auto& bucket = ws_.pri_buckets_[static_cast<size_t>(level)];
      for (graph::NodeId v : bucket) {
        if (defer_[v] != epoch_ ||
            bucket_of_[v] != static_cast<uint8_t>(level) ||
            queued_[v] == epoch_) {
          continue;  // stale: promoted, popped, or re-filed since
        }
        queued_[v] = epoch_;
        RingPush(v);
      }
      bucket.clear();
      --ws_.pri_top_;
    }
  }

 private:
  void RingPush(graph::NodeId v) {
    if (fcount_ == fmask_ + 1) {
      ws_.frontier_head_ = fhead_;
      ws_.frontier_count_ = fcount_;
      ws_.GrowFrontier();
      fbuf_ = ws_.frontier_buf_.data();
      fmask_ = ws_.frontier_buf_.size() - 1;
      fhead_ = 0;
    }
    fbuf_[(fhead_ + fcount_) & fmask_] = v;
    ++fcount_;
  }

  PushWorkspace& ws_;
  uint32_t* stamp_;
  uint32_t* queued_;
  uint32_t* defer_;
  uint8_t* bucket_of_;
  uint32_t* slot_;
  double* estimate_;
  double* residual_;
  uint32_t epoch_;
  double tau_ = 0.0;

  graph::NodeId* fbuf_ = nullptr;  // ring cursor, written back in the dtor
  size_t fmask_ = 0;
  size_t fhead_ = 0;
  size_t fcount_ = 0;
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_WORKSPACE_H_
