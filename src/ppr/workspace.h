#ifndef EMIGRE_PPR_WORKSPACE_H_
#define EMIGRE_PPR_WORKSPACE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace emigre::ppr {

struct PushResult;

/// \brief A compacted sparse PPR vector: (node, value) pairs sorted by node.
///
/// Local-push results touch O(Σ pushes) nodes, not O(|V|); storing the
/// dense estimate vector wastes memory linear in graph size per cached
/// target. `SparseVector` keeps only the touched entries — the
/// `ReversePushCache` stores these, and callers that need whole-graph
/// indexing expand once with `ToDense`.
class SparseVector {
 public:
  SparseVector() = default;

  /// Takes ownership of parallel (id, value) arrays. `ids` must be sorted
  /// ascending and unique; entries with value 0.0 are kept as-is (callers
  /// compact before handing over).
  SparseVector(std::vector<graph::NodeId> ids, std::vector<double> values)
      : ids_(std::move(ids)), values_(std::move(values)) {}

  /// Number of stored (non-zero) entries.
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Value at `node`, 0.0 when absent. O(log size).
  double Get(graph::NodeId node) const {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), node);
    if (it == ids_.end() || *it != node) return 0.0;
    return values_[static_cast<size_t>(it - ids_.begin())];
  }

  /// Expands into a dense vector over `n` nodes (zeros elsewhere).
  std::vector<double> ToDense(size_t n) const {
    std::vector<double> out(n, 0.0);
    for (size_t i = 0; i < ids_.size(); ++i) {
      if (ids_[i] < n) out[ids_[i]] = values_[i];
    }
    return out;
  }

  /// Heap bytes held by this vector (the `ppr.cache.bytes` accounting).
  size_t MemoryBytes() const {
    return ids_.capacity() * sizeof(graph::NodeId) +
           values_.capacity() * sizeof(double);
  }

  const std::vector<graph::NodeId>& ids() const { return ids_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<graph::NodeId> ids_;
  std::vector<double> values_;
};

/// \brief Reusable sparse state for local-push computations.
///
/// The legacy push engines zero-fill dense `estimate`/`residual`/`queued`
/// arrays of size |V| on every call, so a push touching k nodes costs
/// O(|V| + Σ pushes). The workspace makes the same state reusable at O(k):
///
///  - **Epoch-stamped values.** `estimate_`/`residual_` stay dirty between
///    calls; a per-node stamp records the epoch that last wrote it. `Begin`
///    bumps the epoch (O(1)); the first touch of a node in an epoch lazily
///    resets its two values and records it on the touched list.
///  - **Ring-buffer frontier.** A flat power-of-two ring replaces
///    `std::deque`, with the same FIFO semantics and an epoch-stamped
///    "queued" flag per node, so kernels reproduce the legacy push schedule
///    (and therefore bitwise-identical estimates) without allocation.
///
/// After warm-up (the arrays reached graph size once), `Begin` performs no
/// O(|V|) work — `stats().dense_resets` counts the O(|V|) growth events so
/// benches can assert exactly that.
///
/// A workspace serves one push at a time and is not thread-safe; testers own
/// one each, giving one workspace per worker thread under `ParallelTester`.
class PushWorkspace {
  friend class PushHotView;

 public:
  struct Stats {
    /// `Begin` calls (one per push).
    size_t begins = 0;
    /// O(|V|)-cost array growth/clear events. Stable after warm-up.
    size_t dense_resets = 0;
    /// Total nodes touched across all pushes (the Σ k the sparse reset
    /// actually paid for, vs. begins * |V| for the legacy dense reset).
    size_t touched_total = 0;
  };

  /// Starts a new push over an `n`-node graph. O(1) after warm-up.
  void Begin(size_t n) {
    ++stats_.begins;
    stats_.touched_total += touched_.size();
    if (n > stamp_.size()) Grow(n);
    touched_.clear();
    frontier_head_ = 0;
    frontier_count_ = 0;
    if (epoch_ == UINT32_MAX) {
      // Stamp wrap: one rare O(|V|) clear keeps stale stamps from aliasing.
      ++stats_.dense_resets;
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(queued_stamp_.begin(), queued_stamp_.end(), 0);
      std::fill(mark_stamp_.begin(), mark_stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  size_t size() const { return stamp_.size(); }
  const Stats& stats() const { return stats_; }

  // --- Epoch-stamped estimate / residual ------------------------------------

  /// Lazily zeroes (estimate, residual) of `v` on first touch this epoch.
  void Touch(graph::NodeId v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      estimate_[v] = 0.0;
      residual_[v] = 0.0;
      touched_.push_back(v);
    }
  }

  double Estimate(graph::NodeId v) const {
    return stamp_[v] == epoch_ ? estimate_[v] : 0.0;
  }
  double Residual(graph::NodeId v) const {
    return stamp_[v] == epoch_ ? residual_[v] : 0.0;
  }

  /// Mutable refs for kernels; `Touch(v)` must have run this epoch.
  double& EstimateRef(graph::NodeId v) { return estimate_[v]; }
  double& ResidualRef(graph::NodeId v) { return residual_[v]; }

  /// Nodes touched this epoch, in first-touch order.
  const std::vector<graph::NodeId>& touched() const { return touched_; }

  // --- FIFO frontier ---------------------------------------------------------

  bool FrontierEmpty() const { return frontier_count_ == 0; }

  /// True when `v` is currently enqueued (this epoch).
  bool InFrontier(graph::NodeId v) const {
    return queued_stamp_[v] == epoch_;
  }

  /// Enqueues `v` (caller checks `InFrontier` first, as the legacy engines
  /// check their `queued` flags).
  void FrontierPush(graph::NodeId v) {
    if (frontier_count_ == frontier_buf_.size()) GrowFrontier();
    frontier_buf_[(frontier_head_ + frontier_count_) &
                  (frontier_buf_.size() - 1)] = v;
    ++frontier_count_;
    queued_stamp_[v] = epoch_;
  }

  /// Pops the oldest enqueued node and clears its queued flag.
  graph::NodeId FrontierPop() {
    graph::NodeId v = frontier_buf_[frontier_head_];
    frontier_head_ = (frontier_head_ + 1) & (frontier_buf_.size() - 1);
    --frontier_count_;
    queued_stamp_[v] = 0;
    return v;
  }

  size_t FrontierSize() const { return frontier_count_; }

  // --- Epoch-stamped node marks ---------------------------------------------
  // An independent scratch bitset (e.g. "items the user interacted with")
  // with the same O(touched) reset discipline. Valid until the next Begin.

  void Mark(graph::NodeId v) { mark_stamp_[v] = epoch_; }
  bool Marked(graph::NodeId v) const { return mark_stamp_[v] == epoch_; }

  // --- Exports ---------------------------------------------------------------

  /// Copies the touched entries into a compacted `SparseVector` (estimates
  /// only), dropping exact zeros. O(k log k) for the id sort.
  SparseVector ExportSparseEstimates() const {
    std::vector<graph::NodeId> ids;
    ids.reserve(touched_.size());
    for (graph::NodeId v : touched_) {
      if (estimate_[v] != 0.0) ids.push_back(v);
    }
    std::sort(ids.begin(), ids.end());
    std::vector<double> values(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) values[i] = estimate_[ids[i]];
    return SparseVector(std::move(ids), std::move(values));
  }

  // --- Dense scratch buffers -------------------------------------------------
  // Reused storage for the inherently-dense engines (power iteration's two
  // distribution vectors). The caller owns the contents; the buffer is only
  // guaranteed to have size `n`, not any particular values. References are
  // stable across later DenseBuffer calls (buffers are heap-boxed).

  std::vector<double>& DenseBuffer(size_t slot, size_t n) {
    if (slot >= dense_buffers_.size()) {
      dense_buffers_.resize(slot + 1);  // NOLINT(dense-reset): O(slots) table
    }
    if (dense_buffers_[slot] == nullptr) {
      dense_buffers_[slot] = std::make_unique<std::vector<double>>();
    }
    std::vector<double>& buf = *dense_buffers_[slot];
    if (buf.size() < n) buf.resize(n);  // NOLINT(dense-reset): scratch growth
    return buf;
  }

 private:
  void Grow(size_t n) {
    ++stats_.dense_resets;
    stamp_.resize(n, 0);          // NOLINT(dense-reset): warm-up growth
    queued_stamp_.resize(n, 0);   // NOLINT(dense-reset): warm-up growth
    mark_stamp_.resize(n, 0);     // NOLINT(dense-reset): warm-up growth
    estimate_.resize(n, 0.0);     // NOLINT(dense-reset): warm-up growth
    residual_.resize(n, 0.0);     // NOLINT(dense-reset): warm-up growth
    if (frontier_buf_.empty()) {
      frontier_buf_.resize(64);  // NOLINT(dense-reset): fixed initial ring
    }
  }

  void GrowFrontier() {
    // Double and linearize: ring contents move to the front of the new
    // buffer in FIFO order.
    size_t old_cap = frontier_buf_.size();
    std::vector<graph::NodeId> bigger(old_cap == 0 ? 64 : old_cap * 2);
    for (size_t i = 0; i < frontier_count_; ++i) {
      bigger[i] = frontier_buf_[(frontier_head_ + i) & (old_cap - 1)];
    }
    frontier_buf_ = std::move(bigger);
    frontier_head_ = 0;
  }

  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> queued_stamp_;
  std::vector<uint32_t> mark_stamp_;
  std::vector<double> estimate_;
  std::vector<double> residual_;
  std::vector<graph::NodeId> touched_;

  std::vector<graph::NodeId> frontier_buf_;  // power-of-two ring
  size_t frontier_head_ = 0;
  size_t frontier_count_ = 0;

  std::vector<std::unique_ptr<std::vector<double>>> dense_buffers_;

  Stats stats_;
};

/// \brief Raw-pointer view over a workspace epoch, for kernel hot loops.
///
/// Semantically identical to calling the `PushWorkspace` accessors, but the
/// array bases, the epoch, and the ring-frontier cursor are loaded ONCE at
/// construction instead of re-read through the workspace reference on every
/// relaxed edge / frontier operation (the compiler cannot hoist them past
/// the stores the push loop makes). Worth ~10% on push-dominated
/// workloads; bitwise-identical results.
///
/// Construct only after `Begin(n)` sized the arrays for this graph. The
/// view owns the frontier cursor while alive — do not touch the
/// workspace's frontier or start a new `Begin` until it is destroyed (the
/// destructor writes the cursor back).
class PushHotView {
 public:
  explicit PushHotView(PushWorkspace& ws)
      : ws_(ws),
        stamp_(ws.stamp_.data()),
        queued_(ws.queued_stamp_.data()),
        estimate_(ws.estimate_.data()),
        residual_(ws.residual_.data()),
        epoch_(ws.epoch_) {
    if (ws.frontier_buf_.empty()) ws.GrowFrontier();
    fbuf_ = ws.frontier_buf_.data();
    fmask_ = ws.frontier_buf_.size() - 1;
    fhead_ = ws.frontier_head_;
    fcount_ = ws.frontier_count_;
  }

  ~PushHotView() {
    ws_.frontier_head_ = fhead_;
    ws_.frontier_count_ = fcount_;
  }

  PushHotView(const PushHotView&) = delete;
  PushHotView& operator=(const PushHotView&) = delete;

  /// See PushWorkspace::Touch.
  void Touch(graph::NodeId v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      estimate_[v] = 0.0;
      residual_[v] = 0.0;
      ws_.touched_.push_back(v);
    }
  }

  double& EstimateRef(graph::NodeId v) { return estimate_[v]; }
  double& ResidualRef(graph::NodeId v) { return residual_[v]; }

  bool InFrontier(graph::NodeId v) const { return queued_[v] == epoch_; }
  bool FrontierEmpty() const { return fcount_ == 0; }
  size_t FrontierSize() const { return fcount_; }

  void FrontierPush(graph::NodeId v) {
    if (fcount_ == fmask_ + 1) {
      ws_.frontier_head_ = fhead_;
      ws_.frontier_count_ = fcount_;
      ws_.GrowFrontier();
      fbuf_ = ws_.frontier_buf_.data();
      fmask_ = ws_.frontier_buf_.size() - 1;
      fhead_ = 0;
    }
    fbuf_[(fhead_ + fcount_) & fmask_] = v;
    ++fcount_;
    queued_[v] = epoch_;
  }

  graph::NodeId FrontierPop() {
    graph::NodeId v = fbuf_[fhead_];
    fhead_ = (fhead_ + 1) & fmask_;
    --fcount_;
    queued_[v] = 0;
    return v;
  }

 private:
  PushWorkspace& ws_;
  uint32_t* stamp_;
  uint32_t* queued_;
  double* estimate_;
  double* residual_;
  uint32_t epoch_;

  graph::NodeId* fbuf_ = nullptr;  // ring cursor, written back in the dtor
  size_t fmask_ = 0;
  size_t fhead_ = 0;
  size_t fcount_ = 0;
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_WORKSPACE_H_
