#ifndef EMIGRE_PPR_DYNAMIC_H_
#define EMIGRE_PPR_DYNAMIC_H_

#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/forward_push.h"
#include "ppr/options.h"

namespace emigre::ppr {

/// \brief Incrementally maintained Forward Push state under edge updates.
///
/// Implements the dynamic-graph PPR maintenance of Zhang, Lofgren & Goel
/// (KDD'16) — the paper's reference [38] — for a fixed source: instead of
/// recomputing PPR(s,·) from scratch after each graph edit, repair the
/// push invariant locally and re-push.
///
/// A valid forward-push state satisfies (in vector form)
///   r = e_s − p/α + (1−α)/α · (p·W).
/// When the out-edge set of a single node u changes, only the row W(u,·)
/// changes, so the repair touches exactly u's old and new out-neighbors:
///   r(v) += (1−α)/α · p(u) · (W′(u,v) − W(u,v)).
/// Residuals may turn negative after deletions; the refine loop pushes
/// signed residuals symmetrically.
///
/// Usage: construct over a mutable graph view, then for each edit call
/// `BeforeOutEdgeChange(u)`, mutate the graph, call `AfterOutEdgeChange(u)`.
template <graph::GraphLike G>
class DynamicForwardPush {
 public:
  /// Runs the initial push from `source` over the current state of `g`.
  /// The referenced graph must outlive this object.
  DynamicForwardPush(const G& g, graph::NodeId source,
                     const PprOptions& opts = {})
      : g_(&g), source_(source), opts_(opts) {
    state_ = ForwardPush(g, source, opts);
  }

  /// Snapshots the transition row of `u` ahead of an out-edge mutation.
  void BeforeOutEdgeChange(graph::NodeId u) {
    pending_node_ = u;
    pending_row_ = TransitionRow(u);
  }

  /// Repairs the invariant after the out-edges of the node passed to
  /// `BeforeOutEdgeChange` were mutated, then re-pushes to convergence.
  void AfterOutEdgeChange(graph::NodeId u) {
    EMIGRE_SPAN("dyn.repair");
    EMIGRE_COUNTER("ppr.dyn.repairs").Increment();
    std::unordered_map<graph::NodeId, double> new_row = TransitionRow(u);
    double scale = (1.0 - opts_.alpha) / opts_.alpha * state_.estimate[u];
    if (scale != 0.0) {
      for (const auto& [v, w_new] : new_row) {
        double w_old = 0.0;
        if (auto it = pending_row_.find(v); it != pending_row_.end()) {
          w_old = it->second;
        }
        state_.residual[v] += scale * (w_new - w_old);
      }
      for (const auto& [v, w_old] : pending_row_) {
        if (new_row.count(v) == 0) {
          state_.residual[v] -= scale * w_old;
        }
      }
    }
    pending_row_.clear();
    pending_node_ = graph::kInvalidNode;
    Refine();
  }

  /// Current estimate of PPR(source, t).
  double Estimate(graph::NodeId t) const { return state_.estimate[t]; }
  const std::vector<double>& Estimates() const { return state_.estimate; }
  const std::vector<double>& Residuals() const { return state_.residual; }

  /// Total absolute residual mass (error bound on the estimates).
  double AbsResidualMass() const {
    double total = 0.0;
    for (double r : state_.residual) total += std::abs(r);
    return total;
  }

 private:
  /// Transition probabilities out of u, with the implicit dangling
  /// self-loop materialized.
  std::unordered_map<graph::NodeId, double> TransitionRow(
      graph::NodeId u) const {
    std::unordered_map<graph::NodeId, double> row;
    double out_w = g_->OutWeight(u);
    if (out_w <= 0.0) {
      row[u] = 1.0;
      return row;
    }
    g_->ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      row[v] += w / out_w;
    });
    return row;
  }

  /// Forward push over the existing state with signed residuals.
  void Refine() {
    const size_t n = g_->NumNodes();
    std::deque<graph::NodeId> queue;
    std::vector<char> queued(n, 0);
    auto threshold = [&](graph::NodeId v) {
      size_t deg = g_->OutDegree(v);
      return opts_.epsilon * static_cast<double>(deg > 0 ? deg : 1);
    };
    for (graph::NodeId v = 0; v < n; ++v) {
      if (std::abs(state_.residual[v]) >= threshold(v)) {
        queue.push_back(v);
        queued[v] = 1;
      }
    }
    size_t pushes = 0;
    while (!queue.empty()) {
      graph::NodeId u = queue.front();
      queue.pop_front();
      queued[u] = 0;
      double r = state_.residual[u];
      if (std::abs(r) < threshold(u)) continue;
      state_.residual[u] = 0.0;
      ++pushes;
      double out_w = g_->OutWeight(u);
      if (out_w <= 0.0) {
        state_.estimate[u] += r;
        continue;
      }
      state_.estimate[u] += opts_.alpha * r;
      double spread = (1.0 - opts_.alpha) * r / out_w;
      g_->ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId,
                                double w) {
        state_.residual[v] += spread * w;
        if (!queued[v] && std::abs(state_.residual[v]) >= threshold(v)) {
          queued[v] = 1;
          queue.push_back(v);
        }
      });
    }
    EMIGRE_COUNTER("ppr.dyn.refine_pushes").Increment(pushes);
  }

  const G* g_;
  graph::NodeId source_;
  PprOptions opts_;
  PushResult state_;
  graph::NodeId pending_node_ = graph::kInvalidNode;
  std::unordered_map<graph::NodeId, double> pending_row_;
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_DYNAMIC_H_
