#ifndef EMIGRE_PPR_DYNAMIC_H_
#define EMIGRE_PPR_DYNAMIC_H_

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/forward_push.h"
#include "ppr/kernels.h"
#include "ppr/options.h"
#include "ppr/workspace.h"
#include "util/timer.h"

namespace emigre::ppr {

/// \brief Incrementally maintained Forward Push state under edge updates.
///
/// Implements the dynamic-graph PPR maintenance of Zhang, Lofgren & Goel
/// (KDD'16) — the paper's reference [38] — for a fixed source: instead of
/// recomputing PPR(s,·) from scratch after each graph edit, repair the
/// push invariant locally and re-push.
///
/// A valid forward-push state satisfies (in vector form)
///   r = e_s − p/α + (1−α)/α · (p·W).
/// When the out-edge set of a single node u changes, only the row W(u,·)
/// changes, so the repair touches exactly u's old and new out-neighbors:
///   r(v) += (1−α)/α · p(u) · (W′(u,v) − W(u,v)).
/// Residuals may turn negative after deletions; the refine loop pushes
/// signed residuals symmetrically.
///
/// Two refine engines share the arithmetic:
///  - Legacy (no workspace): O(n) scan to seed a `std::deque`, plus an O(n)
///    `queued` array allocated **per repair** — the per-candidate cost this
///    PR's kernels eliminate.
///  - Kernel (workspace supplied): the refine frontier is seeded from only
///    the nodes the repair touched ({u} ∪ old row ∪ new row, ascending) and
///    runs on the workspace's reusable ring buffer, so a repair costs
///    O(row + pushes) instead of O(n). Valid because every refine leaves all
///    |residual| below threshold, so after a repair only touched nodes can
///    exceed it — the seed sets (and therefore the push schedules, and
///    therefore the floating-point results) of the two engines are
///    identical.
///
/// Usage: construct over a mutable graph view, then for each edit call
/// `BeforeOutEdgeChange(u)`, mutate the graph, call `AfterOutEdgeChange(u)`.
template <graph::GraphLike G>
class DynamicForwardPush {
 public:
  /// Runs the initial push from `source` over the current state of `g`.
  /// The referenced graph must outlive this object; so must `workspace`
  /// when supplied (nullptr selects the legacy dense-refine engine). The
  /// workspace is owned by the caller and is exclusively this object's
  /// between `AfterOutEdgeChange` calls — do not share one across
  /// concurrently-repairing instances.
  DynamicForwardPush(const G& g, graph::NodeId source,
                     const PprOptions& opts = {},
                     PushWorkspace* workspace = nullptr)
      : g_(&g), source_(source), opts_(opts), ws_(workspace) {
    if (ws_ != nullptr) {
      KernelResult init = opts.engine == PushEngine::kFast
                              ? ForwardPushKernelFast(g, source, opts, *ws_)
                              : ForwardPushKernel(g, source, opts, *ws_);
      state_ = ExportDensePush(*ws_, g.NumNodes(), init.residual_mass);
    } else {
      state_ = ForwardPush(g, source, opts);
    }
  }

  /// Snapshots the transition row of `u` ahead of an out-edge mutation.
  void BeforeOutEdgeChange(graph::NodeId u) {
    pending_node_ = u;
    pending_row_ = TransitionRow(u);
  }

  /// Repairs the invariant after the out-edges of the node passed to
  /// `BeforeOutEdgeChange` were mutated, then re-pushes to convergence.
  void AfterOutEdgeChange(graph::NodeId u) {
    EMIGRE_SPAN("dyn.repair");
    EMIGRE_FAULT_POINT("ppr.dyn.refine");
    EMIGRE_COUNTER("ppr.dyn.repairs").Increment();
    std::unordered_map<graph::NodeId, double> new_row = TransitionRow(u);
    double scale = (1.0 - opts_.alpha) / opts_.alpha * state_.estimate[u];
    if (scale != 0.0) {
      for (const auto& [v, w_new] : new_row) {
        double w_old = 0.0;
        if (auto it = pending_row_.find(v); it != pending_row_.end()) {
          w_old = it->second;
        }
        double delta = scale * (w_new - w_old);
        state_.residual[v] += delta;
        state_.residual_mass += delta;
      }
      for (const auto& [v, w_old] : pending_row_) {
        if (new_row.count(v) == 0) {
          double delta = scale * w_old;
          state_.residual[v] -= delta;
          state_.residual_mass -= delta;
        }
      }
    }
    if (ws_ != nullptr) {
      // Only nodes the repair wrote can exceed the threshold (everything
      // else converged below it in the previous refine); seed ascending to
      // match the legacy full-scan enqueue order exactly.
      seed_buf_.clear();
      seed_buf_.push_back(u);
      for (const auto& [v, w] : pending_row_) seed_buf_.push_back(v);
      for (const auto& [v, w] : new_row) seed_buf_.push_back(v);
      std::sort(seed_buf_.begin(), seed_buf_.end());
      seed_buf_.erase(std::unique(seed_buf_.begin(), seed_buf_.end()),
                      seed_buf_.end());
    }
    pending_row_.clear();
    pending_node_ = graph::kInvalidNode;
    if (ws_ != nullptr) {
      if (opts_.engine == PushEngine::kFast) {
        RefineSparseFast();
      } else {
        RefineSparse();
      }
    } else {
      Refine();
    }
    ++repairs_since_resync_;
    if (repairs_since_resync_ >= kResidualMassResyncInterval) {
      ResyncResidualMass();
    }
  }

  /// Current estimate of PPR(source, t).
  double Estimate(graph::NodeId t) const { return state_.estimate[t]; }
  const std::vector<double>& Estimates() const { return state_.estimate; }
  const std::vector<double>& Residuals() const { return state_.residual; }

  /// The full state (for the Eq. 3 validators).
  const PushResult& State() const { return state_; }

  /// Total absolute residual mass (error bound on the estimates).
  double AbsResidualMass() const {
    double total = 0.0;
    for (double r : state_.residual) total += std::abs(r);
    return total;
  }

  /// Incremental `residual_mass` accumulates one float rounding per repair
  /// update; over thousands of repairs the drift can compound past the
  /// Eq. 3 tolerance and poison anytime-mode `degraded_gap` reporting.
  /// Every this-many repairs the signed mass is re-derived from the
  /// residual vector with one O(n) scan (amortized O(n/interval)).
  static constexpr size_t kResidualMassResyncInterval = 1024;

  /// Re-derives `residual_mass` from the residual vector now and returns
  /// the signed drift (incremental − scan) that was discarded. Exposed so
  /// drift-bound tests can measure accumulation without waiting for the
  /// periodic trigger.
  double ResyncResidualMass() {
    double scan = 0.0;
    for (double r : state_.residual) scan += r;
    double drift = state_.residual_mass - scan;
    state_.residual_mass = scan;
    repairs_since_resync_ = 0;
    EMIGRE_COUNTER("ppr.dyn.resyncs").Increment();
    EMIGRE_GAUGE("ppr.dyn.residual_mass_drift").SetMax(std::abs(drift));
    return drift;
  }

 private:
  /// Transition probabilities out of u, with the implicit dangling
  /// self-loop materialized.
  std::unordered_map<graph::NodeId, double> TransitionRow(
      graph::NodeId u) const {
    std::unordered_map<graph::NodeId, double> row;
    double out_w = g_->OutWeight(u);
    if (out_w <= 0.0) {
      row[u] = 1.0;
      return row;
    }
    g_->ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      row[v] += w / out_w;
    });
    return row;
  }

  double Threshold(graph::NodeId v) const {
    size_t deg = g_->OutDegree(v);
    return opts_.epsilon * static_cast<double>(deg > 0 ? deg : 1);
  }

  /// Shared push body of both refine engines: converts the signed residual
  /// of `u` into estimate and spreads the remainder. `enqueue(v)` is called
  /// for every neighbor whose residual changed.
  template <typename EnqueueFn>
  bool PushNode(graph::NodeId u, EnqueueFn&& enqueue) {
    double r = state_.residual[u];
    if (std::abs(r) < Threshold(u)) return false;
    state_.residual[u] = 0.0;
    state_.residual_mass -= r;
    double out_w = g_->OutWeight(u);
    if (out_w <= 0.0) {
      state_.estimate[u] += r;
      return true;
    }
    state_.estimate[u] += opts_.alpha * r;
    double spread = (1.0 - opts_.alpha) * r / out_w;
    g_->ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      state_.residual[v] += spread * w;
      state_.residual_mass += spread * w;
      enqueue(v);
    });
    return true;
  }

  /// Legacy forward push over the existing state with signed residuals:
  /// O(n) scan + per-call dense queued array.
  void Refine() {
    const size_t n = g_->NumNodes();
    std::deque<graph::NodeId> queue;
    std::vector<char> queued(n, 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (std::abs(state_.residual[v]) >= Threshold(v)) {
        queue.push_back(v);
        queued[v] = 1;
      }
    }
    size_t pushes = 0;
    while (!queue.empty()) {
      // Cooperative deadline: no-op unless the caller armed one.
      if (DeadlineExpired(opts_, pushes)) throw DeadlineExceededError();
      graph::NodeId u = queue.front();
      queue.pop_front();
      queued[u] = 0;
      if (PushNode(u, [&](graph::NodeId v) {
            if (!queued[v] && std::abs(state_.residual[v]) >= Threshold(v)) {
              queued[v] = 1;
              queue.push_back(v);
            }
          })) {
        ++pushes;
      }
    }
    EMIGRE_COUNTER("ppr.dyn.refine_pushes").Increment(pushes);
  }

  /// Kernel refine: seeds only from `seed_buf_` (the nodes the repair
  /// touched) and reuses the workspace ring frontier — O(seeds + pushes).
  void RefineSparse() {
    ws_->Begin(g_->NumNodes());
    PushHotView hot(*ws_);
    for (graph::NodeId v : seed_buf_) {
      if (std::abs(state_.residual[v]) >= Threshold(v)) {
        hot.FrontierPush(v);
      }
    }
    size_t pushes = 0;
    while (!hot.FrontierEmpty()) {
      // Cooperative deadline: no-op unless the caller armed one.
      if (DeadlineExpired(opts_, pushes)) throw DeadlineExceededError();
      graph::NodeId u = hot.FrontierPop();
      if (PushNode(u, [&](graph::NodeId v) {
            if (!hot.InFrontier(v) &&
                std::abs(state_.residual[v]) >= Threshold(v)) {
              hot.FrontierPush(v);
            }
          })) {
        ++pushes;
      }
    }
    EMIGRE_COUNTER("ppr.dyn.refine_pushes").Increment(pushes);
  }

  /// The priority-key cost of pushing `v`: the out-edges the push scans.
  /// `Threshold(v) == opts_.epsilon * Cost(v)` by construction.
  double Cost(graph::NodeId v) const {
    size_t deg = g_->OutDegree(v);
    return static_cast<double>(deg > 0 ? deg : 1);
  }

  /// kFast refine: same seed set as `RefineSparse`, but pushed in
  /// best-|residual|-per-edge-first order on the workspace's bucketed
  /// priority frontier (key |r|/deg, matching `ForwardPushKernelFast`).
  /// The repair arithmetic (`PushNode`) is unchanged; only the schedule
  /// differs, so the refined state satisfies the same Eq. 3 invariant with
  /// a different float-noise pattern.
  void RefineSparseFast() {
    ws_->Begin(g_->NumNodes());
    ws_->PriorityBegin(opts_.epsilon);
    for (graph::NodeId v : seed_buf_) {
      double m = std::abs(state_.residual[v]);
      double cost = Cost(v);
      if (m >= opts_.epsilon * cost) ws_->PriorityPush(v, m, cost);
    }
    size_t pushes = 0;
    for (graph::NodeId u;
         (u = ws_->PriorityPop()) != graph::kInvalidNode;) {
      // Cooperative deadline: no-op unless the caller armed one.
      if (DeadlineExpired(opts_, pushes)) throw DeadlineExceededError();
      if (PushNode(u, [&](graph::NodeId v) {
            // Ring-resident nodes re-read their residual at pop time.
            if (ws_->InFrontier(v)) return;
            double m = std::abs(state_.residual[v]);
            double cost = Cost(v);
            if (m >= opts_.epsilon * cost) ws_->PriorityPush(v, m, cost);
          })) {
        ++pushes;
      }
    }
    EMIGRE_COUNTER("ppr.dyn.fast.refine_pushes").Increment(pushes);
  }

  const G* g_;
  graph::NodeId source_;
  PprOptions opts_;
  PushWorkspace* ws_;
  PushResult state_;
  graph::NodeId pending_node_ = graph::kInvalidNode;
  std::unordered_map<graph::NodeId, double> pending_row_;
  std::vector<graph::NodeId> seed_buf_;
  size_t repairs_since_resync_ = 0;
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_DYNAMIC_H_
