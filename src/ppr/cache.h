#ifndef EMIGRE_PPR_CACHE_H_
#define EMIGRE_PPR_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "ppr/kernels.h"
#include "ppr/options.h"
#include "ppr/reverse_push.h"
#include "ppr/workspace.h"

namespace emigre::ppr {

/// \brief Thread-safe LRU cache of Reverse-Local-Push estimate vectors.
///
/// EMiGRe's phases repeatedly need PPR(·, t) for the same handful of
/// targets: the search space computes it for `rec` and `WNI`, the
/// Exhaustive Comparison for every item in the recommendation list, and the
/// evaluation harness runs eight methods over the *same* scenario. Over an
/// immutable graph those vectors are identical across calls; this cache
/// shares them.
///
/// Entries are **sparse** (`SparseVector`, dirty-list compaction of the
/// push workspace): a reverse push touches O(Σ pushes) sources, so a dense
/// |V|-sized vector per target wastes memory linear in graph size. Resident
/// bytes are tracked in the `ppr.cache.bytes` gauge. Entries are
/// `shared_ptr<const SparseVector>` so a caller may keep using one after it
/// is evicted. The cache must only be used while the underlying graph is
/// unchanged — the owner (e.g. `explain::Emigre`) guarantees that by
/// construction.
///
/// The push itself runs through the engine selected by
/// `PprOptions::engine`; the kernel engine draws reusable `PushWorkspace`s
/// from an internal pool (one in flight per concurrently-missing thread),
/// so repeated misses do not re-zero O(|V|) state.
template <graph::GraphLike G>
class ReversePushCache {
 public:
  /// `capacity` bounds resident vectors.
  ReversePushCache(const G& g, const PprOptions& opts, size_t capacity = 64)
      : g_(&g), opts_(opts), capacity_(capacity > 0 ? capacity : 1) {}

  /// The PPR(·, target) estimate vector, computed on first use.
  ///
  /// Accounting: every Get is exactly one of hit / miss / race, so
  /// `hits() + misses() + races() == ` total Gets. A miss is counted by the
  /// thread that actually installs the vector (one logical fill = one
  /// miss); a concurrent Get that recomputed the same target but lost the
  /// install race counts as a race, not a second miss, and its duplicate
  /// push is discarded in favor of the installed vector.
  std::shared_ptr<const SparseVector> Get(graph::NodeId target) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = index_.find(target);
      if (it != index_.end()) {
        // Refresh LRU position.
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        EMIGRE_COUNTER("ppr.cache.hits").Increment();
        return it->second.vector;
      }
    }
    // Compute outside the lock: pushes can be slow and independent targets
    // should not serialize. Concurrent Gets for the same target may both
    // reach here and duplicate the push; the install below resolves that.
    std::shared_ptr<const SparseVector> vector = Compute(target);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(target);
    if (it != index_.end()) {
      // Lost the install race: another thread filled this target while we
      // were pushing. Reuse its vector (first writer wins).
      ++races_;
      EMIGRE_COUNTER("ppr.cache.race").Increment();
      return it->second.vector;
    }
    ++misses_;
    EMIGRE_COUNTER("ppr.cache.misses").Increment();
    lru_.push_front(target);
    size_t entry_bytes = vector->MemoryBytes();
    index_.emplace(target, Entry{vector, lru_.begin(), entry_bytes});
    bytes_ += entry_bytes;
    if (index_.size() > capacity_) {
      auto evict = index_.find(lru_.back());
      bytes_ -= evict->second.bytes;
      index_.erase(evict);
      lru_.pop_back();
    }
    EMIGRE_GAUGE("ppr.cache.bytes").Set(static_cast<double>(bytes_));
    return vector;
  }

  /// Diagnostics.
  size_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  size_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  /// Gets that recomputed a target another thread installed first.
  size_t races() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return races_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }
  /// Heap bytes held by the resident sparse vectors.
  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
  }

  /// Drops all entries (e.g. after the owner mutated the graph).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    lru_.clear();
    bytes_ = 0;
    EMIGRE_GAUGE("ppr.cache.bytes").Set(0.0);
  }

 private:
  struct Entry {
    std::shared_ptr<const SparseVector> vector;
    std::list<graph::NodeId>::iterator lru_it;
    size_t bytes = 0;
  };

  /// Runs the reverse push through the configured engine and compacts the
  /// estimates. Thread-safe (workspaces come from the pool).
  std::shared_ptr<const SparseVector> Compute(graph::NodeId target) {
    EMIGRE_FAULT_POINT("ppr.cache.fill");
    if (opts_.engine == PushEngine::kKernel) {
      std::unique_ptr<PushWorkspace> ws = AcquireWorkspace();
      ReversePushKernel(*g_, target, opts_, *ws);
      auto vector =
          std::make_shared<const SparseVector>(ws->ExportSparseEstimates());
      ReleaseWorkspace(std::move(ws));
      return vector;
    }
    PushResult dense = ReversePush(*g_, target, opts_);
    std::vector<graph::NodeId> ids;
    std::vector<double> values;
    for (graph::NodeId s = 0; s < dense.estimate.size(); ++s) {
      if (dense.estimate[s] != 0.0) {
        ids.push_back(s);
        values.push_back(dense.estimate[s]);
      }
    }
    return std::make_shared<const SparseVector>(std::move(ids),
                                                std::move(values));
  }

  std::unique_ptr<PushWorkspace> AcquireWorkspace() {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<PushWorkspace> ws = std::move(pool_.back());
      pool_.pop_back();
      return ws;
    }
    return std::make_unique<PushWorkspace>();
  }
  void ReleaseWorkspace(std::unique_ptr<PushWorkspace> ws) {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.push_back(std::move(ws));
  }

  const G* g_;
  PprOptions opts_;
  size_t capacity_;

  mutable std::mutex mutex_;
  std::list<graph::NodeId> lru_;  // front = most recent
  std::unordered_map<graph::NodeId, Entry> index_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t races_ = 0;
  size_t bytes_ = 0;

  std::mutex pool_mutex_;
  std::vector<std::unique_ptr<PushWorkspace>> pool_;
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_CACHE_H_
