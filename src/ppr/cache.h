#ifndef EMIGRE_PPR_CACHE_H_
#define EMIGRE_PPR_CACHE_H_

#include <algorithm>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "ppr/kernels.h"
#include "ppr/options.h"
#include "ppr/reverse_push.h"
#include "ppr/workspace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emigre::ppr {

/// \brief Thread-safe LRU cache of Reverse-Local-Push estimate vectors.
///
/// EMiGRe's phases repeatedly need PPR(·, t) for the same handful of
/// targets: the search space computes it for `rec` and `WNI`, the
/// Exhaustive Comparison for every item in the recommendation list, and the
/// evaluation harness runs eight methods over the *same* scenario. Over an
/// immutable graph those vectors are identical across calls; this cache
/// shares them.
///
/// Entries are **sparse** (`SparseVector`, dirty-list compaction of the
/// push workspace): a reverse push touches O(Σ pushes) sources, so a dense
/// |V|-sized vector per target wastes memory linear in graph size. Resident
/// bytes are tracked in the `ppr.cache.bytes` gauge. Entries are
/// `shared_ptr<const SparseVector>` so a caller may keep using one after it
/// is evicted. The cache must only be used while the underlying graph is
/// unchanged — the owner (e.g. `explain::Emigre`) guarantees that by
/// construction.
///
/// The push itself runs through the engine selected by
/// `PprOptions::engine`; the kernel engine draws reusable `PushWorkspace`s
/// from an internal pool (one in flight per concurrently-missing thread),
/// so repeated misses do not re-zero O(|V|) state.
template <graph::GraphLike G>
class ReversePushCache {
 public:
  /// `capacity` bounds resident vectors.
  ReversePushCache(const G& g, const PprOptions& opts, size_t capacity = 64)
      : g_(&g), opts_(opts), capacity_(capacity > 0 ? capacity : 1) {}

  /// The PPR(·, target) estimate vector, computed on first use.
  ///
  /// Accounting: every Get is exactly one of hit / miss / race, so
  /// `hits() + misses() + races() == ` total Gets. A miss is counted by the
  /// thread that actually installs the vector (one logical fill = one
  /// miss); a concurrent Get that recomputed the same target but lost the
  /// install race counts as a race, not a second miss, and its duplicate
  /// push is discarded in favor of the installed vector.
  std::shared_ptr<const SparseVector> Get(graph::NodeId target) {
    {
      util::MutexLock lock(&mutex_);
      auto it = index_.find(target);
      if (it != index_.end()) {
        // Refresh LRU position.
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        EMIGRE_COUNTER("ppr.cache.hits").Increment();
        return it->second.vector;
      }
    }
    // Compute outside the lock: pushes can be slow and independent targets
    // should not serialize. Concurrent Gets for the same target may both
    // reach here and duplicate the push; the install below resolves that.
    std::shared_ptr<const SparseVector> vector = Compute(target);
    util::MutexLock lock(&mutex_);
    auto it = index_.find(target);
    if (it != index_.end()) {
      // Lost the install race: another thread filled this target while we
      // were pushing. Reuse its vector (first writer wins).
      ++races_;
      EMIGRE_COUNTER("ppr.cache.race").Increment();
      return it->second.vector;
    }
    ++misses_;
    EMIGRE_COUNTER("ppr.cache.misses").Increment();
    InstallLocked(target, vector);
    EMIGRE_GAUGE("ppr.cache.bytes").Set(static_cast<double>(bytes_));
    return vector;
  }

  /// Batched `Get`: resolves every target of `targets`, computing all the
  /// misses together — with ONE shared `ReversePushBatchKernel` traversal
  /// when the kFast engine is selected and more than one target misses
  /// (per-target `Compute` otherwise).
  ///
  /// Accounting is serial-Get-equivalent: each position of `targets` is
  /// exactly one hit / miss / race. A unique missing target counts one
  /// miss even when its column came from a batch push (no double-counted
  /// misses); a duplicate of a missing target behaves like the follow-up
  /// Get it replaces (a hit); a batch column that loses the install race
  /// to a concurrent filler counts as a race and is discarded. Installed
  /// batch entries flow through the same LRU/bytes bookkeeping as single
  /// fills, so `bytes()` and the `ppr.cache.bytes` gauge account them.
  std::vector<std::shared_ptr<const SparseVector>> GetBatch(
      const std::vector<graph::NodeId>& targets) {
    std::vector<std::shared_ptr<const SparseVector>> out(targets.size());
    {
      util::MutexLock lock(&mutex_);
      for (size_t i = 0; i < targets.size(); ++i) {
        auto it = index_.find(targets[i]);
        if (it == index_.end()) continue;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        EMIGRE_COUNTER("ppr.cache.hits").Increment();
        out[i] = it->second.vector;
      }
    }
    // Unique missing targets, first-occurrence order (deterministic batch
    // column layout regardless of duplicates).
    std::vector<graph::NodeId> missing;
    for (size_t i = 0; i < targets.size(); ++i) {
      if (out[i] == nullptr &&
          std::find(missing.begin(), missing.end(), targets[i]) ==
              missing.end()) {
        missing.push_back(targets[i]);
      }
    }
    if (missing.empty()) return out;
    std::vector<std::shared_ptr<const SparseVector>> computed =
        ComputeBatch(missing);

    util::MutexLock lock(&mutex_);
    std::unordered_map<graph::NodeId, std::shared_ptr<const SparseVector>>
        resolved;
    for (size_t m = 0; m < missing.size(); ++m) {
      graph::NodeId t = missing[m];
      auto it = index_.find(t);
      if (it != index_.end()) {
        // Lost the install race for this column (first writer wins).
        ++races_;
        EMIGRE_COUNTER("ppr.cache.race").Increment();
        resolved[t] = it->second.vector;
        continue;
      }
      ++misses_;
      EMIGRE_COUNTER("ppr.cache.misses").Increment();
      InstallLocked(t, computed[m]);
      resolved[t] = computed[m];
    }
    EMIGRE_GAUGE("ppr.cache.bytes").Set(static_cast<double>(bytes_));
    std::unordered_map<graph::NodeId, bool> first_filled;
    for (size_t i = 0; i < targets.size(); ++i) {
      if (out[i] != nullptr) continue;
      out[i] = resolved[targets[i]];
      if (!first_filled.emplace(targets[i], true).second) {
        // Second and later occurrences of a missing target: the serial
        // equivalent is a follow-up Get, which would hit.
        ++hits_;
        EMIGRE_COUNTER("ppr.cache.hits").Increment();
      }
    }
    return out;
  }

  /// Diagnostics.
  size_t hits() const {
    util::MutexLock lock(&mutex_);
    return hits_;
  }
  size_t misses() const {
    util::MutexLock lock(&mutex_);
    return misses_;
  }
  /// Gets that recomputed a target another thread installed first.
  size_t races() const {
    util::MutexLock lock(&mutex_);
    return races_;
  }
  size_t size() const {
    util::MutexLock lock(&mutex_);
    return index_.size();
  }
  /// Heap bytes held by the resident sparse vectors.
  size_t bytes() const {
    util::MutexLock lock(&mutex_);
    return bytes_;
  }

  /// Drops all entries (e.g. after the owner mutated the graph).
  void Clear() {
    util::MutexLock lock(&mutex_);
    index_.clear();
    lru_.clear();
    bytes_ = 0;
    EMIGRE_GAUGE("ppr.cache.bytes").Set(0.0);
  }

 private:
  struct Entry {
    std::shared_ptr<const SparseVector> vector;
    std::list<graph::NodeId>::iterator lru_it;
    size_t bytes = 0;
  };

  /// Inserts `vector` under `target` and maintains LRU order, byte
  /// accounting, and capacity eviction (caller has verified the target is
  /// absent). The lock requirement is part of the signature: Clang's
  /// analysis rejects any call path that does not hold `mutex_`.
  void InstallLocked(graph::NodeId target,
                     const std::shared_ptr<const SparseVector>& vector)
      REQUIRES(mutex_) {
    lru_.push_front(target);
    size_t entry_bytes = vector->MemoryBytes();
    index_.emplace(target, Entry{vector, lru_.begin(), entry_bytes});
    bytes_ += entry_bytes;
    if (index_.size() > capacity_) {
      auto evict = index_.find(lru_.back());
      bytes_ -= evict->second.bytes;
      index_.erase(evict);
      lru_.pop_back();
    }
  }

  /// Runs the reverse push through the configured engine and compacts the
  /// estimates. Thread-safe (workspaces come from the pool).
  std::shared_ptr<const SparseVector> Compute(graph::NodeId target) {
    EMIGRE_FAULT_POINT("ppr.cache.fill");
    if (opts_.engine != PushEngine::kLegacy) {
      std::unique_ptr<PushWorkspace> ws = AcquireWorkspace();
      if (opts_.engine == PushEngine::kFast) {
        ReversePushKernelFast(*g_, target, opts_, *ws);
      } else {
        ReversePushKernel(*g_, target, opts_, *ws);
      }
      auto vector =
          std::make_shared<const SparseVector>(ws->ExportSparseEstimates());
      ReleaseWorkspace(std::move(ws));
      return vector;
    }
    PushResult dense = ReversePush(*g_, target, opts_);
    std::vector<graph::NodeId> ids;
    std::vector<double> values;
    for (graph::NodeId s = 0; s < dense.estimate.size(); ++s) {
      if (dense.estimate[s] != 0.0) {
        ids.push_back(s);
        values.push_back(dense.estimate[s]);
      }
    }
    return std::make_shared<const SparseVector>(std::move(ids),
                                                std::move(values));
  }

  /// Computes the columns for `targets` (unique, caller-deduped): one
  /// shared batched traversal under kFast with 2+ targets, per-target
  /// pushes otherwise.
  std::vector<std::shared_ptr<const SparseVector>> ComputeBatch(
      const std::vector<graph::NodeId>& targets) {
    std::vector<std::shared_ptr<const SparseVector>> out;
    out.reserve(targets.size());
    if (opts_.engine == PushEngine::kFast && targets.size() > 1) {
      EMIGRE_FAULT_POINT("ppr.cache.fill.batch");
      std::unique_ptr<PushWorkspace> ws = AcquireWorkspace();
      std::vector<SparseVector> columns =
          ReversePushBatchKernel(*g_, targets, opts_, *ws);
      ReleaseWorkspace(std::move(ws));
      for (SparseVector& column : columns) {
        out.push_back(
            std::make_shared<const SparseVector>(std::move(column)));
      }
      return out;
    }
    for (graph::NodeId t : targets) out.push_back(Compute(t));
    return out;
  }

  std::unique_ptr<PushWorkspace> AcquireWorkspace() {
    util::MutexLock lock(&pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<PushWorkspace> ws = std::move(pool_.back());
      pool_.pop_back();
      return ws;
    }
    return std::make_unique<PushWorkspace>();
  }
  void ReleaseWorkspace(std::unique_ptr<PushWorkspace> ws) {
    util::MutexLock lock(&pool_mutex_);
    pool_.push_back(std::move(ws));
  }

  // Immutable after construction; read lock-free by the fill paths.
  const G* g_;            // NOLINT(guarded-by) const after ctor
  PprOptions opts_;       // NOLINT(guarded-by) const after ctor
  size_t capacity_;       // NOLINT(guarded-by) const after ctor

  mutable util::Mutex mutex_;
  std::list<graph::NodeId> lru_ GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<graph::NodeId, Entry> index_ GUARDED_BY(mutex_);
  size_t hits_ GUARDED_BY(mutex_) = 0;
  size_t misses_ GUARDED_BY(mutex_) = 0;
  size_t races_ GUARDED_BY(mutex_) = 0;
  size_t bytes_ GUARDED_BY(mutex_) = 0;

  // Workspace pool has its own lock so slow fills never serialize behind
  // index lookups. Never held together with `mutex_`.
  util::Mutex pool_mutex_;
  std::vector<std::unique_ptr<PushWorkspace>> pool_ GUARDED_BY(pool_mutex_);
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_CACHE_H_
