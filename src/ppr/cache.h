#ifndef EMIGRE_PPR_CACHE_H_
#define EMIGRE_PPR_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "ppr/options.h"
#include "ppr/reverse_push.h"

namespace emigre::ppr {

/// \brief Thread-safe LRU cache of Reverse-Local-Push estimate vectors.
///
/// EMiGRe's phases repeatedly need PPR(·, t) for the same handful of
/// targets: the search space computes it for `rec` and `WNI`, the
/// Exhaustive Comparison for every item in the recommendation list, and the
/// evaluation harness runs eight methods over the *same* scenario. Over an
/// immutable graph those vectors are identical across calls; this cache
/// shares them.
///
/// Entries are `shared_ptr<const vector>` so a caller may keep using a
/// vector after it is evicted. The cache must only be used while the
/// underlying graph is unchanged — the owner (e.g. `explain::Emigre`)
/// guarantees that by construction.
template <graph::GraphLike G>
class ReversePushCache {
 public:
  using Vector = std::vector<double>;

  /// `capacity` bounds resident vectors (each is O(num_nodes) doubles).
  ReversePushCache(const G& g, const PprOptions& opts, size_t capacity = 64)
      : g_(&g), opts_(opts), capacity_(capacity > 0 ? capacity : 1) {}

  /// The PPR(·, target) estimate vector, computed on first use.
  ///
  /// Accounting: every Get is exactly one of hit / miss / race, so
  /// `hits() + misses() + races() == ` total Gets. A miss is counted by the
  /// thread that actually installs the vector (one logical fill = one
  /// miss); a concurrent Get that recomputed the same target but lost the
  /// install race counts as a race, not a second miss, and its duplicate
  /// push is discarded in favor of the installed vector.
  std::shared_ptr<const Vector> Get(graph::NodeId target) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = index_.find(target);
      if (it != index_.end()) {
        // Refresh LRU position.
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        ++hits_;
        EMIGRE_COUNTER("ppr.cache.hits").Increment();
        return it->second.vector;
      }
    }
    // Compute outside the lock: pushes can be slow and independent targets
    // should not serialize. Concurrent Gets for the same target may both
    // reach here and duplicate the push; the install below resolves that.
    auto vector = std::make_shared<const Vector>(
        ReversePush(*g_, target, opts_).estimate);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(target);
    if (it != index_.end()) {
      // Lost the install race: another thread filled this target while we
      // were pushing. Reuse its vector (first writer wins).
      ++races_;
      EMIGRE_COUNTER("ppr.cache.race").Increment();
      return it->second.vector;
    }
    ++misses_;
    EMIGRE_COUNTER("ppr.cache.misses").Increment();
    lru_.push_front(target);
    index_.emplace(target, Entry{vector, lru_.begin()});
    if (index_.size() > capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    return vector;
  }

  /// Diagnostics.
  size_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  size_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  /// Gets that recomputed a target another thread installed first.
  size_t races() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return races_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

  /// Drops all entries (e.g. after the owner mutated the graph).
  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    lru_.clear();
  }

 private:
  struct Entry {
    std::shared_ptr<const Vector> vector;
    std::list<graph::NodeId>::iterator lru_it;
  };

  const G* g_;
  PprOptions opts_;
  size_t capacity_;

  mutable std::mutex mutex_;
  std::list<graph::NodeId> lru_;  // front = most recent
  std::unordered_map<graph::NodeId, Entry> index_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t races_ = 0;
};

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_CACHE_H_
