#ifndef EMIGRE_PPR_OPTIONS_H_
#define EMIGRE_PPR_OPTIONS_H_

#include <cstddef>

#include "util/timer.h"

namespace emigre::ppr {

/// \brief Which push implementation executes the local-push hot loops.
///
///  - `kLegacy`: the original engines — dense O(n) zero-fill per call,
///    `std::deque` frontier. Kept as the reference implementation for the
///    equivalence suite and the `bench_ppr_kernels` baseline.
///  - `kKernel`: the workspace kernels (`ppr/kernels.h`) — epoch-stamped
///    sparse state reused across calls, flat ring-buffer frontier; a push
///    touching k nodes costs O(k), not O(n). Byte-for-byte the legacy FIFO
///    schedule and float-op order, so estimates are bitwise identical to
///    `kLegacy`.
///  - `kFast`: the scheduling-free kernels — highest-residual-first
///    frontier (bucketed priority queue) and batched multi-target reverse
///    push. Deliberately NOT bitwise identical to the other two engines:
///    the push schedule changes, so individual estimates differ by O(ε)
///    float-summation noise. Correctness is anchored on the Eq. 3/4
///    invariant validators (`check/invariants.h`), which are
///    schedule-independent; every converged kFast state satisfies the same
///    per-node residual bound (|r(v)| < ε·deg(v) forward, < ε reverse) as
///    the legacy schedule. See docs/performance.md for the contract.
enum class PushEngine {
  kLegacy,
  kKernel,
  kFast,
};

/// \brief Shared parameters of the Personalized PageRank computations.
///
/// Defaults follow the paper's experimental setting (§6.1): teleport
/// probability α = 0.15 and local-push tolerance ε = 2.7e-8. The push ε is
/// intentionally configurable: the benchmark harness relaxes it on scaled-
/// down graphs where the paper-tight value buys nothing.
struct PprOptions {
  /// Teleportation (restart) probability α of Eq. 1.
  double alpha = 0.15;

  /// Residual threshold ε of the Forward/Reverse Local Push methods [39].
  double epsilon = 2.7e-8;

  /// Convergence threshold (L1 change between iterations) for power
  /// iteration.
  double power_tolerance = 1e-12;

  /// Iteration cap for power iteration; (1-α)^k bounds the residual mass,
  /// so 300 iterations at α=0.15 is far beyond any practical tolerance.
  size_t max_power_iterations = 300;

  /// Push implementation for components that can route through a reusable
  /// `PushWorkspace` (testers, cache). kLegacy/kKernel estimates are
  /// bitwise identical; kFast keeps the same ε convergence guarantee under
  /// a different schedule. See `PushEngine`.
  PushEngine engine = PushEngine::kKernel;

  /// Cooperative query deadline (non-owning; nullptr = none). The push hot
  /// loops (kernel and legacy engines, dynamic repair) and power iteration
  /// check it periodically — every `kDeadlineCheckInterval` pushes /
  /// every power iteration — and throw `DeadlineExceededError` once it has
  /// expired, instead of running a long push to completion first. A
  /// partially converged state is not a usable estimate, so the loops
  /// unwind rather than return early; the explain testers catch the error
  /// and fail the candidate (docs/robustness.md).
  ///
  /// Set only by `Emigre::Explain` (to its per-query deadline) on the
  /// options copy handed to the TEST path; the deadline object must
  /// outlive every computation using this options value.
  const Deadline* deadline = nullptr;
};

/// Deadline polling cadence of the push loops: the deadline is consulted
/// once every this many pushes (power of two; the loops test
/// `pushes & (interval - 1)`). One push touches a node row, so 256 pushes
/// bound the overshoot to microseconds while keeping the check itself out
/// of the per-push cost.
inline constexpr size_t kDeadlineCheckInterval = 256;

/// True when `opts` carries an expired deadline; the periodic form used by
/// the push loops.
inline bool DeadlineExpired(const PprOptions& opts, size_t pushes) {
  return opts.deadline != nullptr &&
         (pushes & (kDeadlineCheckInterval - 1)) == 0 &&
         opts.deadline->Expired();
}

/// \brief Dangling-node convention.
///
/// A random walk that reaches a node without outgoing edges has nowhere to
/// continue. We pin such walks in place (an implicit self-loop), which keeps
/// the transition matrix independent of the walk's source — a property the
/// Reverse Local Push requires (its estimates hold for *all* sources at
/// once). This matters only for isolated nodes in practice: the dataset
/// pipeline bidirectionalizes relations (paper §6.1), so true sinks are rare.
inline constexpr bool kDanglingSelfLoop = true;

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_OPTIONS_H_
