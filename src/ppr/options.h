#ifndef EMIGRE_PPR_OPTIONS_H_
#define EMIGRE_PPR_OPTIONS_H_

#include <cstddef>

namespace emigre::ppr {

/// \brief Which push implementation executes the local-push hot loops.
///
/// Both engines compute bitwise-identical estimates (same FIFO schedule,
/// same float-op order); they differ purely in constant factors:
///  - `kLegacy`: the original engines — dense O(n) zero-fill per call,
///    `std::deque` frontier. Kept as the reference implementation for the
///    equivalence suite and the `bench_ppr_kernels` baseline.
///  - `kKernel`: the workspace kernels (`ppr/kernels.h`) — epoch-stamped
///    sparse state reused across calls, flat ring-buffer frontier; a push
///    touching k nodes costs O(k), not O(n).
enum class PushEngine {
  kLegacy,
  kKernel,
};

/// \brief Shared parameters of the Personalized PageRank computations.
///
/// Defaults follow the paper's experimental setting (§6.1): teleport
/// probability α = 0.15 and local-push tolerance ε = 2.7e-8. The push ε is
/// intentionally configurable: the benchmark harness relaxes it on scaled-
/// down graphs where the paper-tight value buys nothing.
struct PprOptions {
  /// Teleportation (restart) probability α of Eq. 1.
  double alpha = 0.15;

  /// Residual threshold ε of the Forward/Reverse Local Push methods [39].
  double epsilon = 2.7e-8;

  /// Convergence threshold (L1 change between iterations) for power
  /// iteration.
  double power_tolerance = 1e-12;

  /// Iteration cap for power iteration; (1-α)^k bounds the residual mass,
  /// so 300 iterations at α=0.15 is far beyond any practical tolerance.
  size_t max_power_iterations = 300;

  /// Push implementation for components that can route through a reusable
  /// `PushWorkspace` (testers, cache). Estimates are engine-independent;
  /// see `PushEngine`.
  PushEngine engine = PushEngine::kKernel;
};

/// \brief Dangling-node convention.
///
/// A random walk that reaches a node without outgoing edges has nowhere to
/// continue. We pin such walks in place (an implicit self-loop), which keeps
/// the transition matrix independent of the walk's source — a property the
/// Reverse Local Push requires (its estimates hold for *all* sources at
/// once). This matters only for isolated nodes in practice: the dataset
/// pipeline bidirectionalizes relations (paper §6.1), so true sinks are rare.
inline constexpr bool kDanglingSelfLoop = true;

}  // namespace emigre::ppr

#endif  // EMIGRE_PPR_OPTIONS_H_
