#ifndef EMIGRE_GRAPH_SUBGRAPH_H_
#define EMIGRE_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/hin_graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace emigre::graph {

/// \brief An induced subgraph with its id mappings.
struct Subgraph {
  HinGraph graph;
  /// old node id -> new node id (kInvalidNode when dropped).
  std::vector<NodeId> old_to_new;
  /// new node id -> old node id.
  std::vector<NodeId> new_to_old;
};

/// \brief Extracts the union k-hop neighborhood ball around `seeds`.
///
/// BFS treats edges as traversable in both directions (the paper's
/// evaluation graphs are bidirectionalized anyway, §6.1); the result is the
/// subgraph induced on every node within `hops` of some seed, with node
/// labels, node/edge type registries, and edge weights preserved. Node ids
/// are remapped densely in ascending old-id order, keeping deterministic
/// tie-breaks stable relative to the original graph.
///
/// `hops == 0` keeps only the seeds themselves (and their mutual edges).
/// Fails with InvalidArgument on an out-of-range seed.
[[nodiscard]] Result<Subgraph> ExtractNeighborhood(const HinGraph& g,
                                     const std::vector<NodeId>& seeds,
                                     size_t hops);

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_SUBGRAPH_H_
