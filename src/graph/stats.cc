#include "graph/stats.h"

#include <cmath>

#include "util/string_util.h"
#include "util/table.h"

namespace emigre::graph {

std::vector<TypeDegreeStats> ComputeDegreeStats(const HinGraph& g) {
  size_t num_types = g.NumNodeTypes();
  std::vector<TypeDegreeStats> stats(num_types);
  std::vector<double> sum(num_types, 0.0);
  std::vector<double> sum_sq(num_types, 0.0);

  for (NodeTypeId t = 0; t < num_types; ++t) {
    stats[t].type_name = g.NodeTypeName(t);
  }
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    NodeTypeId t = g.NodeType(n);
    double degree = static_cast<double>(g.OutDegree(n) + g.InDegree(n));
    stats[t].num_nodes += 1;
    sum[t] += degree;
    sum_sq[t] += degree * degree;
  }
  for (NodeTypeId t = 0; t < num_types; ++t) {
    if (stats[t].num_nodes == 0) continue;
    double n = static_cast<double>(stats[t].num_nodes);
    double mean = sum[t] / n;
    stats[t].mean_degree = mean;
    double var = sum_sq[t] / n - mean * mean;
    stats[t].degree_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return stats;
}

std::string FormatDegreeStats(const std::vector<TypeDegreeStats>& stats) {
  TextTable table({"Node Type", "# of Nodes", "Average Degree",
                   "Degree STD"});
  table.SetAlign(1, Align::kRight);
  table.SetAlign(2, Align::kRight);
  table.SetAlign(3, Align::kRight);
  for (const auto& s : stats) {
    table.AddRow({s.type_name, StrFormat("%zu", s.num_nodes),
                  FormatDouble(s.mean_degree, 1),
                  FormatDouble(s.degree_stddev, 1)});
  }
  return table.ToString();
}

}  // namespace emigre::graph
