#ifndef EMIGRE_GRAPH_TYPE_REGISTRY_H_
#define EMIGRE_GRAPH_TYPE_REGISTRY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace emigre::graph {

/// \brief Bidirectional mapping between type names and dense ids.
///
/// One instance exists for node types and one for edge types inside each
/// `HinGraph` (the θ mapping of Definition 3.1). Ids are assigned in
/// registration order, so graphs built deterministically get deterministic
/// ids.
template <typename IdType>
class TypeRegistry {
 public:
  /// Returns the id for `name`, registering it if new.
  IdType GetOrRegister(std::string_view name) {
    auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) return it->second;
    IdType id = static_cast<IdType>(names_.size());
    names_.emplace_back(name);
    by_name_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or the invalid sentinel if unregistered.
  IdType Find(std::string_view name) const {
    auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) {
      return static_cast<IdType>(std::numeric_limits<IdType>::max());
    }
    return it->second;
  }

  bool Contains(std::string_view name) const {
    return by_name_.count(std::string(name)) > 0;
  }

  /// Name lookup; `id` must be a registered id.
  const std::string& Name(IdType id) const { return names_.at(id); }

  size_t size() const { return names_.size(); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, IdType> by_name_;
};

using NodeTypeRegistry = TypeRegistry<NodeTypeId>;
using EdgeTypeRegistry = TypeRegistry<EdgeTypeId>;

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_TYPE_REGISTRY_H_
