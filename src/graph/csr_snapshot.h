#ifndef EMIGRE_GRAPH_CSR_SNAPSHOT_H_
#define EMIGRE_GRAPH_CSR_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "graph/csr.h"
#include "graph/hin_graph.h"
#include "graph/type_registry.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::graph {

/// \brief The `emigre.csr.v1` mmap-able CSR snapshot (docs/data_format.md).
///
/// A snapshot serializes a built `CsrGraph` — type/weight/offset/adjacency
/// columns plus the type-name tables and optional node labels — into one
/// page-aligned blob. Loading maps the file read-only and aliases the
/// column arrays in place (`CsrGraph::Alias`), so a cold start touches the
/// header and a handful of pages instead of re-parsing CSVs; the kernel
/// pages the adjacency in on demand. Hosts without `mmap` (or callers that
/// ask for it) fall back to one buffered `read` of the file.
///
/// The layout is little-endian and fixed-width: a 56-byte header, a table
/// of 32-byte section descriptors, then the payloads, each aligned to
/// `kSnapshotAlign`. Sections 1-10 are exactly the `CsrGraph::Columns`
/// arrays; 11/12 are length-prefixed type-name pools; 13/14 (optional)
/// are the label offset column and label byte pool.

inline constexpr char kSnapshotMagic[8] = {'E', 'M', 'G', 'R',
                                           'C', 'S', 'R', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotEndianTag = 0x01020304u;
/// Payload alignment: one page, so every column is naturally aligned for
/// its element type and mmap'd arrays can be dereferenced directly.
inline constexpr uint64_t kSnapshotAlign = 4096;

/// Stable section identifiers — append only.
enum class SnapshotSectionId : uint32_t {
  kNodeType = 1,       ///< NodeTypeId[num_nodes]
  kOutWeight = 2,      ///< double[num_nodes]
  kOutOffsets = 3,     ///< uint64_t[num_nodes + 1]
  kOutDst = 4,         ///< NodeId[num_edges]
  kOutType = 5,        ///< EdgeTypeId[num_edges]
  kOutW = 6,           ///< double[num_edges]
  kInOffsets = 7,      ///< uint64_t[num_nodes + 1]
  kInSrc = 8,          ///< NodeId[num_edges]
  kInType = 9,         ///< EdgeTypeId[num_edges]
  kInW = 10,           ///< double[num_edges]
  kNodeTypeNames = 11, ///< u32 count, then per name u32 len + bytes
  kEdgeTypeNames = 12, ///< u32 count, then per name u32 len + bytes
  kLabelOffsets = 13,  ///< uint64_t[num_nodes + 1] (optional)
  kLabelBytes = 14,    ///< concatenated label bytes (optional)
};

/// Header flag bits.
inline constexpr uint32_t kSnapshotFlagLabels = 1u << 0;

/// File header, at offset 0.
struct SnapshotHeaderOnDisk {
  char magic[8];           ///< "EMGRCSR1"
  uint32_t version;        ///< 1
  uint32_t endian;         ///< kSnapshotEndianTag on a little-endian host
  uint64_t num_nodes;
  uint64_t num_edges;
  uint32_t num_node_types;
  uint32_t num_edge_types;
  uint32_t section_count;  ///< entries in the section table
  uint32_t flags;          ///< kSnapshotFlag*
  uint32_t table_crc;      ///< CRC-32 of the section table bytes
  uint32_t header_crc;     ///< CRC-32 of the preceding 52 bytes
};
static_assert(sizeof(SnapshotHeaderOnDisk) == 56);
static_assert(std::is_trivially_copyable_v<SnapshotHeaderOnDisk>);

/// One entry of the section table (immediately after the header).
struct SnapshotSectionOnDisk {
  uint32_t id;          ///< SnapshotSectionId
  uint32_t reserved;    ///< 0
  uint64_t offset;      ///< absolute file offset, kSnapshotAlign-aligned
  uint64_t bytes;       ///< payload length
  uint32_t payload_crc; ///< CRC-32 of the payload bytes
  uint32_t reserved2;   ///< 0
};
static_assert(sizeof(SnapshotSectionOnDisk) == 32);
static_assert(std::is_trivially_copyable_v<SnapshotSectionOnDisk>);

/// True when the first bytes of `path` carry the snapshot magic.
bool SniffCsrSnapshot(const std::string& path);

// --- Writer ------------------------------------------------------------------

/// Graph metadata serialized alongside the columns.
struct SnapshotMeta {
  std::vector<std::string> node_type_names;
  std::vector<std::string> edge_type_names;
  /// Optional node-label source, invoked with each node id in order (twice:
  /// once to size the pool, once to stream it — must be deterministic).
  /// Null writes a label-free snapshot.
  std::function<std::string(NodeId)> label;
};

/// Writes `csr` + `meta` to `path` as an `emigre.csr.v1` snapshot.
[[nodiscard]] Status WriteCsrSnapshot(const CsrGraph& csr,
                                      const SnapshotMeta& meta,
                                      const std::string& path);

/// Convenience: builds the CSR form of `g` and snapshots it with `g`'s
/// type registries and labels.
[[nodiscard]] Status WriteGraphSnapshot(const HinGraph& g,
                                        const std::string& path);

// --- Loader ------------------------------------------------------------------

enum class SnapshotMapMode {
  kAuto, ///< mmap when available, else buffered read
  kMmap, ///< require mmap; error on hosts without it
  kRead, ///< force the buffered-read fallback
};

struct SnapshotLoadOptions {
  SnapshotMapMode mode = SnapshotMapMode::kAuto;
  /// Sweep every payload and verify its CRC-32 at load time. Off by
  /// default: a full sweep pages the whole file in, which defeats the
  /// lazy mmap cold start. Header, section table and structural bounds
  /// are always verified.
  bool verify_checksums = false;
};

/// \brief Read-only mapping (or buffered copy) of a snapshot file.
class MappedBlob {
 public:
  MappedBlob() = default; ///< empty; populate via Open
  ~MappedBlob();
  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  /// Maps `path` per `mode`. IOError on open/map/read failure.
  [[nodiscard]] static Result<std::shared_ptr<MappedBlob>> Open(
      const std::string& path, SnapshotMapMode mode);

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  bool mmap_backed() const { return mmap_backed_; }

 private:
  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool mmap_backed_ = false;
  std::unique_ptr<uint8_t[]> heap_; ///< owns `data_` in read fallback
};

/// \brief A loaded snapshot: satisfies `GraphLike` (aliasing the mapped
/// columns through `CsrGraph`) and carries the HinGraph-style metadata
/// surface (type registries, labels) the explain pipeline formats with.
///
/// Copies are cheap — they share the mapping. The mapping lives as long as
/// any copy (or any `CsrGraph` aliased from `csr()`) does; views handed to
/// kernels pin it via the CsrGraph keepalive.
class CsrSnapshotView {
 public:
  /// Maps and validates `path`. Corruption maps to typed errors: bad
  /// magic/version/endian/CRC or inconsistent bounds -> InvalidArgument,
  /// truncation or map/read failure -> IOError.
  [[nodiscard]] static Result<CsrSnapshotView> Load(
      const std::string& path, const SnapshotLoadOptions& opts = {});

  // GraphLike surface (mirrors CsrGraph).
  size_t NumNodes() const { return csr_.NumNodes(); }
  size_t NumEdges() const { return csr_.NumEdges(); }
  size_t OutDegree(NodeId n) const { return csr_.OutDegree(n); }
  size_t InDegree(NodeId n) const { return csr_.InDegree(n); }
  double OutWeight(NodeId n) const { return csr_.OutWeight(n); }
  NodeTypeId NodeType(NodeId n) const { return csr_.NodeType(n); }
  bool IsValidNode(NodeId n) const { return csr_.IsValidNode(n); }
  bool HasEdge(NodeId src, NodeId dst) const { return csr_.HasEdge(src, dst); }
  bool HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const {
    return csr_.HasEdge(src, dst, type);
  }
  double EdgeWeight(NodeId src, NodeId dst, EdgeTypeId type) const {
    return csr_.EdgeWeight(src, dst, type);
  }
  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    csr_.ForEachOutEdge(n, std::forward<F>(fn));
  }
  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    csr_.ForEachInEdge(n, std::forward<F>(fn));
  }

  /// The aliased CSR view — hand this to push engines and overlays. It
  /// pins the mapping independently of this object.
  const CsrGraph& csr() const { return csr_; }

  // Metadata surface (HinGraph-compatible).
  NodeTypeId FindNodeType(std::string_view name) const {
    return node_types_.Find(name);
  }
  EdgeTypeId FindEdgeType(std::string_view name) const {
    return edge_types_.Find(name);
  }
  const std::string& NodeTypeName(NodeTypeId id) const {
    return node_types_.Name(id);
  }
  const std::string& EdgeTypeName(EdgeTypeId id) const {
    return edge_types_.Name(id);
  }
  size_t NumNodeTypes() const { return node_types_.size(); }
  size_t NumEdgeTypes() const { return edge_types_.size(); }

  /// All nodes of `type`, ascending (mirrors `HinGraph::NodesOfType`).
  std::vector<NodeId> NodesOfType(NodeTypeId type) const {
    std::vector<NodeId> out;
    const uint64_t n = csr_.NumNodes();
    for (uint64_t i = 0; i < n; ++i) {
      if (csr_.NodeType(static_cast<NodeId>(i)) == type) {
        out.push_back(static_cast<NodeId>(i));
      }
    }
    return out;
  }

  bool has_labels() const { return label_offsets_ != nullptr; }
  /// View into the mapped label pool; empty when the snapshot carries no
  /// labels. Valid while the mapping lives.
  std::string_view Label(NodeId n) const {
    if (label_offsets_ == nullptr) return {};
    return {label_bytes_ + label_offsets_[n],
            static_cast<size_t>(label_offsets_[n + 1] - label_offsets_[n])};
  }
  /// Label, or "#<id>" when absent (mirrors `HinGraph::DisplayName`).
  std::string DisplayName(NodeId n) const;

  bool mmap_backed() const { return blob_->mmap_backed(); }
  uint64_t file_bytes() const { return blob_->size(); }

 private:
  CsrSnapshotView() = default;

  CsrGraph csr_;
  std::shared_ptr<MappedBlob> blob_;
  NodeTypeRegistry node_types_;
  EdgeTypeRegistry edge_types_;
  const uint64_t* label_offsets_ = nullptr;
  const char* label_bytes_ = nullptr;
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_CSR_SNAPSHOT_H_
