#ifndef EMIGRE_GRAPH_TRAITS_H_
#define EMIGRE_GRAPH_TRAITS_H_

#include <concepts>
#include <cstddef>

#include "graph/types.h"

namespace emigre::graph {

/// \brief Concept modeled by every graph view the PPR engines accept.
///
/// `HinGraph`, `GraphOverlay` and `CsrGraph` all satisfy it. The traversal
/// callbacks (`ForEachOutEdge` / `ForEachInEdge`) are template members and
/// therefore checked at use sites rather than in the requires-clause; the
/// concept still documents and enforces the scalar surface.
template <typename G>
concept GraphLike = requires(const G& g, NodeId n) {
  { g.NumNodes() } -> std::convertible_to<size_t>;
  { g.OutDegree(n) } -> std::convertible_to<size_t>;
  { g.OutWeight(n) } -> std::convertible_to<double>;
  { g.NodeType(n) } -> std::convertible_to<NodeTypeId>;
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_TRAITS_H_
