#ifndef EMIGRE_GRAPH_MATERIALIZE_H_
#define EMIGRE_GRAPH_MATERIALIZE_H_

#include <memory>
#include <string>
#include <type_traits>

#include "graph/hin_graph.h"
#include "graph/types.h"

namespace emigre::graph {

/// \brief Rebuilds a mutable `HinGraph` from any graph view that carries
/// the full metadata surface (type names + labels) — a `CsrSnapshotView`,
/// or another `HinGraph` (plain copy).
///
/// The kLegacy push engine mutates a private scratch graph per tester;
/// mmap-backed views are immutable, so legacy-engine testers materialize
/// one. Out-adjacency order is preserved exactly (CSR column order); the
/// in-adjacency of each node is re-derived in (src, out-position) order,
/// which only matters for the floating-point summation order of reverse
/// pushes — the push estimates stay within the engine's ε contract.
template <typename G>
std::unique_ptr<HinGraph> MaterializeHinGraph(const G& g) {
  if constexpr (std::is_same_v<G, HinGraph>) {
    return std::make_unique<HinGraph>(g);
  } else {
    auto out = std::make_unique<HinGraph>();
    for (size_t t = 0; t < g.NumNodeTypes(); ++t) {
      out->RegisterNodeType(g.NodeTypeName(static_cast<NodeTypeId>(t)));
    }
    for (size_t t = 0; t < g.NumEdgeTypes(); ++t) {
      out->RegisterEdgeType(g.EdgeTypeName(static_cast<EdgeTypeId>(t)));
    }
    const size_t n = g.NumNodes();
    for (size_t i = 0; i < n; ++i) {
      const NodeId node = static_cast<NodeId>(i);
      out->AddNode(g.NodeType(node), std::string(g.Label(node)));
    }
    for (size_t i = 0; i < n; ++i) {
      const NodeId src = static_cast<NodeId>(i);
      g.ForEachOutEdge(src, [&](NodeId dst, EdgeTypeId type, double w) {
        out->AddEdge(src, dst, type, w).CheckOK();
      });
    }
    return out;
  }
}

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_MATERIALIZE_H_
