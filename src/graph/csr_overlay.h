#ifndef EMIGRE_GRAPH_CSR_OVERLAY_H_
#define EMIGRE_GRAPH_CSR_OVERLAY_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"
#include "util/status.h"

namespace emigre::graph {

/// \brief A counterfactual view over an immutable `CsrGraph` snapshot.
///
/// Same edit semantics and Status surface as `GraphOverlay` (which wraps a
/// `HinGraph`), but the base traversals run over the CSR's contiguous
/// neighbor/weight arrays — the representation the push kernels want. The
/// kernel-engine testers snapshot the graph once, then evaluate every
/// candidate flip through a `CsrOverlay` without materializing anything.
///
/// Because `CsrGraph::BuildFrom` preserves adjacency order and `Clear()`
/// returns the view to the untouched base arrays, repeated
/// edit → evaluate → Clear cycles always traverse edges in the same order —
/// the property the bitwise kernel-vs-legacy equivalence relies on (a
/// mutable `HinGraph` scratch copy loses it: remove + re-add reorders the
/// adjacency list).
///
/// Overlays are cheap to construct and to `Clear()`, and several overlays
/// over the same base may be used concurrently from different threads as
/// long as the base outlives them.
class CsrOverlay {
 public:
  explicit CsrOverlay(const CsrGraph& base) : base_(&base) {}

  const CsrGraph& base() const { return *base_; }

  // --- Edits ----------------------------------------------------------------

  /// Adds (src, dst, type, weight) on top of the base. Restores the original
  /// weight instead if that exact edge was previously removed through this
  /// overlay. Fails with AlreadyExists if the edge is already present in the
  /// effective graph.
  [[nodiscard]]
  Status AddEdge(NodeId src, NodeId dst, EdgeTypeId type, double weight = 1.0);

  /// Removes (src, dst, type) from the effective graph — either masking a
  /// base edge or undoing a previous overlay addition.
  [[nodiscard]] Status RemoveEdge(NodeId src, NodeId dst, EdgeTypeId type);

  /// Overrides the weight of an existing effective edge (base or added).
  /// Fails with NotFound when the edge is absent and InvalidArgument on a
  /// non-positive weight.
  [[nodiscard]]
  Status SetWeight(NodeId src, NodeId dst, EdgeTypeId type, double weight);

  /// Drops all edits; the overlay becomes a transparent view again.
  void Clear();

  size_t NumAdded() const { return num_added_; }
  size_t NumRemoved() const { return removed_.size(); }
  bool HasEdits() const { return num_added_ > 0 || !removed_.empty(); }

  /// The current edit sets (for reporting), sorted.
  std::vector<EdgeRef> AddedEdges() const;
  std::vector<EdgeRef> RemovedEdges() const;

  // --- GraphLike interface ---------------------------------------------------

  size_t NumNodes() const { return base_->NumNodes(); }
  NodeTypeId NodeType(NodeId n) const { return base_->NodeType(n); }

  /// Effective out-weight of `n` (base plus overlay delta).
  double OutWeight(NodeId n) const {
    double w = base_->OutWeight(n);
    auto it = out_weight_delta_.find(n);
    if (it != out_weight_delta_.end()) w += it->second;
    return w < 0.0 ? 0.0 : w;
  }

  /// Effective out-degree of `n`.
  size_t OutDegree(NodeId n) const;
  size_t InDegree(NodeId n) const;

  bool HasEdge(NodeId src, NodeId dst) const;
  bool HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const;

  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    if (removed_.empty() || removed_src_.count(n) == 0) {
      base_->ForEachOutEdge(n, fn);
    } else {
      base_->ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
        if (removed_.count(EdgeRef{n, dst, t}) == 0) fn(dst, t, w);
      });
    }
    auto it = added_out_.find(n);
    if (it != added_out_.end()) {
      for (const Edge& e : it->second) fn(e.node, e.type, e.weight);
    }
  }

  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    if (removed_.empty() || removed_dst_.count(n) == 0) {
      base_->ForEachInEdge(n, fn);
    } else {
      base_->ForEachInEdge(n, [&](NodeId src, EdgeTypeId t, double w) {
        if (removed_.count(EdgeRef{src, n, t}) == 0) fn(src, t, w);
      });
    }
    auto it = added_in_.find(n);
    if (it != added_in_.end()) {
      for (const Edge& e : it->second) fn(e.node, e.type, e.weight);
    }
  }

 private:
  const CsrGraph* base_;
  std::unordered_set<EdgeRef, EdgeRefHash> removed_;
  // Nodes that appear as src/dst of some removed edge — lets the hot
  // iteration path skip hash probes entirely for untouched nodes.
  std::unordered_map<NodeId, size_t> removed_src_;
  std::unordered_map<NodeId, size_t> removed_dst_;
  std::unordered_map<NodeId, std::vector<Edge>> added_out_;
  std::unordered_map<NodeId, std::vector<Edge>> added_in_;
  std::unordered_map<NodeId, double> out_weight_delta_;
  size_t num_added_ = 0;
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_CSR_OVERLAY_H_
