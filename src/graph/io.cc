#include "graph/io.h"

#include <fstream>

#include "fault/fault.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace emigre::graph {

namespace {
constexpr const char kHeader[] = "# emigre-graph v1";
}  // namespace

Status SaveGraph(const HinGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << kHeader << "\n";
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    // The label may contain spaces; tab-separate the fixed fields and keep
    // the label as the trailing field.
    out << "N\t" << n << "\t" << g.NodeTypeName(g.NodeType(n)) << "\t"
        << g.Label(n) << "\n";
  }
  for (NodeId src = 0; src < g.NumNodes(); ++src) {
    for (const Edge& e : g.OutEdges(src)) {
      out << "E\t" << src << "\t" << e.node << "\t" << g.EdgeTypeName(e.type)
          << "\t" << StrFormat("%.17g", e.weight) << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<HinGraph> LoadGraph(const std::string& path) {
  EMIGRE_FAULT_POINT_STATUS("graph.load");
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kHeader) {
    if (in.bad()) return Status::IOError("read failed: " + path);
    return Status::InvalidArgument("missing emigre-graph header in " + path);
  }
  HinGraph g;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    if (fields[0] == "N") {
      if (fields.size() < 3) {
        return Status::InvalidArgument(
            StrFormat("malformed node line %zu", line_no));
      }
      int64_t id = 0;
      if (!ParseInt64(fields[1], &id)) {
        return Status::InvalidArgument(
            StrFormat("bad node id on line %zu", line_no));
      }
      std::string label = fields.size() > 3 ? fields[3] : "";
      NodeId got = g.AddNode(fields[2], label);
      if (static_cast<int64_t>(got) != id) {
        return Status::InvalidArgument(StrFormat(
            "non-contiguous node ids (expected %u, file says %lld) on line "
            "%zu",
            got, static_cast<long long>(id), line_no));
      }
    } else if (fields[0] == "E") {
      if (fields.size() < 5) {
        return Status::InvalidArgument(
            StrFormat("malformed edge line %zu", line_no));
      }
      int64_t src = 0;
      int64_t dst = 0;
      double weight = 0.0;
      if (!ParseInt64(fields[1], &src) || !ParseInt64(fields[2], &dst) ||
          !ParseDouble(fields[4], &weight)) {
        return Status::InvalidArgument(
            StrFormat("bad edge fields on line %zu", line_no));
      }
      EdgeTypeId type = g.RegisterEdgeType(fields[3]);
      Status st = g.AddEdge(static_cast<NodeId>(src),
                            static_cast<NodeId>(dst), type, weight);
      if (!st.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: %s", line_no, st.ToString().c_str()));
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown record type '%s' on line %zu", fields[0].c_str(),
                    line_no));
    }
  }
  // getline reports a stream error the same way as EOF; without this check
  // a failed read silently truncates the graph.
  if (in.bad()) return Status::IOError("read failed: " + path);
  return g;
}

}  // namespace emigre::graph
