#include "graph/hin_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace emigre::graph {

NodeId HinGraph::AddNode(NodeTypeId type, std::string label) {
  NodeId id = static_cast<NodeId>(node_type_.size());
  node_type_.push_back(type);
  labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  out_weight_.push_back(0.0);
  return id;
}

std::string HinGraph::DisplayName(NodeId n) const {
  const std::string& label = labels_.at(n);
  if (!label.empty()) return label;
  return StrFormat("#%u", n);
}

std::vector<NodeId> HinGraph::NodesOfType(NodeTypeId type) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < node_type_.size(); ++n) {
    if (node_type_[n] == type) out.push_back(n);
  }
  return out;
}

Status HinGraph::AddEdge(NodeId src, NodeId dst, EdgeTypeId type,
                         double weight) {
  if (!IsValidNode(src) || !IsValidNode(dst)) {
    return Status::InvalidArgument(
        StrFormat("AddEdge(%u, %u): node out of range (graph has %zu nodes)",
                  src, dst, NumNodes()));
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument(
        StrFormat("AddEdge(%u, %u): weight must be positive, got %f", src,
                  dst, weight));
  }
  if (HasEdge(src, dst, type)) {
    return Status::AlreadyExists(
        StrFormat("edge (%u, %u, type=%u) already exists", src, dst, type));
  }
  out_[src].push_back(Edge{dst, type, weight});
  in_[dst].push_back(Edge{src, type, weight});
  out_weight_[src] += weight;
  ++num_edges_;
  return Status::OK();
}

Status HinGraph::AddBidirectional(NodeId a, NodeId b, EdgeTypeId type,
                                  double weight) {
  EMIGRE_RETURN_IF_ERROR(AddEdge(a, b, type, weight));
  return AddEdge(b, a, type, weight);
}

namespace {

// Removes the first entry matching (node, type) from the adjacency list.
// Returns the removed weight or a negative value when absent.
double EraseAdjacencyEntry(std::vector<Edge>* list, NodeId node,
                           EdgeTypeId type) {
  for (auto it = list->begin(); it != list->end(); ++it) {
    if (it->node == node && it->type == type) {
      double w = it->weight;
      list->erase(it);
      return w;
    }
  }
  return -1.0;
}

}  // namespace

Status HinGraph::RemoveEdge(NodeId src, NodeId dst, EdgeTypeId type) {
  if (!IsValidNode(src) || !IsValidNode(dst)) {
    return Status::InvalidArgument(
        StrFormat("RemoveEdge(%u, %u): node out of range", src, dst));
  }
  double w = EraseAdjacencyEntry(&out_[src], dst, type);
  if (w < 0.0) {
    return Status::NotFound(
        StrFormat("edge (%u, %u, type=%u) not found", src, dst, type));
  }
  double w_in = EraseAdjacencyEntry(&in_[dst], src, type);
  (void)w_in;  // Mirrors the out-list by construction.
  out_weight_[src] -= w;
  if (out_weight_[src] < 0.0) out_weight_[src] = 0.0;  // float hygiene
  --num_edges_;
  return Status::OK();
}

size_t HinGraph::RemoveEdgesBetween(NodeId src, NodeId dst) {
  if (!IsValidNode(src) || !IsValidNode(dst)) return 0;
  size_t removed = 0;
  // Collect the types first: RemoveEdge mutates the list we would iterate.
  std::vector<EdgeTypeId> types;
  for (const Edge& e : out_[src]) {
    if (e.node == dst) types.push_back(e.type);
  }
  for (EdgeTypeId t : types) {
    if (RemoveEdge(src, dst, t).ok()) ++removed;
  }
  return removed;
}

bool HinGraph::HasEdge(NodeId src, NodeId dst) const {
  if (!IsValidNode(src) || !IsValidNode(dst)) return false;
  for (const Edge& e : out_[src]) {
    if (e.node == dst) return true;
  }
  return false;
}

bool HinGraph::HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const {
  if (!IsValidNode(src) || !IsValidNode(dst)) return false;
  for (const Edge& e : out_[src]) {
    if (e.node == dst && e.type == type) return true;
  }
  return false;
}

double HinGraph::EdgeWeight(NodeId src, NodeId dst, EdgeTypeId type) const {
  if (!IsValidNode(src) || !IsValidNode(dst)) return 0.0;
  for (const Edge& e : out_[src]) {
    if (e.node == dst && e.type == type) return e.weight;
  }
  return 0.0;
}

std::vector<EdgeRef> HinGraph::AllEdges() const {
  std::vector<EdgeRef> edges;
  edges.reserve(num_edges_);
  for (NodeId src = 0; src < out_.size(); ++src) {
    for (const Edge& e : out_[src]) {
      edges.push_back(EdgeRef{src, e.node, e.type});
    }
  }
  return edges;
}

}  // namespace emigre::graph
