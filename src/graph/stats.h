#ifndef EMIGRE_GRAPH_STATS_H_
#define EMIGRE_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/hin_graph.h"

namespace emigre::graph {

/// \brief Per-node-type degree statistics (paper Table 4).
struct TypeDegreeStats {
  std::string type_name;
  size_t num_nodes = 0;
  double mean_degree = 0.0;  ///< mean of (in + out) degree
  double degree_stddev = 0.0;
};

/// Computes per-type node counts and degree mean/stddev, ordered by node
/// type id. Degree counts both incident directions, matching the paper's
/// "number of edges connected to a node".
std::vector<TypeDegreeStats> ComputeDegreeStats(const HinGraph& g);

/// Renders the stats as a paper-style table.
std::string FormatDegreeStats(const std::vector<TypeDegreeStats>& stats);

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_STATS_H_
