#include "graph/csr_overlay.h"

#include <algorithm>

#include "util/string_util.h"

namespace emigre::graph {

namespace {

// Removes one (node, type) entry from a vector adjacency list; returns its
// weight or a negative value when absent.
double EraseEntry(std::vector<Edge>* list, NodeId node, EdgeTypeId type) {
  for (auto it = list->begin(); it != list->end(); ++it) {
    if (it->node == node && it->type == type) {
      double w = it->weight;
      list->erase(it);
      return w;
    }
  }
  return -1.0;
}

}  // namespace

Status CsrOverlay::AddEdge(NodeId src, NodeId dst, EdgeTypeId type,
                           double weight) {
  if (!base_->IsValidNode(src) || !base_->IsValidNode(dst)) {
    return Status::InvalidArgument(
        StrFormat("csr overlay AddEdge(%u, %u): node out of range", src, dst));
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument(
        "csr overlay AddEdge: weight must be positive");
  }
  EdgeRef ref{src, dst, type};
  if (auto it = removed_.find(ref); it != removed_.end()) {
    // Un-remove: the base edge becomes visible again with its base weight.
    removed_.erase(it);
    if (--removed_src_[src] == 0) removed_src_.erase(src);
    if (--removed_dst_[dst] == 0) removed_dst_.erase(dst);
    out_weight_delta_[src] += base_->EdgeWeight(src, dst, type);
    return Status::OK();
  }
  if (HasEdge(src, dst, type)) {
    return Status::AlreadyExists(
        StrFormat("csr overlay: edge (%u, %u, type=%u) already present", src,
                  dst, type));
  }
  added_out_[src].push_back(Edge{dst, type, weight});
  added_in_[dst].push_back(Edge{src, type, weight});
  out_weight_delta_[src] += weight;
  ++num_added_;
  return Status::OK();
}

Status CsrOverlay::RemoveEdge(NodeId src, NodeId dst, EdgeTypeId type) {
  if (!base_->IsValidNode(src) || !base_->IsValidNode(dst)) {
    return Status::InvalidArgument(StrFormat(
        "csr overlay RemoveEdge(%u, %u): node out of range", src, dst));
  }
  // Undo an overlay addition first, if present.
  if (auto it = added_out_.find(src); it != added_out_.end()) {
    double w = EraseEntry(&it->second, dst, type);
    if (w >= 0.0) {
      if (it->second.empty()) added_out_.erase(it);
      auto in_it = added_in_.find(dst);
      EraseEntry(&in_it->second, src, type);
      if (in_it->second.empty()) added_in_.erase(in_it);
      out_weight_delta_[src] -= w;
      --num_added_;
      return Status::OK();
    }
  }
  EdgeRef ref{src, dst, type};
  if (removed_.count(ref) > 0) {
    return Status::NotFound(
        StrFormat("csr overlay: edge (%u, %u, type=%u) already removed", src,
                  dst, type));
  }
  double base_weight = base_->EdgeWeight(src, dst, type);
  if (base_weight <= 0.0) {
    return Status::NotFound(
        StrFormat("csr overlay: edge (%u, %u, type=%u) not present in base",
                  src, dst, type));
  }
  removed_.insert(ref);
  ++removed_src_[src];
  ++removed_dst_[dst];
  out_weight_delta_[src] -= base_weight;
  return Status::OK();
}

Status CsrOverlay::SetWeight(NodeId src, NodeId dst, EdgeTypeId type,
                             double weight) {
  if (!base_->IsValidNode(src) || !base_->IsValidNode(dst)) {
    return Status::InvalidArgument(StrFormat(
        "csr overlay SetWeight(%u, %u): node out of range", src, dst));
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument(
        "csr overlay SetWeight: weight must be positive");
  }
  // Overlay-added edge: update in place.
  if (auto it = added_out_.find(src); it != added_out_.end()) {
    for (Edge& e : it->second) {
      if (e.node == dst && e.type == type) {
        out_weight_delta_[src] += weight - e.weight;
        e.weight = weight;
        for (Edge& in : added_in_[dst]) {
          if (in.node == src && in.type == type) {
            in.weight = weight;
            break;
          }
        }
        return Status::OK();
      }
    }
  }
  // Base edge: mask the original and overlay a re-weighted copy (see
  // GraphOverlay::SetWeight for the rationale).
  EdgeRef ref{src, dst, type};
  double base_weight = base_->EdgeWeight(src, dst, type);
  if (base_weight <= 0.0 || removed_.count(ref) > 0) {
    return Status::NotFound(
        StrFormat("csr overlay SetWeight: edge (%u, %u, type=%u) not present",
                  src, dst, type));
  }
  removed_.insert(ref);
  ++removed_src_[src];
  ++removed_dst_[dst];
  added_out_[src].push_back(Edge{dst, type, weight});
  added_in_[dst].push_back(Edge{src, type, weight});
  ++num_added_;
  out_weight_delta_[src] += weight - base_weight;
  return Status::OK();
}

void CsrOverlay::Clear() {
  removed_.clear();
  removed_src_.clear();
  removed_dst_.clear();
  added_out_.clear();
  added_in_.clear();
  out_weight_delta_.clear();
  num_added_ = 0;
}

std::vector<EdgeRef> CsrOverlay::AddedEdges() const {
  std::vector<EdgeRef> out;
  out.reserve(num_added_);
  for (const auto& [src, edges] : added_out_) {
    for (const Edge& e : edges) out.push_back(EdgeRef{src, e.node, e.type});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EdgeRef> CsrOverlay::RemovedEdges() const {
  std::vector<EdgeRef> out(removed_.begin(), removed_.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t CsrOverlay::OutDegree(NodeId n) const {
  size_t degree = base_->OutDegree(n);
  if (auto it = removed_src_.find(n); it != removed_src_.end()) {
    degree -= it->second;
  }
  if (auto it = added_out_.find(n); it != added_out_.end()) {
    degree += it->second.size();
  }
  return degree;
}

size_t CsrOverlay::InDegree(NodeId n) const {
  size_t degree = base_->InDegree(n);
  if (auto it = removed_dst_.find(n); it != removed_dst_.end()) {
    degree -= it->second;
  }
  if (auto it = added_in_.find(n); it != added_in_.end()) {
    degree += it->second.size();
  }
  return degree;
}

bool CsrOverlay::HasEdge(NodeId src, NodeId dst) const {
  bool found = false;
  base_->ForEachOutEdge(src, [&](NodeId d, EdgeTypeId t, double) {
    if (d == dst && removed_.count(EdgeRef{src, dst, t}) == 0) found = true;
  });
  if (found) return true;
  if (auto it = added_out_.find(src); it != added_out_.end()) {
    for (const Edge& e : it->second) {
      if (e.node == dst) return true;
    }
  }
  return false;
}

bool CsrOverlay::HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const {
  // A masked base edge may still exist as an overlay copy (SetWeight), so
  // always consult the added list too.
  if (base_->HasEdge(src, dst, type) &&
      removed_.count(EdgeRef{src, dst, type}) == 0) {
    return true;
  }
  if (auto it = added_out_.find(src); it != added_out_.end()) {
    for (const Edge& e : it->second) {
      if (e.node == dst && e.type == type) return true;
    }
  }
  return false;
}

}  // namespace emigre::graph
