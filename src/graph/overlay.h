#ifndef EMIGRE_GRAPH_OVERLAY_H_
#define EMIGRE_GRAPH_OVERLAY_H_

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/hin_graph.h"
#include "graph/types.h"
#include "util/status.h"
#include "util/string_util.h"

namespace emigre::graph {

/// \brief A counterfactual view over an immutable base graph.
///
/// The EMiGRe TEST step (and every candidate-explanation evaluation) must
/// score a recommendation on "G with a handful of user-rooted edges added or
/// removed" (Definition 4.2). Copying the graph per candidate would dominate
/// the runtime; mutating the shared graph would preclude running scenarios
/// in parallel. The overlay records edits — a removed-edge set and per-node
/// added-edge lists — and exposes the same traversal interface as the base,
/// so the PPR engines are generic over either (see ppr/graph_traits.h).
///
/// The base may be any `GraphLike` view that additionally provides
/// `IsValidNode`, `HasEdge`, `EdgeWeight` and `ForEachInEdge` — a
/// `HinGraph` (the `GraphOverlay` alias below) or an mmap-backed
/// `CsrSnapshotView` (csr_snapshot.h) serve equally.
///
/// Overlays are cheap to construct and to `Clear()`, and several overlays
/// over the same base may be used concurrently from different threads as
/// long as the base is not mutated.
template <typename BaseT>
class BasicGraphOverlay {
 public:
  explicit BasicGraphOverlay(const BaseT& base) : base_(&base) {}

  const BaseT& base() const { return *base_; }

  // --- Edits ----------------------------------------------------------------

  /// Adds (src, dst, type, weight) on top of the base. Restores the original
  /// weight instead if that exact edge was previously removed through this
  /// overlay. Fails with AlreadyExists if the edge is already present in the
  /// effective graph.
  [[nodiscard]]
  Status AddEdge(NodeId src, NodeId dst, EdgeTypeId type, double weight = 1.0) {
    if (!base_->IsValidNode(src) || !base_->IsValidNode(dst)) {
      return Status::InvalidArgument(
          StrFormat("overlay AddEdge(%u, %u): node out of range", src, dst));
    }
    if (!(weight > 0.0)) {
      return Status::InvalidArgument(
          "overlay AddEdge: weight must be positive");
    }
    EdgeRef ref{src, dst, type};
    if (auto it = removed_.find(ref); it != removed_.end()) {
      // Un-remove: the base edge becomes visible again with its base weight.
      removed_.erase(it);
      if (--removed_src_[src] == 0) removed_src_.erase(src);
      if (--removed_dst_[dst] == 0) removed_dst_.erase(dst);
      out_weight_delta_[src] += base_->EdgeWeight(src, dst, type);
      return Status::OK();
    }
    if (HasEdge(src, dst, type)) {
      return Status::AlreadyExists(
          StrFormat("overlay: edge (%u, %u, type=%u) already present", src,
                    dst, type));
    }
    added_out_[src].push_back(Edge{dst, type, weight});
    added_in_[dst].push_back(Edge{src, type, weight});
    out_weight_delta_[src] += weight;
    ++num_added_;
    return Status::OK();
  }

  /// Removes (src, dst, type) from the effective graph — either masking a
  /// base edge or undoing a previous overlay addition.
  [[nodiscard]] Status RemoveEdge(NodeId src, NodeId dst, EdgeTypeId type) {
    if (!base_->IsValidNode(src) || !base_->IsValidNode(dst)) {
      return Status::InvalidArgument(
          StrFormat("overlay RemoveEdge(%u, %u): node out of range", src,
                    dst));
    }
    // Undo an overlay addition first, if present.
    if (auto it = added_out_.find(src); it != added_out_.end()) {
      double w = EraseEntry(&it->second, dst, type);
      if (w >= 0.0) {
        if (it->second.empty()) added_out_.erase(it);
        auto in_it = added_in_.find(dst);
        EraseEntry(&in_it->second, src, type);
        if (in_it->second.empty()) added_in_.erase(in_it);
        out_weight_delta_[src] -= w;
        --num_added_;
        return Status::OK();
      }
    }
    EdgeRef ref{src, dst, type};
    if (removed_.count(ref) > 0) {
      return Status::NotFound(
          StrFormat("overlay: edge (%u, %u, type=%u) already removed", src,
                    dst, type));
    }
    double base_weight = base_->EdgeWeight(src, dst, type);
    if (base_weight <= 0.0) {
      return Status::NotFound(StrFormat(
          "overlay: edge (%u, %u, type=%u) not present in base", src, dst,
          type));
    }
    removed_.insert(ref);
    ++removed_src_[src];
    ++removed_dst_[dst];
    out_weight_delta_[src] -= base_weight;
    return Status::OK();
  }

  /// Overrides the weight of an existing effective edge (base or added).
  /// Weight-based Why-Not explanations ("you should have rated A with 5
  /// stars", the paper's §7 extension) evaluate candidates through this.
  /// Fails with NotFound when the edge is absent and InvalidArgument on a
  /// non-positive weight.
  [[nodiscard]]
  Status SetWeight(NodeId src, NodeId dst, EdgeTypeId type, double weight) {
    if (!base_->IsValidNode(src) || !base_->IsValidNode(dst)) {
      return Status::InvalidArgument(
          StrFormat("overlay SetWeight(%u, %u): node out of range", src,
                    dst));
    }
    if (!(weight > 0.0)) {
      return Status::InvalidArgument(
          "overlay SetWeight: weight must be positive");
    }
    // Overlay-added edge: update in place.
    if (auto it = added_out_.find(src); it != added_out_.end()) {
      for (Edge& e : it->second) {
        if (e.node == dst && e.type == type) {
          out_weight_delta_[src] += weight - e.weight;
          e.weight = weight;
          for (Edge& in : added_in_[dst]) {
            if (in.node == src && in.type == type) {
              in.weight = weight;
              break;
            }
          }
          return Status::OK();
        }
      }
    }
    // Base edge: mask the original and overlay a re-weighted copy. The mask +
    // copy pair keeps every traversal path consistent; note a subsequent
    // RemoveEdge erases the copy (leaving the mask), removing the edge
    // entirely, as expected.
    EdgeRef ref{src, dst, type};
    double base_weight = base_->EdgeWeight(src, dst, type);
    if (base_weight <= 0.0 || removed_.count(ref) > 0) {
      return Status::NotFound(StrFormat(
          "overlay SetWeight: edge (%u, %u, type=%u) not present", src, dst,
          type));
    }
    removed_.insert(ref);
    ++removed_src_[src];
    ++removed_dst_[dst];
    added_out_[src].push_back(Edge{dst, type, weight});
    added_in_[dst].push_back(Edge{src, type, weight});
    ++num_added_;
    out_weight_delta_[src] += weight - base_weight;
    return Status::OK();
  }

  /// Drops all edits; the overlay becomes a transparent view again.
  void Clear() {
    removed_.clear();
    removed_src_.clear();
    removed_dst_.clear();
    added_out_.clear();
    added_in_.clear();
    out_weight_delta_.clear();
    num_added_ = 0;
  }

  size_t NumAdded() const { return num_added_; }
  size_t NumRemoved() const { return removed_.size(); }
  bool HasEdits() const { return num_added_ > 0 || !removed_.empty(); }

  /// The current edit sets (for reporting).
  std::vector<EdgeRef> AddedEdges() const {
    std::vector<EdgeRef> out;
    out.reserve(num_added_);
    for (const auto& [src, edges] : added_out_) {
      for (const Edge& e : edges) out.push_back(EdgeRef{src, e.node, e.type});
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  std::vector<EdgeRef> RemovedEdges() const {
    std::vector<EdgeRef> out(removed_.begin(), removed_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  // --- GraphLike interface ----------------------------------------------------

  size_t NumNodes() const { return base_->NumNodes(); }
  NodeTypeId NodeType(NodeId n) const { return base_->NodeType(n); }

  /// Effective out-weight of `n` (base plus overlay delta).
  double OutWeight(NodeId n) const {
    double w = base_->OutWeight(n);
    auto it = out_weight_delta_.find(n);
    if (it != out_weight_delta_.end()) w += it->second;
    return w < 0.0 ? 0.0 : w;
  }

  /// Effective out-degree of `n`.
  size_t OutDegree(NodeId n) const {
    size_t degree = base_->OutDegree(n);
    if (auto it = removed_src_.find(n); it != removed_src_.end()) {
      degree -= it->second;
    }
    if (auto it = added_out_.find(n); it != added_out_.end()) {
      degree += it->second.size();
    }
    return degree;
  }
  size_t InDegree(NodeId n) const {
    size_t degree = base_->InDegree(n);
    if (auto it = removed_dst_.find(n); it != removed_dst_.end()) {
      degree -= it->second;
    }
    if (auto it = added_in_.find(n); it != added_in_.end()) {
      degree += it->second.size();
    }
    return degree;
  }

  bool HasEdge(NodeId src, NodeId dst) const {
    bool found = false;
    // No early exit through ForEachOutEdge; scan the base row and stop
    // updating once a surviving edge is seen (out-degrees are small).
    base_->ForEachOutEdge(src, [&](NodeId node, EdgeTypeId type, double) {
      if (!found && node == dst &&
          removed_.count(EdgeRef{src, dst, type}) == 0) {
        found = true;
      }
    });
    if (found) return true;
    if (auto it = added_out_.find(src); it != added_out_.end()) {
      for (const Edge& e : it->second) {
        if (e.node == dst) return true;
      }
    }
    return false;
  }
  bool HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const {
    // A masked base edge may still exist as an overlay copy (SetWeight), so
    // always consult the added list too.
    if (base_->HasEdge(src, dst, type) &&
        removed_.count(EdgeRef{src, dst, type}) == 0) {
      return true;
    }
    if (auto it = added_out_.find(src); it != added_out_.end()) {
      for (const Edge& e : it->second) {
        if (e.node == dst && e.type == type) return true;
      }
    }
    return false;
  }

  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    if (removed_.empty() || removed_src_.count(n) == 0) {
      base_->ForEachOutEdge(
          n, [&](NodeId dst, EdgeTypeId type, double w) { fn(dst, type, w); });
    } else {
      base_->ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId type, double w) {
        if (removed_.count(EdgeRef{n, dst, type}) == 0) fn(dst, type, w);
      });
    }
    auto it = added_out_.find(n);
    if (it != added_out_.end()) {
      for (const Edge& e : it->second) fn(e.node, e.type, e.weight);
    }
  }

  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    if (removed_.empty() || removed_dst_.count(n) == 0) {
      base_->ForEachInEdge(
          n, [&](NodeId src, EdgeTypeId type, double w) { fn(src, type, w); });
    } else {
      base_->ForEachInEdge(n, [&](NodeId src, EdgeTypeId type, double w) {
        if (removed_.count(EdgeRef{src, n, type}) == 0) fn(src, type, w);
      });
    }
    auto it = added_in_.find(n);
    if (it != added_in_.end()) {
      for (const Edge& e : it->second) fn(e.node, e.type, e.weight);
    }
  }

 private:
  // Removes one (node, type) entry from a vector adjacency list; returns its
  // weight or a negative value when absent.
  static double EraseEntry(std::vector<Edge>* list, NodeId node,
                           EdgeTypeId type) {
    for (auto it = list->begin(); it != list->end(); ++it) {
      if (it->node == node && it->type == type) {
        double w = it->weight;
        list->erase(it);
        return w;
      }
    }
    return -1.0;
  }

  const BaseT* base_;
  std::unordered_set<EdgeRef, EdgeRefHash> removed_;
  // Nodes that appear as src/dst of some removed edge — lets the hot
  // iteration path skip hash probes entirely for untouched nodes.
  std::unordered_map<NodeId, size_t> removed_src_;
  std::unordered_map<NodeId, size_t> removed_dst_;
  std::unordered_map<NodeId, std::vector<Edge>> added_out_;
  std::unordered_map<NodeId, std::vector<Edge>> added_in_;
  std::unordered_map<NodeId, double> out_weight_delta_;
  size_t num_added_ = 0;
};

/// The classic overlay over the mutable in-memory graph.
using GraphOverlay = BasicGraphOverlay<HinGraph>;

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_OVERLAY_H_
