#ifndef EMIGRE_GRAPH_TYPES_H_
#define EMIGRE_GRAPH_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace emigre::graph {

/// Dense node identifier: index into the graph's node arrays.
using NodeId = uint32_t;
/// Identifier of a node type ("user", "item", ...), registry-assigned.
using NodeTypeId = uint16_t;
/// Identifier of an edge type ("rated", "belongs-to", ...), registry-assigned.
using EdgeTypeId = uint16_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
/// Sentinel for "no type".
inline constexpr NodeTypeId kInvalidNodeType =
    std::numeric_limits<NodeTypeId>::max();
inline constexpr EdgeTypeId kInvalidEdgeType =
    std::numeric_limits<EdgeTypeId>::max();

/// \brief One directed, typed, weighted adjacency entry.
///
/// Stored in both out-lists (where `node` is the destination) and in-lists
/// (where `node` is the source).
struct Edge {
  NodeId node = kInvalidNode;
  EdgeTypeId type = kInvalidEdgeType;
  double weight = 1.0;
};

/// \brief Fully-qualified directed edge, used as a set/map key and as the
/// unit of Why-Not explanations (a user "action").
struct EdgeRef {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  EdgeTypeId type = kInvalidEdgeType;

  friend bool operator==(const EdgeRef&, const EdgeRef&) = default;
  friend auto operator<=>(const EdgeRef&, const EdgeRef&) = default;
};

struct EdgeRefHash {
  size_t operator()(const EdgeRef& e) const {
    uint64_t key = (static_cast<uint64_t>(e.src) << 32) | e.dst;
    // SplitMix64 finalizer; mixes in the type so multigraph edges between
    // the same endpoints hash apart.
    key ^= static_cast<uint64_t>(e.type) << 17;
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
    key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(key ^ (key >> 31));
  }
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_TYPES_H_
