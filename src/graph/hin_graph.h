#ifndef EMIGRE_GRAPH_HIN_GRAPH_H_
#define EMIGRE_GRAPH_HIN_GRAPH_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/type_registry.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::graph {

/// \brief Heterogeneous Information Network (paper Definition 3.1).
///
/// A directed, weighted multigraph where every node and edge carries exactly
/// one type. Nodes are dense `NodeId`s; both out- and in-adjacency lists are
/// maintained so that Forward Local Push (out-edges) and Reverse Local Push
/// (in-edges) are both cheap. Edges can be added and removed dynamically —
/// counterfactual edits during explanation search normally go through the
/// non-mutating `GraphOverlay` instead (see overlay.h).
///
/// Multi-edges between the same endpoints are allowed if their edge types
/// differ (a user may have both "rated" and "reviewed" an item); a duplicate
/// (src, dst, type) triple is rejected.
class HinGraph {
 public:
  HinGraph() = default;

  // Copyable (snapshotting a graph is meaningful) and movable.
  HinGraph(const HinGraph&) = default;
  HinGraph& operator=(const HinGraph&) = default;
  HinGraph(HinGraph&&) = default;
  HinGraph& operator=(HinGraph&&) = default;

  // --- Type registries -----------------------------------------------------

  /// Registers (or looks up) a node type name, e.g. "user".
  NodeTypeId RegisterNodeType(std::string_view name) {
    return node_types_.GetOrRegister(name);
  }
  /// Registers (or looks up) an edge type name, e.g. "rated".
  EdgeTypeId RegisterEdgeType(std::string_view name) {
    return edge_types_.GetOrRegister(name);
  }
  /// Lookup without registration; returns the invalid sentinel when absent.
  NodeTypeId FindNodeType(std::string_view name) const {
    return node_types_.Find(name);
  }
  EdgeTypeId FindEdgeType(std::string_view name) const {
    return edge_types_.Find(name);
  }
  const std::string& NodeTypeName(NodeTypeId id) const {
    return node_types_.Name(id);
  }
  const std::string& EdgeTypeName(EdgeTypeId id) const {
    return edge_types_.Name(id);
  }
  size_t NumNodeTypes() const { return node_types_.size(); }
  size_t NumEdgeTypes() const { return edge_types_.size(); }

  // --- Nodes ----------------------------------------------------------------

  /// Adds a node of the given type and returns its id. An optional label is
  /// retained for human-readable output (book titles in the examples).
  NodeId AddNode(NodeTypeId type, std::string label = {});

  /// Convenience: registers the type name and adds a node.
  NodeId AddNode(std::string_view type_name, std::string label = {}) {
    return AddNode(RegisterNodeType(type_name), std::move(label));
  }

  size_t NumNodes() const { return node_type_.size(); }
  bool IsValidNode(NodeId n) const { return n < NumNodes(); }

  NodeTypeId NodeType(NodeId n) const { return node_type_.at(n); }

  const std::string& Label(NodeId n) const { return labels_.at(n); }
  void SetLabel(NodeId n, std::string label) {
    labels_.at(n) = std::move(label);
  }
  /// Label if non-empty, otherwise "#<id>".
  std::string DisplayName(NodeId n) const;

  /// All node ids of the given type, in id order.
  std::vector<NodeId> NodesOfType(NodeTypeId type) const;

  // --- Edges ----------------------------------------------------------------

  /// Adds the directed edge (src, dst) with the given type and positive
  /// weight. Fails with InvalidArgument on bad endpoints/weight and
  /// AlreadyExists on a duplicate (src, dst, type) triple.
  [[nodiscard]]
  Status AddEdge(NodeId src, NodeId dst, EdgeTypeId type, double weight = 1.0);

  /// Adds both (src, dst) and (dst, src) with the same type and weight; used
  /// by the dataset pipeline, which treats relationships as bidirectional
  /// (paper §6.1).
  [[nodiscard]] Status AddBidirectional(NodeId a, NodeId b, EdgeTypeId type,
                          double weight = 1.0);

  /// Removes the (src, dst, type) edge. Fails with NotFound when absent.
  [[nodiscard]] Status RemoveEdge(NodeId src, NodeId dst, EdgeTypeId type);

  /// Removes every edge src -> dst regardless of type; returns the number
  /// removed.
  size_t RemoveEdgesBetween(NodeId src, NodeId dst);

  /// True if any edge src -> dst exists (any type).
  bool HasEdge(NodeId src, NodeId dst) const;
  /// True if the specific (src, dst, type) edge exists.
  bool HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const;

  /// Weight of the (src, dst, type) edge, or 0.0 when absent.
  double EdgeWeight(NodeId src, NodeId dst, EdgeTypeId type) const;

  size_t NumEdges() const { return num_edges_; }
  size_t OutDegree(NodeId n) const { return out_[n].size(); }
  size_t InDegree(NodeId n) const { return in_[n].size(); }

  /// Sum of outgoing edge weights; the random-walk transition from `n`
  /// normalizes by this.
  double OutWeight(NodeId n) const { return out_weight_[n]; }

  /// Raw adjacency views (valid until the next mutation).
  std::span<const Edge> OutEdges(NodeId n) const { return out_[n]; }
  std::span<const Edge> InEdges(NodeId n) const { return in_[n]; }

  /// Calls fn(dst, edge_type, weight) for each out-edge of `n`.
  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    for (const Edge& e : out_[n]) fn(e.node, e.type, e.weight);
  }
  /// Calls fn(src, edge_type, weight) for each in-edge of `n`.
  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    for (const Edge& e : in_[n]) fn(e.node, e.type, e.weight);
  }

  /// All edges as EdgeRef triples in (src, insertion) order, for I/O and
  /// brute-force enumeration.
  std::vector<EdgeRef> AllEdges() const;

 private:
  NodeTypeRegistry node_types_;
  EdgeTypeRegistry edge_types_;

  std::vector<NodeTypeId> node_type_;
  std::vector<std::string> labels_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::vector<double> out_weight_;
  size_t num_edges_ = 0;
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_HIN_GRAPH_H_
