#include "graph/validate.h"

#include <cmath>

#include "util/string_util.h"

namespace emigre::graph {

Status ValidateGraph(const HinGraph& g) {
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.NodeType(n) >= g.NumNodeTypes()) {
      return Status::Internal(
          StrFormat("node %u has unregistered type %u", n, g.NodeType(n)));
    }
    double out_sum = 0.0;
    for (const Edge& e : g.OutEdges(n)) {
      if (!g.IsValidNode(e.node)) {
        return Status::Internal(
            StrFormat("node %u has out-edge to invalid node %u", n, e.node));
      }
      if (e.type >= g.NumEdgeTypes()) {
        return Status::Internal(
            StrFormat("edge (%u, %u) has unregistered type %u", n, e.node,
                      e.type));
      }
      if (!(e.weight > 0.0) || !std::isfinite(e.weight)) {
        return Status::Internal(
            StrFormat("edge (%u, %u) has non-positive weight %f", n, e.node,
                      e.weight));
      }
      out_sum += e.weight;

      // The in-list of the destination must mirror this edge exactly.
      bool mirrored = false;
      for (const Edge& back : g.InEdges(e.node)) {
        if (back.node == n && back.type == e.type &&
            back.weight == e.weight) {
          mirrored = true;
          break;
        }
      }
      if (!mirrored) {
        return Status::Internal(StrFormat(
            "edge (%u, %u, type=%u) missing from destination in-list", n,
            e.node, e.type));
      }
    }
    if (std::abs(out_sum - g.OutWeight(n)) > 1e-9 * (1.0 + out_sum)) {
      return Status::Internal(
          StrFormat("node %u cached out-weight %f != recomputed %f", n,
                    g.OutWeight(n), out_sum));
    }
  }

  // In-edges must also originate from valid out-lists (count symmetry).
  size_t in_total = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) in_total += g.InDegree(n);
  if (in_total != g.NumEdges()) {
    return Status::Internal(
        StrFormat("in-edge total %zu != edge count %zu", in_total,
                  g.NumEdges()));
  }
  return Status::OK();
}

}  // namespace emigre::graph
