#include "graph/csr_snapshot.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "fault/fault.h"
#include "util/crc32.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define EMIGRE_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace emigre::graph {

namespace {

uint64_t AlignUp(uint64_t v) {
  return (v + kSnapshotAlign - 1) / kSnapshotAlign * kSnapshotAlign;
}

/// Encodes a name table: u32 count, then per name u32 length + bytes.
std::string EncodeNamePool(const std::vector<std::string>& names) {
  std::string out;
  auto put_u32 = [&out](uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
  };
  put_u32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    put_u32(static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  return out;
}

/// Decodes a name table written by `EncodeNamePool`; bounds-checked against
/// the section length.
Result<std::vector<std::string>> DecodeNamePool(const uint8_t* data,
                                                uint64_t bytes,
                                                std::string_view what) {
  auto corrupt = [&what]() {
    return Status::InvalidArgument("snapshot " + std::string(what) +
                                   " table is corrupt");
  };
  uint64_t pos = 0;
  auto get_u32 = [&](uint32_t* v) {
    if (pos + 4 > bytes) return false;
    std::memcpy(v, data + pos, 4);
    pos += 4;
    return true;
  };
  uint32_t count = 0;
  if (!get_u32(&count)) return corrupt();
  if (count > (1u << 16)) return corrupt();
  std::vector<std::string> names;
  names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!get_u32(&len)) return corrupt();
    if (pos + len > bytes) return corrupt();
    names.emplace_back(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
  }
  if (pos != bytes) return corrupt();
  return names;
}

struct SectionPlan {
  SnapshotSectionId id;
  uint64_t bytes = 0;
  uint64_t offset = 0;
  uint32_t crc = 0;
};

class SnapshotWriter {
 public:
  explicit SnapshotWriter(const std::string& path)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {}

  [[nodiscard]] Status Write(const CsrGraph::Columns& c,
                             const SnapshotMeta& meta) {
    if (!out_) return Status::IOError("cannot open " + path_ + " for writing");
    const uint64_t n = c.num_nodes;
    const uint64_t e = c.num_edges;
    if (n > 0 && (c.node_type == nullptr || c.out_offsets == nullptr ||
                  c.in_offsets == nullptr)) {
      return Status::InvalidArgument("CsrGraph has no column storage");
    }

    // Pass 1 over labels: size the pool.
    std::vector<uint64_t> label_offsets;
    if (meta.label) {
      label_offsets.assign(n + 1, 0);
      for (uint64_t i = 0; i < n; ++i) {
        label_offsets[i + 1] =
            label_offsets[i] + meta.label(static_cast<NodeId>(i)).size();
      }
    }
    const std::string node_names = EncodeNamePool(meta.node_type_names);
    const std::string edge_names = EncodeNamePool(meta.edge_type_names);

    // Lay out the sections (ids ascending, payloads page-aligned).
    static const uint64_t kZeroOffset = 0;
    const uint64_t* out_offsets = c.out_offsets ? c.out_offsets : &kZeroOffset;
    const uint64_t* in_offsets = c.in_offsets ? c.in_offsets : &kZeroOffset;
    plan_ = {
        {SnapshotSectionId::kNodeType, n * sizeof(NodeTypeId)},
        {SnapshotSectionId::kOutWeight, n * sizeof(double)},
        {SnapshotSectionId::kOutOffsets, (n + 1) * sizeof(uint64_t)},
        {SnapshotSectionId::kOutDst, e * sizeof(NodeId)},
        {SnapshotSectionId::kOutType, e * sizeof(EdgeTypeId)},
        {SnapshotSectionId::kOutW, e * sizeof(double)},
        {SnapshotSectionId::kInOffsets, (n + 1) * sizeof(uint64_t)},
        {SnapshotSectionId::kInSrc, e * sizeof(NodeId)},
        {SnapshotSectionId::kInType, e * sizeof(EdgeTypeId)},
        {SnapshotSectionId::kInW, e * sizeof(double)},
        {SnapshotSectionId::kNodeTypeNames, node_names.size()},
        {SnapshotSectionId::kEdgeTypeNames, edge_names.size()},
    };
    if (meta.label) {
      plan_.push_back(
          {SnapshotSectionId::kLabelOffsets, (n + 1) * sizeof(uint64_t)});
      plan_.push_back({SnapshotSectionId::kLabelBytes, label_offsets[n]});
    }
    uint64_t pos = sizeof(SnapshotHeaderOnDisk) +
                   plan_.size() * sizeof(SnapshotSectionOnDisk);
    for (SectionPlan& p : plan_) {
      p.offset = AlignUp(pos);
      pos = p.offset + p.bytes;
    }

    // Placeholder header + table; both are patched after the payloads.
    const std::vector<char> zeros(
        sizeof(SnapshotHeaderOnDisk) +
            plan_.size() * sizeof(SnapshotSectionOnDisk),
        0);
    out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
    written_ = zeros.size();

    size_t s = 0;
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.node_type));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.out_weight));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], out_offsets));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.out_dst));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.out_type));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.out_w));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], in_offsets));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.in_src));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.in_type));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], c.in_w));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], node_names.data()));
    EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], edge_names.data()));
    if (meta.label) {
      EMIGRE_RETURN_IF_ERROR(WriteArray(&plan_[s++], label_offsets.data()));
      // Pass 2 over labels: stream the pool.
      SectionPlan* p = &plan_[s++];
      EMIGRE_RETURN_IF_ERROR(PadTo(p->offset));
      Crc32 crc;
      for (uint64_t i = 0; i < n; ++i) {
        const std::string label = meta.label(static_cast<NodeId>(i));
        crc.Update(label.data(), label.size());
        out_.write(label.data(), static_cast<std::streamsize>(label.size()));
        written_ += label.size();
      }
      p->crc = crc.value();
      if (!out_) return WriteFailed();
    }

    // Patch the section table, then the header.
    std::string table;
    table.reserve(plan_.size() * sizeof(SnapshotSectionOnDisk));
    for (const SectionPlan& p : plan_) {
      SnapshotSectionOnDisk entry{};
      entry.id = static_cast<uint32_t>(p.id);
      entry.offset = p.offset;
      entry.bytes = p.bytes;
      entry.payload_crc = p.crc;
      table.append(reinterpret_cast<const char*>(&entry), sizeof(entry));
    }
    SnapshotHeaderOnDisk h{};
    std::memcpy(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
    h.version = kSnapshotVersion;
    h.endian = kSnapshotEndianTag;
    h.num_nodes = n;
    h.num_edges = e;
    h.num_node_types = static_cast<uint32_t>(meta.node_type_names.size());
    h.num_edge_types = static_cast<uint32_t>(meta.edge_type_names.size());
    h.section_count = static_cast<uint32_t>(plan_.size());
    h.flags = meta.label ? kSnapshotFlagLabels : 0;
    h.table_crc = Crc32Of(table.data(), table.size());
    h.header_crc =
        Crc32Of(&h, offsetof(SnapshotHeaderOnDisk, header_crc));
    out_.seekp(0);
    out_.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out_.write(table.data(), static_cast<std::streamsize>(table.size()));
    out_.flush();
    if (!out_) return WriteFailed();
    return Status::OK();
  }

 private:
  [[nodiscard]] Status WriteFailed() const {
    return Status::IOError("write failed: " + path_);
  }

  [[nodiscard]] Status PadTo(uint64_t offset) {
    static const char kPad[kSnapshotAlign] = {};
    while (written_ < offset) {
      const uint64_t chunk = std::min<uint64_t>(offset - written_,
                                                sizeof(kPad));
      out_.write(kPad, static_cast<std::streamsize>(chunk));
      written_ += chunk;
    }
    if (!out_) return WriteFailed();
    return Status::OK();
  }

  /// Pads to the section offset, then writes `bytes` from `data` and
  /// records the payload CRC.
  [[nodiscard]] Status WriteArray(SectionPlan* p, const void* data) {
    EMIGRE_RETURN_IF_ERROR(PadTo(p->offset));
    if (p->bytes > 0) {
      p->crc = Crc32Of(data, p->bytes);
      out_.write(reinterpret_cast<const char*>(data),
                 static_cast<std::streamsize>(p->bytes));
      written_ += p->bytes;
    }
    if (!out_) return WriteFailed();
    return Status::OK();
  }

  std::string path_;
  std::ofstream out_;
  uint64_t written_ = 0;
  std::vector<SectionPlan> plan_;
};

}  // namespace

bool SniffCsrSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

Status WriteCsrSnapshot(const CsrGraph& csr, const SnapshotMeta& meta,
                        const std::string& path) {
  SnapshotWriter writer(path);
  return writer.Write(csr.columns(), meta);
}

Status WriteGraphSnapshot(const HinGraph& g, const std::string& path) {
  SnapshotMeta meta;
  meta.node_type_names.reserve(g.NumNodeTypes());
  for (size_t t = 0; t < g.NumNodeTypes(); ++t) {
    meta.node_type_names.push_back(g.NodeTypeName(static_cast<NodeTypeId>(t)));
  }
  meta.edge_type_names.reserve(g.NumEdgeTypes());
  for (size_t t = 0; t < g.NumEdgeTypes(); ++t) {
    meta.edge_type_names.push_back(g.EdgeTypeName(static_cast<EdgeTypeId>(t)));
  }
  meta.label = [&g](NodeId n) { return g.Label(n); };
  const CsrGraph csr(g);
  return WriteCsrSnapshot(csr, meta, path);
}

// --- Loader ------------------------------------------------------------------

MappedBlob::~MappedBlob() {
#ifdef EMIGRE_SNAPSHOT_HAS_MMAP
  if (mmap_backed_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
#endif
}

Result<std::shared_ptr<MappedBlob>> MappedBlob::Open(const std::string& path,
                                                     SnapshotMapMode mode) {
  auto blob = std::make_shared<MappedBlob>();
#ifdef EMIGRE_SNAPSHOT_HAS_MMAP
  if (mode != SnapshotMapMode::kRead) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("cannot stat " + path);
    }
    if (st.st_size <= 0) {
      ::close(fd);
      return Status::IOError("snapshot file is empty: " + path);
    }
    void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (p != MAP_FAILED) {
      blob->data_ = static_cast<uint8_t*>(p);
      blob->size_ = static_cast<uint64_t>(st.st_size);
      blob->mmap_backed_ = true;
      return blob;
    }
    if (mode == SnapshotMapMode::kMmap) {
      return Status::IOError("mmap failed for " + path);
    }
  }
#else
  if (mode == SnapshotMapMode::kMmap) {
    return Status::Unimplemented("mmap is unavailable on this host");
  }
#endif
  // Buffered-read fallback: one copy of the file on the heap.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size <= 0) return Status::IOError("snapshot file is empty: " + path);
  in.seekg(0);
  blob->heap_ = std::make_unique<uint8_t[]>(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(blob->heap_.get()), size);
  if (in.gcount() != size) {
    return Status::IOError("short read on " + path);
  }
  blob->data_ = blob->heap_.get();
  blob->size_ = static_cast<uint64_t>(size);
  return blob;
}

namespace {

/// Parsed section table indexed by id, bounds-checked against the file.
class SectionIndex {
 public:
  [[nodiscard]] static Result<SectionIndex> Parse(
      const uint8_t* base, uint64_t file_size,
      const SnapshotHeaderOnDisk& h) {
    SectionIndex idx;
    idx.base_ = base;
    uint64_t pos = sizeof(SnapshotHeaderOnDisk);
    for (uint32_t i = 0; i < h.section_count; ++i) {
      SnapshotSectionOnDisk entry;
      std::memcpy(&entry, base + pos, sizeof(entry));
      pos += sizeof(entry);
      if (entry.offset % kSnapshotAlign != 0) {
        return Status::InvalidArgument(
            "snapshot section " + std::to_string(entry.id) +
            " is misaligned");
      }
      if (entry.offset > file_size || entry.bytes > file_size - entry.offset) {
        return Status::IOError("truncated snapshot: section " +
                               std::to_string(entry.id) +
                               " extends past end of file");
      }
      if (!idx.by_id_.emplace(entry.id, entry).second) {
        return Status::InvalidArgument("snapshot has duplicate section " +
                                       std::to_string(entry.id));
      }
    }
    return idx;
  }

  /// The payload pointer for `id`, requiring an exact payload length.
  [[nodiscard]] Result<const uint8_t*> Require(SnapshotSectionId id,
                                               uint64_t expected_bytes) const {
    auto it = by_id_.find(static_cast<uint32_t>(id));
    if (it == by_id_.end()) {
      return Status::InvalidArgument(
          "snapshot is missing section " +
          std::to_string(static_cast<uint32_t>(id)));
    }
    if (it->second.bytes != expected_bytes) {
      return Status::InvalidArgument(
          "snapshot section " + std::to_string(static_cast<uint32_t>(id)) +
          " has " + std::to_string(it->second.bytes) + " bytes, expected " +
          std::to_string(expected_bytes));
    }
    return base_ + it->second.offset;
  }

  [[nodiscard]] Result<SnapshotSectionOnDisk> Entry(
      SnapshotSectionId id) const {
    auto it = by_id_.find(static_cast<uint32_t>(id));
    if (it == by_id_.end()) {
      return Status::InvalidArgument(
          "snapshot is missing section " +
          std::to_string(static_cast<uint32_t>(id)));
    }
    return it->second;
  }

  [[nodiscard]] Status VerifyChecksums() const {
    for (const auto& [id, entry] : by_id_) {
      if (Crc32Of(base_ + entry.offset, entry.bytes) != entry.payload_crc) {
        return Status::InvalidArgument("snapshot section " +
                                       std::to_string(id) +
                                       " payload checksum mismatch");
      }
    }
    return Status::OK();
  }

 private:
  const uint8_t* base_ = nullptr;
  std::map<uint32_t, SnapshotSectionOnDisk> by_id_;
};

template <typename T>
const T* AsArray(const uint8_t* p) {
  return reinterpret_cast<const T*>(p);
}

}  // namespace

Result<CsrSnapshotView> CsrSnapshotView::Load(const std::string& path,
                                              const SnapshotLoadOptions& opts) {
  EMIGRE_FAULT_POINT_STATUS("graph.snapshot.map");
  EMIGRE_ASSIGN_OR_RETURN(std::shared_ptr<MappedBlob> blob,
                          MappedBlob::Open(path, opts.mode));
  const uint8_t* base = blob->data();
  const uint64_t file_size = blob->size();
  if (file_size < sizeof(SnapshotHeaderOnDisk)) {
    return Status::IOError("truncated snapshot header: " + path);
  }
  SnapshotHeaderOnDisk h;
  std::memcpy(&h, base, sizeof(h));
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::InvalidArgument("not an emigre.csr snapshot (bad magic): " +
                                   path);
  }
  if (h.version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(h.version));
  }
  if (h.endian != kSnapshotEndianTag) {
    return Status::InvalidArgument(
        "snapshot endianness does not match this host");
  }
  if (Crc32Of(&h, offsetof(SnapshotHeaderOnDisk, header_crc)) !=
      h.header_crc) {
    return Status::InvalidArgument("snapshot header checksum mismatch");
  }
  if (h.num_nodes > kInvalidNode || h.section_count > 1024) {
    return Status::InvalidArgument("snapshot header is corrupt");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(h.section_count) * sizeof(SnapshotSectionOnDisk);
  if (file_size - sizeof(h) < table_bytes) {
    return Status::IOError("truncated snapshot section table: " + path);
  }
  if (Crc32Of(base + sizeof(h), table_bytes) != h.table_crc) {
    return Status::InvalidArgument("snapshot section table checksum mismatch");
  }
  EMIGRE_ASSIGN_OR_RETURN(SectionIndex idx,
                          SectionIndex::Parse(base, file_size, h));
  if (opts.verify_checksums) {
    EMIGRE_RETURN_IF_ERROR(idx.VerifyChecksums());
  }

  const uint64_t n = h.num_nodes;
  const uint64_t e = h.num_edges;
  CsrGraph::Columns cols;
  cols.num_nodes = n;
  cols.num_edges = e;
  {
    EMIGRE_ASSIGN_OR_RETURN(
        const uint8_t* p,
        idx.Require(SnapshotSectionId::kNodeType, n * sizeof(NodeTypeId)));
    cols.node_type = AsArray<NodeTypeId>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kOutWeight, n * sizeof(double)));
    cols.out_weight = AsArray<double>(p);
    EMIGRE_ASSIGN_OR_RETURN(p, idx.Require(SnapshotSectionId::kOutOffsets,
                                           (n + 1) * sizeof(uint64_t)));
    cols.out_offsets = AsArray<uint64_t>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kOutDst, e * sizeof(NodeId)));
    cols.out_dst = AsArray<NodeId>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kOutType, e * sizeof(EdgeTypeId)));
    cols.out_type = AsArray<EdgeTypeId>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kOutW, e * sizeof(double)));
    cols.out_w = AsArray<double>(p);
    EMIGRE_ASSIGN_OR_RETURN(p, idx.Require(SnapshotSectionId::kInOffsets,
                                           (n + 1) * sizeof(uint64_t)));
    cols.in_offsets = AsArray<uint64_t>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kInSrc, e * sizeof(NodeId)));
    cols.in_src = AsArray<NodeId>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kInType, e * sizeof(EdgeTypeId)));
    cols.in_type = AsArray<EdgeTypeId>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        p, idx.Require(SnapshotSectionId::kInW, e * sizeof(double)));
    cols.in_w = AsArray<double>(p);
  }
  // Structural spot checks — touch two pages, not the whole adjacency.
  if (cols.out_offsets[0] != 0 || cols.out_offsets[n] != e ||
      cols.in_offsets[0] != 0 || cols.in_offsets[n] != e) {
    return Status::InvalidArgument(
        "snapshot offset columns are inconsistent with the header");
  }

  CsrSnapshotView view;
  {
    EMIGRE_ASSIGN_OR_RETURN(
        SnapshotSectionOnDisk entry,
        idx.Entry(SnapshotSectionId::kNodeTypeNames));
    EMIGRE_ASSIGN_OR_RETURN(
        std::vector<std::string> names,
        DecodeNamePool(base + entry.offset, entry.bytes, "node-type"));
    if (names.size() != h.num_node_types) {
      return Status::InvalidArgument(
          "snapshot node-type table does not match the header");
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (view.node_types_.GetOrRegister(names[i]) !=
          static_cast<NodeTypeId>(i)) {
        return Status::InvalidArgument("snapshot has duplicate node types");
      }
    }
  }
  {
    EMIGRE_ASSIGN_OR_RETURN(
        SnapshotSectionOnDisk entry,
        idx.Entry(SnapshotSectionId::kEdgeTypeNames));
    EMIGRE_ASSIGN_OR_RETURN(
        std::vector<std::string> names,
        DecodeNamePool(base + entry.offset, entry.bytes, "edge-type"));
    if (names.size() != h.num_edge_types) {
      return Status::InvalidArgument(
          "snapshot edge-type table does not match the header");
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (view.edge_types_.GetOrRegister(names[i]) !=
          static_cast<EdgeTypeId>(i)) {
        return Status::InvalidArgument("snapshot has duplicate edge types");
      }
    }
  }
  if ((h.flags & kSnapshotFlagLabels) != 0) {
    EMIGRE_ASSIGN_OR_RETURN(
        const uint8_t* p,
        idx.Require(SnapshotSectionId::kLabelOffsets,
                    (n + 1) * sizeof(uint64_t)));
    view.label_offsets_ = AsArray<uint64_t>(p);
    EMIGRE_ASSIGN_OR_RETURN(
        SnapshotSectionOnDisk entry,
        idx.Entry(SnapshotSectionId::kLabelBytes));
    if (view.label_offsets_[0] != 0 ||
        view.label_offsets_[n] != entry.bytes) {
      return Status::InvalidArgument(
          "snapshot label offsets are inconsistent with the label pool");
    }
    view.label_bytes_ = reinterpret_cast<const char*>(base + entry.offset);
  }
  view.csr_ = CsrGraph::Alias(cols, blob);
  view.blob_ = std::move(blob);
  return view;
}

std::string CsrSnapshotView::DisplayName(NodeId n) const {
  const std::string_view label = Label(n);
  if (!label.empty()) return std::string(label);
  return StrFormat("#%u", n);
}

}  // namespace emigre::graph
