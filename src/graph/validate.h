#ifndef EMIGRE_GRAPH_VALIDATE_H_
#define EMIGRE_GRAPH_VALIDATE_H_

#include "graph/hin_graph.h"
#include "util/status.h"

namespace emigre::graph {

/// Verifies internal invariants of the graph:
///  - every out-edge has a mirroring in-edge with identical type and weight,
///  - cached out-weights equal the sum of out-edge weights,
///  - all weights are positive and finite,
///  - node/edge types are registered.
/// Returns the first violation found, or OK. Intended for tests and for
/// validating externally loaded graphs.
[[nodiscard]] Status ValidateGraph(const HinGraph& g);

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_VALIDATE_H_
