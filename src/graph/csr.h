#ifndef EMIGRE_GRAPH_CSR_H_
#define EMIGRE_GRAPH_CSR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/hin_graph.h"
#include "graph/types.h"

namespace emigre::graph {

/// \brief Immutable compressed-sparse-row snapshot of a graph.
///
/// Power iteration repeatedly walks every edge of the graph; doing so over
/// `HinGraph`'s vector-of-vectors layout wastes cache. `CsrGraph` packs
/// out- and in-adjacency into flat arrays. Build once, reuse for any number
/// of source nodes.
///
/// Storage is pointer-based: every accessor reads through the `Columns`
/// view, which either points into vectors this object owns (built from any
/// GraphLike via the constructors) or aliases externally-owned memory — an
/// mmap'd CSR snapshot (csr_snapshot.h) pinned alive by a keepalive handle.
/// The push kernels and overlay layers are agnostic to the backing.
class CsrGraph {
 public:
  /// The raw column view. Offsets are 64-bit so on-disk snapshots and
  /// in-memory graphs share one layout on any host.
  struct Columns {
    uint64_t num_nodes = 0;
    uint64_t num_edges = 0;
    const NodeTypeId* node_type = nullptr;  ///< [num_nodes]
    const double* out_weight = nullptr;     ///< [num_nodes]
    const uint64_t* out_offsets = nullptr;  ///< [num_nodes + 1]
    const NodeId* out_dst = nullptr;        ///< [num_edges]
    const EdgeTypeId* out_type = nullptr;   ///< [num_edges]
    const double* out_w = nullptr;          ///< [num_edges]
    const uint64_t* in_offsets = nullptr;   ///< [num_nodes + 1]
    const NodeId* in_src = nullptr;         ///< [num_edges]
    const EdgeTypeId* in_type = nullptr;    ///< [num_edges]
    const double* in_w = nullptr;           ///< [num_edges]
  };

  CsrGraph() = default;

  /// Snapshots `g` (including overlays, via the generic constructor below).
  explicit CsrGraph(const HinGraph& g) { BuildFrom(g); }

  /// Snapshots any GraphLike view (e.g. a `GraphOverlay`).
  template <typename G>
  explicit CsrGraph(const G& g, int /*overload tag*/) {
    BuildFrom(g);
  }

  /// Wraps externally-owned columns without copying. `keepalive` pins the
  /// backing memory (e.g. the mapped snapshot blob) for this object's
  /// lifetime; copies share it.
  static CsrGraph Alias(const Columns& cols,
                        std::shared_ptr<const void> keepalive) {
    CsrGraph g;
    g.cols_ = cols;
    g.keepalive_ = std::move(keepalive);
    return g;
  }

  // Copying an owned graph deep-copies its vectors (and re-points the
  // view); copying an aliased graph shares the backing. Moves transfer the
  // vector buffers, so the column pointers stay valid either way.
  CsrGraph(const CsrGraph& other) { *this = other; }
  CsrGraph& operator=(const CsrGraph& other) {
    if (this == &other) return *this;
    keepalive_ = other.keepalive_;
    node_type_ = other.node_type_;
    out_weight_ = other.out_weight_;
    out_offsets_ = other.out_offsets_;
    out_dst_ = other.out_dst_;
    out_type_ = other.out_type_;
    out_w_ = other.out_w_;
    in_offsets_ = other.in_offsets_;
    in_src_ = other.in_src_;
    in_type_ = other.in_type_;
    in_w_ = other.in_w_;
    if (other.owned_) {
      owned_ = true;
      cols_.num_nodes = other.cols_.num_nodes;
      cols_.num_edges = other.cols_.num_edges;
      PointToOwned();
    } else {
      owned_ = false;
      cols_ = other.cols_;
    }
    return *this;
  }
  CsrGraph(CsrGraph&&) = default;
  CsrGraph& operator=(CsrGraph&&) = default;

  size_t NumNodes() const { return cols_.num_nodes; }
  size_t NumEdges() const { return cols_.num_edges; }

  size_t OutDegree(NodeId n) const {
    return cols_.out_offsets[n + 1] - cols_.out_offsets[n];
  }
  size_t InDegree(NodeId n) const {
    return cols_.in_offsets[n + 1] - cols_.in_offsets[n];
  }
  double OutWeight(NodeId n) const { return cols_.out_weight[n]; }
  NodeTypeId NodeType(NodeId n) const { return cols_.node_type[n]; }
  bool IsValidNode(NodeId n) const { return n < cols_.num_nodes; }

  /// True when some (src, dst, *) edge exists. O(out-degree).
  bool HasEdge(NodeId src, NodeId dst) const {
    for (uint64_t i = cols_.out_offsets[src]; i < cols_.out_offsets[src + 1];
         ++i) {
      if (cols_.out_dst[i] == dst) return true;
    }
    return false;
  }

  bool HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const {
    return EdgeWeight(src, dst, type) > 0.0;
  }

  /// Weight of the (src, dst, type) edge, or 0.0 when absent (mirrors
  /// `HinGraph::EdgeWeight`). O(out-degree).
  double EdgeWeight(NodeId src, NodeId dst, EdgeTypeId type) const {
    for (uint64_t i = cols_.out_offsets[src]; i < cols_.out_offsets[src + 1];
         ++i) {
      if (cols_.out_dst[i] == dst && cols_.out_type[i] == type) {
        return cols_.out_w[i];
      }
    }
    return 0.0;
  }

  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    for (uint64_t i = cols_.out_offsets[n]; i < cols_.out_offsets[n + 1];
         ++i) {
      fn(cols_.out_dst[i], cols_.out_type[i], cols_.out_w[i]);
    }
  }

  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    for (uint64_t i = cols_.in_offsets[n]; i < cols_.in_offsets[n + 1]; ++i) {
      fn(cols_.in_src[i], cols_.in_type[i], cols_.in_w[i]);
    }
  }

  /// The raw view — the snapshot writer serializes exactly these columns.
  const Columns& columns() const { return cols_; }

 private:
  template <typename G>
  void BuildFrom(const G& g) {
    const size_t num_nodes = g.NumNodes();
    node_type_.resize(num_nodes);
    out_weight_.resize(num_nodes);
    out_offsets_.assign(num_nodes + 1, 0);
    in_offsets_.assign(num_nodes + 1, 0);

    size_t num_edges = 0;
    for (NodeId n = 0; n < num_nodes; ++n) {
      node_type_[n] = g.NodeType(n);
      out_weight_[n] = g.OutWeight(n);
      size_t out_deg = 0;
      g.ForEachOutEdge(n, [&](NodeId, EdgeTypeId, double) { ++out_deg; });
      size_t in_deg = 0;
      g.ForEachInEdge(n, [&](NodeId, EdgeTypeId, double) { ++in_deg; });
      out_offsets_[n + 1] = out_offsets_[n] + out_deg;
      in_offsets_[n + 1] = in_offsets_[n] + in_deg;
      num_edges += out_deg;
    }
    out_dst_.resize(num_edges);
    out_type_.resize(num_edges);
    out_w_.resize(num_edges);
    in_src_.resize(num_edges);
    in_type_.resize(num_edges);
    in_w_.resize(num_edges);

    for (NodeId n = 0; n < num_nodes; ++n) {
      uint64_t pos = out_offsets_[n];
      g.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
        out_dst_[pos] = dst;
        out_type_[pos] = t;
        out_w_[pos] = w;
        ++pos;
      });
      pos = in_offsets_[n];
      g.ForEachInEdge(n, [&](NodeId src, EdgeTypeId t, double w) {
        in_src_[pos] = src;
        in_type_[pos] = t;
        in_w_[pos] = w;
        ++pos;
      });
    }
    owned_ = true;
    cols_.num_nodes = num_nodes;
    cols_.num_edges = num_edges;
    PointToOwned();
  }

  void PointToOwned() {
    cols_.node_type = node_type_.data();
    cols_.out_weight = out_weight_.data();
    cols_.out_offsets = out_offsets_.data();
    cols_.out_dst = out_dst_.data();
    cols_.out_type = out_type_.data();
    cols_.out_w = out_w_.data();
    cols_.in_offsets = in_offsets_.data();
    cols_.in_src = in_src_.data();
    cols_.in_type = in_type_.data();
    cols_.in_w = in_w_.data();
  }

  Columns cols_;
  bool owned_ = false;
  /// Pins externally-owned column memory (aliased snapshots).
  std::shared_ptr<const void> keepalive_;

  // Owned storage (empty when aliasing external memory).
  std::vector<NodeTypeId> node_type_;
  std::vector<double> out_weight_;
  std::vector<uint64_t> out_offsets_;
  std::vector<NodeId> out_dst_;
  std::vector<EdgeTypeId> out_type_;
  std::vector<double> out_w_;
  std::vector<uint64_t> in_offsets_;
  std::vector<NodeId> in_src_;
  std::vector<EdgeTypeId> in_type_;
  std::vector<double> in_w_;
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_CSR_H_
