#ifndef EMIGRE_GRAPH_CSR_H_
#define EMIGRE_GRAPH_CSR_H_

#include <vector>

#include "graph/hin_graph.h"
#include "graph/types.h"

namespace emigre::graph {

/// \brief Immutable compressed-sparse-row snapshot of a graph.
///
/// Power iteration repeatedly walks every edge of the graph; doing so over
/// `HinGraph`'s vector-of-vectors layout wastes cache. `CsrGraph` packs
/// out- and in-adjacency into flat arrays. Build once, reuse for any number
/// of source nodes.
class CsrGraph {
 public:
  /// Snapshots `g` (including overlays, via the generic constructor below).
  explicit CsrGraph(const HinGraph& g) { BuildFrom(g); }

  /// Snapshots any GraphLike view (e.g. a `GraphOverlay`).
  template <typename G>
  explicit CsrGraph(const G& g, int /*overload tag*/) {
    BuildFrom(g);
  }

  size_t NumNodes() const { return num_nodes_; }
  size_t NumEdges() const { return out_dst_.size(); }

  size_t OutDegree(NodeId n) const {
    return out_offsets_[n + 1] - out_offsets_[n];
  }
  size_t InDegree(NodeId n) const {
    return in_offsets_[n + 1] - in_offsets_[n];
  }
  double OutWeight(NodeId n) const { return out_weight_[n]; }
  NodeTypeId NodeType(NodeId n) const { return node_type_[n]; }
  bool IsValidNode(NodeId n) const { return n < num_nodes_; }

  /// True when some (src, dst, *) edge exists. O(out-degree).
  bool HasEdge(NodeId src, NodeId dst) const {
    for (size_t i = out_offsets_[src]; i < out_offsets_[src + 1]; ++i) {
      if (out_dst_[i] == dst) return true;
    }
    return false;
  }

  bool HasEdge(NodeId src, NodeId dst, EdgeTypeId type) const {
    return EdgeWeight(src, dst, type) > 0.0;
  }

  /// Weight of the (src, dst, type) edge, or 0.0 when absent (mirrors
  /// `HinGraph::EdgeWeight`). O(out-degree).
  double EdgeWeight(NodeId src, NodeId dst, EdgeTypeId type) const {
    for (size_t i = out_offsets_[src]; i < out_offsets_[src + 1]; ++i) {
      if (out_dst_[i] == dst && out_type_[i] == type) return out_w_[i];
    }
    return 0.0;
  }

  template <typename F>
  void ForEachOutEdge(NodeId n, F&& fn) const {
    for (size_t i = out_offsets_[n]; i < out_offsets_[n + 1]; ++i) {
      fn(out_dst_[i], out_type_[i], out_w_[i]);
    }
  }

  template <typename F>
  void ForEachInEdge(NodeId n, F&& fn) const {
    for (size_t i = in_offsets_[n]; i < in_offsets_[n + 1]; ++i) {
      fn(in_src_[i], in_type_[i], in_w_[i]);
    }
  }

 private:
  template <typename G>
  void BuildFrom(const G& g) {
    num_nodes_ = g.NumNodes();
    node_type_.resize(num_nodes_);
    out_weight_.resize(num_nodes_);
    out_offsets_.assign(num_nodes_ + 1, 0);
    in_offsets_.assign(num_nodes_ + 1, 0);

    size_t num_edges = 0;
    for (NodeId n = 0; n < num_nodes_; ++n) {
      node_type_[n] = g.NodeType(n);
      out_weight_[n] = g.OutWeight(n);
      size_t out_deg = 0;
      g.ForEachOutEdge(n, [&](NodeId, EdgeTypeId, double) { ++out_deg; });
      size_t in_deg = 0;
      g.ForEachInEdge(n, [&](NodeId, EdgeTypeId, double) { ++in_deg; });
      out_offsets_[n + 1] = out_offsets_[n] + out_deg;
      in_offsets_[n + 1] = in_offsets_[n] + in_deg;
      num_edges += out_deg;
    }
    out_dst_.resize(num_edges);
    out_type_.resize(num_edges);
    out_w_.resize(num_edges);
    in_src_.resize(num_edges);
    in_type_.resize(num_edges);
    in_w_.resize(num_edges);

    for (NodeId n = 0; n < num_nodes_; ++n) {
      size_t pos = out_offsets_[n];
      g.ForEachOutEdge(n, [&](NodeId dst, EdgeTypeId t, double w) {
        out_dst_[pos] = dst;
        out_type_[pos] = t;
        out_w_[pos] = w;
        ++pos;
      });
      pos = in_offsets_[n];
      g.ForEachInEdge(n, [&](NodeId src, EdgeTypeId t, double w) {
        in_src_[pos] = src;
        in_type_[pos] = t;
        in_w_[pos] = w;
        ++pos;
      });
    }
  }

  size_t num_nodes_ = 0;
  std::vector<NodeTypeId> node_type_;
  std::vector<double> out_weight_;
  std::vector<size_t> out_offsets_;
  std::vector<NodeId> out_dst_;
  std::vector<EdgeTypeId> out_type_;
  std::vector<double> out_w_;
  std::vector<size_t> in_offsets_;
  std::vector<NodeId> in_src_;
  std::vector<EdgeTypeId> in_type_;
  std::vector<double> in_w_;
};

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_CSR_H_
