#ifndef EMIGRE_GRAPH_IO_H_
#define EMIGRE_GRAPH_IO_H_

#include <string>

#include "graph/hin_graph.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::graph {

/// Serializes the graph to a line-oriented text format:
///   # emigre-graph v1
///   N <node_id> <node_type_name> <label (may be empty, CSV-escaped)>
///   E <src> <dst> <edge_type_name> <weight>
/// Node lines come first, in id order, so loading reproduces ids exactly.
[[nodiscard]] Status SaveGraph(const HinGraph& g, const std::string& path);

/// Loads a graph saved by `SaveGraph`. Fails with IOError/InvalidArgument on
/// unreadable or malformed input.
[[nodiscard]] Result<HinGraph> LoadGraph(const std::string& path);

}  // namespace emigre::graph

#endif  // EMIGRE_GRAPH_IO_H_
