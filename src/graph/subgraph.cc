#include "graph/subgraph.h"

#include <deque>

#include "util/string_util.h"

namespace emigre::graph {

Result<Subgraph> ExtractNeighborhood(const HinGraph& g,
                                     const std::vector<NodeId>& seeds,
                                     size_t hops) {
  std::vector<int64_t> dist(g.NumNodes(), -1);
  std::deque<NodeId> frontier;
  for (NodeId s : seeds) {
    if (!g.IsValidNode(s)) {
      return Status::InvalidArgument(StrFormat("invalid seed node %u", s));
    }
    if (dist[s] < 0) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    if (static_cast<size_t>(dist[u]) >= hops) continue;
    auto visit = [&](NodeId v, EdgeTypeId, double) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    };
    g.ForEachOutEdge(u, visit);
    g.ForEachInEdge(u, visit);
  }

  Subgraph out;
  for (NodeTypeId t = 0; t < g.NumNodeTypes(); ++t) {
    out.graph.RegisterNodeType(g.NodeTypeName(t));
  }
  for (EdgeTypeId t = 0; t < g.NumEdgeTypes(); ++t) {
    out.graph.RegisterEdgeType(g.EdgeTypeName(t));
  }
  out.old_to_new.assign(g.NumNodes(), kInvalidNode);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (dist[n] < 0) continue;
    out.old_to_new[n] = out.graph.AddNode(g.NodeType(n), g.Label(n));
    out.new_to_old.push_back(n);
  }
  for (NodeId src = 0; src < g.NumNodes(); ++src) {
    if (out.old_to_new[src] == kInvalidNode) continue;
    for (const Edge& e : g.OutEdges(src)) {
      if (out.old_to_new[e.node] == kInvalidNode) continue;
      EMIGRE_RETURN_IF_ERROR(out.graph.AddEdge(out.old_to_new[src],
                                               out.old_to_new[e.node],
                                               e.type, e.weight));
    }
  }
  return out;
}

}  // namespace emigre::graph
