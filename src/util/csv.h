#ifndef EMIGRE_UTIL_CSV_H_
#define EMIGRE_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace emigre {

/// \brief RFC-4180-ish CSV writer (quotes fields containing delimiter,
/// quote, or newline).
///
/// Used by the experiment harness to export per-scenario measurements so
/// results can be post-processed outside the binary.
class CsvWriter {
 public:
  /// Opens `path` for (over)writing. Check `status()` before use.
  explicit CsvWriter(const std::string& path, char delim = ',');

  [[nodiscard]] Status status() const { return status_; }

  /// Writes one row; fields are escaped as needed.
  [[nodiscard]] Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the underlying stream.
  [[nodiscard]] Status Close();

 private:
  std::string Escape(std::string_view field) const;

  std::ofstream out_;
  char delim_;
  Status status_;
};

/// \brief Matching CSV reader; handles quoted fields and escaped quotes.
///
/// Reads whole lines into a reusable buffer and assigns fields in place, so
/// a steady-state row loop performs no allocations once the buffers have
/// grown to the widest row seen (callers should reuse one `fields` vector
/// across `ReadRow` calls to benefit).
class CsvReader {
 public:
  explicit CsvReader(const std::string& path, char delim = ',');

  [[nodiscard]] Status status() const { return status_; }

  /// Reads the next row into `fields`. Returns false at EOF *or* on a
  /// stream/parse error (unterminated quote, read failure) — check
  /// `status()` after the read loop to tell the two apart.
  bool ReadRow(std::vector<std::string>* fields);

 private:
  std::ifstream in_;
  char delim_;
  Status status_;
  std::string line_;   ///< reused line buffer (may span lines when quoted)
  std::string field_;  ///< reused field-accumulation buffer
};

/// Parses one CSV line (no embedded newlines) into fields.
std::vector<std::string> ParseCsvLine(std::string_view line, char delim = ',');

}  // namespace emigre

#endif  // EMIGRE_UTIL_CSV_H_
