#ifndef EMIGRE_UTIL_STRING_UTIL_H_
#define EMIGRE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace emigre {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Parses helpers; return false on malformed input without touching `out`.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with `precision` significant decimal digits after the
/// point, trimming trailing zeros ("1.5", "0.003", "12").
std::string FormatDouble(double value, int precision = 4);

/// Formats seconds compactly for reports ("3.2ms", "1.45s", "2m03s").
std::string FormatDuration(double seconds);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace emigre

#endif  // EMIGRE_UTIL_STRING_UTIL_H_
