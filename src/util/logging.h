#ifndef EMIGRE_UTIL_LOGGING_H_
#define EMIGRE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace emigre {

/// \brief Severity levels for the library logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Minimal leveled logger writing to stderr.
///
/// The global threshold defaults to kInfo and can be raised to silence
/// library chatter in benchmarks (`Logger::SetLevel(LogLevel::kWarning)`).
/// Not a general-purpose logging framework on purpose: the library's needs
/// are progress lines and diagnostics.
class Logger {
 public:
  /// Sets the global minimum level that is actually emitted.
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// True if a message at `level` would be emitted.
  static bool IsEnabled(LogLevel level);

  /// Emits one line: "[LEVEL] message". kFatal aborts after emitting.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace emigre

#define EMIGRE_LOG(level)                                     \
  if (!::emigre::Logger::IsEnabled(::emigre::LogLevel::level)) \
    ;                                                         \
  else                                                        \
    ::emigre::internal::LogMessage(::emigre::LogLevel::level)

/// Library invariant check, active in all build types.
#define EMIGRE_CHECK(cond)                                           \
  if (cond)                                                          \
    ;                                                                \
  else                                                               \
    ::emigre::internal::LogMessage(::emigre::LogLevel::kFatal)       \
        << "Check failed: " #cond " at " << __FILE__ << ":" << __LINE__ \
        << " "

#endif  // EMIGRE_UTIL_LOGGING_H_
