#include "util/csv.h"

namespace emigre {

CsvWriter::CsvWriter(const std::string& path, char delim)
    : out_(path), delim_(delim) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for writing: " + path);
  }
}

std::string CsvWriter::Escape(std::string_view field) const {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim_ || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return status_;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) {
    status_ = Status::IOError("write failed");
  }
  return status_;
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (!out_.good() && status_.ok()) {
      status_ = Status::IOError("close failed");
    }
  }
  return status_;
}

CsvReader::CsvReader(const std::string& path, char delim)
    : in_(path), delim_(delim) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for reading: " + path);
  }
}

bool CsvReader::ReadRow(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  fields->clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  int c;
  while ((c = in_.get()) != EOF) {
    saw_any = true;
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          in_.get();
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim_) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (ch == '\r') {
      // Tolerate CRLF: swallow, the '\n' terminates the row.
    } else if (ch == '\n') {
      fields->push_back(std::move(field));
      return true;
    } else {
      field += ch;
    }
  }
  // The loop only exits without a terminating newline at EOF — or on a
  // stream error, which get() also reports as EOF. Distinguish the two and
  // reject rows cut off inside a quoted field; both used to be silently
  // indistinguishable from a clean end of file.
  if (in_.bad()) {
    status_ = Status::IOError("read failed");
    return false;
  }
  if (in_quotes) {
    status_ = Status::InvalidArgument("unterminated quoted field at EOF");
    return false;
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

std::vector<std::string> ParseCsvLine(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += ch;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace emigre
