#include "util/csv.h"

namespace emigre {

CsvWriter::CsvWriter(const std::string& path, char delim)
    : out_(path), delim_(delim) {
  if (!out_.is_open()) {
    status_ = Status::IOError("cannot open for writing: " + path);
  }
}

std::string CsvWriter::Escape(std::string_view field) const {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim_ || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!status_.ok()) return status_;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << delim_;
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
  if (!out_.good()) {
    status_ = Status::IOError("write failed");
  }
  return status_;
}

Status CsvWriter::Close() {
  if (out_.is_open()) {
    out_.close();
    if (!out_.good() && status_.ok()) {
      status_ = Status::IOError("close failed");
    }
  }
  return status_;
}

CsvReader::CsvReader(const std::string& path, char delim)
    : in_(path), delim_(delim) {
  if (!in_.is_open()) {
    status_ = Status::IOError("cannot open for reading: " + path);
  }
}

bool CsvReader::ReadRow(std::vector<std::string>* fields) {
  if (!status_.ok()) return false;
  if (!std::getline(in_, line_)) {
    // getline reports a stream error and EOF the same way; distinguish them
    // so a truncated file is not silently indistinguishable from a clean
    // end of file.
    if (in_.bad()) status_ = Status::IOError("read failed");
    return false;
  }
  // Assign into the caller's existing strings instead of push_back(move):
  // with a reused `fields` vector both the field strings and the line
  // buffer keep their capacity from row to row, so the steady-state loop
  // allocates nothing.
  size_t n = 0;
  auto emit = [&](const std::string& value) {
    if (n < fields->size()) {
      (*fields)[n] = value;
    } else {
      fields->push_back(value);
    }
    ++n;
  };
  field_.clear();
  bool in_quotes = false;
  size_t i = 0;
  while (true) {
    if (i == line_.size()) {
      if (!in_quotes) break;
      // A quoted field may span physical lines; splice the next one in and
      // keep the embedded newline.
      size_t resume = line_.size();
      std::string continuation;
      if (!std::getline(in_, continuation)) {
        if (in_.bad()) {
          status_ = Status::IOError("read failed");
        } else {
          status_ = Status::InvalidArgument("unterminated quoted field at EOF");
        }
        return false;
      }
      line_ += '\n';
      line_ += continuation;
      i = resume;
    }
    char ch = line_[i++];
    if (in_quotes) {
      if (ch == '"') {
        if (i < line_.size() && line_[i] == '"') {
          ++i;
          field_ += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field_ += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim_) {
      emit(field_);
      field_.clear();
    } else if (ch == '\r') {
      // Tolerate CRLF: getline keeps the '\r'; swallow it.
    } else {
      field_ += ch;
    }
  }
  emit(field_);
  fields->resize(n);
  return true;
}

std::vector<std::string> ParseCsvLine(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += ch;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace emigre
