#ifndef EMIGRE_UTIL_THREAD_POOL_H_
#define EMIGRE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace emigre {

/// \brief Fixed-size worker pool for embarrassingly parallel work.
///
/// The experiment runner uses it to fan scenarios across cores; each scenario
/// operates on its own `GraphOverlay`, so tasks share only the immutable base
/// graph. The pool joins in the destructor.
///
/// Exception safety: a throwing task no longer escapes the worker thread
/// (which would `std::terminate` the process). The first exception any task
/// raises is captured and surfaced from `Wait()` as a `Status` — a
/// `StatusError` unwraps to its Status, anything else maps to
/// `Status::Internal`. Later exceptions from the same batch are dropped
/// (first error wins); tasks still pending when one throws run normally.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() started from another
  /// thread without external synchronization.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished, then reports the first
  /// task failure (OK when every task returned normally). The stored error
  /// is cleared, so the pool remains usable for the next batch.
  [[nodiscard]] Status Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Convenience for parallel for-loops over scenarios. Returns the first
  /// failure under the same contract as `Wait()`; iterations after a thrown
  /// one may or may not run (their worker keeps draining), callers must not
  /// rely on either.
  [[nodiscard]] static Status ParallelFor(size_t n, size_t num_threads,
                                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace emigre

#endif  // EMIGRE_UTIL_THREAD_POOL_H_
