#ifndef EMIGRE_UTIL_THREAD_POOL_H_
#define EMIGRE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emigre {

/// \brief Fixed-size worker pool for embarrassingly parallel work.
///
/// The experiment runner uses it to fan scenarios across cores; each scenario
/// operates on its own `GraphOverlay`, so tasks share only the immutable base
/// graph. The pool joins in the destructor.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() started from another
  /// thread without external synchronization.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Convenience for parallel for-loops over scenarios.
  static void ParallelFor(size_t n, size_t num_threads,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace emigre

#endif  // EMIGRE_UTIL_THREAD_POOL_H_
