#ifndef EMIGRE_UTIL_THREAD_POOL_H_
#define EMIGRE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace emigre {

/// \brief Fixed-size worker pool for embarrassingly parallel work.
///
/// The experiment runner uses it to fan scenarios across cores; each scenario
/// operates on its own `GraphOverlay`, so tasks share only the immutable base
/// graph. The pool joins in the destructor.
///
/// Exception safety: a throwing task no longer escapes the worker thread
/// (which would `std::terminate` the process). The first exception any task
/// raises is captured and surfaced from `Wait()` as a `Status` — a
/// `StatusError` unwraps to its Status, anything else maps to
/// `Status::Internal`. Later exceptions from the same batch are dropped
/// (first error wins); tasks still pending when one throws run normally.
///
/// Locking: one `util::Mutex` guards the queue and the completion state;
/// the `GUARDED_BY` / `EXCLUDES` annotations below are enforced by Clang's
/// `-Wthread-safety` analysis (docs/static_analysis.md).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() started from another
  /// thread without external synchronization.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until all submitted tasks have finished, then reports the first
  /// task failure (OK when every task returned normally). The stored error
  /// is cleared, so the pool remains usable for the next batch.
  [[nodiscard]] Status Wait() EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Convenience for parallel for-loops over scenarios. Returns the first
  /// failure under the same contract as `Wait()`; iterations after a thrown
  /// one may or may not run (their worker keeps draining), callers must not
  /// rely on either.
  [[nodiscard]] static Status ParallelFor(size_t n, size_t num_threads,
                                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  // Written once in the constructor, then immutable: `num_threads()` reads
  // it lock-free and the destructor joins without holding `mutex_`.
  std::vector<std::thread> workers_;  // NOLINT(guarded-by) const after ctor

  util::Mutex mutex_;
  util::CondVar task_ready_;
  util::CondVar all_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ GUARDED_BY(mutex_);
};

}  // namespace emigre

#endif  // EMIGRE_UTIL_THREAD_POOL_H_
