#ifndef EMIGRE_UTIL_TABLE_H_
#define EMIGRE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace emigre {

/// \brief Column alignment for `TextTable`.
enum class Align { kLeft, kRight };

/// \brief Plain-text table renderer used by the benchmark harness to print
/// paper-style tables and "figures" (bar charts) to stdout.
class TextTable {
 public:
  /// Creates a table with the given column headers; all columns default to
  /// left alignment.
  explicit TextTable(std::vector<std::string> headers);

  /// Sets the alignment of column `col`.
  void SetAlign(size_t col, Align align);

  /// Appends one row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator after the current last row.
  void AddSeparator();

  /// Renders the table with a header rule, e.g.
  ///   Method            | Success
  ///   ------------------+--------
  ///   add_Incremental   |   61.0%
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;   // empty row == separator
  std::vector<bool> is_separator_;
};

/// Renders a horizontal ASCII bar chart (one row per label), used to print
/// the paper's figures in a terminal:
///   add_ex            | ######################........ 75.0%
/// `scale_max` is the value corresponding to a full-width bar; values are
/// clamped to it. `suffix` is appended to the printed value (e.g. "%").
std::string BarChart(const std::vector<std::string>& labels,
                     const std::vector<double>& values, double scale_max,
                     const std::string& suffix = "", int width = 40);

}  // namespace emigre

#endif  // EMIGRE_UTIL_TABLE_H_
