#ifndef EMIGRE_UTIL_JSON_H_
#define EMIGRE_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace emigre::json {

/// \brief Minimal JSON reader/writer shared by the observability sinks
/// (emigre.metrics.v1, emigre.bench.v1, emigre.query.v1) and the perf-gate
/// comparator.
///
/// Just enough JSON: objects, arrays, strings, numbers, booleans, null.
/// Numbers keep their source `literal` alongside the double so integer
/// fields (counter values, bucket counts) round-trip exactly even beyond
/// 2^53 — `AsUint`/`AsInt` re-parse the literal instead of going through
/// the lossy double.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string literal;  ///< source text of a kNumber (exact round-trips)
  std::string string;
  std::vector<JsonValue> array;
  /// Members in source order — emigre.query.v1 consumers rely on
  /// `phase_seconds` keys staying in pipeline order across a round-trip.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup (first match); nullptr when absent (or not an
  /// object). Linear scan — the documents here have a handful of keys.
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Numeric accessors with a fallback for absent/mistyped values. AsUint
  /// and AsInt parse the source literal, so 64-bit integers stay exact.
  double AsDouble(double fallback = 0.0) const;
  uint64_t AsUint(uint64_t fallback = 0) const;
  int64_t AsInt(int64_t fallback = 0) const;
};

/// Parses a complete JSON document (trailing garbage is an error).
[[nodiscard]] Result<JsonValue> Parse(const std::string& text);

/// Convenience: `Find(key)` then the accessor, with `fallback` when the key
/// is absent.
double DoubleOr(const JsonValue& object, const std::string& key,
                double fallback = 0.0);
uint64_t UintOr(const JsonValue& object, const std::string& key,
                uint64_t fallback = 0);
std::string StringOr(const JsonValue& object, const std::string& key,
                     const std::string& fallback = "");
bool BoolOr(const JsonValue& object, const std::string& key, bool fallback);

/// Serializes `s` as a quoted JSON string. ASCII-only output: control
/// characters other than \n and \t become \uXXXX escapes; bytes >= 0x80
/// pass through unchanged (already-encoded UTF-8).
std::string Escape(const std::string& s);

/// Shortest decimal representation that parses back to exactly `v`
/// (non-finite values render as "0"; JSON has no inf/nan).
std::string Number(double v);

}  // namespace emigre::json

#endif  // EMIGRE_UTIL_JSON_H_
