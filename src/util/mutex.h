#ifndef EMIGRE_UTIL_MUTEX_H_
#define EMIGRE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

/// \file
/// Capability-annotated mutex wrappers (docs/static_analysis.md).
///
/// `std::mutex` carries no capability attribute on libstdc++, so Clang's
/// `-Wthread-safety` analysis cannot reason about it: a `GUARDED_BY` that
/// names a plain `std::mutex` member is rejected as "not a lockable type".
/// These zero-overhead wrappers restore the analysis:
///
///   - `util::Mutex` — a `CAPABILITY("mutex")` wrapper over `std::mutex`
///     whose `Lock`/`Unlock`/`TryLock` carry acquire/release annotations.
///   - `util::MutexLock` — the `SCOPED_CAPABILITY` RAII guard (the
///     annotated replacement for `std::lock_guard`).
///   - `util::CondVar` — a condition variable that waits on a held
///     `util::Mutex`; `Wait` is `REQUIRES(mu)` because the wait re-acquires
///     the mutex before returning, so callers hold it on both sides.
///
/// All concurrent subsystems (thread pool, PPR cache, obs registries, fault
/// registry, query log) use these instead of the std types directly; the
/// `guarded-by` lint rule keeps their data members annotated.

namespace emigre::util {

/// \brief Annotated exclusive mutex. Same cost as `std::mutex`.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII guard: acquires in the constructor, releases in the
/// destructor. The annotated replacement for `std::lock_guard<std::mutex>`.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable over `util::Mutex`.
///
/// `Wait` atomically releases `mu`, blocks, and re-acquires `mu` before
/// returning — so from the caller's (and the analysis') point of view the
/// mutex is held across the call, hence `REQUIRES(mu)`. Guarded state must
/// still be re-checked in a loop: wakeups can be spurious.
///
/// Implemented on `std::condition_variable` by adopting the held native
/// mutex for the duration of the wait, so there is no
/// `condition_variable_any` overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; holds it again when the wait returns.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    // The wait re-locked `native`; release ownership back to the caller's
    // MutexLock without unlocking.
    (void)native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace emigre::util

#endif  // EMIGRE_UTIL_MUTEX_H_
