#ifndef EMIGRE_UTIL_TIMER_H_
#define EMIGRE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>

namespace emigre {

/// \brief Thrown by deadline-cooperative hot loops (the push kernels and
/// dynamic repair, see `ppr::PprOptions::deadline`) when the query deadline
/// expires mid-computation.
///
/// A partially converged push state is not a usable estimate, so the loops
/// unwind instead of returning garbage. The testers catch this and fail the
/// candidate; `Emigre::Explain` converts any escape into
/// `FailureReason::kBudgetExceeded` — it never crosses a public API
/// boundary.
class DeadlineExceededError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "query deadline exceeded";
  }
};

/// \brief Monotonic wall-clock stopwatch.
///
/// Used by the experiment runner to time explanation methods (paper Table 5)
/// and by algorithm wall-clock budgets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Wall-clock budget: lets long-running searches (Powerset,
/// Exhaustive, Brute force) bail out deterministically at a deadline.
/// A non-positive budget means "unlimited".
class Deadline {
 public:
  /// Unlimited deadline.
  Deadline() : seconds_(0.0) {}

  /// Deadline that starts counting immediately. When the Deadline is stored
  /// (or copied) and the guarded work begins later, call Start() at that
  /// point — the copied stopwatch otherwise keeps the construction-time
  /// start and silently shortens the budget.
  explicit Deadline(double seconds) : seconds_(seconds) {}

  /// (Re)arms the deadline: the budget counts from this call.
  void Start() { timer_.Reset(); }

  bool Expired() const {
    return seconds_ > 0.0 && timer_.ElapsedSeconds() >= seconds_;
  }

  double BudgetSeconds() const { return seconds_; }

  /// Seconds left before expiry; +infinity when unlimited, clamped at 0.
  double RemainingSeconds() const {
    if (seconds_ <= 0.0) return std::numeric_limits<double>::infinity();
    double left = seconds_ - timer_.ElapsedSeconds();
    return left > 0.0 ? left : 0.0;
  }

 private:
  double seconds_;
  WallTimer timer_;
};

}  // namespace emigre

#endif  // EMIGRE_UTIL_TIMER_H_
