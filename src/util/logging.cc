#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"

namespace emigre {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes whole log lines to stderr so concurrent workers (thread pool,
/// parallel tester) never interleave characters within one line.
util::Mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool Logger::IsEnabled(LogLevel level) {
  // Fatal messages are always emitted: they precede an abort.
  return static_cast<int>(level) >=
             g_level.load(std::memory_order_relaxed) ||
         level == LogLevel::kFatal;
}

void Logger::Log(LogLevel level, const std::string& message) {
  {
    util::MutexLock lock(&g_log_mutex);
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
    std::fflush(stderr);
  }
  if (level == LogLevel::kFatal) std::abort();
}

}  // namespace emigre
