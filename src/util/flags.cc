#include "util/flags.h"

#include "util/string_util.h"

namespace emigre {

void FlagParser::AddFlag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  flags_[name] = Flag{help, default_value, false};
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

Status FlagParser::Parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" +
                                     Help());
    }
    if (!has_value) {
      // `--flag value` when the next token is not a flag; bare boolean
      // otherwise.
      if (i + 1 < args.size() && !StartsWith(args[i + 1], "--")) {
        value = args[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return Status::OK();
}

Result<std::string> FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("undeclared flag --" + name);
  }
  return it->second.value;
}

Result<int64_t> FlagParser::GetInt(const std::string& name) const {
  EMIGRE_ASSIGN_OR_RETURN(std::string text, GetString(name));
  int64_t value = 0;
  if (!ParseInt64(text, &value)) {
    return Status::InvalidArgument(
        StrFormat("flag --%s: '%s' is not an integer", name.c_str(),
                  text.c_str()));
  }
  return value;
}

Result<double> FlagParser::GetDouble(const std::string& name) const {
  EMIGRE_ASSIGN_OR_RETURN(std::string text, GetString(name));
  double value = 0.0;
  if (!ParseDouble(text, &value)) {
    return Status::InvalidArgument(
        StrFormat("flag --%s: '%s' is not a number", name.c_str(),
                  text.c_str()));
  }
  return value;
}

Result<bool> FlagParser::GetBool(const std::string& name) const {
  EMIGRE_ASSIGN_OR_RETURN(std::string text, GetString(name));
  std::string lower = ToLower(text);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status::InvalidArgument(
      StrFormat("flag --%s: '%s' is not a boolean", name.c_str(),
                text.c_str()));
}

bool FlagParser::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string FlagParser::Help() const {
  std::string out = description_ + "\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.value.empty()
                                            ? "\"\""
                                            : flag.value.c_str());
  }
  return out;
}

}  // namespace emigre
