#ifndef EMIGRE_UTIL_RESULT_H_
#define EMIGRE_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/status.h"

namespace emigre {

/// \brief Value-or-error, the library's counterpart to `arrow::Result<T>`.
///
/// A `Result<T>` holds either a `T` or a non-OK `Status`. Construct from a
/// value or from an error status; constructing from an OK status is a
/// programming error (there would be no value to return) and aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (this->status().ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK Status\n");
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; `Status::OK()` when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value. Aborts if this holds an error — call `ok()` first,
  /// or use `ValueOrDie()` in contexts where failure is a bug.
  const T& value() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    DieIfError();
    return std::get<T>(std::move(repr_));
  }

  /// Alias for `value()` that spells out intent at call sites in tests,
  /// examples and benchmarks.
  const T& ValueOrDie() const& { return value(); }
  T&& ValueOrDie() && { return std::move(*this).value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result accessed with error: %s\n",
                   std::get<Status>(repr_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace emigre

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller. `lhs` may include a declaration:
///   EMIGRE_ASSIGN_OR_RETURN(auto graph, BuildGraph(spec));
#define EMIGRE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) return result_name.status();         \
  lhs = std::move(result_name).value()

#define EMIGRE_ASSIGN_OR_RETURN_CONCAT_INNER(x, y) x##y
#define EMIGRE_ASSIGN_OR_RETURN_CONCAT(x, y) \
  EMIGRE_ASSIGN_OR_RETURN_CONCAT_INNER(x, y)

#define EMIGRE_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  EMIGRE_ASSIGN_OR_RETURN_IMPL(                                              \
      EMIGRE_ASSIGN_OR_RETURN_CONCAT(_emigre_result_, __LINE__), lhs, rexpr)

#endif  // EMIGRE_UTIL_RESULT_H_
