#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace emigre {

uint64_t Rng::NextUint64() {
  // SplitMix64 (Steele, Lea, Flood 2014). Small state, excellent statistical
  // quality for non-cryptographic use, trivially portable.
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  EMIGRE_CHECK(bound > 0) << "NextBounded requires bound > 0";
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ull - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  EMIGRE_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box–Muller transform; draw u1 away from zero to keep log finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextZipf(size_t n, double s) {
  EMIGRE_CHECK(n > 0) << "NextZipf requires n > 0";
  // Inverse-CDF over the (truncated) Zipf pmf. n is small in our use
  // (categories, popularity buckets), so the linear scan is fine.
  double norm = 0.0;
  for (size_t k = 0; k < n; ++k) norm += 1.0 / std::pow(k + 1, s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(k + 1, s);
    if (u <= acc) return k;
  }
  return n - 1;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  EMIGRE_CHECK(!weights.empty()) << "NextWeighted requires weights";
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EMIGRE_CHECK(total > 0.0) << "NextWeighted requires positive total weight";
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  EMIGRE_CHECK(!weights.empty()) << "WeightedSampler requires weights";
  cumulative_.reserve(weights.size());
  // Same left-to-right accumulation as the NextWeighted scan, so every
  // entry is bit-identical to the scan's running `acc`.
  double acc = 0.0;
  for (double w : weights) {
    acc += w;
    cumulative_.push_back(acc);
  }
  EMIGRE_CHECK(acc > 0.0) << "WeightedSampler requires positive total weight";
}

size_t WeightedSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble() * cumulative_.back();
  // First prefix with u <= cumulative_[i] — the index the linear scan's
  // `u <= acc` test would accept.
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return cumulative_.size() - 1;
  return static_cast<size_t>(it - cumulative_.begin());
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  // Partial Fisher–Yates: the first k positions become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextBounded(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xA5A5A5A5A5A5A5A5ull); }

}  // namespace emigre
