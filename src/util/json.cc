#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace emigre::json {

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    EMIGRE_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) return Error("expected a value");
    size_t len = static_cast<size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    out->literal.assign(start, len);
    pos_ += len;
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return Error("bad \\u escape");
    }
    *out = code;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          unsigned code = 0;
          EMIGRE_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: JSON encodes astral code points as a
            // \uXXXX\uXXXX pair (RFC 8259 §7). Combine into one code point
            // and emit 4-byte UTF-8 — appending each half's 3-byte
            // encoding separately would produce CESU-8, which round-trips
            // through our own emitter but is rejected by strict UTF-8
            // consumers.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            EMIGRE_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate in \\u escape");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (code >> 18)));
            out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    if (!Consume('{')) return Error("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      std::string key;
      EMIGRE_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      EMIGRE_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    if (!Consume('[')) return Error("expected '['");
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      EMIGRE_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

double JsonValue::AsDouble(double fallback) const {
  return kind == Kind::kNumber ? number : fallback;
}

uint64_t JsonValue::AsUint(uint64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  // Plain unsigned integer literals re-parse exactly; anything else
  // (sign, fraction, exponent) goes through the double.
  if (!literal.empty() &&
      literal.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(literal.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return static_cast<uint64_t>(v);
    }
  }
  if (number < 0.0 || std::isnan(number)) return fallback;
  return static_cast<uint64_t>(number);
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  std::string body = literal;
  bool negative = !body.empty() && body[0] == '-';
  if (negative) body.erase(0, 1);
  if (!body.empty() &&
      body.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(literal.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return static_cast<int64_t>(v);
    }
  }
  if (std::isnan(number)) return fallback;
  return static_cast<int64_t>(number);
}

Result<JsonValue> Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

double DoubleOr(const JsonValue& object, const std::string& key,
                double fallback) {
  const JsonValue* v = object.Find(key);
  return v == nullptr ? fallback : v->AsDouble(fallback);
}

uint64_t UintOr(const JsonValue& object, const std::string& key,
                uint64_t fallback) {
  const JsonValue* v = object.Find(key);
  return v == nullptr ? fallback : v->AsUint(fallback);
}

std::string StringOr(const JsonValue& object, const std::string& key,
                     const std::string& fallback) {
  const JsonValue* v = object.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : fallback;
}

bool BoolOr(const JsonValue& object, const std::string& key, bool fallback) {
  const JsonValue* v = object.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool ? v->boolean
                                                           : fallback;
}

std::string Escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string Number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  for (int precision = 6; precision <= 17; ++precision) {
    std::string s = StrFormat("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return StrFormat("%.17g", v);
}

}  // namespace emigre::json
