#include "util/thread_pool.h"

#include <atomic>
#include <utility>

#include "fault/fault.h"

namespace emigre {

namespace {

/// Maps a captured task exception to the `Wait()` Status contract.
Status StatusFromException(std::exception_ptr error) {
  if (!error) return Status::OK();
  try {
    std::rethrow_exception(std::move(error));
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task failed: ") + e.what());
  } catch (...) {
    return Status::Internal("task failed with a non-std exception");
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    util::MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

Status ThreadPool::Wait() {
  std::exception_ptr error;
  {
    util::MutexLock lock(&mutex_);
    while (in_flight_ != 0) all_done_.Wait(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  return StatusFromException(std::move(error));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(&mutex_);
      while (!shutdown_ && queue_.empty()) task_ready_.Wait(mutex_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      EMIGRE_FAULT_POINT("threadpool.task");
      task();
    } catch (...) {
      util::MutexLock lock(&mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      util::MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

Status ThreadPool::ParallelFor(size_t n, size_t num_threads,
                               const std::function<void(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (num_threads == 1 || n == 1) {
    // Serial path: same error contract as the pooled path, so callers see
    // one behavior at any thread count.
    try {
      for (size_t i = 0; i < n; ++i) {
        EMIGRE_FAULT_POINT("threadpool.serial");
        fn(i);
      }
    } catch (...) {
      return StatusFromException(std::current_exception());
    }
    return Status::OK();
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  size_t workers = pool.num_threads();
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&next, n, &fn] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  return pool.Wait();
}

}  // namespace emigre
