#include "util/thread_pool.h"

#include <atomic>

namespace emigre {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t num_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  size_t workers = pool.num_threads();
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&next, n, &fn] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace emigre
