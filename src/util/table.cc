#include "util/table.h"

#include <algorithm>

#include "util/string_util.h"

namespace emigre {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {}

void TextTable::SetAlign(size_t col, Align align) {
  if (col < aligns_.size()) aligns_[col] = align;
}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  is_separator_.push_back(false);
}

void TextTable::AddSeparator() {
  rows_.emplace_back();
  is_separator_.push_back(true);
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (is_separator_[r]) continue;
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = std::max(widths[c], rows_[r][c].size());
    }
  }

  auto render_cell = [&](const std::string& text, size_t col) {
    std::string pad(widths[col] - std::min(widths[col], text.size()), ' ');
    return aligns_[col] == Align::kLeft ? text + pad : pad + text;
  };
  auto render_rule = [&]() {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) line += "-+-";
      line += std::string(widths[c], '-');
    }
    return line + "\n";
  };

  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += " | ";
    out += render_cell(headers_[c], c);
  }
  out += "\n";
  out += render_rule();
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (is_separator_[r]) {
      out += render_rule();
      continue;
    }
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += " | ";
      out += render_cell(rows_[r][c], c);
    }
    out += "\n";
  }
  return out;
}

std::string BarChart(const std::vector<std::string>& labels,
                     const std::vector<double>& values, double scale_max,
                     const std::string& suffix, int width) {
  size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());
  if (scale_max <= 0) scale_max = 1.0;

  std::string out;
  for (size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    double frac = std::clamp(values[i] / scale_max, 0.0, 1.0);
    int filled = static_cast<int>(frac * width + 0.5);
    out += labels[i];
    out += std::string(label_width - labels[i].size(), ' ');
    out += " | ";
    out += std::string(filled, '#');
    out += std::string(width - filled, '.');
    out += " ";
    out += FormatDouble(values[i], 2) + suffix;
    out += "\n";
  }
  return out;
}

}  // namespace emigre
