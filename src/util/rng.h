#ifndef EMIGRE_UTIL_RNG_H_
#define EMIGRE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emigre {

/// \brief Deterministic pseudo-random generator (SplitMix64 core).
///
/// Every stochastic component of the library (dataset synthesis, sampling,
/// randomized sweeps) draws from an explicitly seeded `Rng` so that runs are
/// reproducible bit-for-bit across platforms — std::mt19937 distributions are
/// not guaranteed to produce identical streams across standard libraries,
/// hence the hand-rolled distributions here.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next raw 64-bit draw.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal draw (Box–Muller, no caching for determinism clarity).
  double NextGaussian();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p = 0.5);

  /// Zipf-distributed rank in [0, n) with exponent s: rank k has probability
  /// proportional to 1/(k+1)^s. Used to synthesize heavy-tailed popularity.
  size_t NextZipf(size_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n),
  /// returned in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent, deterministic child stream.
  Rng Fork();

 private:
  uint64_t state_;
};

/// \brief Precomputed inverse-CDF table for repeated weighted draws.
///
/// `Rng::NextWeighted` re-sums and scans its weight vector on every call —
/// fine for one-off draws, O(pool) per draw when the same pool is sampled
/// millions of times (the synthetic generator's per-category item pools at
/// the `large` band). This table pays the O(n) sum once and answers each
/// draw with a binary search. Draws are bit-identical to
/// `Rng::NextWeighted` on the same weights: the prefix sums are accumulated
/// in the same left-to-right order and the lower_bound comparison matches
/// the scan's `u <= prefix` acceptance exactly.
class WeightedSampler {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit WeightedSampler(const std::vector<double>& weights);

  /// Samples an index in [0, size()) proportionally to the weights,
  /// consuming exactly one `NextDouble` draw (same as `NextWeighted`).
  [[nodiscard]] size_t Sample(Rng& rng) const;

  [[nodiscard]] size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace emigre

#endif  // EMIGRE_UTIL_RNG_H_
