#ifndef EMIGRE_UTIL_THREAD_ANNOTATIONS_H_
#define EMIGRE_UTIL_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety capability annotations (docs/static_analysis.md).
///
/// These absl-style macros attach locking contracts to data members and
/// functions so Clang's `-Wthread-safety` analysis can prove lock
/// discipline on every path at compile time — the static complement to the
/// TSan stage, which only observes the interleavings a test run happens to
/// produce. Under any compiler other than Clang (or a Clang without the
/// attributes) every macro degrades to nothing, so GCC builds are
/// unaffected; the `analyze` stage of tools/check.sh and the CI `analyze`
/// job build the tree with `-Wthread-safety -Werror=thread-safety` so the
/// contracts cannot rot unchecked.
///
/// Vocabulary (see docs/static_analysis.md for usage guidance):
///   - `CAPABILITY("mutex")` marks a type as a lockable capability
///     (`util::Mutex` is the annotated wrapper to use for new code).
///   - `GUARDED_BY(mu)` on a data member: reads and writes require `mu`.
///   - `PT_GUARDED_BY(mu)` on a pointer/smart-pointer member: the *pointee*
///     requires `mu` (the pointer itself may need `GUARDED_BY` too).
///   - `REQUIRES(mu)` on a function: callers must already hold `mu`.
///   - `ACQUIRE(mu)` / `RELEASE(mu)` on a function: it takes / drops `mu`.
///   - `EXCLUDES(mu)` on a function: callers must NOT hold `mu`
///     (self-deadlock documentation; needs -Wthread-safety-negative to be
///     enforced, but reads as precise documentation regardless).
///   - `SCOPED_CAPABILITY` on an RAII type whose constructor acquires and
///     destructor releases (`util::MutexLock`).
///   - `NO_THREAD_SAFETY_ANALYSIS` opts one function out — last resort for
///     patterns the analysis cannot follow; always pair with a comment.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define EMIGRE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef EMIGRE_THREAD_ANNOTATION_
#define EMIGRE_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

#define CAPABILITY(x) EMIGRE_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY EMIGRE_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) EMIGRE_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) EMIGRE_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  EMIGRE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  EMIGRE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  EMIGRE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  EMIGRE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  EMIGRE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  EMIGRE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  EMIGRE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  EMIGRE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  EMIGRE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  EMIGRE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  EMIGRE_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) EMIGRE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) EMIGRE_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  EMIGRE_THREAD_ANNOTATION_(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) EMIGRE_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  EMIGRE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // EMIGRE_UTIL_THREAD_ANNOTATIONS_H_
