#include "util/crc32.h"

#include <array>

namespace emigre {

namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

void Crc32::Update(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = state_;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

uint32_t Crc32Of(const void* data, size_t len) {
  Crc32 crc;
  crc.Update(data, len);
  return crc.value();
}

}  // namespace emigre
