#ifndef EMIGRE_UTIL_STATUS_H_
#define EMIGRE_UTIL_STATUS_H_

#include <exception>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace emigre {

/// \brief Error categories used across the library.
///
/// Follows the RocksDB/Arrow convention: library functions that can fail
/// return a `Status` (or a `Result<T>`, see result.h) instead of throwing.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIOError = 9,
  kCancelled = 10,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome, cheap to pass by value.
///
/// The OK state carries no allocation; error states carry a code and a
/// message. `Status` is the uniform error channel of the library: no
/// exceptions cross public API boundaries.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(code, std::move(message))) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnimplemented() const {
    return code() == StatusCode::kUnimplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use only where a
  /// failure indicates a programming error (tests, examples, benches).
  void CheckOK() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps sizeof(Status) == sizeof(void*).
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Exception transport for a `Status` across stack frames that
/// cannot return one — worker-thread task bodies, deep template hot loops,
/// callbacks with fixed signatures.
///
/// The "no exceptions cross public API boundaries" rule still holds: a
/// `StatusError` must be caught and converted back to a `Status` before
/// control returns to a caller outside the library (the `Emigre::Explain`
/// facade and `ThreadPool::Wait` are the designated conversion boundaries).
class StatusError : public std::exception {
 public:
  explicit StatusError(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

}  // namespace emigre

/// Propagates a non-OK Status to the caller.
#define EMIGRE_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::emigre::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // EMIGRE_UTIL_STATUS_H_
