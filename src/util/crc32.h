#ifndef EMIGRE_UTIL_CRC32_H_
#define EMIGRE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace emigre {

/// \brief Incremental IEEE CRC-32 (polynomial 0xEDB88320, the zlib/PNG
/// checksum), table-driven, no external dependencies.
///
/// The binary dataset format and the CSR snapshot format checksum every
/// on-disk section with it (docs/data_format.md). The streaming writers
/// fold bytes in as they are produced, so checksumming never forces a
/// section to be materialized in memory.
class Crc32 {
 public:
  /// Folds `len` bytes into the running checksum.
  void Update(const void* data, size_t len);

  /// The checksum of everything passed to `Update` so far.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  /// Resets to the empty-input checksum (0).
  void Reset() { state_ = 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over `Crc32`.
uint32_t Crc32Of(const void* data, size_t len);

}  // namespace emigre

#endif  // EMIGRE_UTIL_CRC32_H_
