#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emigre {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  std::string buf(Trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf(Trim(s));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatDuration(double seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  if (seconds < 1e-3) return StrFormat("%.1fus", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.1fms", seconds * 1e3);
  if (seconds < 120.0) return StrFormat("%.2fs", seconds);
  int minutes = static_cast<int>(seconds / 60.0);
  double rem = seconds - 60.0 * minutes;
  return StrFormat("%dm%04.1fs", minutes, rem);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace emigre
