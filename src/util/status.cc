#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace emigre {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "Status check failed: %s\n", ToString().c_str());
    std::abort();
  }
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace emigre
