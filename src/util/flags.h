#ifndef EMIGRE_UTIL_FLAGS_H_
#define EMIGRE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace emigre {

/// \brief Minimal command-line parser for the CLI tools.
///
/// Understands `--flag=value`, `--flag value`, bare `--flag` (boolean
/// true), and positional arguments. Flags are declared up front so unknown
/// ones are rejected with a helpful message; typed getters validate values
/// at access time.
///
///   FlagParser parser("emigre graph tool");
///   parser.AddFlag("seed", "RNG seed", "42");
///   parser.AddFlag("verbose", "chatty output", "false");
///   EMIGRE_RETURN_IF_ERROR(parser.Parse(argc, argv));
///   uint64_t seed = parser.GetInt("seed").ValueOrDie();
class FlagParser {
 public:
  explicit FlagParser(std::string description)
      : description_(std::move(description)) {}

  /// Declares a flag with its help text and default value (as text).
  void AddFlag(const std::string& name, const std::string& help,
               const std::string& default_value);

  /// Parses argv (excluding argv[0]). Fails on unknown or malformed flags.
  [[nodiscard]] Status Parse(int argc, const char* const* argv);

  /// Same, for pre-split arguments.
  [[nodiscard]] Status Parse(const std::vector<std::string>& args);

  /// Typed access. Get* fail if the flag is undeclared or unparsable.
  [[nodiscard]] Result<std::string> GetString(const std::string& name) const;
  [[nodiscard]] Result<int64_t> GetInt(const std::string& name) const;
  [[nodiscard]] Result<double> GetDouble(const std::string& name) const;
  [[nodiscard]] Result<bool> GetBool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage/help string listing all flags.
  std::string Help() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool set = false;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;  // ordered for stable Help()
  std::vector<std::string> positional_;
};

}  // namespace emigre

#endif  // EMIGRE_UTIL_FLAGS_H_
