#ifndef EMIGRE_EXPLAIN_OPTIONS_H_
#define EMIGRE_EXPLAIN_OPTIONS_H_

#include <cstddef>
#include <vector>

#include "check/check_level.h"
#include "graph/types.h"
#include "obs/query_log.h"
#include "recsys/recommender.h"

namespace emigre::explain {

/// \brief Which TEST implementation verifies candidate explanations.
enum class TesterKind {
  /// Exact: full recommender re-run per candidate (the reference).
  kExact,
  /// Approximate: incrementally maintained PPR (see fast_tester.h) —
  /// typically several times faster per TEST, ε-accurate on near-ties.
  kDynamicPush,
};

/// \brief Configuration of the EMiGRe framework.
///
/// Groups (i) the recommender being explained, (ii) the action vocabulary
/// T_e — which edge types may appear in explanations (the paper restricts to
/// user–item edges for privacy, §6.1) — and (iii) resource caps that bound
/// the exponential searches. Caps default generously; the paper's
/// neighborhood sizes (10–100 actions) stay within them, and hitting one is
/// reported as `FailureReason::kBudgetExceeded` rather than silently
/// truncating.
struct EmigreOptions {
  /// The recommender whose output is being explained (PPR parameters and
  /// the item node type).
  recsys::RecommenderOptions rec;

  /// Allowed edge types for explanation actions (the paper's T_e). Empty
  /// means "all edge types".
  std::vector<graph::EdgeTypeId> allowed_edge_types;

  /// Edge type and weight used for Add-mode counterfactual edges. The paper
  /// notes rated/reviewed are interchangeable (§6.2); pick one.
  graph::EdgeTypeId add_edge_type = graph::kInvalidEdgeType;
  double add_edge_weight = 1.0;

  /// Add-mode candidate cap: keep the strongest `max_add_candidates` nodes
  /// from the Reverse-Local-Push frontier (0 = unlimited).
  size_t max_add_candidates = 256;

  /// Maximum explanation size considered by subset-enumerating searches
  /// (Powerset, Exhaustive, BruteForce). 0 = unlimited.
  size_t max_explanation_size = 5;

  /// Powerset/Exhaustive pruned-H cap: only the `max_subset_nodes` highest-
  /// contribution nodes participate in subset enumeration (0 = unlimited).
  /// Guards the 2^|H| worst case the paper acknowledges in §5.3.
  size_t max_subset_nodes = 18;

  /// Cap on TEST invocations per explanation attempt (0 = unlimited).
  size_t max_tests = 20000;

  /// Wall-clock budget per explanation attempt in seconds (0 = unlimited).
  /// The deadline is propagated cooperatively into the TEST path's PPR
  /// loops (docs/robustness.md), so a single long push cannot overshoot it
  /// by more than a polling interval.
  double deadline_seconds = 0.0;

  /// Anytime mode: when the budget (tests or deadline) expires mid-search,
  /// return the best-so-far candidate as a `degraded` Explanation (smallest
  /// remaining score gap) instead of a bare kBudgetExceeded failure. Off by
  /// default — the default pipeline output is bitwise identical to builds
  /// without this feature. Degraded results are never marked `verified` and
  /// are rejected by `ValidateExplanation`; see docs/robustness.md.
  bool anytime = false;

  /// Number of top-ranked items (beyond WNI) used as the target set T of
  /// the Exhaustive Comparison (paper uses the top-10 recommendation list).
  size_t exhaustive_targets = 10;

  /// TEST implementation (see TesterKind).
  TesterKind tester = TesterKind::kExact;

  /// Worker threads for candidate verification (the TEST fan-out;
  /// docs/parallelism.md). 1 = serial in the calling thread (default),
  /// 0 = hardware concurrency, N = N workers, each owning a private tester.
  /// Results are deterministic at any setting: batches accept the
  /// lowest-index success, exactly like the serial scan.
  size_t test_threads = 1;

  /// Optional per-query audit sink (docs/observability.md). When set,
  /// every `Explain` call appends one emigre.query.v1 record — question,
  /// budgets, phase durations, faults fired, resulting edge set. Not owned;
  /// must outlive the engine. The sink is internally synchronized, so
  /// engines running on multiple threads may share one log.
  obs::QueryLog* query_log = nullptr;

  /// Invariant-validation level of the debug hooks (docs/invariants.md).
  /// Only consulted in builds configured with
  /// `-DEMIGRE_DCHECK_INVARIANTS=ON`; release builds compile the hooks away
  /// regardless of this value.
  check::CheckLevel check_level = check::CheckLevel::kFull;

  /// Margin tolerance of the Exhaustive Comparison's threshold test. The
  /// paper requires strictly positive margins, but the contribution matrix
  /// is built from Reverse-Local-Push estimates carrying O(ε) error, and a
  /// target tied with WNI (margin exactly 0) can still lose the
  /// deterministic id tie-break; candidates within the slack are kept and
  /// left to the TEST step to adjudicate.
  double exhaustive_margin_slack = 1e-7;

  /// Returns true if `type` is allowed in explanations.
  bool IsAllowedEdgeType(graph::EdgeTypeId type) const {
    if (allowed_edge_types.empty()) return true;
    for (graph::EdgeTypeId t : allowed_edge_types) {
      if (t == type) return true;
    }
    return false;
  }
};

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_OPTIONS_H_
