#include "explain/internal.h"

#include <utility>

#include "obs/metrics.h"

namespace emigre::explain::internal {

QueryRecorder::QueryRecorder(Explanation* out, const TesterInterface& tester)
    : out_(out), tester_(&tester), tests_at_start_(tester.num_tests()) {}

Explanation QueryRecorder::Finish() {
  out_->tests_performed = tester_->num_tests() - tests_at_start_;
  out_->seconds = timer_.ElapsedSeconds();

  EMIGRE_COUNTER("explain.queries").Increment();
  if (out_->degraded) {
    EMIGRE_COUNTER("explain.degraded").Increment();
  }
  if (out_->found) {
    EMIGRE_COUNTER("explain.queries.found").Increment();
  } else {
    EMIGRE_COUNTER("explain.queries.not_found").Increment();
  }
  EMIGRE_COUNTER("explain.candidates_considered")
      .Increment(out_->candidates_considered);
  EMIGRE_HISTOGRAM("explain.query.seconds").Record(out_->seconds);
  return std::move(*out_);
}

size_t BinomialCapped(size_t n, size_t k, size_t cap) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  size_t result = 1;
  for (size_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, with overflow/cap saturation.
    if (result > cap / (n - k + i)) return cap;
    result = result * (n - k + i) / i;
    if (result >= cap) return cap;
  }
  return result;
}

}  // namespace emigre::explain::internal
