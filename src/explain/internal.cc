#include "explain/internal.h"

namespace emigre::explain::internal {

size_t BinomialCapped(size_t n, size_t k, size_t cap) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  size_t result = 1;
  for (size_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, with overflow/cap saturation.
    if (result > cap / (n - k + i)) return cap;
    result = result * (n - k + i) / i;
    if (result >= cap) return cap;
  }
  return result;
}

}  // namespace emigre::explain::internal
