#ifndef EMIGRE_EXPLAIN_COMBINED_H_
#define EMIGRE_EXPLAIN_COMBINED_H_

#include <vector>

#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/hin_graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace emigre::explain {

/// \brief Explanation mixing removed past actions with suggested new ones.
///
/// Realizes the paper's future-work extension (§6.4 "Out Of Scope Item",
/// §7): cases where neither pure additions nor pure deletions can promote
/// the Why-Not item, but a mixture can.
struct CombinedExplanation {
  bool found = false;
  std::vector<graph::EdgeRef> added;    ///< actions to perform
  std::vector<graph::EdgeRef> removed;  ///< actions to undo
  graph::NodeId original_rec = graph::kInvalidNode;
  graph::NodeId new_rec = graph::kInvalidNode;
  FailureReason failure = FailureReason::kNone;
  size_t tests_performed = 0;
  double seconds = 0.0;

  size_t size() const { return added.size() + removed.size(); }
};

/// \brief Combined Add/Remove Why-Not explanation, Incremental style.
///
/// Builds both search spaces (Algorithms 1 and 2), merges the candidate
/// actions — each tagged with its direction — into a single descending-
/// contribution list, and greedily accumulates as in Algorithm 3, TESTing
/// whenever the shared gap estimate closes. Subsumes both single modes: if
/// a pure Remove (or Add) explanation is reachable greedily it is found
/// too, so the success rate dominates the Incremental single modes.
[[nodiscard]]
Result<CombinedExplanation> RunCombinedIncremental(const graph::HinGraph& g,
                                                   const WhyNotQuestion& q,
                                                   const EmigreOptions& opts);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_COMBINED_H_
