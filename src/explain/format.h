#ifndef EMIGRE_EXPLAIN_FORMAT_H_
#define EMIGRE_EXPLAIN_FORMAT_H_

#include <string>

#include "explain/combined.h"
#include "explain/explanation.h"
#include "explain/weighted.h"
#include "graph/hin_graph.h"

namespace emigre::explain {

/// Renders a Why-Not explanation as the user-facing counterfactual sentence
/// the paper uses:
///   "Had you not interacted with Candide and C, your top recommendation
///    would be Harry Potter."    (Remove mode)
///   "Had you interacted with The Lord of the Rings, your top
///    recommendation would be Harry Potter."    (Add mode)
/// Falls back to a failure sentence ("No explanation: <reason>.") when the
/// explanation was not found. Node names come from the graph's labels.
///
/// Generic over any graph carrying `DisplayName` (`HinGraph` or a
/// `CsrSnapshotView`); explicitly instantiated in format.cc.
template <typename G>
std::string FormatExplanationSentence(const G& g, const Explanation& e);

/// Same for a combined Add/Remove explanation: "Had you interacted with X
/// and not interacted with Y, ...".
std::string FormatCombinedSentence(const graph::HinGraph& g,
                                   const CombinedExplanation& e);

/// Same for a weight-based explanation: "Had you rated C 0.2 (instead of
/// 5) ...".
std::string FormatWeightedSentence(const graph::HinGraph& g,
                                   const WeightedExplanation& e);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_FORMAT_H_
