#ifndef EMIGRE_EXPLAIN_TESTER_H_
#define EMIGRE_EXPLAIN_TESTER_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/csr.h"
#include "graph/csr_overlay.h"
#include "graph/hin_graph.h"
#include "graph/overlay.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/workspace.h"
#include "recsys/recommender.h"
#include "util/timer.h"

namespace emigre::explain {

/// \brief Interface of the TEST step shared by Algorithms 3, 4 and 5.
///
/// Verifies that a candidate edge set is an actual Why-Not explanation
/// (Definition 4.2): applied to the graph — added in Add mode, removed in
/// Remove mode — it must make the Why-Not item the *top-1* recommendation.
/// Two implementations exist: the exact `ExplanationTester` (reference) and
/// the `FastExplanationTester` (dynamic-push approximation, fast_tester.h).
class TesterInterface {
 public:
  virtual ~TesterInterface() = default;

  /// Returns true iff applying `edits` in `mode` puts the Why-Not item at
  /// the top of the recommendation list. `new_rec`, when non-null, receives
  /// the counterfactual top-1 (whatever it is).
  virtual bool Test(const std::vector<graph::EdgeRef>& edits, Mode mode,
                    graph::NodeId* new_rec = nullptr) = 0;

  /// One edit with its own direction; the combined Add/Remove mode (paper
  /// future work, §6.4 "Out Of Scope Item") mixes both in one candidate.
  struct ModedEdit {
    graph::EdgeRef edge;
    Mode mode = Mode::kRemove;
  };

  /// TEST for mixed candidates: applies each edit in its own direction.
  virtual bool TestMixed(const std::vector<ModedEdit>& edits,
                         graph::NodeId* new_rec = nullptr) = 0;

  /// Number of TEST invocations so far (runtime diagnostics).
  virtual size_t num_tests() const = 0;

  /// True when a positive TEST is an exact guarantee. Approximate testers
  /// return false; search strategies then report their explanations as
  /// unverified so callers (the evaluation runner does) re-check exactly.
  virtual bool IsExact() const = 0;

  /// Sentinel index for "no candidate" in BatchResult.
  static constexpr size_t kNoIndex = std::numeric_limits<size_t>::max();

  /// \brief Outcome of verifying an ordered candidate batch.
  ///
  /// The determinism contract (docs/parallelism.md): `accepted` is the
  /// *lowest-index* candidate that passes TEST, exactly as a serial
  /// front-to-back scan would find — regardless of how many workers ran the
  /// batch or in which order they finished.
  struct BatchResult {
    /// Lowest-index success, or kNoIndex when no candidate passed.
    size_t accepted = kNoIndex;
    /// Counterfactual top-1 of the accepted candidate (kInvalidNode when
    /// none was accepted).
    graph::NodeId new_rec = graph::kInvalidNode;
    /// Lowest index at which the budget predicate fired, or kNoIndex. A
    /// success below this index still wins (the serial scan would have
    /// reached it first); at or above it the batch counts as budget-stopped.
    size_t budget_index = kNoIndex;
    /// TEST calls actually executed for this batch.
    size_t tested = 0;
    /// Candidates skipped without a TEST (cooperative cancellation above an
    /// accepted index, or at/above the budget boundary).
    size_t cancelled = 0;

    /// The batch ended on the budget, not on a success before it.
    bool BudgetHit() const {
      return budget_index != kNoIndex &&
             (accepted == kNoIndex || accepted >= budget_index);
    }
    /// A success that the serial scan would also have reached.
    bool Found() const {
      return accepted != kNoIndex &&
             (budget_index == kNoIndex || accepted < budget_index);
    }
  };

  /// Budget predicate for TestBatch: receives the number of TEST calls a
  /// *serial* scan would have consumed before the candidate about to run
  /// (batch-entry num_tests() + candidate index) and returns true once the
  /// search budget is exhausted. Keyed to the candidate's index rather than
  /// the live counter so parallel and serial runs stop at the same boundary.
  using BudgetFn = std::function<bool(size_t serial_tests_used)>;

  /// Verifies `batch` in order and returns the lowest-index success. The
  /// base implementation is the serial reference loop; `ParallelTester`
  /// overrides it with a fan-out over worker threads. Candidates must all
  /// use the same `mode`.
  virtual BatchResult TestBatch(
      const std::vector<std::vector<graph::EdgeRef>>& batch, Mode mode,
      const BudgetFn& budget = nullptr);
};

/// \brief The exact TEST: re-runs the full recommender on an overlay.
///
/// This is the expensive but indispensable step whose necessity the paper
/// demonstrates with the Exhaustive-direct baseline (§6.3: a 33% success-
/// rate drop without it).
///
/// Generic over the base graph `G`: the classic `HinGraph` (the
/// `ExplanationTester` alias) or an mmap-backed `CsrSnapshotView` — the
/// kernel engines only touch the shared CSR columns either way, and the
/// legacy engine lays a `BasicGraphOverlay<G>` over the base directly.
template <typename G>
class ExplanationTesterT : public TesterInterface {
 public:
  /// The tester keeps references; `base` (and `csr`, when given) must
  /// outlive it. With `PprOptions::engine == kKernel` the counterfactual
  /// recommendations run over a `CsrOverlay` on a CSR snapshot — passed-in
  /// `csr` when available (the `Emigre` facade shares its own), otherwise
  /// built lazily on first TEST — with the PPR scratch state held in a
  /// reusable `PushWorkspace`. Scores are identical either way; only the
  /// per-TEST allocation profile differs.
  ExplanationTesterT(const G& base, graph::NodeId user,
                     graph::NodeId why_not_item, const EmigreOptions& opts,
                     const graph::CsrGraph* csr = nullptr)
      : base_(&base), csr_(csr), user_(user), wni_(why_not_item),
        opts_(opts) {}

  bool Test(const std::vector<graph::EdgeRef>& edits, Mode mode,
            graph::NodeId* new_rec = nullptr) override {
    std::vector<ModedEdit> moded;
    moded.reserve(edits.size());
    for (const graph::EdgeRef& e : edits) moded.push_back(ModedEdit{e, mode});
    return RunOnce(moded, new_rec);
  }

  bool TestMixed(const std::vector<ModedEdit>& edits,
                 graph::NodeId* new_rec = nullptr) override {
    return RunOnce(edits, new_rec);
  }

  size_t num_tests() const override { return num_tests_; }
  bool IsExact() const override { return true; }

  graph::NodeId user() const { return user_; }
  graph::NodeId why_not_item() const { return wni_; }

 private:
  /// Shared body of Test/TestMixed: applies each edit in its direction and
  /// re-runs the recommender through the configured engine.
  bool RunOnce(const std::vector<ModedEdit>& edits, graph::NodeId* new_rec);

  /// Builds the CSR snapshot + overlay on first kernel-engine TEST.
  void EnsureKernelState() {
    if (overlay_ != nullptr) return;
    if (csr_ == nullptr) {
      owned_csr_ = std::make_unique<graph::CsrGraph>(*base_, 0);
      csr_ = owned_csr_.get();
    }
    overlay_ = std::make_unique<graph::CsrOverlay>(*csr_);
  }

  const G* base_;
  const graph::CsrGraph* csr_;
  graph::NodeId user_;
  graph::NodeId wni_;
  EmigreOptions opts_;
  size_t num_tests_ = 0;

  // Kernel-engine state (unused by the legacy engine).
  std::unique_ptr<graph::CsrGraph> owned_csr_;
  std::unique_ptr<graph::CsrOverlay> overlay_;
  ppr::PushWorkspace ws_;
};

/// The classic exact tester over the in-memory graph.
using ExplanationTester = ExplanationTesterT<graph::HinGraph>;

template <typename G>
bool ExplanationTesterT<G>::RunOnce(const std::vector<ModedEdit>& edits,
                                    graph::NodeId* new_rec) {
  EMIGRE_SPAN("test.exact");
  EMIGRE_COUNTER("explain.tests.exact").Increment();
  ++num_tests_;
  try {
    // All engines apply the same edit semantics to an overlay and re-run
    // the same recommender arithmetic; the workspace engines (kKernel,
    // kFast) differ only in state reuse (CSR base arrays, overlay cleared
    // instead of reconstructed, PPR scratch in the workspace), so with the
    // default power-iteration scorer the verdicts are identical across all
    // three engines.
    if (opts_.rec.ppr.engine != ppr::PushEngine::kLegacy) {
      EnsureKernelState();
      overlay_->Clear();
      for (const ModedEdit& e : edits) {
        Status st;
        if (e.mode == Mode::kAdd) {
          st = overlay_->AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                                 opts_.add_edge_weight);
        } else {
          st = overlay_->RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
        }
        if (!st.ok()) {
          // A malformed candidate (duplicate add, missing removal target)
          // can never be a valid explanation.
          if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
          return false;
        }
      }
      graph::NodeId top = recsys::Recommend(*overlay_, user_, opts_.rec, &ws_);
      if (new_rec != nullptr) *new_rec = top;
      return top == wni_;
    }

    graph::BasicGraphOverlay<G> overlay(*base_);
    for (const ModedEdit& e : edits) {
      Status st;
      if (e.mode == Mode::kAdd) {
        st = overlay.AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                             opts_.add_edge_weight);
      } else {
        st = overlay.RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
      }
      if (!st.ok()) {
        if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
        return false;
      }
    }
    graph::NodeId top = recsys::Recommend(overlay, user_, opts_.rec);
    if (new_rec != nullptr) *new_rec = top;
    return top == wni_;
  } catch (const DeadlineExceededError&) {
    // The query deadline fired inside the counterfactual PPR: the candidate
    // is unverifiable within budget, so it fails. The kernel overlay state
    // self-heals (next TEST starts with Clear()); the search's own budget
    // check exits with kBudgetExceeded right after.
    EMIGRE_COUNTER("explain.tests.exact.deadline").Increment();
    if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
    return false;
  }
}

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_TESTER_H_
