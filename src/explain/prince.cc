#include "explain/prince.h"

#include <algorithm>

#include "graph/overlay.h"
#include "obs/trace.h"
#include "ppr/reverse_push.h"
#include "recsys/recommender.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace emigre::explain {

namespace {

using graph::EdgeRef;
using graph::HinGraph;
using graph::NodeId;

}  // namespace

Result<PrinceResult> RunPrince(const HinGraph& g, NodeId user,
                               const PrinceOptions& opts) {
  if (!g.IsValidNode(user)) {
    return Status::InvalidArgument(StrFormat("invalid user %u", user));
  }
  EMIGRE_SPAN("prince");
  WallTimer timer;
  PrinceResult result;

  recsys::RecommendationList ranking =
      recsys::RankItems(g, user, opts.emigre.rec);
  if (ranking.empty()) {
    return Status::FailedPrecondition(
        StrFormat("user %u has no recommendation to explain", user));
  }
  NodeId rec = ranking.Top();
  result.original_rec = rec;

  // The user's removable actions.
  std::vector<EdgeRef> actions;
  for (const graph::Edge& e : g.OutEdges(user)) {
    if (e.node == user || !opts.emigre.IsAllowedEdgeType(e.type)) continue;
    actions.push_back(EdgeRef{user, e.node, e.type});
  }
  if (actions.empty()) {
    result.seconds = timer.ElapsedSeconds();
    return result;  // not found: nothing to remove
  }

  std::vector<double> ppr_to_rec =
      ppr::ReversePush(g, rec, opts.emigre.rec.ppr).estimate;

  // Try each top-ranked item as the replacement r*; keep the smallest
  // verified swap set.
  size_t num_candidates =
      std::min(opts.replacement_candidates, ranking.size());
  for (size_t ci = 1; ci < num_candidates; ++ci) {
    NodeId r_star = ranking.at(ci).item;
    std::vector<double> ppr_to_star =
        ppr::ReversePush(g, r_star, opts.emigre.rec.ppr).estimate;

    // PRINCE's swap-set order: remove first the actions that push rec up
    // the most relative to r*.
    std::vector<std::pair<double, EdgeRef>> scored;
    for (const EdgeRef& a : actions) {
      double w = g.EdgeWeight(a.src, a.dst, a.type);
      double score = w * (ppr_to_rec[a.dst] - ppr_to_star[a.dst]);
      scored.emplace_back(score, a);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    graph::GraphOverlay overlay(g);
    std::vector<EdgeRef> removed;
    for (const auto& [score, edge] : scored) {
      if (score <= 0.0) break;  // removal would now help rec instead
      // Stop if this candidate cannot beat the best explanation found.
      if (result.found && removed.size() + 1 >= result.actions.size()) break;
      overlay.RemoveEdge(edge.src, edge.dst, edge.type).CheckOK();
      removed.push_back(edge);
      ++result.tests_performed;
      NodeId new_top = recsys::Recommend(overlay, user, opts.emigre.rec);
      if (new_top != rec && new_top != graph::kInvalidNode) {
        if (!result.found || removed.size() < result.actions.size()) {
          result.found = true;
          result.actions = removed;
          result.replacement = new_top;
        }
        break;
      }
    }
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace emigre::explain
