#ifndef EMIGRE_EXPLAIN_INCREMENTAL_H_
#define EMIGRE_EXPLAIN_INCREMENTAL_H_

#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/search_space.h"
#include "explain/tester.h"

namespace emigre::explain {

/// \brief Algorithm 3 — the *Incremental* heuristic (runtime-optimized).
///
/// Greedily accumulates candidate actions in descending-contribution order,
/// maintaining the gap estimate τ; each time the estimate indicates the
/// Why-Not item could have overtaken the recommendation (τ ≤ 0 in our gap
/// semantics) it runs the TEST verifier and returns on the first success.
/// The explanation grows monotonically, so this heuristic trades
/// explanation size for speed (paper Fig. 6 vs Table 5).
///
/// Negative-contribution candidates are pruned (they favor `rec`), matching
/// the paper's Line 7 guard.
Explanation RunIncremental(const SearchSpace& space, TesterInterface& tester,
                           const EmigreOptions& opts);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_INCREMENTAL_H_
