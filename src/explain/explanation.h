#ifndef EMIGRE_EXPLAIN_EXPLANATION_H_
#define EMIGRE_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "graph/types.h"

namespace emigre::explain {

/// \brief The two EMiGRe search modes (paper §5.1).
enum class Mode {
  kRemove,  ///< explanation = existing user actions to undo (A−)
  kAdd,     ///< explanation = new user actions to perform (A+)
};

/// \brief The explanation-computation strategies of paper §5.2 plus the
/// baselines of §6.2.
enum class Heuristic {
  kIncremental,       ///< Algorithm 3: grow one edge at a time (fast)
  kPowerset,          ///< Algorithm 4: subsets in ascending size (small)
  kExhaustive,        ///< Algorithm 5: per-target thresholds + CHECK
  kExhaustiveDirect,  ///< Algorithm 5 without the CHECK step (baseline)
  kBruteForce,        ///< all subsets, TEST each (oracle baseline, Remove)
};

std::string_view ModeName(Mode mode);
std::string_view HeuristicName(Heuristic h);

/// \brief Why a Why-Not explanation could not be produced (paper §6.4's
/// "meta-explanations").
enum class FailureReason {
  kNone,             ///< an explanation was found
  kInvalidQuestion,  ///< WNI not a valid Why-Not item (Definition 4.1)
  kColdStart,        ///< no candidate actions (empty search space H)
  kPopularItem,      ///< rec dominates WNI regardless of the user's actions
  kSearchExhausted,  ///< candidates existed but none passed the TEST
  kBudgetExceeded,   ///< a cap (size/tests/deadline) stopped the search
  kInternalError,    ///< an infrastructure fault aborted the query
};

std::string_view FailureReasonName(FailureReason reason);

/// Every FailureReason value, for exhaustive iteration (serialization
/// round-trips, report breakdowns). Keep in sync with the enum.
inline constexpr FailureReason kAllFailureReasons[] = {
    FailureReason::kNone,           FailureReason::kInvalidQuestion,
    FailureReason::kColdStart,      FailureReason::kPopularItem,
    FailureReason::kSearchExhausted, FailureReason::kBudgetExceeded,
    FailureReason::kInternalError,
};

/// Inverse of FailureReasonName over every enum value. Returns false (and
/// leaves `reason` untouched) when `name` matches no value.
bool FailureReasonFromName(std::string_view name, FailureReason* reason);

/// \brief A Why-Not question (paper Definition 4.1): "why is `why_not_item`
/// not my top recommendation?" asked by `user`.
struct WhyNotQuestion {
  graph::NodeId user = graph::kInvalidNode;
  graph::NodeId why_not_item = graph::kInvalidNode;
};

/// \brief A Why-Not explanation (paper Definition 4.2) plus search
/// diagnostics.
///
/// When `found`, applying `edges` to the graph (adding them in Add mode,
/// removing them in Remove mode) makes the Why-Not item the top-1
/// recommendation. `verified` records whether the producing algorithm ran
/// the TEST step itself (the Exhaustive-direct baseline does not; its
/// output may be a false positive, which the evaluation harness measures).
struct Explanation {
  Mode mode = Mode::kRemove;
  Heuristic heuristic = Heuristic::kIncremental;
  bool found = false;
  bool verified = false;
  std::vector<graph::EdgeRef> edges;  ///< the paper's A*

  FailureReason failure = FailureReason::kNone;

  /// Anytime mode only: the search ran out of budget before confirming a
  /// flip, and `edges` holds the best-so-far candidate instead of a proven
  /// explanation. A degraded result always has `verified == false` and
  /// `failure == kBudgetExceeded`; `ValidateExplanation` rejects it (it is
  /// not a Definition 4.2 explanation), and the evaluation harness measures
  /// how often it would in fact have flipped the recommendation.
  bool degraded = false;
  /// Remaining score gap of the degraded candidate (>= 0; smaller = closer
  /// to flipping the recommendation). Meaningless unless `degraded`.
  double degraded_gap = 0.0;

  // --- Diagnostics -----------------------------------------------------------
  /// Process-unique id assigned by `Emigre::Explain` (obs::BeginQuery);
  /// joins this result to its timeline events and audit-log record.
  uint64_t query_id = 0;
  graph::NodeId original_rec = graph::kInvalidNode;
  /// Top item after applying the explanation (only when verified).
  graph::NodeId new_rec = graph::kInvalidNode;
  size_t search_space_size = 0;  ///< |H|
  size_t candidates_considered = 0;
  size_t tests_performed = 0;
  double seconds = 0.0;

  size_t size() const { return edges.size(); }
};

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_EXPLANATION_H_
