#ifndef EMIGRE_EXPLAIN_INTERNAL_H_
#define EMIGRE_EXPLAIN_INTERNAL_H_

#include <cstddef>
#include <vector>

#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/tester.h"
#include "util/timer.h"

namespace emigre::explain::internal {

/// \brief Shared resource accounting for the search heuristics:
/// wall-clock deadline and TEST-invocation cap.
class SearchBudget {
 public:
  explicit SearchBudget(const EmigreOptions& opts)
      : deadline_(opts.deadline_seconds), max_tests_(opts.max_tests) {
    deadline_.Start();  // the budget counts from search start, not storage
  }

  /// True once any cap is hit. `tests_used` is the tester's counter.
  bool Exhausted(size_t tests_used) const {
    if (max_tests_ > 0 && tests_used >= max_tests_) return true;
    return deadline_.Expired();
  }

 private:
  Deadline deadline_;
  size_t max_tests_;
};

/// \brief One-source-of-truth diagnostics for a heuristic run.
///
/// Construct at search entry, then finish every exit path with
/// `return recorder.Finish();` (after setting `found`/`edges`/`failure`).
/// Finish stamps the timing and TEST-count diagnostics on the Explanation
/// from the tester delta and publishes the query to the process-wide
/// metrics registry (`explain.queries*`, `explain.query.seconds`,
/// `explain.candidates_considered`), so the CLI's `--metrics-out` snapshot
/// deltas and the `Explanation` fields agree by construction.
class QueryRecorder {
 public:
  QueryRecorder(Explanation* out, const TesterInterface& tester);

  /// Stamps diagnostics, publishes metrics, and moves the Explanation out.
  /// Call exactly once.
  Explanation Finish();

 private:
  Explanation* out_;
  const TesterInterface* tester_;
  size_t tests_at_start_;
  WallTimer timer_;
};

/// Enumerates k-subsets of {0, ..., n-1} in lexicographic order, invoking
/// `fn(indices)` for each. `fn` returns false to stop early; the function
/// returns false iff stopped early.
template <typename F>
bool ForEachCombination(size_t n, size_t k, F&& fn) {
  if (k > n) return true;
  if (k == 0) {
    std::vector<size_t> empty;
    return fn(static_cast<const std::vector<size_t>&>(empty));
  }
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    if (!fn(static_cast<const std::vector<size_t>&>(idx))) return false;
    // Advance to the next lexicographic combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) break;
      if (i == 0) return true;
    }
    if (idx[i] == i + n - k) return true;
    ++idx[i];
    for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

/// Number of k-subsets of an n-set, saturating at `cap` to avoid overflow.
size_t BinomialCapped(size_t n, size_t k, size_t cap);

}  // namespace emigre::explain::internal

#endif  // EMIGRE_EXPLAIN_INTERNAL_H_
