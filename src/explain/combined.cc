#include "explain/combined.h"

#include <algorithm>

#include "explain/internal.h"
#include "obs/trace.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "recsys/recommender.h"
#include "util/timer.h"

namespace emigre::explain {

Result<CombinedExplanation> RunCombinedIncremental(const graph::HinGraph& g,
                                                   const WhyNotQuestion& q,
                                                   const EmigreOptions& opts) {
  EMIGRE_SPAN("combined");
  WallTimer timer;
  internal::SearchBudget budget(opts);

  recsys::RecommendationList ranking = recsys::RankItems(g, q.user, opts.rec);
  graph::NodeId rec = ranking.Top();

  EMIGRE_ASSIGN_OR_RETURN(
      SearchSpace remove_space,
      BuildRemoveSearchSpace(g, q.user, rec, q.why_not_item, opts));
  EMIGRE_ASSIGN_OR_RETURN(
      SearchSpace add_space,
      BuildAddSearchSpace(g, q.user, rec, q.why_not_item, opts));

  CombinedExplanation out;
  out.original_rec = rec;

  // Merge the two candidate lists, tagging each action with its direction;
  // both spaces share the same gap semantics, so their contributions are
  // directly comparable.
  struct Tagged {
    CandidateAction action;
    Mode mode;
  };
  std::vector<Tagged> merged;
  merged.reserve(remove_space.actions.size() + add_space.actions.size());
  for (const CandidateAction& a : remove_space.actions) {
    merged.push_back(Tagged{a, Mode::kRemove});
  }
  for (const CandidateAction& a : add_space.actions) {
    merged.push_back(Tagged{a, Mode::kAdd});
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& a,
                                             const Tagged& b) {
    if (a.action.contribution != b.action.contribution) {
      return a.action.contribution > b.action.contribution;
    }
    if (a.mode != b.mode) return a.mode == Mode::kRemove;
    return a.action.edge < b.action.edge;
  });

  if (merged.empty()) {
    out.failure = FailureReason::kColdStart;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  ExplanationTester tester(g, q.user, q.why_not_item, opts);
  // Both taus estimate the same rec-vs-WNI gap; Remove mode's is exact over
  // the user's edges, so prefer it.
  double gap = remove_space.tau;
  std::vector<ExplanationTester::ModedEdit> accumulated;

  for (const Tagged& t : merged) {
    if (t.action.contribution <= 0.0) break;
    if (budget.Exhausted(tester.num_tests())) {
      out.failure = FailureReason::kBudgetExceeded;
      out.tests_performed = tester.num_tests();
      out.seconds = timer.ElapsedSeconds();
      return out;
    }
    accumulated.push_back(
        ExplanationTester::ModedEdit{t.action.edge, t.mode});
    gap -= t.action.contribution;
    if (gap <= 0.0) {
      graph::NodeId new_rec = graph::kInvalidNode;
      if (tester.TestMixed(accumulated, &new_rec)) {
        out.found = true;
        out.new_rec = new_rec;
        for (const auto& e : accumulated) {
          if (e.mode == Mode::kAdd) {
            out.added.push_back(e.edge);
          } else {
            out.removed.push_back(e.edge);
          }
        }
        out.failure = FailureReason::kNone;
        out.tests_performed = tester.num_tests();
        out.seconds = timer.ElapsedSeconds();
        return out;
      }
    }
  }

  out.failure = FailureReason::kSearchExhausted;
  out.tests_performed = tester.num_tests();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace emigre::explain
