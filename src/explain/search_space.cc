#include "explain/search_space.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/reverse_push.h"
#include "util/string_util.h"

namespace emigre::explain {

namespace {

using graph::EdgeRef;
using graph::HinGraph;
using graph::NodeId;

Status ValidateInputs(const HinGraph& g, NodeId user, NodeId rec,
                      NodeId wni) {
  if (!g.IsValidNode(user)) {
    return Status::InvalidArgument(StrFormat("invalid user node %u", user));
  }
  if (!g.IsValidNode(wni)) {
    return Status::InvalidArgument(StrFormat("invalid WNI node %u", wni));
  }
  if (rec != graph::kInvalidNode && !g.IsValidNode(rec)) {
    return Status::InvalidArgument(StrFormat("invalid rec node %u", rec));
  }
  if (rec == wni) {
    return Status::InvalidArgument(
        "WNI equals the current recommendation: nothing to explain");
  }
  return Status::OK();
}

/// PPR(·, target), through the cache when one is provided. Cache entries
/// are sparse; call sites index by arbitrary node id, so densify here.
std::vector<double> PprTo(const HinGraph& g, NodeId target,
                          const EmigreOptions& opts,
                          ppr::ReversePushCache<graph::CsrGraph>* cache) {
  if (target == graph::kInvalidNode || !g.IsValidNode(target)) {
    return std::vector<double>(g.NumNodes(), 0.0);
  }
  if (cache != nullptr) return cache->Get(target)->ToDense(g.NumNodes());
  return ppr::ReversePush(g, target, opts.rec.ppr).estimate;
}

/// Fetches PPR(·, wni) and PPR(·, rec) together. With a cache both columns
/// resolve through one `GetBatch` call, so a kFast engine computes the two
/// reverse pushes in a single shared traversal; otherwise this degrades to
/// the two independent `PprTo` fetches.
void PprToPair(const HinGraph& g, NodeId wni, NodeId rec,
               const EmigreOptions& opts,
               ppr::ReversePushCache<graph::CsrGraph>* cache,
               std::vector<double>* to_wni, std::vector<double>* to_rec) {
  bool wni_valid = wni != graph::kInvalidNode && g.IsValidNode(wni);
  bool rec_valid = rec != graph::kInvalidNode && g.IsValidNode(rec);
  if (cache != nullptr && wni_valid && rec_valid) {
    auto columns = cache->GetBatch({wni, rec});
    *to_wni = columns[0]->ToDense(g.NumNodes());
    *to_rec = columns[1]->ToDense(g.NumNodes());
    return;
  }
  *to_wni = PprTo(g, wni, opts, cache);
  *to_rec = PprTo(g, rec, opts, cache);
}

void SortByContributionDesc(std::vector<CandidateAction>* actions) {
  std::sort(actions->begin(), actions->end(),
            [](const CandidateAction& a, const CandidateAction& b) {
              if (a.contribution != b.contribution) {
                return a.contribution > b.contribution;
              }
              return a.edge < b.edge;  // deterministic tie-break
            });
}

/// τ over the user's existing allowed edges: the Eq. 5 contributions summed,
/// i.e. the estimated rec-over-WNI dominance routed through user actions.
double ComputeTau(const HinGraph& g, NodeId user,
                  const std::vector<double>& ppr_to_rec,
                  const std::vector<double>& ppr_to_wni,
                  const EmigreOptions& opts) {
  double tau = 0.0;
  for (const graph::Edge& e : g.OutEdges(user)) {
    if (e.node == user || !opts.IsAllowedEdgeType(e.type)) continue;
    tau += e.weight * (ppr_to_rec[e.node] - ppr_to_wni[e.node]);
  }
  return tau;
}

}  // namespace

Result<SearchSpace> BuildRemoveSearchSpace(
    const HinGraph& g, NodeId user, NodeId rec, NodeId wni,
    const EmigreOptions& opts, ppr::ReversePushCache<graph::CsrGraph>* cache) {
  EMIGRE_SPAN("search_space");
  EMIGRE_RETURN_IF_ERROR(ValidateInputs(g, user, rec, wni));

  SearchSpace space;
  space.mode = Mode::kRemove;
  space.user = user;
  space.rec = rec;
  space.wni = wni;
  // PPR(·, rec) and PPR(·, WNI) — one batched fetch; rec may be absent
  // (empty initial recommendation list), in which case its vector is zero.
  PprToPair(g, wni, rec, opts, cache, &space.ppr_to_wni, &space.ppr_to_rec);

  for (const graph::Edge& e : g.OutEdges(user)) {
    if (e.node == user || !opts.IsAllowedEdgeType(e.type)) continue;
    double contribution =
        e.weight *
        (space.ppr_to_rec[e.node] - space.ppr_to_wni[e.node]);  // Eq. 5
    space.actions.push_back(
        CandidateAction{EdgeRef{user, e.node, e.type}, contribution});
    space.tau += contribution;
  }
  SortByContributionDesc(&space.actions);
  EMIGRE_COUNTER("explain.search_space.builds").Increment();
  EMIGRE_COUNTER("explain.search_space.candidates")
      .Increment(space.actions.size());
  return space;
}

Result<SearchSpace> BuildAddSearchSpace(
    const HinGraph& g, NodeId user, NodeId rec, NodeId wni,
    const EmigreOptions& opts, ppr::ReversePushCache<graph::CsrGraph>* cache) {
  EMIGRE_SPAN("search_space");
  EMIGRE_RETURN_IF_ERROR(ValidateInputs(g, user, rec, wni));
  if (opts.add_edge_type == graph::kInvalidEdgeType) {
    return Status::InvalidArgument(
        "Add mode requires EmigreOptions::add_edge_type");
  }

  SearchSpace space;
  space.mode = Mode::kAdd;
  space.user = user;
  space.rec = rec;
  space.wni = wni;
  PprToPair(g, wni, rec, opts, cache, &space.ppr_to_wni, &space.ppr_to_rec);
  space.tau = ComputeTau(g, user, space.ppr_to_rec, space.ppr_to_wni, opts);

  // Candidate endpoints: the Reverse-Local-Push frontier of WNI — nodes
  // whose walks reach WNI — restricted to items the user could act on:
  // item-typed, not the user, not WNI itself (an edge (u, WNI) would remove
  // WNI from the recommendable set), and no existing (u, n) edge
  // (Definition 4.2's A+ requires (u, i) ∉ E).
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (space.ppr_to_wni[n] <= 0.0) continue;
    if (n == user || n == wni) continue;
    if (g.NodeType(n) != opts.rec.item_type) continue;
    if (g.HasEdge(user, n)) continue;
    double contribution =
        opts.add_edge_weight *
        (space.ppr_to_wni[n] - space.ppr_to_rec[n]);  // Eq. 6
    space.actions.push_back(
        CandidateAction{EdgeRef{user, n, opts.add_edge_type}, contribution});
  }
  SortByContributionDesc(&space.actions);
  if (opts.max_add_candidates > 0 &&
      space.actions.size() > opts.max_add_candidates) {
    space.actions.resize(opts.max_add_candidates);
  }
  EMIGRE_COUNTER("explain.search_space.builds").Increment();
  EMIGRE_COUNTER("explain.search_space.candidates")
      .Increment(space.actions.size());
  return space;
}

}  // namespace emigre::explain
