#include "explain/search_space.h"

#include <algorithm>

#include "graph/csr_snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/reverse_push.h"
#include "util/string_util.h"

namespace emigre::explain {

namespace {

using graph::EdgeRef;
using graph::NodeId;

template <typename G>
Status ValidateInputs(const G& g, NodeId user, NodeId rec, NodeId wni) {
  if (!g.IsValidNode(user)) {
    return Status::InvalidArgument(StrFormat("invalid user node %u", user));
  }
  if (!g.IsValidNode(wni)) {
    return Status::InvalidArgument(StrFormat("invalid WNI node %u", wni));
  }
  if (rec != graph::kInvalidNode && !g.IsValidNode(rec)) {
    return Status::InvalidArgument(StrFormat("invalid rec node %u", rec));
  }
  if (rec == wni) {
    return Status::InvalidArgument(
        "WNI equals the current recommendation: nothing to explain");
  }
  return Status::OK();
}

/// PPR(·, target), through the cache when one is provided. Cache entries
/// are sparse; call sites index by arbitrary node id, so densify here.
template <typename G>
std::vector<double> PprTo(const G& g, NodeId target, const EmigreOptions& opts,
                          ppr::ReversePushCache<graph::CsrGraph>* cache) {
  if (target == graph::kInvalidNode || !g.IsValidNode(target)) {
    return std::vector<double>(g.NumNodes(), 0.0);
  }
  if (cache != nullptr) return cache->Get(target)->ToDense(g.NumNodes());
  return ppr::ReversePush(g, target, opts.rec.ppr).estimate;
}

/// Fetches PPR(·, wni) and PPR(·, rec) together. With a cache both columns
/// resolve through one `GetBatch` call, so a kFast engine computes the two
/// reverse pushes in a single shared traversal; otherwise this degrades to
/// the two independent `PprTo` fetches.
template <typename G>
void PprToPair(const G& g, NodeId wni, NodeId rec, const EmigreOptions& opts,
               ppr::ReversePushCache<graph::CsrGraph>* cache,
               std::vector<double>* to_wni, std::vector<double>* to_rec) {
  bool wni_valid = wni != graph::kInvalidNode && g.IsValidNode(wni);
  bool rec_valid = rec != graph::kInvalidNode && g.IsValidNode(rec);
  if (cache != nullptr && wni_valid && rec_valid) {
    auto columns = cache->GetBatch({wni, rec});
    *to_wni = columns[0]->ToDense(g.NumNodes());
    *to_rec = columns[1]->ToDense(g.NumNodes());
    return;
  }
  *to_wni = PprTo(g, wni, opts, cache);
  *to_rec = PprTo(g, rec, opts, cache);
}

void SortByContributionDesc(std::vector<CandidateAction>* actions) {
  std::sort(actions->begin(), actions->end(),
            [](const CandidateAction& a, const CandidateAction& b) {
              if (a.contribution != b.contribution) {
                return a.contribution > b.contribution;
              }
              return a.edge < b.edge;  // deterministic tie-break
            });
}

/// τ over the user's existing allowed edges: the Eq. 5 contributions summed,
/// i.e. the estimated rec-over-WNI dominance routed through user actions.
template <typename G>
double ComputeTau(const G& g, NodeId user,
                  const std::vector<double>& ppr_to_rec,
                  const std::vector<double>& ppr_to_wni,
                  const EmigreOptions& opts) {
  double tau = 0.0;
  g.ForEachOutEdge(user, [&](NodeId dst, graph::EdgeTypeId type, double w) {
    if (dst == user || !opts.IsAllowedEdgeType(type)) return;
    tau += w * (ppr_to_rec[dst] - ppr_to_wni[dst]);
  });
  return tau;
}

}  // namespace

template <typename G>
Result<SearchSpace> BuildRemoveSearchSpace(
    const G& g, NodeId user, NodeId rec, NodeId wni, const EmigreOptions& opts,
    ppr::ReversePushCache<graph::CsrGraph>* cache) {
  EMIGRE_SPAN("search_space");
  EMIGRE_RETURN_IF_ERROR(ValidateInputs(g, user, rec, wni));

  SearchSpace space;
  space.mode = Mode::kRemove;
  space.user = user;
  space.rec = rec;
  space.wni = wni;
  // PPR(·, rec) and PPR(·, WNI) — one batched fetch; rec may be absent
  // (empty initial recommendation list), in which case its vector is zero.
  PprToPair(g, wni, rec, opts, cache, &space.ppr_to_wni, &space.ppr_to_rec);

  g.ForEachOutEdge(user, [&](NodeId dst, graph::EdgeTypeId type, double w) {
    if (dst == user || !opts.IsAllowedEdgeType(type)) return;
    double contribution =
        w * (space.ppr_to_rec[dst] - space.ppr_to_wni[dst]);  // Eq. 5
    space.actions.push_back(
        CandidateAction{EdgeRef{user, dst, type}, contribution});
    space.tau += contribution;
  });
  SortByContributionDesc(&space.actions);
  EMIGRE_COUNTER("explain.search_space.builds").Increment();
  EMIGRE_COUNTER("explain.search_space.candidates")
      .Increment(space.actions.size());
  return space;
}

template <typename G>
Result<SearchSpace> BuildAddSearchSpace(
    const G& g, NodeId user, NodeId rec, NodeId wni, const EmigreOptions& opts,
    ppr::ReversePushCache<graph::CsrGraph>* cache) {
  EMIGRE_SPAN("search_space");
  EMIGRE_RETURN_IF_ERROR(ValidateInputs(g, user, rec, wni));
  if (opts.add_edge_type == graph::kInvalidEdgeType) {
    return Status::InvalidArgument(
        "Add mode requires EmigreOptions::add_edge_type");
  }

  SearchSpace space;
  space.mode = Mode::kAdd;
  space.user = user;
  space.rec = rec;
  space.wni = wni;
  PprToPair(g, wni, rec, opts, cache, &space.ppr_to_wni, &space.ppr_to_rec);
  space.tau = ComputeTau(g, user, space.ppr_to_rec, space.ppr_to_wni, opts);

  // Candidate endpoints: the Reverse-Local-Push frontier of WNI — nodes
  // whose walks reach WNI — restricted to items the user could act on:
  // item-typed, not the user, not WNI itself (an edge (u, WNI) would remove
  // WNI from the recommendable set), and no existing (u, n) edge
  // (Definition 4.2's A+ requires (u, i) ∉ E).
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (space.ppr_to_wni[n] <= 0.0) continue;
    if (n == user || n == wni) continue;
    if (g.NodeType(n) != opts.rec.item_type) continue;
    if (g.HasEdge(user, n)) continue;
    double contribution =
        opts.add_edge_weight *
        (space.ppr_to_wni[n] - space.ppr_to_rec[n]);  // Eq. 6
    space.actions.push_back(
        CandidateAction{EdgeRef{user, n, opts.add_edge_type}, contribution});
  }
  SortByContributionDesc(&space.actions);
  if (opts.max_add_candidates > 0 &&
      space.actions.size() > opts.max_add_candidates) {
    space.actions.resize(opts.max_add_candidates);
  }
  EMIGRE_COUNTER("explain.search_space.builds").Increment();
  EMIGRE_COUNTER("explain.search_space.candidates")
      .Increment(space.actions.size());
  return space;
}

// Explicit instantiations: the classic in-memory graph and the mmap-backed
// snapshot view.
template Result<SearchSpace> BuildRemoveSearchSpace<graph::HinGraph>(
    const graph::HinGraph&, NodeId, NodeId, NodeId, const EmigreOptions&,
    ppr::ReversePushCache<graph::CsrGraph>*);
template Result<SearchSpace> BuildAddSearchSpace<graph::HinGraph>(
    const graph::HinGraph&, NodeId, NodeId, NodeId, const EmigreOptions&,
    ppr::ReversePushCache<graph::CsrGraph>*);
template Result<SearchSpace> BuildRemoveSearchSpace<graph::CsrSnapshotView>(
    const graph::CsrSnapshotView&, NodeId, NodeId, NodeId,
    const EmigreOptions&, ppr::ReversePushCache<graph::CsrGraph>*);
template Result<SearchSpace> BuildAddSearchSpace<graph::CsrSnapshotView>(
    const graph::CsrSnapshotView&, NodeId, NodeId, NodeId,
    const EmigreOptions&, ppr::ReversePushCache<graph::CsrGraph>*);

}  // namespace emigre::explain
