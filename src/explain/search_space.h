#ifndef EMIGRE_EXPLAIN_SEARCH_SPACE_H_
#define EMIGRE_EXPLAIN_SEARCH_SPACE_H_

#include <vector>

#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/csr.h"
#include "graph/hin_graph.h"
#include "graph/types.h"
#include "ppr/cache.h"
#include "util/result.h"

namespace emigre::explain {

/// \brief One candidate action with its contribution score.
///
/// In Remove mode the action is an existing edge (u, n_i) ∈ E whose removal
/// helps the Why-Not item (Eq. 5); in Add mode a non-existing edge whose
/// addition helps it (Eq. 6). Positive contribution = helpful to WNI.
struct CandidateAction {
  graph::EdgeRef edge;
  double contribution = 0.0;
};

/// \brief Output of the search-space definition phase (Algorithms 1 and 2).
///
/// `actions` is the paper's list H, sorted by descending contribution;
/// `tau` is the threshold τ — here with the self-consistent "gap" semantics
/// (see DESIGN.md §3): τ estimates how much the current recommendation
/// dominates the Why-Not item through the user's own actions, so τ > 0
/// initially and a candidate edge set whose accumulated contributions push
/// it to ≤ 0 is worth TESTing.
///
/// The PPR(·, rec) and PPR(·, WNI) vectors (computed once via Reverse Local
/// Push) are retained: the Exhaustive Comparison reuses the same machinery
/// per target item.
struct SearchSpace {
  Mode mode = Mode::kRemove;
  graph::NodeId user = graph::kInvalidNode;
  graph::NodeId rec = graph::kInvalidNode;  ///< current top-1 (may be absent)
  graph::NodeId wni = graph::kInvalidNode;  ///< the Why-Not item
  std::vector<CandidateAction> actions;     ///< the paper's H, sorted desc
  double tau = 0.0;

  std::vector<double> ppr_to_rec;  ///< PPR(·, rec)
  std::vector<double> ppr_to_wni;  ///< PPR(·, WNI)
};

/// \brief Algorithm 1: Remove-mode search space.
///
/// Scores every allowed out-edge (u, n_i) with
///   contribution_rmv(n_i) = W(u, n_i) · (PPR(n_i, rec) − PPR(n_i, WNI)),
/// (Eq. 5) and returns them sorted by descending contribution, together
/// with τ = Σ contributions.
///
/// Generic over the base graph `G` (`HinGraph` or an mmap-backed
/// `CsrSnapshotView`); explicitly instantiated in search_space.cc.
template <typename G>
[[nodiscard]] Result<SearchSpace> BuildRemoveSearchSpace(
    const G& g, graph::NodeId user, graph::NodeId rec, graph::NodeId wni,
    const EmigreOptions& opts,
    ppr::ReversePushCache<graph::CsrGraph>* cache = nullptr);

/// \brief Algorithm 2: Add-mode search space.
///
/// Runs Reverse Local Push from the Why-Not item to discover nodes with
/// non-trivial PPR(·, WNI) (the paper's PPR_WNI list), keeps item nodes the
/// user has not interacted with, and scores them with
///   contribution_add(n_i) = PPR(n_i, WNI) − PPR(n_i, rec)          (Eq. 6).
/// τ is computed over the user's *existing* edges exactly as in Algorithm 1
/// (the initial rec-vs-WNI gap that additions must overcome).
template <typename G>
[[nodiscard]] Result<SearchSpace> BuildAddSearchSpace(
    const G& g, graph::NodeId user, graph::NodeId rec, graph::NodeId wni,
    const EmigreOptions& opts,
    ppr::ReversePushCache<graph::CsrGraph>* cache = nullptr);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_SEARCH_SPACE_H_
