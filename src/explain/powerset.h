#ifndef EMIGRE_EXPLAIN_POWERSET_H_
#define EMIGRE_EXPLAIN_POWERSET_H_

#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/search_space.h"
#include "explain/tester.h"

namespace emigre::explain {

/// \brief Algorithm 4 — the *Powerset* heuristic (size-optimized).
///
/// Prunes non-positive contributions out of H, then walks the power set of
/// the remainder in ascending subset size (and, within a size, descending
/// combined contribution). Subsets whose combined contribution closes the
/// gap estimate are TESTed; the first verified subset is returned, which by
/// construction is among the smallest explanations the contribution model
/// admits (paper Fig. 6).
///
/// The 2^|H| worst case (paper §5.3) is bounded by
/// `EmigreOptions::max_subset_nodes` (strongest candidates kept),
/// `max_explanation_size`, `max_tests` and `deadline_seconds`; hitting a cap
/// reports `kBudgetExceeded`.
Explanation RunPowerset(const SearchSpace& space, TesterInterface& tester,
                        const EmigreOptions& opts);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_POWERSET_H_
