#include "explain/group.h"

#include <algorithm>

#include "recsys/recommender.h"
#include "util/string_util.h"

namespace emigre::explain {

Result<GroupExplanation> ExplainGroup(const Emigre& engine,
                                      const WhyNotGroupQuestion& q,
                                      Mode mode, Heuristic heuristic) {
  if (q.items.empty()) {
    return Status::InvalidArgument("group Why-Not question with no items");
  }
  const graph::HinGraph& g = engine.graph();
  if (!g.IsValidNode(q.user)) {
    return Status::InvalidArgument(StrFormat("invalid user %u", q.user));
  }

  GroupExplanation out;
  recsys::RecommendationList ranking = engine.CurrentRanking(q.user);
  graph::NodeId rec = ranking.Top();

  // Attempt members in ranking order: the best-ranked member needs the
  // smallest promotion. Members outside the ranking (score 0 / unreachable)
  // come last in id order.
  std::vector<graph::NodeId> ordered = q.items;
  std::sort(ordered.begin(), ordered.end());
  ordered.erase(std::unique(ordered.begin(), ordered.end()), ordered.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     return ranking.RankOf(a) < ranking.RankOf(b);
                   });

  for (graph::NodeId item : ordered) {
    if (!engine.ValidateQuestion(WhyNotQuestion{q.user, item}, rec).ok()) {
      out.skipped.push_back(item);
      continue;
    }
    ++out.attempts;
    EMIGRE_ASSIGN_OR_RETURN(
        Explanation e,
        engine.Explain(WhyNotQuestion{q.user, item}, mode, heuristic));
    if (e.found) {
      out.found = true;
      out.promoted_item = item;
      out.explanation = std::move(e);
      return out;
    }
  }
  return out;
}

std::vector<graph::NodeId> ItemsOfCategory(const graph::HinGraph& g,
                                           graph::NodeId category,
                                           graph::EdgeTypeId belongs_type,
                                           graph::NodeTypeId item_type) {
  std::vector<graph::NodeId> items;
  if (!g.IsValidNode(category)) return items;
  // belongs-to edges are bidirectionalized by the pipeline; collect from
  // both directions and deduplicate.
  g.ForEachInEdge(category, [&](graph::NodeId src, graph::EdgeTypeId type,
                                double) {
    if (type == belongs_type && g.NodeType(src) == item_type) {
      items.push_back(src);
    }
  });
  g.ForEachOutEdge(category, [&](graph::NodeId dst, graph::EdgeTypeId type,
                                 double) {
    if (type == belongs_type && g.NodeType(dst) == item_type) {
      items.push_back(dst);
    }
  });
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

}  // namespace emigre::explain
