#include "explain/weighted.h"

#include <algorithm>

#include "explain/internal.h"
#include "obs/trace.h"
#include "explain/search_space.h"
#include "graph/overlay.h"
#include "recsys/recommender.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace emigre::explain {

namespace {

using graph::EdgeRef;
using graph::GraphOverlay;
using graph::HinGraph;
using graph::NodeId;

/// Applies all adjustments to a fresh overlay and checks whether the WNI
/// tops the list.
bool TestAdjustments(const HinGraph& g, NodeId user, NodeId wni,
                     const std::vector<WeightAdjustment>& adjustments,
                     const EmigreOptions& opts, NodeId* new_rec,
                     size_t* tests) {
  ++*tests;
  GraphOverlay overlay(g);
  for (const WeightAdjustment& adj : adjustments) {
    if (!overlay
             .SetWeight(adj.edge.src, adj.edge.dst, adj.edge.type,
                        adj.new_weight)
             .ok()) {
      if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
      return false;
    }
  }
  NodeId top = recsys::Recommend(overlay, user, opts.rec);
  if (new_rec != nullptr) *new_rec = top;
  return top == wni;
}

}  // namespace

Result<WeightedExplanation> RunWeightedIncremental(
    const HinGraph& g, const WhyNotQuestion& q, const EmigreOptions& opts,
    const WeightedOptions& wopts) {
  if (!(wopts.min_weight > 0.0) || wopts.min_weight > wopts.max_weight) {
    return Status::InvalidArgument(
        StrFormat("bad weight bounds [%f, %f]", wopts.min_weight,
                  wopts.max_weight));
  }
  EMIGRE_SPAN("weighted");
  WallTimer timer;
  internal::SearchBudget budget(opts);

  recsys::RecommendationList ranking = recsys::RankItems(g, q.user, opts.rec);
  NodeId rec = ranking.Top();
  // Reuse Algorithm 1's per-neighbor PPR scores; its action list is exactly
  // the adjustable-edge universe.
  EMIGRE_ASSIGN_OR_RETURN(
      SearchSpace space,
      BuildRemoveSearchSpace(g, q.user, rec, q.why_not_item, opts));

  WeightedExplanation out;
  out.original_rec = rec;
  if (space.actions.empty()) {
    out.failure = FailureReason::kColdStart;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // For each edge, the unit-gap slope is contribution / weight (Eq. 5
  // without the weight factor); the best move is to the bound that lowers
  // the gap, and its achievable reduction is |Δw × slope|.
  struct Move {
    WeightAdjustment adjustment;
    double gap_reduction = 0.0;
  };
  std::vector<Move> moves;
  for (const CandidateAction& a : space.actions) {
    double w = g.EdgeWeight(a.edge.src, a.edge.dst, a.edge.type);
    if (w <= 0.0) continue;
    double slope = a.contribution / w;
    Move move;
    move.adjustment.edge = a.edge;
    move.adjustment.old_weight = w;
    if (slope > 0.0) {
      // Neighbor favors rec: lower the rating.
      move.adjustment.new_weight = wopts.min_weight;
      move.gap_reduction = (w - wopts.min_weight) * slope;
    } else if (slope < 0.0) {
      // Neighbor favors WNI: raise the rating.
      move.adjustment.new_weight = wopts.max_weight;
      move.gap_reduction = (wopts.max_weight - w) * (-slope);
    }
    if (move.gap_reduction > 0.0 &&
        move.adjustment.new_weight != move.adjustment.old_weight) {
      moves.push_back(move);
    }
  }
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    if (a.gap_reduction != b.gap_reduction) {
      return a.gap_reduction > b.gap_reduction;
    }
    return a.adjustment.edge < b.adjustment.edge;
  });
  if (moves.empty()) {
    out.failure = FailureReason::kSearchExhausted;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  double gap = space.tau;
  std::vector<WeightAdjustment> accumulated;
  bool success = false;
  for (const Move& move : moves) {
    if (budget.Exhausted(out.tests_performed)) {
      out.failure = FailureReason::kBudgetExceeded;
      out.seconds = timer.ElapsedSeconds();
      return out;
    }
    accumulated.push_back(move.adjustment);
    gap -= move.gap_reduction;
    if (gap <= 0.0) {
      NodeId new_rec = graph::kInvalidNode;
      if (TestAdjustments(g, q.user, q.why_not_item, accumulated, opts,
                          &new_rec, &out.tests_performed)) {
        out.new_rec = new_rec;
        success = true;
        break;
      }
    }
  }
  if (!success) {
    out.failure = FailureReason::kSearchExhausted;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // Relaxation pass: restore each adjustment to the original weight when
  // correctness survives, keeping the explanation minimal and gentle.
  for (size_t i = accumulated.size(); i > 0; --i) {
    if (budget.Exhausted(out.tests_performed)) break;
    std::vector<WeightAdjustment> trial = accumulated;
    trial.erase(trial.begin() + static_cast<ptrdiff_t>(i - 1));
    NodeId new_rec = graph::kInvalidNode;
    if (TestAdjustments(g, q.user, q.why_not_item, trial, opts, &new_rec,
                        &out.tests_performed)) {
      accumulated = std::move(trial);
      out.new_rec = new_rec;
    }
  }

  out.found = true;
  out.adjustments = std::move(accumulated);
  out.failure = FailureReason::kNone;
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace emigre::explain
