#include "explain/meta.h"

#include "graph/csr_snapshot.h"
#include "graph/overlay.h"
#include "recsys/recommender.h"
#include "util/string_util.h"

namespace emigre::explain {

namespace {

/// Operational popular-item check (Remove mode): withdraw *every* removable
/// action of the user at once — the strongest demotion the privacy-
/// preserving action vocabulary allows — and see whether the Why-Not item
/// still ranks below the original recommendation. If it does, the
/// recommendation's dominance is carried by other users' actions and no
/// removal subset can plausibly promote WNI (paper §6.4 "Popular Item",
/// Fig. 7).
template <typename G>
bool IsPopularItemCase(const G& g, const SearchSpace& space,
                       const EmigreOptions& opts) {
  graph::BasicGraphOverlay<G> overlay(g);
  for (const CandidateAction& a : space.actions) {
    // Ignore individual failures (cannot happen for a well-formed space).
    overlay.RemoveEdge(a.edge.src, a.edge.dst, a.edge.type).ok();
  }
  recsys::RecommendationList ranking =
      recsys::RankItems(overlay, space.user, opts.rec);
  size_t rank_wni = ranking.RankOf(space.wni);
  size_t rank_rec = ranking.RankOf(space.rec);
  return rank_wni > rank_rec;
}

}  // namespace

template <typename G>
MetaExplanation DiagnoseFailure(const G& g, const SearchSpace& space,
                                const Explanation& failed,
                                const EmigreOptions& opts) {
  MetaExplanation meta;
  if (failed.found) {
    meta.reason = FailureReason::kNone;
    meta.message = "an explanation was found; nothing to diagnose";
    return meta;
  }

  if (space.actions.empty()) {
    meta.reason = FailureReason::kColdStart;
    meta.message = StrFormat(
        "cold start: user %s has no candidate actions of an allowed type, "
        "so no explanation can be formed in %s mode",
        g.DisplayName(space.user).c_str(),
        std::string(ModeName(space.mode)).c_str());
    return meta;
  }

  if (space.mode == Mode::kRemove && IsPopularItemCase(g, space, opts)) {
    meta.reason = FailureReason::kPopularItem;
    meta.message = StrFormat(
        "popular item: %s outranks %s even after withdrawing every "
        "removable action of user %s — its score is carried by other "
        "users' actions, which the privacy-preserving action vocabulary "
        "cannot touch",
        g.DisplayName(space.rec).c_str(), g.DisplayName(space.wni).c_str(),
        g.DisplayName(space.user).c_str());
    return meta;
  }

  if (failed.failure == FailureReason::kBudgetExceeded) {
    meta.reason = FailureReason::kBudgetExceeded;
    meta.message =
        "the search budget (tests/deadline/size caps) was exhausted before "
        "the candidate space was fully explored; raise the caps or use the "
        "Incremental heuristic";
    return meta;
  }

  // The candidates could demote rec, yet every TESTed set failed: a third
  // item keeps overtaking WNI — the single-mode search is out of scope and
  // mixing added and removed actions may be required (paper future work;
  // see RunCombinedIncremental).
  meta.reason = FailureReason::kSearchExhausted;
  meta.message = StrFormat(
      "out of scope for %s mode alone: candidate sets dethrone %s but "
      "another item overtakes %s; consider the combined add/remove mode",
      std::string(ModeName(space.mode)).c_str(),
      g.DisplayName(space.rec).c_str(), g.DisplayName(space.wni).c_str());
  return meta;
}

template MetaExplanation DiagnoseFailure<graph::HinGraph>(
    const graph::HinGraph&, const SearchSpace&, const Explanation&,
    const EmigreOptions&);
template MetaExplanation DiagnoseFailure<graph::CsrSnapshotView>(
    const graph::CsrSnapshotView&, const SearchSpace&, const Explanation&,
    const EmigreOptions&);

}  // namespace emigre::explain
