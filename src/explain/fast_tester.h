#ifndef EMIGRE_EXPLAIN_FAST_TESTER_H_
#define EMIGRE_EXPLAIN_FAST_TESTER_H_

#include <memory>
#include <vector>

#include "explain/tester.h"
#include "graph/csr.h"
#include "graph/csr_overlay.h"
#include "graph/hin_graph.h"
#include "ppr/dynamic.h"
#include "ppr/workspace.h"

namespace emigre::explain {

/// \brief Approximate TEST built on incrementally maintained PPR.
///
/// The paper notes that "EMiGRe depends on the complexity of the
/// Personalised Page Rank computation, and can benefit from optimisation on
/// graph-update computation results" (§5.3, citing Zhang–Lofgren–Goel).
/// This tester realizes that optimization: instead of re-running power
/// iteration per candidate, it keeps a counterfactual graph view with a
/// `DynamicForwardPush` state for the user and, per TEST, (1) edits the
/// user's out-edges, (2) locally repairs the push invariant, (3) reads the
/// counterfactual ranking off the maintained estimates, (4) reverts. Every
/// candidate's edits are rooted at the user, so each TEST costs two
/// single-row repairs instead of a full recomputation.
///
/// Engine selection (`PprOptions::engine`):
///  - `kKernel` (default): the graph view is a `CsrOverlay` over a CSR
///    snapshot (shared from the facade or built once here), the dynamic
///    push repairs through a reusable `PushWorkspace` (O(row + pushes) per
///    TEST), and the eligible-item filter uses the workspace's epoch marks.
///    `Clear()`-based reverts keep the adjacency iteration order fixed
///    across candidates.
///  - `kFast`: same overlay/workspace machinery as kKernel, but the
///    repairs refine highest-|residual|-first on the workspace's priority
///    frontier (not bitwise identical to the other engines; Eq. 3 bounds
///    the divergence to push noise).
///  - `kLegacy`: the original private mutable `HinGraph` copy with the
///    dense O(n)-per-repair refine — kept as the reference/baseline.
///
/// The estimates are ε-accurate rather than exact: two items whose true
/// scores differ by less than ~ε may be mis-ordered, so a verification can
/// differ from the exact `ExplanationTester` on near-ties. Use a tight
/// `PprOptions::epsilon` (default 2.7e-8 already is) and re-verify with the
/// exact tester where a guarantee is required (the evaluation runner does).
///
/// Tie-breaking contract: `CurrentTopLegacy`/`CurrentTopKernel` rank by
/// (score descending, node id ascending) with sub-noise scores floored to
/// zero, so EXACT ties resolve to the lowest item id on every engine —
/// the ordering never depends on touch order, adjacency order, or the push
/// schedule. This is what keeps kLegacy/kKernel/kFast verdicts identical
/// on crafted equal-score items even though kFast's float noise pattern
/// differs (see explain_fast_tester_test.cc).
class FastExplanationTester : public TesterInterface {
 public:
  /// Legacy engine: copies `base` once (O(V+E)) and runs the initial push.
  /// Kernel engine: snapshots `base` to CSR (or reuses `csr` when the
  /// caller already holds a snapshot of the same graph) and runs the
  /// initial push through the workspace.
  FastExplanationTester(const graph::HinGraph& base, graph::NodeId user,
                        graph::NodeId why_not_item, const EmigreOptions& opts,
                        const graph::CsrGraph* csr = nullptr);

  bool Test(const std::vector<graph::EdgeRef>& edits, Mode mode,
            graph::NodeId* new_rec = nullptr) override;

  bool TestMixed(const std::vector<ModedEdit>& edits,
                 graph::NodeId* new_rec = nullptr) override;

  size_t num_tests() const override { return num_tests_; }
  bool IsExact() const override { return false; }

 private:
  /// Applies the edits, reads the top item, reverts. Returns false for
  /// malformed candidates.
  bool RunOnce(const std::vector<ModedEdit>& edits, graph::NodeId* new_rec);
  bool RunOnceLegacy(const std::vector<ModedEdit>& edits,
                     graph::NodeId* new_rec);
  bool RunOnceKernel(const std::vector<ModedEdit>& edits,
                     graph::NodeId* new_rec);

  /// Reconstructs the counterfactual view and dynamic-push state from the
  /// base graph after a deadline unwind left them mid-repair (stale_).
  /// Throws `DeadlineExceededError` itself while the deadline stays
  /// expired, leaving stale_ set for the next attempt.
  void Rebuild();

  /// Argmax of the maintained estimates over eligible items (legacy view).
  graph::NodeId CurrentTopLegacy() const;
  /// Same, over the overlay view with the workspace mark bitmap.
  graph::NodeId CurrentTopKernel();

  const graph::HinGraph* base_;  ///< for Rebuild() after a deadline unwind
  graph::NodeId user_;
  graph::NodeId wni_;
  EmigreOptions opts_;
  std::vector<graph::NodeId> items_;  ///< all item-typed nodes
  size_t num_tests_ = 0;
  /// A deadline unwound a TEST mid-repair: the dynamic-push state (and, in
  /// the legacy engine, the scratch graph) no longer satisfy the invariant
  /// and must be rebuilt before the next TEST.
  bool stale_ = false;

  // Legacy engine state.
  std::unique_ptr<graph::HinGraph> scratch_;
  std::unique_ptr<ppr::DynamicForwardPush<graph::HinGraph>> dyn_;

  // Kernel engine state.
  std::unique_ptr<graph::CsrGraph> owned_csr_;
  std::unique_ptr<graph::CsrOverlay> overlay_;
  ppr::PushWorkspace ws_;
  std::unique_ptr<ppr::DynamicForwardPush<graph::CsrOverlay>> dyn_kernel_;
};

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_FAST_TESTER_H_
