#ifndef EMIGRE_EXPLAIN_FAST_TESTER_H_
#define EMIGRE_EXPLAIN_FAST_TESTER_H_

#include <memory>
#include <vector>

#include "explain/tester.h"
#include "graph/csr.h"
#include "graph/csr_overlay.h"
#include "graph/hin_graph.h"
#include "graph/materialize.h"
#include "ppr/dynamic.h"
#include "ppr/workspace.h"

namespace emigre::explain {

namespace detail {

/// Deterministic argmax shared by every engine: score descending, id
/// ascending on ties, with sub-noise scores floored to zero.
///
/// Signed-residual repairs can leave O(ε)-sized positive estimates on nodes
/// whose true score is exactly zero; the exact tester breaks such all-zero
/// ties by node id. Flooring restores that tie-break: anything below the
/// push noise level counts as unreachable.
///
/// The `item < best` comparison is the enforced index-ascending tie-break
/// of the class contract: on exactly equal scores the lowest item id wins
/// no matter what order `items` arrives in or which push engine produced
/// the scores, so kLegacy/kKernel/kFast agree on exact ties by
/// construction rather than by touch order.
template <typename Eligible, typename Score>
graph::NodeId BestItem(const std::vector<graph::NodeId>& items,
                       graph::NodeId user, double floor, Eligible&& eligible,
                       Score&& score_of) {
  graph::NodeId best = graph::kInvalidNode;
  double best_score = -1.0;
  for (graph::NodeId item : items) {
    if (item == user || !eligible(item)) continue;
    double score = score_of(item);
    if (score < floor) score = 0.0;
    // Same deterministic ordering as RecommendationList: score descending,
    // id ascending on ties.
    if (score > best_score || (score == best_score && item < best)) {
      best = item;
      best_score = score;
    }
  }
  return best;
}

}  // namespace detail

/// \brief Approximate TEST built on incrementally maintained PPR.
///
/// The paper notes that "EMiGRe depends on the complexity of the
/// Personalised Page Rank computation, and can benefit from optimisation on
/// graph-update computation results" (§5.3, citing Zhang–Lofgren–Goel).
/// This tester realizes that optimization: instead of re-running power
/// iteration per candidate, it keeps a counterfactual graph view with a
/// `DynamicForwardPush` state for the user and, per TEST, (1) edits the
/// user's out-edges, (2) locally repairs the push invariant, (3) reads the
/// counterfactual ranking off the maintained estimates, (4) reverts. Every
/// candidate's edits are rooted at the user, so each TEST costs two
/// single-row repairs instead of a full recomputation.
///
/// Engine selection (`PprOptions::engine`):
///  - `kKernel` (default): the graph view is a `CsrOverlay` over a CSR
///    snapshot (shared from the facade or built once here), the dynamic
///    push repairs through a reusable `PushWorkspace` (O(row + pushes) per
///    TEST), and the eligible-item filter uses the workspace's epoch marks.
///    `Clear()`-based reverts keep the adjacency iteration order fixed
///    across candidates.
///  - `kFast`: same overlay/workspace machinery as kKernel, but the
///    repairs refine highest-|residual|-first on the workspace's priority
///    frontier (not bitwise identical to the other engines; Eq. 3 bounds
///    the divergence to push noise).
///  - `kLegacy`: the original private mutable `HinGraph` copy with the
///    dense O(n)-per-repair refine — kept as the reference/baseline. On a
///    non-HinGraph base (an mmap-backed `CsrSnapshotView`) the scratch
///    copy is materialized from the view (graph/materialize.h).
///
/// The estimates are ε-accurate rather than exact: two items whose true
/// scores differ by less than ~ε may be mis-ordered, so a verification can
/// differ from the exact `ExplanationTester` on near-ties. Use a tight
/// `PprOptions::epsilon` (default 2.7e-8 already is) and re-verify with the
/// exact tester where a guarantee is required (the evaluation runner does).
///
/// Tie-breaking contract: `CurrentTopLegacy`/`CurrentTopKernel` rank by
/// (score descending, node id ascending) with sub-noise scores floored to
/// zero, so EXACT ties resolve to the lowest item id on every engine —
/// the ordering never depends on touch order, adjacency order, or the push
/// schedule. This is what keeps kLegacy/kKernel/kFast verdicts identical
/// on crafted equal-score items even though kFast's float noise pattern
/// differs (see explain_fast_tester_test.cc).
template <typename G>
class FastExplanationTesterT : public TesterInterface {
 public:
  /// Legacy engine: copies/materializes `base` once (O(V+E)) and runs the
  /// initial push. Kernel engine: snapshots `base` to CSR (or reuses `csr`
  /// when the caller already holds a snapshot of the same graph) and runs
  /// the initial push through the workspace.
  FastExplanationTesterT(const G& base, graph::NodeId user,
                         graph::NodeId why_not_item, const EmigreOptions& opts,
                         const graph::CsrGraph* csr = nullptr)
      : base_(&base),
        user_(user),
        wni_(why_not_item),
        opts_(opts),
        items_(base.NodesOfType(opts.rec.item_type)) {
    if (opts_.rec.ppr.engine != ppr::PushEngine::kLegacy) {
      const graph::CsrGraph* snapshot = csr;
      if (snapshot == nullptr) {
        owned_csr_ = std::make_unique<graph::CsrGraph>(base, 0);
        snapshot = owned_csr_.get();
      }
      overlay_ = std::make_unique<graph::CsrOverlay>(*snapshot);
      dyn_kernel_ =
          std::make_unique<ppr::DynamicForwardPush<graph::CsrOverlay>>(
              *overlay_, user, opts_.rec.ppr, &ws_);
    } else {
      scratch_ = graph::MaterializeHinGraph(base);
      dyn_ = std::make_unique<ppr::DynamicForwardPush<graph::HinGraph>>(
          *scratch_, user, opts_.rec.ppr);
    }
  }

  bool Test(const std::vector<graph::EdgeRef>& edits, Mode mode,
            graph::NodeId* new_rec = nullptr) override {
    std::vector<ModedEdit> moded;
    moded.reserve(edits.size());
    for (const graph::EdgeRef& e : edits) moded.push_back(ModedEdit{e, mode});
    return RunOnce(moded, new_rec);
  }

  bool TestMixed(const std::vector<ModedEdit>& edits,
                 graph::NodeId* new_rec = nullptr) override {
    return RunOnce(edits, new_rec);
  }

  size_t num_tests() const override { return num_tests_; }
  bool IsExact() const override { return false; }

 private:
  /// Applies the edits, reads the top item, reverts. Returns false for
  /// malformed candidates.
  bool RunOnce(const std::vector<ModedEdit>& edits, graph::NodeId* new_rec) {
    EMIGRE_SPAN("test.dynamic");
    EMIGRE_COUNTER("explain.tests.dynamic").Increment();
    ++num_tests_;
    try {
      if (stale_) Rebuild();
      if (dyn_kernel_ != nullptr) return RunOnceKernel(edits, new_rec);
      return RunOnceLegacy(edits, new_rec);
    } catch (const DeadlineExceededError&) {
      // The query deadline fired inside a repair push, unwinding
      // mid-protocol: mark the state stale so the next TEST (if any — the
      // search budget normally exits first) rebuilds from the base graph.
      // While the deadline stays expired the rebuild itself throws
      // immediately, keeping post-deadline TESTs O(1).
      EMIGRE_COUNTER("explain.tests.dynamic.deadline").Increment();
      stale_ = true;
      if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
      return false;
    }
  }

  bool RunOnceLegacy(const std::vector<ModedEdit>& edits,
                     graph::NodeId* new_rec) {
    // All explanation edits are rooted at the user (Definition 4.2), so a
    // single Before/After pair around the whole batch repairs the one
    // affected transition row.
    struct AppliedEdit {
      ModedEdit edit;
      double removed_weight = 0.0;  // original weight, for reverting removals
    };
    std::vector<AppliedEdit> applied;
    applied.reserve(edits.size());
    dyn_->BeforeOutEdgeChange(user_);
    bool ok = true;
    for (const ModedEdit& e : edits) {
      if (e.edge.src != user_) {
        ok = false;  // foreign-rooted edit: not supported by the fast path
        break;
      }
      Status st;
      double removed_weight = 0.0;
      if (e.mode == Mode::kAdd) {
        st = scratch_->AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                               opts_.add_edge_weight);
      } else {
        removed_weight =
            scratch_->EdgeWeight(e.edge.src, e.edge.dst, e.edge.type);
        st = scratch_->RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
      }
      if (!st.ok()) {
        ok = false;
        break;
      }
      applied.push_back(AppliedEdit{e, removed_weight});
    }

    graph::NodeId top = graph::kInvalidNode;
    if (ok) {
      dyn_->AfterOutEdgeChange(user_);
      top = CurrentTopLegacy();
      // Revert, repairing the invariant again.
      dyn_->BeforeOutEdgeChange(user_);
    }
    for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
      if (it->edit.mode == Mode::kAdd) {
        scratch_
            ->RemoveEdge(it->edit.edge.src, it->edit.edge.dst,
                         it->edit.edge.type)
            .CheckOK();
      } else {
        scratch_
            ->AddEdge(it->edit.edge.src, it->edit.edge.dst,
                      it->edit.edge.type, it->removed_weight)
            .CheckOK();
      }
    }
    dyn_->AfterOutEdgeChange(user_);

    if (new_rec != nullptr) *new_rec = ok ? top : graph::kInvalidNode;
    return ok && top == wni_;
  }

  bool RunOnceKernel(const std::vector<ModedEdit>& edits,
                     graph::NodeId* new_rec) {
    // Same Before/edit/After/revert protocol as the legacy engine, but the
    // counterfactual lives in a CsrOverlay: reverting is a Clear() (which
    // also restores the base adjacency order — a mutated HinGraph cannot),
    // and the repair pushes run on the reusable workspace.
    dyn_kernel_->BeforeOutEdgeChange(user_);
    bool ok = true;
    for (const ModedEdit& e : edits) {
      if (e.edge.src != user_) {
        ok = false;  // foreign-rooted edit: not supported by the fast path
        break;
      }
      Status st;
      if (e.mode == Mode::kAdd) {
        st = overlay_->AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                               opts_.add_edge_weight);
      } else {
        st = overlay_->RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
      }
      if (!st.ok()) {
        ok = false;
        break;
      }
    }

    graph::NodeId top = graph::kInvalidNode;
    if (ok) {
      dyn_kernel_->AfterOutEdgeChange(user_);
      top = CurrentTopKernel();
      // Revert, repairing the invariant again.
      dyn_kernel_->BeforeOutEdgeChange(user_);
    }
    overlay_->Clear();
    dyn_kernel_->AfterOutEdgeChange(user_);

    if (new_rec != nullptr) *new_rec = ok ? top : graph::kInvalidNode;
    return ok && top == wni_;
  }

  /// Reconstructs the counterfactual view and dynamic-push state from the
  /// base graph after a deadline unwind left them mid-repair (stale_).
  /// Throws `DeadlineExceededError` itself while the deadline stays
  /// expired, leaving stale_ set for the next attempt.
  void Rebuild() {
    if (overlay_ != nullptr) {
      // Kernel engine: dropping the overlay edits restores the base view;
      // the fresh initial push overwrites the half-repaired workspace state.
      overlay_->Clear();
      dyn_kernel_ =
          std::make_unique<ppr::DynamicForwardPush<graph::CsrOverlay>>(
              *overlay_, user_, opts_.rec.ppr, &ws_);
    } else {
      // Legacy engine: the scratch graph may hold unreverted edits — recopy.
      scratch_ = graph::MaterializeHinGraph(*base_);
      dyn_ = std::make_unique<ppr::DynamicForwardPush<graph::HinGraph>>(
          *scratch_, user_, opts_.rec.ppr);
    }
    stale_ = false;
  }

  /// Argmax of the maintained estimates over eligible items (legacy view).
  graph::NodeId CurrentTopLegacy() const {
    const double floor = opts_.rec.ppr.epsilon * 100.0;
    return detail::BestItem(
        items_, user_, floor,
        [&](graph::NodeId item) { return !scratch_->HasEdge(user_, item); },
        [&](graph::NodeId item) { return dyn_->Estimate(item); });
  }

  /// Same, over the overlay view with the workspace mark bitmap.
  graph::NodeId CurrentTopKernel() {
    // O(deg) epoch marks over the user's effective out-neighborhood replace
    // the legacy per-item HasEdge probes. The marks share the epoch of the
    // repair that just ran and stay valid until the next one.
    overlay_->ForEachOutEdge(
        user_,
        [&](graph::NodeId dst, graph::EdgeTypeId, double) { ws_.Mark(dst); });
    const double floor = opts_.rec.ppr.epsilon * 100.0;
    return detail::BestItem(
        items_, user_, floor,
        [&](graph::NodeId item) { return !ws_.Marked(item); },
        [&](graph::NodeId item) { return dyn_kernel_->Estimate(item); });
  }

  const G* base_;  ///< for Rebuild() after a deadline unwind
  graph::NodeId user_;
  graph::NodeId wni_;
  EmigreOptions opts_;
  std::vector<graph::NodeId> items_;  ///< all item-typed nodes
  size_t num_tests_ = 0;
  /// A deadline unwound a TEST mid-repair: the dynamic-push state (and, in
  /// the legacy engine, the scratch graph) no longer satisfy the invariant
  /// and must be rebuilt before the next TEST.
  bool stale_ = false;

  // Legacy engine state.
  std::unique_ptr<graph::HinGraph> scratch_;
  std::unique_ptr<ppr::DynamicForwardPush<graph::HinGraph>> dyn_;

  // Kernel engine state.
  std::unique_ptr<graph::CsrGraph> owned_csr_;
  std::unique_ptr<graph::CsrOverlay> overlay_;
  ppr::PushWorkspace ws_;
  std::unique_ptr<ppr::DynamicForwardPush<graph::CsrOverlay>> dyn_kernel_;
};

/// The classic approximate tester over the in-memory graph.
using FastExplanationTester = FastExplanationTesterT<graph::HinGraph>;

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_FAST_TESTER_H_
