#include "explain/incremental.h"

#include "explain/internal.h"
#include "util/timer.h"

namespace emigre::explain {

Explanation RunIncremental(const SearchSpace& space,
                           TesterInterface& tester,
                           const EmigreOptions& opts) {
  WallTimer timer;
  internal::SearchBudget budget(opts);

  Explanation out;
  out.mode = space.mode;
  out.heuristic = Heuristic::kIncremental;
  out.search_space_size = space.actions.size();

  if (space.actions.empty()) {
    out.failure = FailureReason::kColdStart;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  double gap = space.tau;
  std::vector<graph::EdgeRef> accumulated;

  for (const CandidateAction& action : space.actions) {
    // H is sorted by descending contribution: once we hit a non-positive
    // one, no remaining candidate can help the Why-Not item.
    if (action.contribution <= 0.0) break;
    if (budget.Exhausted(tester.num_tests())) {
      out.failure = FailureReason::kBudgetExceeded;
      out.tests_performed = tester.num_tests();
      out.seconds = timer.ElapsedSeconds();
      return out;
    }
    accumulated.push_back(action.edge);
    gap -= action.contribution;
    ++out.candidates_considered;

    if (gap <= 0.0) {
      graph::NodeId new_rec = graph::kInvalidNode;
      if (tester.Test(accumulated, space.mode, &new_rec)) {
        out.found = true;
        out.verified = tester.IsExact();
        out.edges = accumulated;
        out.new_rec = new_rec;
        out.failure = FailureReason::kNone;
        out.tests_performed = tester.num_tests();
        out.seconds = timer.ElapsedSeconds();
        return out;
      }
    }
  }

  out.failure = FailureReason::kSearchExhausted;
  out.tests_performed = tester.num_tests();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace emigre::explain
