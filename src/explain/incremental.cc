#include "explain/incremental.h"

#include "explain/internal.h"
#include "obs/trace.h"

namespace emigre::explain {

Explanation RunIncremental(const SearchSpace& space,
                           TesterInterface& tester,
                           const EmigreOptions& opts) {
  EMIGRE_SPAN("incremental");
  internal::SearchBudget budget(opts);

  Explanation out;
  out.mode = space.mode;
  out.heuristic = Heuristic::kIncremental;
  out.search_space_size = space.actions.size();
  internal::QueryRecorder recorder(&out, tester);

  if (space.actions.empty()) {
    out.failure = FailureReason::kColdStart;
    return recorder.Finish();
  }

  double gap = space.tau;
  std::vector<graph::EdgeRef> accumulated;

  for (const CandidateAction& action : space.actions) {
    // H is sorted by descending contribution: once we hit a non-positive
    // one, no remaining candidate can help the Why-Not item.
    if (action.contribution <= 0.0) break;
    if (budget.Exhausted(tester.num_tests())) {
      out.failure = FailureReason::kBudgetExceeded;
      if (opts.anytime && !accumulated.empty()) {
        // Anytime degradation: surface the accumulated prefix — the
        // candidate with the smallest remaining gap so far — instead of
        // nothing. Never marked verified; see docs/robustness.md.
        out.found = true;
        out.degraded = true;
        out.verified = false;
        out.edges = accumulated;
        out.degraded_gap = gap > 0.0 ? gap : 0.0;
      }
      return recorder.Finish();
    }
    accumulated.push_back(action.edge);
    gap -= action.contribution;
    ++out.candidates_considered;

    if (gap <= 0.0) {
      graph::NodeId new_rec = graph::kInvalidNode;
      if (tester.Test(accumulated, space.mode, &new_rec)) {
        out.found = true;
        out.verified = tester.IsExact();
        out.edges = accumulated;
        out.new_rec = new_rec;
        out.failure = FailureReason::kNone;
        return recorder.Finish();
      }
    }
  }

  out.failure = FailureReason::kSearchExhausted;
  return recorder.Finish();
}

}  // namespace emigre::explain
