#include "explain/emigre.h"

#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/invariants.h"
#include "fault/fault.h"
#include "explain/brute_force.h"
#include "explain/exhaustive.h"
#include "explain/fast_tester.h"
#include "explain/incremental.h"
#include "explain/parallel_tester.h"
#include "explain/powerset.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "graph/csr_snapshot.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "recsys/recommender.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace emigre::explain {

template <typename G>
recsys::RecommendationList EmigreT<G>::CurrentRanking(
    graph::NodeId user) const {
  return recsys::RankItems(*g_, user, opts_.rec);
}

template <typename G>
Status EmigreT<G>::ValidateQuestion(const WhyNotQuestion& q,
                                    graph::NodeId rec) const {
  if (!g_->IsValidNode(q.user)) {
    return Status::InvalidArgument(StrFormat("invalid user %u", q.user));
  }
  if (!g_->IsValidNode(q.why_not_item)) {
    return Status::InvalidArgument(
        StrFormat("invalid Why-Not item %u", q.why_not_item));
  }
  if (g_->NodeType(q.why_not_item) != opts_.rec.item_type) {
    return Status::InvalidArgument(StrFormat(
        "Why-Not item %u is not an item node", q.why_not_item));
  }
  if (g_->HasEdge(q.user, q.why_not_item)) {
    return Status::InvalidArgument(StrFormat(
        "user %u already interacted with item %u (Definition 4.1 requires "
        "(u, WNI) ∉ E)",
        q.user, q.why_not_item));
  }
  if (q.why_not_item == rec) {
    return Status::InvalidArgument(StrFormat(
        "item %u already is the top recommendation", q.why_not_item));
  }
  return Status::OK();
}

namespace {

/// Fault sites whose fire counts grew between the two FireCounts snapshots.
std::vector<std::pair<std::string, uint64_t>> FaultDelta(
    const std::vector<std::pair<std::string, size_t>>& before,
    const std::vector<std::pair<std::string, size_t>>& after) {
  std::map<std::string, size_t> base(before.begin(), before.end());
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [site, fires] : after) {
    size_t prior = 0;
    if (auto it = base.find(site); it != base.end()) prior = it->second;
    if (fires > prior) out.emplace_back(site, fires - prior);
  }
  return out;
}

}  // namespace

template <typename G>
Result<Explanation> EmigreT<G>::Explain(const WhyNotQuestion& q, Mode mode,
                                        Heuristic heuristic) const {
  // One id per attempt, also inherited by this query's worker threads, so
  // timeline events and the audit record join back to this result.
  const uint64_t query_id = obs::BeginQuery();
  obs::QueryRecord record;
  record.query_id = query_id;
  WallTimer timer;
  std::vector<std::pair<std::string, size_t>> fires_before;
  if (opts_.query_log != nullptr) {
    fires_before = fault::FaultRegistry::Global().FireCounts();
  }
  obs::QueryRecord* record_ptr =
      opts_.query_log != nullptr ? &record : nullptr;

  // Exception boundary of the explain pipeline ("no exceptions cross public
  // API boundaries"): everything thrown below — worker-task failures
  // surfaced as StatusError, injected faults, deadline unwinds that escaped
  // the testers (e.g. during tester construction), stray std exceptions —
  // converts to a Status or a typed FailureReason here.
  Result<Explanation> outcome = [&]() -> Result<Explanation> {
    try {
      EMIGRE_FAULT_POINT("explain.query");
      return ExplainImpl(q, mode, heuristic, record_ptr);
    } catch (const StatusError& e) {
      return e.status();
    } catch (const DeadlineExceededError&) {
      Explanation out;
      out.mode = mode;
      out.heuristic = heuristic;
      out.failure = FailureReason::kBudgetExceeded;
      return out;
    } catch (const std::exception& e) {
      return Status::Internal(std::string("explain pipeline failure: ") +
                              e.what());
    }
  }();
  if (outcome.ok()) outcome->query_id = query_id;

  if (opts_.query_log != nullptr) {
    record.user = q.user;
    record.why_not_item = q.why_not_item;
    record.mode = std::string(ModeName(mode));
    record.heuristic = std::string(HeuristicName(heuristic));
    record.heuristic_chain = {record.mode + "/" + record.heuristic};
    record.deadline_seconds = opts_.deadline_seconds;
    record.max_tests = opts_.max_tests;
    record.test_threads = opts_.test_threads;
    record.tester =
        opts_.tester == TesterKind::kDynamicPush ? "dynamic_push" : "exact";
    record.anytime = opts_.anytime;
    record.seconds = timer.ElapsedSeconds();
    if (outcome.ok()) {
      const Explanation& e = *outcome;
      record.found = e.found;
      record.verified = e.verified;
      record.degraded = e.degraded;
      record.degraded_gap = e.degraded_gap;
      record.failure = std::string(FailureReasonName(e.failure));
      record.original_rec = e.original_rec;
      record.new_rec = e.new_rec;
      record.search_space_size = e.search_space_size;
      record.candidates_considered = e.candidates_considered;
      record.tests_performed = e.tests_performed;
      for (const graph::EdgeRef& edge : e.edges) {
        record.edges.push_back({edge.src, edge.dst, edge.type});
      }
    } else {
      record.error = outcome.status().ToString();
      record.failure = std::string(FailureReasonName(
          outcome.status().IsInvalidArgument()
              ? FailureReason::kInvalidQuestion
              : FailureReason::kInternalError));
    }
    record.faults_fired =
        FaultDelta(fires_before, fault::FaultRegistry::Global().FireCounts());
    Status log_status = opts_.query_log->Append(record);
    if (!log_status.ok()) {
      std::fprintf(stderr, "[emigre] query-log append failed: %s\n",
                   log_status.ToString().c_str());
    }
  }
  return outcome;
}

template <typename G>
Result<Explanation> EmigreT<G>::ExplainImpl(const WhyNotQuestion& q, Mode mode,
                                            Heuristic heuristic,
                                            obs::QueryRecord* record) const {
  EMIGRE_SPAN("explain");
  if (check::ShouldCheck(opts_.check_level, check::CheckLevel::kFull)) {
    // The HinGraph validator also cross-checks the type registries; other
    // views (the snapshot) get the structural GraphLike validation.
    if constexpr (std::is_same_v<G, graph::HinGraph>) {
      check::DcheckOk(check::ValidateGraph(*g_), "Emigre::Explain(graph)");
    } else {
      check::DcheckOk(check::ValidateGraphView(*g_), "Emigre::Explain(graph)");
    }
  }
  // Node-id bounds come first: CurrentRanking indexes adjacency by q.user,
  // so an invalid id must be rejected before ranking (caught by ASan).
  if (!g_->IsValidNode(q.user)) {
    return Status::InvalidArgument(StrFormat("invalid user %u", q.user));
  }
  if (!g_->IsValidNode(q.why_not_item)) {
    return Status::InvalidArgument(
        StrFormat("invalid Why-Not item %u", q.why_not_item));
  }
  WallTimer phase_timer;
  recsys::RecommendationList ranking = CurrentRanking(q.user);
  graph::NodeId rec = ranking.Top();
  EMIGRE_RETURN_IF_ERROR(ValidateQuestion(q, rec));
  if (record != nullptr) {
    record->phase_seconds.emplace_back("ranking", phase_timer.ElapsedSeconds());
  }

  phase_timer.Reset();
  EMIGRE_ASSIGN_OR_RETURN(
      SearchSpace space,
      mode == Mode::kRemove
          ? BuildRemoveSearchSpace(*g_, q.user, rec, q.why_not_item, opts_,
                                   ppr_cache_.get())
          : BuildAddSearchSpace(*g_, q.user, rec, q.why_not_item, opts_,
                                ppr_cache_.get()));
  if (record != nullptr) {
    record->phase_seconds.emplace_back("search_space",
                                       phase_timer.ElapsedSeconds());
  }

  // Per-query deadline, propagated cooperatively into the TEST path's PPR
  // loops (push kernels, dynamic repair, power iteration). The ranking and
  // search-space phases above intentionally run without it: their pushes
  // fill the shared cross-query PPR cache, and unwinding one mid-fill would
  // waste work later queries reuse. The Deadline outlives the testers (both
  // live to the end of this scope).
  Deadline deadline(opts_.deadline_seconds);
  deadline.Start();
  EmigreOptions eopts = opts_;
  eopts.rec.ppr.deadline = &deadline;

  // Factory for per-thread testers: each worker of a ParallelTester owns a
  // private overlay/dynamic-push state built by this closure.
  auto make_tester = [this, &q, &eopts]() -> std::unique_ptr<TesterInterface> {
    if (opts_.tester == TesterKind::kDynamicPush) {
      return std::make_unique<FastExplanationTesterT<G>>(
          *g_, q.user, q.why_not_item, eopts, &csr_);
    }
    return std::make_unique<ExplanationTesterT<G>>(*g_, q.user, q.why_not_item,
                                                   eopts, &csr_);
  };
  std::unique_ptr<TesterInterface> tester;
  if (opts_.test_threads != 1) {
    tester = std::make_unique<ParallelTester>(make_tester, opts_.test_threads);
  } else {
    tester = make_tester();
  }

  phase_timer.Reset();
  Explanation result;
  switch (heuristic) {
    case Heuristic::kIncremental:
      result = RunIncremental(space, *tester, opts_);
      break;
    case Heuristic::kPowerset:
      result = RunPowerset(space, *tester, opts_);
      break;
    case Heuristic::kExhaustive:
    case Heuristic::kExhaustiveDirect: {
      // T = the original top-k recommendation list (minus WNI, handled
      // inside), the items the Why-Not item must dominate.
      std::vector<graph::NodeId> targets;
      size_t k = opts_.exhaustive_targets > 0 ? opts_.exhaustive_targets
                                              : ranking.size();
      for (size_t i = 0; i < ranking.size() && targets.size() < k; ++i) {
        targets.push_back(ranking.at(i).item);
      }
      result = RunExhaustive(*g_, space, targets, *tester, opts_,
                             heuristic == Heuristic::kExhaustiveDirect,
                             ppr_cache_.get());
      break;
    }
    case Heuristic::kBruteForce:
      result = RunBruteForce(space, *tester, opts_);
      break;
  }
  if (record != nullptr) {
    record->phase_seconds.emplace_back("heuristic",
                                       phase_timer.ElapsedSeconds());
  }
  result.original_rec = rec;
  // Verified results went through the exact TEST; replaying them must flip
  // the recommendation. Unverified ones (approximate testers, the
  // Exhaustive-direct baseline) may legitimately fail replay — the eval
  // harness measures that, so they are not validated here.
  if (result.found && result.verified &&
      check::ShouldCheck(opts_.check_level, check::CheckLevel::kBasic)) {
    check::DcheckOk(check::ValidateExplanation(*g_, q, result, opts_),
                    "Emigre::Explain(explanation)");
  }
  return result;
}

template <typename G>
Result<Explanation> EmigreT<G>::ExplainAuto(const WhyNotQuestion& q,
                                            Heuristic heuristic) const {
  // §5.4: Remove mode reasons over the user's own history — meaningful when
  // that history exists. Otherwise, and whenever Remove fails (the paper's
  // popular-item cases), fall back to Add mode's wider search space.
  size_t allowed_actions = 0;
  if (g_->IsValidNode(q.user)) {
    g_->ForEachOutEdge(
        q.user, [&](graph::NodeId dst, graph::EdgeTypeId type, double) {
          if (dst != q.user && opts_.IsAllowedEdgeType(type)) {
            ++allowed_actions;
          }
        });
  }
  if (allowed_actions > 0) {
    EMIGRE_ASSIGN_OR_RETURN(Explanation removal,
                            Explain(q, Mode::kRemove, heuristic));
    if (removal.found && !removal.degraded) return removal;
    if (removal.found) {
      // Anytime mode handed back a degraded best-so-far: prefer a real
      // Add-mode explanation if one exists, otherwise keep the degraded
      // removal (better than Add mode's failure or its own degraded
      // candidate, which lacks the Remove-mode contribution ordering).
      EMIGRE_ASSIGN_OR_RETURN(Explanation addition,
                              Explain(q, Mode::kAdd, heuristic));
      if (addition.found && !addition.degraded) return addition;
      return removal;
    }
  }
  return Explain(q, Mode::kAdd, heuristic);
}

// Explicit instantiations: the classic in-memory graph and the mmap-backed
// snapshot view.
template class EmigreT<graph::HinGraph>;
template class EmigreT<graph::CsrSnapshotView>;

}  // namespace emigre::explain
