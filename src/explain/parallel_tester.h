#ifndef EMIGRE_EXPLAIN_PARALLEL_TESTER_H_
#define EMIGRE_EXPLAIN_PARALLEL_TESTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "explain/tester.h"
#include "util/thread_pool.h"

namespace emigre::explain {

/// \brief Parallel TEST engine: fans candidate verification across threads.
///
/// The paper's runtime profile (Table 5, §6.3) is dominated by TEST calls,
/// and §5.3 points at cheaper per-candidate verification as the lever.
/// Candidate overlays are independent — each TEST builds its own
/// `GraphOverlay` (exact tester) or runs on a private scratch graph with
/// dynamic-push state (fast tester) — so a batch of candidates is
/// embarrassingly parallel. This class owns one tester per worker thread,
/// created lazily by a caller-supplied factory, and distributes a batch
/// over an internal `ThreadPool`. With the kernel PPR engine the same
/// factory discipline yields one `PushWorkspace` and one `CsrOverlay` per
/// worker — mutable push state is never shared — while all workers read
/// the same immutable CSR snapshot.
///
/// Determinism contract (docs/parallelism.md):
///  - The accepted candidate is the *lowest-index* success in batch order,
///    identical to a serial front-to-back scan. Workers cooperate through an
///    atomic "best index so far": a candidate above the current best is
///    skipped (counted as cancelled), candidates below it are still tested
///    so an earlier success can displace a later one.
///  - The TEST-count budget is evaluated against the candidate's batch
///    index (what a serial scan would have consumed), not the live shared
///    counter, so parallel and serial runs stop at the same boundary.
///  - `num_tests()` aggregates every worker's TESTs through one atomic, so
///    `QueryRecorder` diagnostics agree with the per-thread testers by
///    construction.
///
/// Wall-clock deadlines remain time-based and can therefore fire at
/// different candidates than a serial run — same as two serial runs on a
/// loaded machine.
///
/// Thread-safety: one ParallelTester serves one search at a time; the
/// serial `Test`/`TestMixed` entry points and `TestBatch` must not be
/// called concurrently with each other. `TestBatch` enforces its half of
/// the contract at runtime: overlapping batches (from two threads, or a
/// batch recursing into itself) abort via `EMIGRE_CHECK` instead of
/// silently sharing the per-slot testers.
class ParallelTester : public TesterInterface {
 public:
  using Factory = std::function<std::unique_ptr<TesterInterface>()>;

  /// `num_threads`: 1 = serial in the calling thread (no pool);
  /// 0 = hardware concurrency. The slot-0 tester is created eagerly (it
  /// answers `IsExact`); the other worker testers are created on first use,
  /// each inside its own worker, so graph copies do not serialize.
  ParallelTester(Factory factory, size_t num_threads);
  ~ParallelTester() override;

  ParallelTester(const ParallelTester&) = delete;
  ParallelTester& operator=(const ParallelTester&) = delete;

  // Single-candidate TESTs (the Incremental heuristic's path) run on the
  // slot-0 tester in the calling thread.
  bool Test(const std::vector<graph::EdgeRef>& edits, Mode mode,
            graph::NodeId* new_rec = nullptr) override;
  bool TestMixed(const std::vector<ModedEdit>& edits,
                 graph::NodeId* new_rec = nullptr) override;

  /// Total TESTs across all worker testers.
  size_t num_tests() const override {
    return num_tests_.load(std::memory_order_relaxed);
  }
  bool IsExact() const override { return exact_; }

  BatchResult TestBatch(const std::vector<std::vector<graph::EdgeRef>>& batch,
                        Mode mode, const BudgetFn& budget = nullptr) override;

  /// Worker count (1 = serial).
  size_t num_threads() const { return num_threads_; }

 private:
  /// The per-thread tester of worker `slot`, created on first use.
  TesterInterface& SlotTester(size_t slot);

  Factory factory_;
  size_t num_threads_;
  bool exact_;
  std::vector<std::unique_ptr<TesterInterface>> testers_;  // one per slot
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads_ == 1
  std::atomic<size_t> num_tests_{0};
  /// True while a `TestBatch` is in flight — the runtime form of the
  /// one-search-at-a-time contract above.
  std::atomic<bool> batch_active_{false};
};

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_PARALLEL_TESTER_H_
