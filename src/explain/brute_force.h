#ifndef EMIGRE_EXPLAIN_BRUTE_FORCE_H_
#define EMIGRE_EXPLAIN_BRUTE_FORCE_H_

#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/search_space.h"
#include "explain/tester.h"

namespace emigre::explain {

/// \brief The brute-force oracle baseline of paper §6.2.
///
/// Enumerates every subset of the candidate action universe in ascending
/// size (lexicographic within a size) and TESTs each one, returning the
/// first success — which is therefore a minimum-size explanation. No
/// contribution model, no pruning. In Remove mode the universe is the
/// user's allowed out-edges (the paper's setting); in Add mode it is the
/// Reverse-Push candidate list, which the paper deems prohibitively large —
/// supported here for completeness but expect the budget caps to trigger.
///
/// Used by the evaluation harness both as the success-rate oracle
/// ("a solution exists at all", Fig. 5) and the explanation-size lower
/// bound (Fig. 6).
Explanation RunBruteForce(const SearchSpace& space, TesterInterface& tester,
                          const EmigreOptions& opts);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_BRUTE_FORCE_H_
