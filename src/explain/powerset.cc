#include "explain/powerset.h"

#include <algorithm>

#include "check/invariants.h"
#include "explain/internal.h"
#include "obs/trace.h"

namespace emigre::explain {

Explanation RunPowerset(const SearchSpace& space, TesterInterface& tester,
                        const EmigreOptions& opts) {
  EMIGRE_SPAN("powerset");
  internal::SearchBudget budget(opts);

  Explanation out;
  out.mode = space.mode;
  out.heuristic = Heuristic::kPowerset;
  out.search_space_size = space.actions.size();
  internal::QueryRecorder recorder(&out, tester);

  // Prune non-positive contributions (paper Alg. 4 lines 3–7); the actions
  // arrive sorted descending, so the positive prefix is contiguous. Then
  // keep only the strongest `max_subset_nodes` for subset enumeration.
  std::vector<CandidateAction> h;
  for (const CandidateAction& a : space.actions) {
    if (a.contribution <= 0.0) break;
    h.push_back(a);
  }
  if (opts.max_subset_nodes > 0 && h.size() > opts.max_subset_nodes) {
    h.resize(opts.max_subset_nodes);
  }
  if (h.empty()) {
    out.failure = FailureReason::kColdStart;
    return recorder.Finish();
  }

  size_t max_size = h.size();
  if (opts.max_explanation_size > 0) {
    max_size = std::min(max_size, opts.max_explanation_size);
  }

  struct Combo {
    double sum;
    std::vector<size_t> indices;
  };

  for (size_t size = 1; size <= max_size; ++size) {
    // Materialize all size-`size` combinations with their contribution sums
    // and visit them in descending-sum order (paper: "ordered by
    // contribution" within a size class).
    std::vector<Combo> combos;
    combos.reserve(internal::BinomialCapped(h.size(), size, 1u << 20));
    internal::ForEachCombination(
        h.size(), size, [&](const std::vector<size_t>& idx) {
          double sum = 0.0;
          for (size_t i : idx) sum += h[i].contribution;
          combos.push_back(Combo{sum, idx});
          return true;
        });
    std::sort(combos.begin(), combos.end(),
              [](const Combo& a, const Combo& b) {
                if (a.sum != b.sum) return a.sum > b.sum;
                return a.indices < b.indices;
              });

    // Sums descend: once a combination cannot close the gap, no later one
    // of the same size can either — the TESTable combos are a prefix, which
    // becomes one verification batch (fanned across threads by a
    // ParallelTester, lowest-index success accepted).
    std::vector<std::vector<graph::EdgeRef>> batch;
    for (const Combo& combo : combos) {
      if (space.tau - combo.sum > 0.0) break;
      std::vector<graph::EdgeRef> edges;
      edges.reserve(combo.indices.size());
      for (size_t i : combo.indices) edges.push_back(h[i].edge);
      batch.push_back(std::move(edges));
    }
    TesterInterface::BatchResult verdict = tester.TestBatch(
        batch, space.mode,
        [&budget](size_t tests) { return budget.Exhausted(tests); });
    if (verdict.Found()) {
      out.candidates_considered += verdict.accepted + 1;
      out.found = true;
      out.verified = tester.IsExact();
      out.edges = std::move(batch[verdict.accepted]);
      out.new_rec = verdict.new_rec;
      out.failure = FailureReason::kNone;
      if (check::ShouldCheck(opts.check_level, check::CheckLevel::kFull)) {
        check::DcheckOk(check::ValidateExplanationInSpace(space, out, opts),
                        "RunPowerset");
      }
      return recorder.Finish();
    }
    if (verdict.BudgetHit()) {
      // The serial loop checked the budget before counting the candidate.
      out.candidates_considered += verdict.budget_index;
      out.failure = FailureReason::kBudgetExceeded;
      if (opts.anytime && verdict.budget_index < batch.size()) {
        // Anytime degradation: the first untested candidate is, by the
        // descending-sum order, the strongest remaining one — exactly what
        // a serial scan would have TESTed next. Deterministic at any thread
        // count because budget_index follows the serial boundary.
        out.found = true;
        out.degraded = true;
        out.verified = false;
        out.edges = batch[verdict.budget_index];
        double sum = combos[verdict.budget_index].sum;
        out.degraded_gap = space.tau - sum > 0.0 ? space.tau - sum : 0.0;
      }
      return recorder.Finish();
    }
    out.candidates_considered += batch.size();
  }

  out.failure = FailureReason::kSearchExhausted;
  return recorder.Finish();
}

}  // namespace emigre::explain
