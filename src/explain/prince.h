#ifndef EMIGRE_EXPLAIN_PRINCE_H_
#define EMIGRE_EXPLAIN_PRINCE_H_

#include <cstddef>
#include <vector>

#include "explain/options.h"
#include "graph/hin_graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace emigre::explain {

/// \brief Result of a PRINCE counterfactual explanation.
///
/// `actions` is the minimal set A* of the user's own edges whose removal
/// replaces the current recommendation with `replacement` (paper
/// Definition 3.2 — any replacement item qualifies, unlike EMiGRe's
/// Why-Not constraint).
struct PrinceResult {
  bool found = false;
  std::vector<graph::EdgeRef> actions;
  graph::NodeId original_rec = graph::kInvalidNode;
  graph::NodeId replacement = graph::kInvalidNode;
  size_t tests_performed = 0;
  double seconds = 0.0;
};

/// \brief Options for the PRINCE baseline.
struct PrinceOptions {
  /// The recommender being explained and the action vocabulary, shared
  /// with EMiGRe for apples-to-apples comparison.
  EmigreOptions emigre;

  /// How many top-ranked items are tried as replacement candidates.
  size_t replacement_candidates = 10;
};

/// \brief PRINCE (Ghazimatin et al., WSDM'20) — the paper's reference [11]
/// and the contrast baseline of its introduction (Fig. 2).
///
/// Explains the *existing* recommendation: finds a minimal set of the
/// user's actions whose removal swaps the top-1 to some other item. For
/// each replacement candidate r* from the top of the ranking, user actions
/// are removed greedily in descending (contribution-to-rec −
/// contribution-to-r*) order — the PRINCE swap-set construction — and the
/// first verified swap wins; the smallest swap set over all candidates is
/// returned.
///
/// Included to demonstrate, as the paper's motivating example does, that a
/// Why explanation does not answer a Why-Not question: PRINCE's replacement
/// item is whatever overtakes `rec`, not the user's item of interest.
[[nodiscard]]
Result<PrinceResult> RunPrince(const graph::HinGraph& g, graph::NodeId user,
                               const PrinceOptions& opts);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_PRINCE_H_
