#ifndef EMIGRE_EXPLAIN_META_H_
#define EMIGRE_EXPLAIN_META_H_

#include <string>

#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/search_space.h"
#include "graph/hin_graph.h"

namespace emigre::explain {

/// \brief A meta-explanation: why no Why-Not explanation exists (paper
/// §6.3's proposed remedy for the low Remove-mode success rate, grounded in
/// the failure taxonomy of §6.4).
struct MetaExplanation {
  FailureReason reason = FailureReason::kNone;
  /// Human-readable account ("the recommended item is popular beyond your
  /// actions' influence...").
  std::string message;
};

/// \brief Categorizes a failed explanation attempt.
///
/// Diagnoses, in order:
///  - *Cold start / less active user* (§6.4): the search space H is empty —
///    the user has no (allowed) actions to reason over.
///  - *Popular item* (§6.4): by the contribution model, even applying every
///    helpful candidate leaves the rec-vs-WNI gap positive: the
///    recommendation's score is carried by other users' actions, which the
///    privacy-preserving action vocabulary cannot touch.
///  - *Out of scope* (§6.4): single-mode search failed, but the candidates
///    suggest the combined Add/Remove mode (see combined.h) could succeed.
/// Falls back to restating the recorded failure reason otherwise.
///
/// Generic over the graph backing (`HinGraph` or `CsrSnapshotView`);
/// explicitly instantiated in meta.cc.
template <typename G>
MetaExplanation DiagnoseFailure(const G& g, const SearchSpace& space,
                                const Explanation& failed,
                                const EmigreOptions& opts);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_META_H_
