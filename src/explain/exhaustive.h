#ifndef EMIGRE_EXPLAIN_EXHAUSTIVE_H_
#define EMIGRE_EXPLAIN_EXHAUSTIVE_H_

#include <vector>

#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "graph/csr.h"
#include "graph/hin_graph.h"
#include "ppr/cache.h"

namespace emigre::explain {

/// \brief Algorithm 5 — *Exhaustive Comparison*.
///
/// The top-1 heuristics only compare the Why-Not item against the current
/// recommendation; a candidate that dethrones `rec` may still lose to some
/// third item. The Exhaustive Comparison scores every candidate action
/// against *every* target item t ∈ T (the original top-k recommendation
/// list) via a contribution matrix C, computes per-target switching
/// thresholds
///   Threshold(t) = Σ_{n ∈ N_out(u)} C_{n,t}                        (Eq. 7)
/// and keeps exactly the combinations whose summed contributions beat the
/// threshold in every column — i.e. the gap estimate says WNI overtakes all
/// of T at once. Surviving candidates are verified by TEST in ascending
/// size order (set `direct = true` to skip TEST, the paper's
/// "Exhaustive-direct" baseline that trades ≈33% success rate for speed).
///
/// `targets` is T: the items WNI must dominate (the facade passes the
/// original top-k list minus WNI itself). No sign pruning is applied to C —
/// a candidate that hurts WNI vs. rec can still help against another target
/// (paper §5.2.2).
///
/// Generic over the base graph `G` (`HinGraph` or an mmap-backed
/// `CsrSnapshotView`); explicitly instantiated in exhaustive.cc.
template <typename G>
Explanation RunExhaustive(
    const G& g, const SearchSpace& space,
    const std::vector<graph::NodeId>& targets, TesterInterface& tester,
    const EmigreOptions& opts, bool direct,
    ppr::ReversePushCache<graph::CsrGraph>* cache = nullptr);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_EXHAUSTIVE_H_
