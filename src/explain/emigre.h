#ifndef EMIGRE_EXPLAIN_EMIGRE_H_
#define EMIGRE_EXPLAIN_EMIGRE_H_

#include <memory>
#include <utility>

#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/csr.h"
#include "graph/hin_graph.h"
#include "ppr/cache.h"
#include "recsys/rec_list.h"
#include "util/result.h"

namespace emigre::explain {

/// \brief The EMiGRe framework facade (paper Fig. 3).
///
/// Wires the full pipeline for one Why-Not question: validate the question
/// (Definition 4.1) → run the recommender → build the mode's search space
/// (Algorithm 1 or 2) → compute the explanation with the selected heuristic
/// (Algorithms 3/4/5 or a baseline) → return the explanation with
/// diagnostics.
///
/// Generic over the base graph `G`: the classic in-memory `HinGraph` (the
/// `Emigre` alias) or an mmap-backed `graph::CsrSnapshotView`, which serves
/// the same pipeline straight off a snapshot file without materializing a
/// mutable graph. Explicitly instantiated for both in emigre.cc.
///
/// Thread-safety: the engine is immutable after construction and holds only
/// a reference to the graph; concurrent `Explain` calls are safe as long as
/// the graph is not mutated.
///
/// ```
/// explain::EmigreOptions opts;
/// opts.rec.item_type = g.FindNodeType("item");
/// opts.add_edge_type = g.FindEdgeType("rated");
/// opts.allowed_edge_types = {g.FindEdgeType("rated")};
/// explain::Emigre engine(g, opts);
/// auto result = engine.Explain({user, missing_item}, explain::Mode::kAdd,
///                              explain::Heuristic::kIncremental);
/// ```
template <typename G>
class EmigreT {
 public:
  /// `g` must outlive the engine — and must not be mutated while the
  /// engine exists (the engine caches PPR vectors computed on it and keeps
  /// a CSR snapshot of it).
  EmigreT(const G& g, EmigreOptions opts)
      : g_(&g),
        opts_(std::move(opts)),
        csr_(MakeCsr(g)),
        ppr_cache_(std::make_unique<ppr::ReversePushCache<graph::CsrGraph>>(
            csr_, opts_.rec.ppr)) {}

  /// Computes a Why-Not explanation for `q` using the given mode and
  /// heuristic. Fails with InvalidArgument when `q` violates Definition 4.1
  /// (WNI not an item, already interacted with, or already the top
  /// recommendation). A valid question that admits no explanation returns
  /// an Explanation with `found == false` and a `FailureReason`.
  ///
  /// This is also the pipeline's exception boundary: infrastructure
  /// failures below it (a `StatusError` from a worker task, any stray
  /// exception) come back as an error Status, never as a thrown exception;
  /// a query-deadline unwind comes back as a `kBudgetExceeded` Explanation.
  /// With `EmigreOptions::anytime` set, budget expiry returns the
  /// best-so-far candidate flagged `degraded` (docs/robustness.md).
  [[nodiscard]] Result<Explanation> Explain(const WhyNotQuestion& q, Mode mode,
                              Heuristic heuristic) const;

  /// Paper §5.4 "Choice of the Method": runs Remove mode first when the
  /// user has existing actions to reason about, then falls back to Add
  /// mode (whose search space is independent of the user's history).
  [[nodiscard]] Result<Explanation> ExplainAuto(
      const WhyNotQuestion& q,
      Heuristic heuristic = Heuristic::kIncremental) const;

  /// The recommender's current full ranking for `user` (Eq. 2 candidates).
  recsys::RecommendationList CurrentRanking(graph::NodeId user) const;

  const EmigreOptions& options() const { return opts_; }
  const G& graph() const { return *g_; }

  /// Checks Definition 4.1 for (user, wni): wni is an item node, has no
  /// edge from the user, and differs from the current recommendation `rec`.
  [[nodiscard]]
  Status ValidateQuestion(const WhyNotQuestion& q, graph::NodeId rec) const;

  /// Cache statistics (diagnostics; shared across Explain calls).
  const ppr::ReversePushCache<graph::CsrGraph>& ppr_cache() const {
    return *ppr_cache_;
  }

  /// The engine's CSR snapshot of the graph (shared with the testers).
  const graph::CsrGraph& csr() const { return csr_; }

 private:
  /// The engine's CSR form of `g`: an mmap-backed view already carries one
  /// (`g.csr()` — sharing it aliases the mapping, no copy of the columns);
  /// any other GraphLike is snapshotted once here.
  static graph::CsrGraph MakeCsr(const G& g) {
    if constexpr (requires { g.csr(); }) {
      return g.csr();
    } else {
      return graph::CsrGraph(g, 0);
    }
  }

  /// The pipeline body; may throw (deadline unwinds, worker-task errors).
  /// `Explain` wraps it in the exception boundary. `record`, when non-null,
  /// collects per-phase wall times for the audit log.
  [[nodiscard]] Result<Explanation> ExplainImpl(const WhyNotQuestion& q,
                                                Mode mode, Heuristic heuristic,
                                                obs::QueryRecord* record) const;

  const G* g_;
  EmigreOptions opts_;
  // CSR snapshot of *g_, built (or aliased) once per engine: the PPR cache
  // pushes over it and every kernel-engine tester lays its CsrOverlay on
  // it, so no Explain call pays the O(V+E) snapshot cost.
  graph::CsrGraph csr_;
  // Reverse-push vectors are pure functions of (graph, target); shared
  // across questions and across the per-question phases. The cache is
  // internally synchronized, keeping concurrent Explain calls safe.
  std::unique_ptr<ppr::ReversePushCache<graph::CsrGraph>> ppr_cache_;
};

/// The classic facade over the in-memory graph.
using Emigre = EmigreT<graph::HinGraph>;

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_EMIGRE_H_
