#include "explain/fast_tester.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace emigre::explain {

using graph::EdgeRef;
using graph::NodeId;

FastExplanationTester::FastExplanationTester(const graph::HinGraph& base,
                                             NodeId user, NodeId why_not_item,
                                             const EmigreOptions& opts)
    : scratch_(base),
      user_(user),
      wni_(why_not_item),
      opts_(opts),
      dyn_(scratch_, user, opts.rec.ppr),
      items_(scratch_.NodesOfType(opts.rec.item_type)) {}

NodeId FastExplanationTester::CurrentTop() const {
  // Signed-residual repairs can leave O(ε)-sized positive estimates on
  // nodes whose true score is exactly zero; the exact tester breaks such
  // all-zero ties by node id. Flooring restores that tie-break: anything
  // below the push noise level counts as unreachable.
  const double floor = opts_.rec.ppr.epsilon * 100.0;
  NodeId best = graph::kInvalidNode;
  double best_score = -1.0;
  for (NodeId item : items_) {
    if (item == user_ || scratch_.HasEdge(user_, item)) continue;
    double score = dyn_.Estimate(item);
    if (score < floor) score = 0.0;
    // Same deterministic ordering as RecommendationList: score descending,
    // id ascending on ties.
    if (score > best_score ||
        (score == best_score && item < best)) {
      best = item;
      best_score = score;
    }
  }
  return best;
}

bool FastExplanationTester::RunOnce(const std::vector<ModedEdit>& edits,
                                    NodeId* new_rec) {
  EMIGRE_SPAN("test.dynamic");
  EMIGRE_COUNTER("explain.tests.dynamic").Increment();
  ++num_tests_;
  // All explanation edits are rooted at the user (Definition 4.2), so a
  // single Before/After pair around the whole batch repairs the one
  // affected transition row.
  struct AppliedEdit {
    ModedEdit edit;
    double removed_weight = 0.0;  // original weight, for reverting removals
  };
  std::vector<AppliedEdit> applied;
  applied.reserve(edits.size());
  dyn_.BeforeOutEdgeChange(user_);
  bool ok = true;
  for (const ModedEdit& e : edits) {
    if (e.edge.src != user_) {
      ok = false;  // foreign-rooted edit: not supported by the fast path
      break;
    }
    Status st;
    double removed_weight = 0.0;
    if (e.mode == Mode::kAdd) {
      st = scratch_.AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                            opts_.add_edge_weight);
    } else {
      removed_weight =
          scratch_.EdgeWeight(e.edge.src, e.edge.dst, e.edge.type);
      st = scratch_.RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
    }
    if (!st.ok()) {
      ok = false;
      break;
    }
    applied.push_back(AppliedEdit{e, removed_weight});
  }

  NodeId top = graph::kInvalidNode;
  if (ok) {
    dyn_.AfterOutEdgeChange(user_);
    top = CurrentTop();
    // Revert, repairing the invariant again.
    dyn_.BeforeOutEdgeChange(user_);
  }
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    if (it->edit.mode == Mode::kAdd) {
      scratch_
          .RemoveEdge(it->edit.edge.src, it->edit.edge.dst,
                      it->edit.edge.type)
          .CheckOK();
    } else {
      scratch_
          .AddEdge(it->edit.edge.src, it->edit.edge.dst, it->edit.edge.type,
                   it->removed_weight)
          .CheckOK();
    }
  }
  dyn_.AfterOutEdgeChange(user_);

  if (new_rec != nullptr) *new_rec = ok ? top : graph::kInvalidNode;
  return ok && top == wni_;
}

bool FastExplanationTester::Test(const std::vector<EdgeRef>& edits, Mode mode,
                                 NodeId* new_rec) {
  std::vector<ModedEdit> moded;
  moded.reserve(edits.size());
  for (const EdgeRef& e : edits) moded.push_back(ModedEdit{e, mode});
  return RunOnce(moded, new_rec);
}

bool FastExplanationTester::TestMixed(const std::vector<ModedEdit>& edits,
                                      NodeId* new_rec) {
  return RunOnce(edits, new_rec);
}

}  // namespace emigre::explain
