#include "explain/fast_tester.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace emigre::explain {

using graph::EdgeRef;
using graph::NodeId;

namespace {

/// Deterministic argmax shared by every engine: score descending, id
/// ascending on ties, with sub-noise scores floored to zero.
///
/// Signed-residual repairs can leave O(ε)-sized positive estimates on nodes
/// whose true score is exactly zero; the exact tester breaks such all-zero
/// ties by node id. Flooring restores that tie-break: anything below the
/// push noise level counts as unreachable.
///
/// The `item < best` comparison is the enforced index-ascending tie-break
/// of the class contract: on exactly equal scores the lowest item id wins
/// no matter what order `items` arrives in or which push engine produced
/// the scores, so kLegacy/kKernel/kFast agree on exact ties by
/// construction rather than by touch order.
template <typename Eligible, typename Score>
NodeId BestItem(const std::vector<NodeId>& items, NodeId user, double floor,
                Eligible&& eligible, Score&& score_of) {
  NodeId best = graph::kInvalidNode;
  double best_score = -1.0;
  for (NodeId item : items) {
    if (item == user || !eligible(item)) continue;
    double score = score_of(item);
    if (score < floor) score = 0.0;
    // Same deterministic ordering as RecommendationList: score descending,
    // id ascending on ties.
    if (score > best_score || (score == best_score && item < best)) {
      best = item;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

FastExplanationTester::FastExplanationTester(const graph::HinGraph& base,
                                             NodeId user, NodeId why_not_item,
                                             const EmigreOptions& opts,
                                             const graph::CsrGraph* csr)
    : base_(&base),
      user_(user),
      wni_(why_not_item),
      opts_(opts),
      items_(base.NodesOfType(opts.rec.item_type)) {
  if (opts_.rec.ppr.engine != ppr::PushEngine::kLegacy) {
    const graph::CsrGraph* snapshot = csr;
    if (snapshot == nullptr) {
      owned_csr_ = std::make_unique<graph::CsrGraph>(base);
      snapshot = owned_csr_.get();
    }
    overlay_ = std::make_unique<graph::CsrOverlay>(*snapshot);
    dyn_kernel_ = std::make_unique<ppr::DynamicForwardPush<graph::CsrOverlay>>(
        *overlay_, user, opts_.rec.ppr, &ws_);
  } else {
    scratch_ = std::make_unique<graph::HinGraph>(base);
    dyn_ = std::make_unique<ppr::DynamicForwardPush<graph::HinGraph>>(
        *scratch_, user, opts_.rec.ppr);
  }
}

NodeId FastExplanationTester::CurrentTopLegacy() const {
  const double floor = opts_.rec.ppr.epsilon * 100.0;
  return BestItem(
      items_, user_, floor,
      [&](NodeId item) { return !scratch_->HasEdge(user_, item); },
      [&](NodeId item) { return dyn_->Estimate(item); });
}

NodeId FastExplanationTester::CurrentTopKernel() {
  // O(deg) epoch marks over the user's effective out-neighborhood replace
  // the legacy per-item HasEdge probes. The marks share the epoch of the
  // repair that just ran and stay valid until the next one.
  overlay_->ForEachOutEdge(
      user_, [&](NodeId dst, graph::EdgeTypeId, double) { ws_.Mark(dst); });
  const double floor = opts_.rec.ppr.epsilon * 100.0;
  return BestItem(
      items_, user_, floor, [&](NodeId item) { return !ws_.Marked(item); },
      [&](NodeId item) { return dyn_kernel_->Estimate(item); });
}

bool FastExplanationTester::RunOnceLegacy(const std::vector<ModedEdit>& edits,
                                          NodeId* new_rec) {
  // All explanation edits are rooted at the user (Definition 4.2), so a
  // single Before/After pair around the whole batch repairs the one
  // affected transition row.
  struct AppliedEdit {
    ModedEdit edit;
    double removed_weight = 0.0;  // original weight, for reverting removals
  };
  std::vector<AppliedEdit> applied;
  applied.reserve(edits.size());
  dyn_->BeforeOutEdgeChange(user_);
  bool ok = true;
  for (const ModedEdit& e : edits) {
    if (e.edge.src != user_) {
      ok = false;  // foreign-rooted edit: not supported by the fast path
      break;
    }
    Status st;
    double removed_weight = 0.0;
    if (e.mode == Mode::kAdd) {
      st = scratch_->AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                             opts_.add_edge_weight);
    } else {
      removed_weight =
          scratch_->EdgeWeight(e.edge.src, e.edge.dst, e.edge.type);
      st = scratch_->RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
    }
    if (!st.ok()) {
      ok = false;
      break;
    }
    applied.push_back(AppliedEdit{e, removed_weight});
  }

  NodeId top = graph::kInvalidNode;
  if (ok) {
    dyn_->AfterOutEdgeChange(user_);
    top = CurrentTopLegacy();
    // Revert, repairing the invariant again.
    dyn_->BeforeOutEdgeChange(user_);
  }
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    if (it->edit.mode == Mode::kAdd) {
      scratch_
          ->RemoveEdge(it->edit.edge.src, it->edit.edge.dst,
                       it->edit.edge.type)
          .CheckOK();
    } else {
      scratch_
          ->AddEdge(it->edit.edge.src, it->edit.edge.dst, it->edit.edge.type,
                    it->removed_weight)
          .CheckOK();
    }
  }
  dyn_->AfterOutEdgeChange(user_);

  if (new_rec != nullptr) *new_rec = ok ? top : graph::kInvalidNode;
  return ok && top == wni_;
}

bool FastExplanationTester::RunOnceKernel(const std::vector<ModedEdit>& edits,
                                          NodeId* new_rec) {
  // Same Before/edit/After/revert protocol as the legacy engine, but the
  // counterfactual lives in a CsrOverlay: reverting is a Clear() (which
  // also restores the base adjacency order — a mutated HinGraph cannot),
  // and the repair pushes run on the reusable workspace.
  dyn_kernel_->BeforeOutEdgeChange(user_);
  bool ok = true;
  for (const ModedEdit& e : edits) {
    if (e.edge.src != user_) {
      ok = false;  // foreign-rooted edit: not supported by the fast path
      break;
    }
    Status st;
    if (e.mode == Mode::kAdd) {
      st = overlay_->AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                             opts_.add_edge_weight);
    } else {
      st = overlay_->RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
    }
    if (!st.ok()) {
      ok = false;
      break;
    }
  }

  NodeId top = graph::kInvalidNode;
  if (ok) {
    dyn_kernel_->AfterOutEdgeChange(user_);
    top = CurrentTopKernel();
    // Revert, repairing the invariant again.
    dyn_kernel_->BeforeOutEdgeChange(user_);
  }
  overlay_->Clear();
  dyn_kernel_->AfterOutEdgeChange(user_);

  if (new_rec != nullptr) *new_rec = ok ? top : graph::kInvalidNode;
  return ok && top == wni_;
}

void FastExplanationTester::Rebuild() {
  if (overlay_ != nullptr) {
    // Kernel engine: dropping the overlay edits restores the base view; the
    // fresh initial push overwrites the half-repaired workspace state.
    overlay_->Clear();
    dyn_kernel_ = std::make_unique<ppr::DynamicForwardPush<graph::CsrOverlay>>(
        *overlay_, user_, opts_.rec.ppr, &ws_);
  } else {
    // Legacy engine: the scratch graph may hold unreverted edits — recopy.
    scratch_ = std::make_unique<graph::HinGraph>(*base_);
    dyn_ = std::make_unique<ppr::DynamicForwardPush<graph::HinGraph>>(
        *scratch_, user_, opts_.rec.ppr);
  }
  stale_ = false;
}

bool FastExplanationTester::RunOnce(const std::vector<ModedEdit>& edits,
                                    NodeId* new_rec) {
  EMIGRE_SPAN("test.dynamic");
  EMIGRE_COUNTER("explain.tests.dynamic").Increment();
  ++num_tests_;
  try {
    if (stale_) Rebuild();
    if (dyn_kernel_ != nullptr) return RunOnceKernel(edits, new_rec);
    return RunOnceLegacy(edits, new_rec);
  } catch (const DeadlineExceededError&) {
    // The query deadline fired inside a repair push, unwinding mid-protocol:
    // mark the state stale so the next TEST (if any — the search budget
    // normally exits first) rebuilds from the base graph. While the deadline
    // stays expired the rebuild itself throws immediately, keeping
    // post-deadline TESTs O(1).
    EMIGRE_COUNTER("explain.tests.dynamic.deadline").Increment();
    stale_ = true;
    if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
    return false;
  }
}

bool FastExplanationTester::Test(const std::vector<EdgeRef>& edits, Mode mode,
                                 NodeId* new_rec) {
  std::vector<ModedEdit> moded;
  moded.reserve(edits.size());
  for (const EdgeRef& e : edits) moded.push_back(ModedEdit{e, mode});
  return RunOnce(moded, new_rec);
}

bool FastExplanationTester::TestMixed(const std::vector<ModedEdit>& edits,
                                      NodeId* new_rec) {
  return RunOnce(edits, new_rec);
}

}  // namespace emigre::explain
