#ifndef EMIGRE_EXPLAIN_GROUP_H_
#define EMIGRE_EXPLAIN_GROUP_H_

#include <vector>

#include "explain/emigre.h"
#include "explain/explanation.h"
#include "graph/types.h"
#include "util/result.h"

namespace emigre::explain {

/// \brief A coarser-granularity Why-Not question (paper §4: "Why-Not
/// questions can be expressed in different granularities: one item, a set
/// of items, or a category" — left as future work there): "why is none of
/// these items my top recommendation?"
struct WhyNotGroupQuestion {
  graph::NodeId user = graph::kInvalidNode;
  std::vector<graph::NodeId> items;
};

/// \brief Result of a group question: the member that was promoted and the
/// single-item explanation that does it.
struct GroupExplanation {
  bool found = false;
  graph::NodeId promoted_item = graph::kInvalidNode;
  Explanation explanation;
  /// Members skipped because they violate Definition 4.1 for this user
  /// (already interacted with, or already the recommendation).
  std::vector<graph::NodeId> skipped;
  size_t attempts = 0;
};

/// \brief Answers a group Why-Not question: finds an explanation that puts
/// *some* member of the group at the top of the list.
///
/// Members are attempted in current-ranking order (the best-ranked member
/// needs the smallest push); the first member with a verified explanation
/// wins. A member equal to the current recommendation makes the question
/// trivially moot and is reported in `skipped`.
[[nodiscard]] Result<GroupExplanation> ExplainGroup(const Emigre& engine,
                                      const WhyNotGroupQuestion& q, Mode mode,
                                      Heuristic heuristic);

/// Convenience for category-granularity questions: all item nodes linked to
/// `category` via an edge of type `belongs_type`.
std::vector<graph::NodeId> ItemsOfCategory(const graph::HinGraph& g,
                                           graph::NodeId category,
                                           graph::EdgeTypeId belongs_type,
                                           graph::NodeTypeId item_type);

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_GROUP_H_
