#include "explain/format.h"

#include <vector>

#include "graph/csr_snapshot.h"
#include "util/string_util.h"

namespace emigre::explain {

namespace {

/// "A", "A and B", "A, B and C".
std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) {
      out += (i + 1 == names.size()) ? " and " : ", ";
    }
    out += names[i];
  }
  return out;
}

template <typename G>
std::vector<std::string> EdgeTargets(const G& g,
                                     const std::vector<graph::EdgeRef>& edges) {
  std::vector<std::string> names;
  names.reserve(edges.size());
  for (const graph::EdgeRef& e : edges) names.push_back(g.DisplayName(e.dst));
  return names;
}

std::string FailureSentence(FailureReason reason) {
  return StrFormat("No explanation: %s.",
                   std::string(FailureReasonName(reason)).c_str());
}

}  // namespace

template <typename G>
std::string FormatExplanationSentence(const G& g, const Explanation& e) {
  if (!e.found) return FailureSentence(e.failure);
  std::string actions = JoinNames(EdgeTargets(g, e.edges));
  return StrFormat(
      "Had you %s %s, your top recommendation would be %s.",
      e.mode == Mode::kRemove ? "not interacted with" : "interacted with",
      actions.c_str(), g.DisplayName(e.new_rec).c_str());
}

template std::string FormatExplanationSentence<graph::HinGraph>(
    const graph::HinGraph&, const Explanation&);
template std::string FormatExplanationSentence<graph::CsrSnapshotView>(
    const graph::CsrSnapshotView&, const Explanation&);

std::string FormatCombinedSentence(const graph::HinGraph& g,
                                   const CombinedExplanation& e) {
  if (!e.found) return FailureSentence(e.failure);
  std::vector<std::string> parts;
  if (!e.added.empty()) {
    parts.push_back("interacted with " +
                    JoinNames(EdgeTargets(g, e.added)));
  }
  if (!e.removed.empty()) {
    parts.push_back("not interacted with " +
                    JoinNames(EdgeTargets(g, e.removed)));
  }
  return StrFormat("Had you %s, your top recommendation would be %s.",
                   JoinNames(parts).c_str(),
                   g.DisplayName(e.new_rec).c_str());
}

std::string FormatWeightedSentence(const graph::HinGraph& g,
                                   const WeightedExplanation& e) {
  if (!e.found) return FailureSentence(e.failure);
  std::vector<std::string> parts;
  parts.reserve(e.adjustments.size());
  for (const WeightAdjustment& adj : e.adjustments) {
    parts.push_back(StrFormat(
        "rated %s %s (instead of %s)", g.DisplayName(adj.edge.dst).c_str(),
        FormatDouble(adj.new_weight, 2).c_str(),
        FormatDouble(adj.old_weight, 2).c_str()));
  }
  return StrFormat("Had you %s, your top recommendation would be %s.",
                   JoinNames(parts).c_str(),
                   g.DisplayName(e.new_rec).c_str());
}

}  // namespace emigre::explain
