#include "explain/tester.h"

namespace emigre::explain {

TesterInterface::BatchResult TesterInterface::TestBatch(
    const std::vector<std::vector<graph::EdgeRef>>& batch, Mode mode,
    const BudgetFn& budget) {
  // Serial reference semantics: scan front to back, check the budget before
  // each TEST, stop on the first success. ParallelTester reproduces exactly
  // this outcome with worker threads.
  BatchResult result;
  const size_t tests_at_start = num_tests();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (budget && budget(tests_at_start + i)) {
      result.budget_index = i;
      result.cancelled += batch.size() - i;
      return result;
    }
    graph::NodeId new_rec = graph::kInvalidNode;
    ++result.tested;
    if (Test(batch[i], mode, &new_rec)) {
      result.accepted = i;
      result.new_rec = new_rec;
      result.cancelled += batch.size() - i - 1;
      return result;
    }
  }
  return result;
}

}  // namespace emigre::explain
