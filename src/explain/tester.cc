#include "explain/tester.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "recsys/recommender.h"
#include "util/timer.h"

namespace emigre::explain {

TesterInterface::BatchResult TesterInterface::TestBatch(
    const std::vector<std::vector<graph::EdgeRef>>& batch, Mode mode,
    const BudgetFn& budget) {
  // Serial reference semantics: scan front to back, check the budget before
  // each TEST, stop on the first success. ParallelTester reproduces exactly
  // this outcome with worker threads.
  BatchResult result;
  const size_t tests_at_start = num_tests();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (budget && budget(tests_at_start + i)) {
      result.budget_index = i;
      result.cancelled += batch.size() - i;
      return result;
    }
    graph::NodeId new_rec = graph::kInvalidNode;
    ++result.tested;
    if (Test(batch[i], mode, &new_rec)) {
      result.accepted = i;
      result.new_rec = new_rec;
      result.cancelled += batch.size() - i - 1;
      return result;
    }
  }
  return result;
}

void ExplanationTester::EnsureKernelState() {
  if (overlay_ != nullptr) return;
  if (csr_ == nullptr) {
    owned_csr_ = std::make_unique<graph::CsrGraph>(*base_);
    csr_ = owned_csr_.get();
  }
  overlay_ = std::make_unique<graph::CsrOverlay>(*csr_);
}

bool ExplanationTester::RunOnce(const std::vector<ModedEdit>& edits,
                                graph::NodeId* new_rec) {
  EMIGRE_SPAN("test.exact");
  EMIGRE_COUNTER("explain.tests.exact").Increment();
  ++num_tests_;
  try {
    // All engines apply the same edit semantics to an overlay and re-run
    // the same recommender arithmetic; the workspace engines (kKernel,
    // kFast) differ only in state reuse (CSR base arrays, overlay cleared
    // instead of reconstructed, PPR scratch in the workspace), so with the
    // default power-iteration scorer the verdicts are identical across all
    // three engines.
    if (opts_.rec.ppr.engine != ppr::PushEngine::kLegacy) {
      EnsureKernelState();
      overlay_->Clear();
      for (const ModedEdit& e : edits) {
        Status st;
        if (e.mode == Mode::kAdd) {
          st = overlay_->AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                                 opts_.add_edge_weight);
        } else {
          st = overlay_->RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
        }
        if (!st.ok()) {
          // A malformed candidate (duplicate add, missing removal target)
          // can never be a valid explanation.
          if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
          return false;
        }
      }
      graph::NodeId top = recsys::Recommend(*overlay_, user_, opts_.rec, &ws_);
      if (new_rec != nullptr) *new_rec = top;
      return top == wni_;
    }

    graph::GraphOverlay overlay(*base_);
    for (const ModedEdit& e : edits) {
      Status st;
      if (e.mode == Mode::kAdd) {
        st = overlay.AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                             opts_.add_edge_weight);
      } else {
        st = overlay.RemoveEdge(e.edge.src, e.edge.dst, e.edge.type);
      }
      if (!st.ok()) {
        if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
        return false;
      }
    }
    graph::NodeId top = recsys::Recommend(overlay, user_, opts_.rec);
    if (new_rec != nullptr) *new_rec = top;
    return top == wni_;
  } catch (const DeadlineExceededError&) {
    // The query deadline fired inside the counterfactual PPR: the candidate
    // is unverifiable within budget, so it fails. The kernel overlay state
    // self-heals (next TEST starts with Clear()); the search's own budget
    // check exits with kBudgetExceeded right after.
    EMIGRE_COUNTER("explain.tests.exact.deadline").Increment();
    if (new_rec != nullptr) *new_rec = graph::kInvalidNode;
    return false;
  }
}

bool ExplanationTester::Test(const std::vector<graph::EdgeRef>& edits,
                             Mode mode, graph::NodeId* new_rec) {
  std::vector<ModedEdit> moded;
  moded.reserve(edits.size());
  for (const graph::EdgeRef& e : edits) moded.push_back(ModedEdit{e, mode});
  return RunOnce(moded, new_rec);
}

bool ExplanationTester::TestMixed(const std::vector<ModedEdit>& edits,
                                  graph::NodeId* new_rec) {
  return RunOnce(edits, new_rec);
}

}  // namespace emigre::explain
