#include "explain/parallel_tester.h"

#include <thread>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/status.h"

namespace emigre::explain {

ParallelTester::ParallelTester(Factory factory, size_t num_threads)
    : factory_(std::move(factory)) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  testers_.resize(num_threads_);
  testers_[0] = factory_();
  exact_ = testers_[0]->IsExact();
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
}

ParallelTester::~ParallelTester() = default;

TesterInterface& ParallelTester::SlotTester(size_t slot) {
  // Each slot is touched only by the worker that owns it (slot 0 also by
  // the serial entry points, never concurrently with a batch), so lazy
  // creation needs no lock; concurrent creations build distinct testers
  // from the same immutable base graph.
  if (!testers_[slot]) testers_[slot] = factory_();
  return *testers_[slot];
}

bool ParallelTester::Test(const std::vector<graph::EdgeRef>& edits, Mode mode,
                          graph::NodeId* new_rec) {
  num_tests_.fetch_add(1, std::memory_order_relaxed);
  return SlotTester(0).Test(edits, mode, new_rec);
}

bool ParallelTester::TestMixed(const std::vector<ModedEdit>& edits,
                               graph::NodeId* new_rec) {
  num_tests_.fetch_add(1, std::memory_order_relaxed);
  return SlotTester(0).TestMixed(edits, new_rec);
}

TesterInterface::BatchResult ParallelTester::TestBatch(
    const std::vector<std::vector<graph::EdgeRef>>& batch, Mode mode,
    const BudgetFn& budget) {
  // One search at a time (class contract): overlapping batches would share
  // the per-slot testers and corrupt their push state. A comment cannot
  // stop that, a check can — fail fast instead of corrupting results.
  EMIGRE_CHECK(!batch_active_.exchange(true, std::memory_order_acquire))
      << "concurrent TestBatch calls on one ParallelTester";
  struct BatchActiveGuard {
    std::atomic<bool>& active;
    ~BatchActiveGuard() { active.store(false, std::memory_order_release); }
  } batch_guard{batch_active_};

  EMIGRE_COUNTER("explain.parallel.batches").Increment();
  EMIGRE_FAULT_POINT("explain.parallel.batch");
  EMIGRE_HISTOGRAM("explain.parallel.batch_size")
      .Record(static_cast<double>(batch.size()));

  if (num_threads_ == 1 || batch.size() <= 1) {
    BatchResult result = TesterInterface::TestBatch(batch, mode, budget);
    EMIGRE_COUNTER("explain.parallel.cancelled").Increment(result.cancelled);
    return result;
  }

  EMIGRE_SPAN("test.batch");
  const size_t n = batch.size();
  const size_t tests_at_start = num_tests();

  std::atomic<size_t> next{0};
  // Lowest-index success so far; workers skip candidates above it but keep
  // testing below it, so an earlier success can still displace this one.
  std::atomic<size_t> best{kNoIndex};
  // Lowest index at which the budget predicate fired.
  std::atomic<size_t> boundary{kNoIndex};
  std::atomic<size_t> tested{0};
  std::atomic<size_t> cancelled{0};
  // Per-candidate outcome slots; each is written by at most one worker and
  // read only after the pool barrier.
  std::vector<unsigned char> passed(n, 0);
  std::vector<graph::NodeId> new_recs(n, graph::kInvalidNode);

  auto lower_to = [](std::atomic<size_t>& target, size_t value) {
    size_t cur = target.load(std::memory_order_relaxed);
    while (value < cur && !target.compare_exchange_weak(
                              cur, value, std::memory_order_release,
                              std::memory_order_relaxed)) {
    }
  };

  const size_t workers = std::min(num_threads_, n);
  // Workers serve the submitting thread's query: hand its id down so their
  // timeline events and metrics attribute to the right query.
  const uint64_t query_id = obs::CurrentQueryId();
  for (size_t w = 0; w < workers; ++w) {
    pool_->Submit([&, w, query_id] {
      obs::SetCurrentQueryId(query_id);
      TesterInterface& tester = SlotTester(w);
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        if (i > best.load(std::memory_order_acquire) ||
            i >= boundary.load(std::memory_order_acquire)) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // The budget is keyed to the candidate's index — the TESTs a serial
        // scan would have consumed before reaching it — not to the live
        // shared counter, so the stop boundary matches the serial run.
        if (budget && budget(tests_at_start + i)) {
          lower_to(boundary, i);
          cancelled.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        tested.fetch_add(1, std::memory_order_relaxed);
        num_tests_.fetch_add(1, std::memory_order_relaxed);
        graph::NodeId new_rec = graph::kInvalidNode;
        if (tester.Test(batch[i], mode, &new_rec)) {
          passed[i] = 1;
          new_recs[i] = new_rec;
          lower_to(best, i);
        }
      }
    });
  }
  // A failed task (injected fault, non-deadline infrastructure error — the
  // per-thread testers absorb deadline expiry themselves) invalidates the
  // whole batch verdict; surface it to the `Emigre::Explain` exception
  // boundary, which converts it back to a Status.
  Status pool_status = pool_->Wait();
  if (!pool_status.ok()) throw StatusError(pool_status);

  BatchResult result;
  result.tested = tested.load();
  result.cancelled = cancelled.load();
  result.budget_index = boundary.load();
  for (size_t i = 0; i < n; ++i) {
    if (passed[i]) {
      result.accepted = i;
      result.new_rec = new_recs[i];
      break;
    }
  }
  EMIGRE_COUNTER("explain.parallel.cancelled").Increment(result.cancelled);
  return result;
}

}  // namespace emigre::explain
