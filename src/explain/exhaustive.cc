#include "explain/exhaustive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/invariants.h"
#include "explain/internal.h"
#include "graph/csr_snapshot.h"
#include "obs/trace.h"
#include "ppr/reverse_push.h"

namespace emigre::explain {

namespace {

using graph::EdgeRef;
using graph::NodeId;

}  // namespace

template <typename G>
Explanation RunExhaustive(const G& g, const SearchSpace& space,
                          const std::vector<NodeId>& targets,
                          TesterInterface& tester, const EmigreOptions& opts,
                          bool direct,
                          ppr::ReversePushCache<graph::CsrGraph>* cache) {
  EMIGRE_SPAN("exhaustive");
  internal::SearchBudget budget(opts);

  Explanation out;
  out.mode = space.mode;
  out.heuristic =
      direct ? Heuristic::kExhaustiveDirect : Heuristic::kExhaustive;
  out.search_space_size = space.actions.size();
  internal::QueryRecorder recorder(&out, tester);

  // No sign pruning (paper §5.2.2): cap H by |contribution| instead, so
  // strong negative contributors — useful against non-rec targets — stay.
  std::vector<CandidateAction> h = space.actions;
  if (opts.max_subset_nodes > 0 && h.size() > opts.max_subset_nodes) {
    std::sort(h.begin(), h.end(),
              [](const CandidateAction& a, const CandidateAction& b) {
                double fa = std::abs(a.contribution);
                double fb = std::abs(b.contribution);
                if (fa != fb) return fa > fb;
                return a.edge < b.edge;
              });
    h.resize(opts.max_subset_nodes);
  }
  if (h.empty()) {
    out.failure = FailureReason::kColdStart;
    return recorder.Finish();
  }

  // Effective target list: drop WNI and the user's interacted items if any
  // slipped in; keep order (ranking order from the caller).
  std::vector<NodeId> t_list;
  for (NodeId t : targets) {
    if (t != space.wni && t != space.user) t_list.push_back(t);
  }
  if (t_list.empty()) {
    // Nothing dominates WNI per the caller; degenerate but handle: every
    // singleton is a candidate, TEST decides.
    t_list.push_back(space.rec);
  }

  // PPR(·, t) per target. The rec column was already computed during the
  // search-space phase; reuse it. Targets the cache must still compute go
  // through one `GetBatch` call so the kFast engine resolves every miss in
  // a single shared batched traversal.
  const size_t num_targets = t_list.size();
  std::vector<std::vector<double>> ppr_to_t(num_targets);
  std::vector<size_t> cached_idx;
  std::vector<NodeId> cached_targets;
  for (size_t ti = 0; ti < num_targets; ++ti) {
    if (t_list[ti] == space.rec && !space.ppr_to_rec.empty()) {
      ppr_to_t[ti] = space.ppr_to_rec;
    } else if (t_list[ti] == graph::kInvalidNode ||
               !g.IsValidNode(t_list[ti])) {
      ppr_to_t[ti].assign(g.NumNodes(), 0.0);
    } else if (cache != nullptr) {
      cached_idx.push_back(ti);
      cached_targets.push_back(t_list[ti]);
    } else {
      ppr_to_t[ti] = ppr::ReversePush(g, t_list[ti], opts.rec.ppr).estimate;
    }
  }
  if (!cached_targets.empty()) {
    auto columns = cache->GetBatch(cached_targets);
    for (size_t k = 0; k < cached_idx.size(); ++k) {
      ppr_to_t[cached_idx[k]] = columns[k]->ToDense(g.NumNodes());
    }
  }

  // Contribution matrix C (|H| x |T|) and per-target thresholds (Eq. 7).
  // Remove mode: C[j][t] = W(u,n_j)·(PPR(n_j,t) − PPR(n_j,WNI));
  // Add mode:    C[j][t] = w_add ·(PPR(n_j,WNI) − PPR(n_j,t)).
  // A combination S is a candidate iff Σ_{j∈S} C[j][t] > Threshold(t) ∀t,
  // where Threshold(t) is the rec-list gap routed through existing actions.
  std::vector<std::vector<double>> c(h.size(),
                                     std::vector<double>(num_targets, 0.0));
  for (size_t j = 0; j < h.size(); ++j) {
    NodeId n = h[j].edge.dst;
    if (space.mode == Mode::kRemove) {
      double w = g.EdgeWeight(h[j].edge.src, h[j].edge.dst, h[j].edge.type);
      for (size_t ti = 0; ti < num_targets; ++ti) {
        c[j][ti] = w * (ppr_to_t[ti][n] - space.ppr_to_wni[n]);
      }
    } else {
      for (size_t ti = 0; ti < num_targets; ++ti) {
        c[j][ti] =
            opts.add_edge_weight * (space.ppr_to_wni[n] - ppr_to_t[ti][n]);
      }
    }
  }

  std::vector<double> threshold(num_targets, 0.0);
  g.ForEachOutEdge(
      space.user, [&](NodeId dst, graph::EdgeTypeId type, double w) {
        if (dst == space.user || !opts.IsAllowedEdgeType(type)) return;
        for (size_t ti = 0; ti < num_targets; ++ti) {
          threshold[ti] += w * (ppr_to_t[ti][dst] - space.ppr_to_wni[dst]);
        }
      });

  size_t max_size = h.size();
  if (opts.max_explanation_size > 0) {
    max_size = std::min(max_size, opts.max_explanation_size);
  }

  struct Candidate {
    double min_margin;
    std::vector<size_t> indices;
  };

  // Index of each target within t_list, for the Add-mode column skip below.
  std::vector<size_t> target_index_of_node(g.NumNodes(),
                                           std::numeric_limits<size_t>::max());
  for (size_t ti = 0; ti < num_targets; ++ti) {
    if (t_list[ti] != graph::kInvalidNode) {
      target_index_of_node[t_list[ti]] = ti;
    }
  }

  const double slack = opts.exhaustive_margin_slack;
  std::vector<double> sums(num_targets);
  std::vector<char> skip(num_targets, 0);
  for (size_t size = 1; size <= max_size; ++size) {
    std::vector<Candidate> candidates;
    internal::ForEachCombination(
        h.size(), size, [&](const std::vector<size_t>& idx) {
          std::fill(sums.begin(), sums.end(), 0.0);
          std::fill(skip.begin(), skip.end(), 0);
          for (size_t j : idx) {
            for (size_t ti = 0; ti < num_targets; ++ti) sums[ti] += c[j][ti];
            if (space.mode == Mode::kAdd) {
              // Adding (u, t) removes target t from the recommendable set:
              // WNI need not dominate it.
              size_t ti = target_index_of_node[h[j].edge.dst];
              if (ti != std::numeric_limits<size_t>::max()) skip[ti] = 1;
            }
          }
          double min_margin = std::numeric_limits<double>::infinity();
          for (size_t ti = 0; ti < num_targets; ++ti) {
            if (skip[ti]) continue;
            min_margin = std::min(min_margin, sums[ti] - threshold[ti]);
            if (min_margin < -slack) return true;  // rejected, keep going
          }
          candidates.push_back(Candidate{min_margin, idx});
          return true;
        });
    // Most-robust candidates first within this size class.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.min_margin != b.min_margin) {
                  return a.min_margin > b.min_margin;
                }
                return a.indices < b.indices;
              });

    if (direct && !candidates.empty()) {
      // The paper's Exhaustive-direct baseline: report the smallest
      // threshold-passing candidate without verification.
      ++out.candidates_considered;
      std::vector<EdgeRef> edges;
      edges.reserve(candidates.front().indices.size());
      for (size_t j : candidates.front().indices) edges.push_back(h[j].edge);
      out.found = true;
      out.verified = false;
      out.edges = std::move(edges);
      out.failure = FailureReason::kNone;
      return recorder.Finish();
    }

    // Verify this size class as one batch; a ParallelTester fans it across
    // worker threads, accepting the lowest-index success (same candidate a
    // serial scan finds).
    std::vector<std::vector<EdgeRef>> batch;
    batch.reserve(candidates.size());
    for (const Candidate& cand : candidates) {
      std::vector<EdgeRef> edges;
      edges.reserve(cand.indices.size());
      for (size_t j : cand.indices) edges.push_back(h[j].edge);
      batch.push_back(std::move(edges));
    }
    TesterInterface::BatchResult verdict = tester.TestBatch(
        batch, space.mode,
        [&budget](size_t tests) { return budget.Exhausted(tests); });
    if (verdict.Found()) {
      out.candidates_considered += verdict.accepted + 1;
      out.found = true;
      out.verified = tester.IsExact();
      out.edges = std::move(batch[verdict.accepted]);
      out.new_rec = verdict.new_rec;
      out.failure = FailureReason::kNone;
      if (out.verified &&
          check::ShouldCheck(opts.check_level, check::CheckLevel::kFull)) {
        check::DcheckOk(
            check::ValidateExplanation(
                g, WhyNotQuestion{space.user, space.wni}, out, opts),
            "RunExhaustive");
      }
      return recorder.Finish();
    }
    if (verdict.BudgetHit()) {
      // The serial loop counted the candidate it was about to test when the
      // budget fired.
      out.candidates_considered += verdict.budget_index + 1;
      out.failure = FailureReason::kBudgetExceeded;
      if (opts.anytime && verdict.budget_index < batch.size()) {
        // Anytime degradation: the first untested candidate has the widest
        // minimum margin of the remainder (most robust per Eq. 7), i.e. the
        // one closest to a confirmed flip. Deterministic at any thread
        // count because budget_index follows the serial boundary.
        out.found = true;
        out.degraded = true;
        out.verified = false;
        out.edges = batch[verdict.budget_index];
        double margin = candidates[verdict.budget_index].min_margin;
        out.degraded_gap = margin < 0.0 ? -margin : 0.0;
      }
      return recorder.Finish();
    }
    out.candidates_considered += batch.size();
  }

  out.failure = FailureReason::kSearchExhausted;
  return recorder.Finish();
}

// Explicit instantiations: the classic in-memory graph and the mmap-backed
// snapshot view.
template Explanation RunExhaustive<graph::HinGraph>(
    const graph::HinGraph&, const SearchSpace&, const std::vector<NodeId>&,
    TesterInterface&, const EmigreOptions&, bool,
    ppr::ReversePushCache<graph::CsrGraph>*);
template Explanation RunExhaustive<graph::CsrSnapshotView>(
    const graph::CsrSnapshotView&, const SearchSpace&,
    const std::vector<NodeId>&, TesterInterface&, const EmigreOptions&, bool,
    ppr::ReversePushCache<graph::CsrGraph>*);

}  // namespace emigre::explain
