#include "explain/brute_force.h"

#include <algorithm>

#include "check/invariants.h"
#include "explain/internal.h"
#include "obs/trace.h"

namespace emigre::explain {

Explanation RunBruteForce(const SearchSpace& space, TesterInterface& tester,
                          const EmigreOptions& opts) {
  EMIGRE_SPAN("brute_force");
  internal::SearchBudget budget(opts);

  Explanation out;
  out.mode = space.mode;
  out.heuristic = Heuristic::kBruteForce;
  out.search_space_size = space.actions.size();
  internal::QueryRecorder recorder(&out, tester);

  if (space.actions.empty()) {
    out.failure = FailureReason::kColdStart;
    return recorder.Finish();
  }

  // The universe in edge order (not contribution order): brute force is the
  // model-free oracle, so its enumeration must not depend on Eq. 5/6.
  std::vector<graph::EdgeRef> universe;
  universe.reserve(space.actions.size());
  for (const CandidateAction& a : space.actions) universe.push_back(a.edge);
  std::sort(universe.begin(), universe.end());

  size_t max_size = universe.size();
  if (opts.max_explanation_size > 0) {
    max_size = std::min(max_size, opts.max_explanation_size);
  }

  // Combinations are enumerated into fixed-size chunks and each chunk is
  // verified as one batch: a ParallelTester fans the chunk across worker
  // threads and accepts the lowest-index success, so the winning subset is
  // the same one the serial enumeration finds. The chunk size trades
  // cancellation waste (tests past an early success) against fan-out
  // granularity; it is deliberately independent of the thread count so the
  // candidate stream is identical at any parallelism level.
  constexpr size_t kChunk = 128;
  bool budget_hit = false;

  // Verifies the pending chunk; returns false once the search is decided.
  std::vector<std::vector<graph::EdgeRef>> batch;
  auto flush = [&]() {
    if (batch.empty()) return true;
    TesterInterface::BatchResult verdict = tester.TestBatch(
        batch, space.mode,
        [&budget](size_t tests) { return budget.Exhausted(tests); });
    if (verdict.Found()) {
      out.candidates_considered += verdict.accepted + 1;
      out.found = true;
      out.verified = tester.IsExact();
      out.edges = std::move(batch[verdict.accepted]);
      out.new_rec = verdict.new_rec;
      batch.clear();
      return false;
    }
    if (verdict.BudgetHit()) {
      // The serial loop checked the budget before counting the candidate.
      out.candidates_considered += verdict.budget_index;
      budget_hit = true;
      batch.clear();
      return false;
    }
    out.candidates_considered += batch.size();
    batch.clear();
    return true;
  };

  for (size_t size = 1; size <= max_size && !out.found && !budget_hit;
       ++size) {
    bool finished = internal::ForEachCombination(
        universe.size(), size, [&](const std::vector<size_t>& idx) {
          std::vector<graph::EdgeRef> edges;
          edges.reserve(size);
          for (size_t i : idx) edges.push_back(universe[i]);
          batch.push_back(std::move(edges));
          return batch.size() < kChunk || flush();
        });
    if (finished && !flush()) continue;  // tail chunk decided the search
  }

  if (out.found) {
    out.failure = FailureReason::kNone;
    if (check::ShouldCheck(opts.check_level, check::CheckLevel::kFull)) {
      check::DcheckOk(check::ValidateExplanationInSpace(space, out, opts),
                      "RunBruteForce");
    }
  } else if (budget_hit) {
    out.failure = FailureReason::kBudgetExceeded;
  } else {
    out.failure = FailureReason::kSearchExhausted;
  }
  return recorder.Finish();
}

}  // namespace emigre::explain
