#include "explain/brute_force.h"

#include <algorithm>

#include "explain/internal.h"
#include "obs/trace.h"

namespace emigre::explain {

Explanation RunBruteForce(const SearchSpace& space, TesterInterface& tester,
                          const EmigreOptions& opts) {
  EMIGRE_SPAN("brute_force");
  internal::SearchBudget budget(opts);

  Explanation out;
  out.mode = space.mode;
  out.heuristic = Heuristic::kBruteForce;
  out.search_space_size = space.actions.size();
  internal::QueryRecorder recorder(&out, tester);

  if (space.actions.empty()) {
    out.failure = FailureReason::kColdStart;
    return recorder.Finish();
  }

  // The universe in edge order (not contribution order): brute force is the
  // model-free oracle, so its enumeration must not depend on Eq. 5/6.
  std::vector<graph::EdgeRef> universe;
  universe.reserve(space.actions.size());
  for (const CandidateAction& a : space.actions) universe.push_back(a.edge);
  std::sort(universe.begin(), universe.end());

  size_t max_size = universe.size();
  if (opts.max_explanation_size > 0) {
    max_size = std::min(max_size, opts.max_explanation_size);
  }

  bool budget_hit = false;
  for (size_t size = 1; size <= max_size && !out.found && !budget_hit;
       ++size) {
    std::vector<graph::EdgeRef> edges(size);
    internal::ForEachCombination(
        universe.size(), size, [&](const std::vector<size_t>& idx) {
          if (budget.Exhausted(tester.num_tests())) {
            budget_hit = true;
            return false;
          }
          for (size_t i = 0; i < size; ++i) edges[i] = universe[idx[i]];
          ++out.candidates_considered;
          graph::NodeId new_rec = graph::kInvalidNode;
          if (tester.Test(edges, space.mode, &new_rec)) {
            out.found = true;
            out.verified = tester.IsExact();
            out.edges = edges;
            out.new_rec = new_rec;
            return false;
          }
          return true;
        });
  }

  if (out.found) {
    out.failure = FailureReason::kNone;
  } else if (budget_hit) {
    out.failure = FailureReason::kBudgetExceeded;
  } else {
    out.failure = FailureReason::kSearchExhausted;
  }
  return recorder.Finish();
}

}  // namespace emigre::explain
