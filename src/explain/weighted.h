#ifndef EMIGRE_EXPLAIN_WEIGHTED_H_
#define EMIGRE_EXPLAIN_WEIGHTED_H_

#include <vector>

#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/hin_graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace emigre::explain {

/// \brief One weight adjustment: "had this action carried weight
/// `new_weight` instead of `old_weight` ...".
struct WeightAdjustment {
  graph::EdgeRef edge;
  double old_weight = 0.0;
  double new_weight = 0.0;
};

/// \brief A weight-based Why-Not explanation (the paper's §7 future-work
/// extension: "You should have rated book A with 5 stars to get
/// recommended book B").
struct WeightedExplanation {
  bool found = false;
  std::vector<WeightAdjustment> adjustments;
  graph::NodeId original_rec = graph::kInvalidNode;
  graph::NodeId new_rec = graph::kInvalidNode;
  FailureReason failure = FailureReason::kNone;
  size_t tests_performed = 0;
  double seconds = 0.0;

  size_t size() const { return adjustments.size(); }
};

/// \brief Options for the weighted search.
struct WeightedOptions {
  /// Weight bounds for an adjusted edge: an existing action's weight may be
  /// raised up to `max_weight` (rate it higher) or lowered to `min_weight`
  /// (rate it lower) but never removed — this mode explains with weights
  /// only, complementing the edge add/remove modes.
  double min_weight = 0.2;
  double max_weight = 5.0;
};

/// \brief Computes a Why-Not explanation made purely of weight changes on
/// the user's *existing* actions, Incremental style.
///
/// Under the contribution model (Eq. 5), moving an edge's weight from w to
/// w' shifts the rec-vs-WNI gap by (w'−w)·(PPR(n,rec)−PPR(n,WNI)): actions
/// whose neighbor favors WNI are raised to `max_weight`, actions whose
/// neighbor favors rec are lowered to `min_weight`, in decreasing order of
/// achievable gap reduction, TESTing whenever the estimate closes. After a
/// successful TEST, each adjustment is individually relaxed back toward its
/// original weight when doing so preserves correctness, so the reported
/// "star ratings" are as close to the user's actual ones as the TEST
/// admits.
[[nodiscard]] Result<WeightedExplanation> RunWeightedIncremental(
    const graph::HinGraph& g, const WhyNotQuestion& q,
    const EmigreOptions& opts, const WeightedOptions& wopts = {});

}  // namespace emigre::explain

#endif  // EMIGRE_EXPLAIN_WEIGHTED_H_
