#include "explain/explanation.h"

namespace emigre::explain {

std::string_view ModeName(Mode mode) {
  switch (mode) {
    case Mode::kRemove:
      return "remove";
    case Mode::kAdd:
      return "add";
  }
  return "?";
}

std::string_view HeuristicName(Heuristic h) {
  switch (h) {
    case Heuristic::kIncremental:
      return "Incremental";
    case Heuristic::kPowerset:
      return "Powerset";
    case Heuristic::kExhaustive:
      return "ex";
    case Heuristic::kExhaustiveDirect:
      return "ex_direct";
    case Heuristic::kBruteForce:
      return "brute";
  }
  return "?";
}

std::string_view FailureReasonName(FailureReason reason) {
  switch (reason) {
    case FailureReason::kNone:
      return "none";
    case FailureReason::kInvalidQuestion:
      return "invalid-question";
    case FailureReason::kColdStart:
      return "cold-start";
    case FailureReason::kPopularItem:
      return "popular-item";
    case FailureReason::kSearchExhausted:
      return "search-exhausted";
    case FailureReason::kBudgetExceeded:
      return "budget-exceeded";
    case FailureReason::kInternalError:
      return "internal-error";
  }
  return "?";
}

bool FailureReasonFromName(std::string_view name, FailureReason* reason) {
  for (FailureReason r : kAllFailureReasons) {
    if (name == FailureReasonName(r)) {
      *reason = r;
      return true;
    }
  }
  return false;
}

}  // namespace emigre::explain
