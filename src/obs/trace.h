#ifndef EMIGRE_OBS_TRACE_H_
#define EMIGRE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace emigre::obs {

/// \brief Lightweight RAII trace spans for per-query phase breakdowns.
///
/// A span marks a pipeline phase:
///
///   void RunIncremental(...) {
///     EMIGRE_SPAN("incremental");
///     ...
///   }
///
/// Spans nest via a thread-local stack: a "flp" span opened while an
/// "explain/rank" span is live aggregates under the path
/// "explain/rank/flp", so the collected stats form a tree — the per-query
/// phase breakdown `emigre explain --trace` prints.
///
/// Tracing is off by default. A disabled span is a single relaxed atomic
/// load plus a branch — cheap enough to leave in every hot entry point.
/// Aggregation happens at span end under a mutex keyed by path; spans fire
/// per phase call (not per inner-loop iteration), so contention stays
/// negligible even with the multi-threaded experiment runner.

/// Enables/disables span collection process-wide.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// \brief RAII phase marker. Use via EMIGRE_SPAN; `name` must outlive the
/// span (string literals do).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Aggregated statistics of one span path.
struct SpanStat {
  std::string path;  ///< "/"-joined nesting, e.g. "explain/search_space/rlp"
  int depth = 0;     ///< number of ancestors (path segments − 1)
  uint64_t count = 0;
  double total_seconds = 0.0;
};

/// All span aggregates collected so far, sorted by path (pre-order of the
/// span tree).
std::vector<SpanStat> TraceSnapshot();

/// Drops all collected span aggregates (the enabled flag is untouched).
void ResetTrace();

/// Renders the span tree as an indented table: span, calls, total ms,
/// mean ms, and share of the root spans' total time.
std::string FormatTraceTree(const std::vector<SpanStat>& stats);

}  // namespace emigre::obs

#define EMIGRE_OBS_CONCAT_INNER(a, b) a##b
#define EMIGRE_OBS_CONCAT(a, b) EMIGRE_OBS_CONCAT_INNER(a, b)
#define EMIGRE_SPAN(name) \
  ::emigre::obs::Span EMIGRE_OBS_CONCAT(emigre_span_, __LINE__)(name)

#endif  // EMIGRE_OBS_TRACE_H_
