#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace emigre::obs {

namespace {

/// Relaxed atomic add for doubles (no fetch_add on atomic<double> pre-C++20
/// on all toolchains; CAS loop is portable and uncontended in practice).
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur &&
         !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::BucketBound(size_t i) {
  return kFirstBound * std::ldexp(1.0, static_cast<int>(i));
}

size_t Histogram::BucketIndex(double value) {
  if (!(value > kFirstBound)) return 0;  // also catches NaN and negatives
  // Smallest i with value <= kFirstBound·2^i.
  int i = static_cast<int>(std::ceil(std::log2(value / kFirstBound)));
  if (i < 0) return 0;
  return std::min(static_cast<size_t>(i), kNumBuckets - 1);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  // First-recording min initialization: count 0 -> min holds 0.0, which
  // would undercut every real value; set-before-count is benign because a
  // racing reader just sees a slightly stale min.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSample::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (p <= 0.0) return min;
  if (p >= 100.0) return max;
  // Rank of the requested percentile (1-based, nearest-rank rounded up).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      // Linear interpolation inside [lower, upper] of this bucket, clamped
      // to the observed min/max so single-bucket histograms stay tight.
      double lower = i == 0 ? 0.0 : Histogram::BucketBound(i - 1);
      double upper = Histogram::BucketBound(i);
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(buckets[i]);
      double value = lower + frac * (upper - lower);
      return std::clamp(value, min, max);
    }
    seen += buckets[i];
  }
  return max;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  std::map<std::string, CounterSample> counter_by_name;
  for (CounterSample& c : counters) counter_by_name[c.name] = std::move(c);
  for (const CounterSample& c : other.counters) {
    counter_by_name[c.name].name = c.name;
    counter_by_name[c.name].value += c.value;
  }
  counters.clear();
  for (auto& [name, c] : counter_by_name) counters.push_back(std::move(c));

  std::map<std::string, GaugeSample> gauge_by_name;
  for (GaugeSample& g : gauges) gauge_by_name[g.name] = std::move(g);
  for (const GaugeSample& g : other.gauges) {
    auto [it, inserted] = gauge_by_name.emplace(g.name, g);
    if (!inserted) it->second.value = std::max(it->second.value, g.value);
  }
  gauges.clear();
  for (auto& [name, g] : gauge_by_name) gauges.push_back(std::move(g));

  std::map<std::string, HistogramSample> hist_by_name;
  for (HistogramSample& h : histograms) hist_by_name[h.name] = std::move(h);
  for (const HistogramSample& h : other.histograms) {
    auto [it, inserted] = hist_by_name.emplace(h.name, h);
    if (inserted) continue;
    HistogramSample& acc = it->second;
    // An empty side contributes nothing; its zeroed min/max must not
    // clobber the other side's observed range.
    if (h.count == 0) continue;
    if (acc.count == 0) {
      acc = h;
      continue;
    }
    acc.min = std::min(acc.min, h.min);
    acc.max = std::max(acc.max, h.max);
    acc.count += h.count;
    acc.sum += h.sum;
    acc.buckets.resize(
        std::max(acc.buckets.size(), h.buckets.size()), 0);
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      acc.buckets[i] += h.buckets[i];
    }
  }
  histograms.clear();
  for (auto& [name, h] : hist_by_name) histograms.push_back(std::move(h));
}

MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  // Snapshots are name-sorted; a map keeps the lookups simple and the
  // result order stable.
  std::map<std::string, uint64_t> counter_before;
  for (const CounterSample& c : before.counters) {
    counter_before[c.name] = c.value;
  }
  for (const CounterSample& c : after.counters) {
    uint64_t base = 0;
    if (auto it = counter_before.find(c.name); it != counter_before.end()) {
      base = it->second;
    }
    uint64_t d = c.value >= base ? c.value - base : 0;
    if (d > 0) out.counters.push_back(CounterSample{c.name, d});
  }
  for (const GaugeSample& g : after.gauges) {
    if (g.value != 0.0) out.gauges.push_back(g);
  }
  std::map<std::string, const HistogramSample*> hist_before;
  for (const HistogramSample& h : before.histograms) {
    hist_before[h.name] = &h;
  }
  for (const HistogramSample& h : after.histograms) {
    HistogramSample d = h;
    if (auto it = hist_before.find(h.name); it != hist_before.end()) {
      const HistogramSample& b = *it->second;
      d.count = h.count >= b.count ? h.count - b.count : 0;
      d.sum = h.sum - b.sum;
      for (size_t i = 0; i < d.buckets.size() && i < b.buckets.size(); ++i) {
        d.buckets[i] =
            h.buckets[i] >= b.buckets[i] ? h.buckets[i] - b.buckets[i] : 0;
      }
    }
    if (d.count > 0) out.histograms.push_back(std::move(d));
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // NOLINT(naked-new) leaky singleton
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  util::MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  util::MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  util::MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::Snapshot() const {
  util::MutexLock lock(&mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.push_back(CounterSample{name, c->Value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.push_back(GaugeSample{name, g->Value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count_.load(std::memory_order_relaxed);
    s.sum = h->sum_.load(std::memory_order_relaxed);
    s.min = h->min_.load(std::memory_order_relaxed);
    s.max = h->max_.load(std::memory_order_relaxed);
    s.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      s.buckets[i] = h->buckets_[i].load(std::memory_order_relaxed);
    }
    out.histograms.push_back(std::move(s));
  }
  return out;
}

void Registry::Reset() {
  util::MutexLock lock(&mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace emigre::obs
