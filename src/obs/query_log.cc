#include "obs/query_log.h"

#include <sstream>

#include "util/json.h"
#include "util/string_util.h"

namespace emigre::obs {

std::string QueryRecordJson(const QueryRecord& r) {
  std::ostringstream out;
  out << "{\"schema\": \"emigre.query.v1\""
      << ", \"query_id\": " << r.query_id << ", \"user\": " << r.user
      << ", \"why_not_item\": " << r.why_not_item
      << ", \"mode\": " << json::Escape(r.mode)
      << ", \"heuristic\": " << json::Escape(r.heuristic)
      << ", \"heuristic_chain\": [";
  for (size_t i = 0; i < r.heuristic_chain.size(); ++i) {
    out << (i == 0 ? "" : ", ") << json::Escape(r.heuristic_chain[i]);
  }
  out << "], \"budgets\": {\"deadline_seconds\": "
      << json::Number(r.deadline_seconds) << ", \"max_tests\": " << r.max_tests
      << ", \"test_threads\": " << r.test_threads
      << ", \"tester\": " << json::Escape(r.tester)
      << ", \"anytime\": " << (r.anytime ? "true" : "false") << "}"
      << ", \"found\": " << (r.found ? "true" : "false")
      << ", \"verified\": " << (r.verified ? "true" : "false")
      << ", \"degraded\": " << (r.degraded ? "true" : "false")
      << ", \"degraded_gap\": " << json::Number(r.degraded_gap)
      << ", \"failure\": " << json::Escape(r.failure)
      << ", \"error\": " << json::Escape(r.error)
      << ", \"original_rec\": " << r.original_rec
      << ", \"new_rec\": " << r.new_rec
      << ", \"search_space_size\": " << r.search_space_size
      << ", \"candidates_considered\": " << r.candidates_considered
      << ", \"tests_performed\": " << r.tests_performed
      << ", \"seconds\": " << json::Number(r.seconds)
      << ", \"phase_seconds\": {";
  for (size_t i = 0; i < r.phase_seconds.size(); ++i) {
    out << (i == 0 ? "" : ", ") << json::Escape(r.phase_seconds[i].first)
        << ": " << json::Number(r.phase_seconds[i].second);
  }
  out << "}, \"faults_fired\": {";
  for (size_t i = 0; i < r.faults_fired.size(); ++i) {
    out << (i == 0 ? "" : ", ") << json::Escape(r.faults_fired[i].first)
        << ": " << r.faults_fired[i].second;
  }
  out << "}, \"edges\": [";
  for (size_t i = 0; i < r.edges.size(); ++i) {
    const QueryRecord::Edge& e = r.edges[i];
    out << (i == 0 ? "" : ", ") << "{\"src\": " << e.src
        << ", \"dst\": " << e.dst << ", \"type\": " << e.type << "}";
  }
  out << "]}";
  return out.str();
}

Result<QueryRecord> ParseQueryRecord(const std::string& line) {
  EMIGRE_ASSIGN_OR_RETURN(json::JsonValue root, json::Parse(line));
  if (root.kind != json::JsonValue::Kind::kObject) {
    return Status::InvalidArgument("query record: not a JSON object");
  }
  if (json::StringOr(root, "schema") != "emigre.query.v1") {
    return Status::InvalidArgument(
        "query record: missing or unknown \"schema\"");
  }
  QueryRecord r;
  r.query_id = json::UintOr(root, "query_id");
  r.user = json::UintOr(root, "user");
  r.why_not_item = json::UintOr(root, "why_not_item");
  r.mode = json::StringOr(root, "mode");
  r.heuristic = json::StringOr(root, "heuristic");
  if (const json::JsonValue* chain = root.Find("heuristic_chain")) {
    for (const json::JsonValue& v : chain->array) {
      r.heuristic_chain.push_back(v.string);
    }
  }
  if (const json::JsonValue* budgets = root.Find("budgets")) {
    r.deadline_seconds = json::DoubleOr(*budgets, "deadline_seconds");
    r.max_tests = json::UintOr(*budgets, "max_tests");
    r.test_threads = json::UintOr(*budgets, "test_threads", 1);
    r.tester = json::StringOr(*budgets, "tester");
    r.anytime = json::BoolOr(*budgets, "anytime", false);
  }
  r.found = json::BoolOr(root, "found", false);
  r.verified = json::BoolOr(root, "verified", false);
  r.degraded = json::BoolOr(root, "degraded", false);
  r.degraded_gap = json::DoubleOr(root, "degraded_gap");
  r.failure = json::StringOr(root, "failure");
  r.error = json::StringOr(root, "error");
  r.original_rec = json::UintOr(root, "original_rec");
  r.new_rec = json::UintOr(root, "new_rec");
  r.search_space_size = json::UintOr(root, "search_space_size");
  r.candidates_considered = json::UintOr(root, "candidates_considered");
  r.tests_performed = json::UintOr(root, "tests_performed");
  r.seconds = json::DoubleOr(root, "seconds");
  if (const json::JsonValue* phases = root.Find("phase_seconds")) {
    for (const auto& [name, v] : phases->object) {
      r.phase_seconds.emplace_back(name, v.AsDouble(0.0));
    }
  }
  if (const json::JsonValue* faults = root.Find("faults_fired")) {
    for (const auto& [name, v] : faults->object) {
      r.faults_fired.emplace_back(name, v.AsUint(0));
    }
  }
  if (const json::JsonValue* edges = root.Find("edges")) {
    for (const json::JsonValue& v : edges->array) {
      QueryRecord::Edge e;
      e.src = json::UintOr(v, "src");
      e.dst = json::UintOr(v, "dst");
      e.type = json::UintOr(v, "type");
      r.edges.push_back(e);
    }
  }
  return r;
}

Result<std::unique_ptr<QueryLog>> QueryLog::Open(const std::string& path) {
  std::ofstream file(path, std::ios::app);
  if (!file.good()) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  return std::unique_ptr<QueryLog>(
      new QueryLog(path, std::move(file)));  // NOLINT(naked-new) private ctor
}

Status QueryLog::Append(const QueryRecord& record) {
  std::string line = QueryRecordJson(record);
  util::MutexLock lock(&mutex_);
  file_ << line << "\n";
  file_.flush();
  if (!file_.good()) {
    return Status::IOError(StrFormat("write to %s failed", path_.c_str()));
  }
  return Status::OK();
}

}  // namespace emigre::obs
