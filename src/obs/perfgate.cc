#include "obs/perfgate.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/json.h"
#include "util/string_util.h"
#include "util/table.h"

namespace emigre::obs {

namespace {

bool IsLatencyMetric(const std::string& flat_name) {
  // "explain.query.seconds/sum" — the sum of a *seconds histogram is wall
  // time; its count (and every other series) is an event count.
  return EndsWith(flat_name, "seconds/sum");
}

struct FlatMetric {
  std::string name;
  double value = 0.0;
};

std::vector<FlatMetric> Flatten(const MetricsSnapshot& snapshot) {
  std::vector<FlatMetric> out;
  for (const CounterSample& c : snapshot.counters) {
    out.push_back({c.name, static_cast<double>(c.value)});
  }
  for (const GaugeSample& g : snapshot.gauges) {
    out.push_back({g.name, g.value});
  }
  for (const HistogramSample& h : snapshot.histograms) {
    out.push_back({h.name + "/count", static_cast<double>(h.count)});
    out.push_back({h.name + "/sum", h.sum});
  }
  std::sort(out.begin(), out.end(),
            [](const FlatMetric& a, const FlatMetric& b) {
              return a.name < b.name;
            });
  return out;
}

std::string_view VerdictLabel(PerfGateEntry::Verdict v) {
  switch (v) {
    case PerfGateEntry::Verdict::kOk: return "ok";
    case PerfGateEntry::Verdict::kSkipped: return "skipped";
    case PerfGateEntry::Verdict::kBelowFloor: return "below-floor";
    case PerfGateEntry::Verdict::kRegression: return "REGRESSION";
    case PerfGateEntry::Verdict::kOutOfBand: return "OUT-OF-BAND";
    case PerfGateEntry::Verdict::kMissing: return "MISSING";
    case PerfGateEntry::Verdict::kNew: return "new";
    case PerfGateEntry::Verdict::kBelowMin: return "BELOW-MIN";
  }
  return "?";
}

}  // namespace

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative '*' matcher with backtracking to the last star.
  size_t p = 0, t = 0;
  size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

Result<PerfGateOptions> ParsePerfGateConfig(const std::string& config_json) {
  EMIGRE_ASSIGN_OR_RETURN(json::JsonValue root, json::Parse(config_json));
  if (root.kind != json::JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "perfgate config: top level is not an object");
  }
  if (json::StringOr(root, "schema") != "emigre.perfgate.v1") {
    return Status::InvalidArgument(
        "perfgate config: missing or unknown \"schema\"");
  }
  PerfGateOptions opts;
  opts.counter_tol = json::DoubleOr(root, "counter_tol", opts.counter_tol);
  opts.latency_tol = json::DoubleOr(root, "latency_tol", opts.latency_tol);
  opts.counter_min = json::DoubleOr(root, "counter_min", opts.counter_min);
  opts.latency_min = json::DoubleOr(root, "latency_min", opts.latency_min);
  if (const json::JsonValue* skip = root.Find("skip")) {
    for (const json::JsonValue& v : skip->array) {
      if (v.kind == json::JsonValue::Kind::kString) {
        opts.skip.push_back(v.string);
      }
    }
  }
  if (const json::JsonValue* floors = root.Find("floors")) {
    if (floors->kind != json::JsonValue::Kind::kObject) {
      return Status::InvalidArgument(
          "perfgate config: \"floors\" is not an object");
    }
    for (const auto& [bench, metrics] : floors->object) {
      if (metrics.kind != json::JsonValue::Kind::kObject) {
        return Status::InvalidArgument(
            "perfgate config: floors for bench \"" + bench +
            "\" is not an object");
      }
      for (const auto& [name, v] : metrics.object) {
        if (v.kind != json::JsonValue::Kind::kNumber) {
          return Status::InvalidArgument(
              "perfgate config: floor \"" + name + "\" is not a number");
        }
        opts.floors[bench][name] = v.number;
      }
    }
  }
  return opts;
}

Result<PerfGateReport> ComparePerf(const BenchDoc& baseline,
                                   const BenchDoc& current,
                                   const PerfGateOptions& opts) {
  if (baseline.bench != current.bench) {
    return Status::InvalidArgument(StrFormat(
        "bench mismatch: baseline is \"%s\", current is \"%s\"",
        baseline.bench.c_str(), current.bench.c_str()));
  }
  if (baseline.scale != current.scale) {
    return Status::InvalidArgument(StrFormat(
        "scale mismatch: baseline ran at %d, current at %d (set "
        "EMIGRE_BENCH_SCALE to match or refresh the baseline)",
        baseline.scale, current.scale));
  }

  PerfGateReport report;
  report.bench = current.bench;
  report.scale = current.scale;

  std::map<std::string, double> base_by_name;
  for (const FlatMetric& m : Flatten(baseline.metrics)) {
    base_by_name[m.name] = m.value;
  }

  auto skip_matched = [&opts](const std::string& name) {
    for (const std::string& pattern : opts.skip) {
      if (GlobMatch(pattern, name)) return true;
    }
    return false;
  };

  std::map<std::string, double> unmet_floors;
  if (auto fl = opts.floors.find(current.bench); fl != opts.floors.end()) {
    unmet_floors = fl->second;
  }

  for (const FlatMetric& m : Flatten(current.metrics)) {
    PerfGateEntry entry;
    entry.metric = m.name;
    entry.current = m.value;
    bool latency = IsLatencyMetric(m.name);
    entry.tolerance = latency ? opts.latency_tol : opts.counter_tol;
    double floor = latency ? opts.latency_min : opts.counter_min;

    // Absolute floors outrank every other disposition: they apply to new
    // metrics, skipped metrics, and metrics under the noise floor alike.
    if (auto fit = unmet_floors.find(m.name); fit != unmet_floors.end()) {
      entry.floor = fit->second;
      unmet_floors.erase(fit);
      if (m.value < entry.floor) {
        if (auto bit = base_by_name.find(m.name); bit != base_by_name.end()) {
          entry.baseline = bit->second;
          base_by_name.erase(bit);
        }
        entry.ratio = entry.floor > 0.0 ? m.value / entry.floor : 0.0;
        entry.verdict = PerfGateEntry::Verdict::kBelowMin;
        ++report.compared;
        ++report.failed;
        report.entries.push_back(std::move(entry));
        continue;
      }
    }

    auto it = base_by_name.find(m.name);
    if (it == base_by_name.end()) {
      entry.verdict = PerfGateEntry::Verdict::kNew;
      report.entries.push_back(std::move(entry));
      continue;
    }
    entry.baseline = it->second;
    base_by_name.erase(it);

    if (skip_matched(m.name)) {
      entry.verdict = PerfGateEntry::Verdict::kSkipped;
      ++report.skipped;
    } else if (entry.baseline < floor && entry.current < floor) {
      entry.verdict = PerfGateEntry::Verdict::kBelowFloor;
      ++report.skipped;
    } else {
      ++report.compared;
      entry.ratio =
          entry.baseline > 0.0 ? entry.current / entry.baseline : 0.0;
      double upper = entry.baseline * (1.0 + entry.tolerance);
      double lower = entry.baseline / (1.0 + entry.tolerance);
      if (entry.current > upper) {
        entry.verdict = PerfGateEntry::Verdict::kRegression;
      } else if (entry.current < lower) {
        entry.verdict = PerfGateEntry::Verdict::kOutOfBand;
      } else {
        entry.verdict = PerfGateEntry::Verdict::kOk;
      }
    }
    if (entry.Failed()) ++report.failed;
    report.entries.push_back(std::move(entry));
  }

  // A floored metric the current run never emitted cannot attest its
  // contract — that is a failure, not a silent skip.
  for (const auto& [name, min_value] : unmet_floors) {
    PerfGateEntry entry;
    entry.metric = name;
    entry.floor = min_value;
    if (auto bit = base_by_name.find(name); bit != base_by_name.end()) {
      entry.baseline = bit->second;
      base_by_name.erase(bit);
    }
    entry.verdict = PerfGateEntry::Verdict::kBelowMin;
    ++report.failed;
    report.entries.push_back(std::move(entry));
  }

  // Whatever is left in the baseline map never showed up in the current run.
  for (const auto& [name, value] : base_by_name) {
    PerfGateEntry entry;
    entry.metric = name;
    entry.baseline = value;
    bool latency = IsLatencyMetric(name);
    entry.tolerance = latency ? opts.latency_tol : opts.counter_tol;
    double floor = latency ? opts.latency_min : opts.counter_min;
    if (skip_matched(name) || value < floor) {
      entry.verdict = PerfGateEntry::Verdict::kSkipped;
      ++report.skipped;
    } else {
      entry.verdict = PerfGateEntry::Verdict::kMissing;
      ++report.failed;
    }
    report.entries.push_back(std::move(entry));
  }

  std::sort(report.entries.begin(), report.entries.end(),
            [](const PerfGateEntry& a, const PerfGateEntry& b) {
              return a.metric < b.metric;
            });
  report.pass = report.failed == 0;
  return report;
}

std::string PerfGateReport::Format() const {
  std::ostringstream out;
  out << StrFormat("perfgate: bench \"%s\" (scale %d): %zu compared, "
                   "%zu skipped, %zu failed\n",
                   bench.c_str(), scale, compared, skipped, failed);
  if (pass) {
    out << "perfgate: PASS\n";
    return out.str();
  }
  TextTable table({"metric", "baseline", "current", "ratio", "tol", "verdict"});
  for (size_t col = 1; col <= 4; ++col) table.SetAlign(col, Align::kRight);
  for (const PerfGateEntry& e : entries) {
    if (!e.Failed()) continue;
    // A floor violation compares against the configured minimum, not the
    // baseline; show the number the metric actually had to beat.
    bool below_min = e.verdict == PerfGateEntry::Verdict::kBelowMin;
    table.AddRow({e.metric,
                  FormatDouble(below_min ? e.floor : e.baseline, 4),
                  FormatDouble(e.current, 4), FormatDouble(e.ratio, 3),
                  FormatDouble(e.tolerance, 2),
                  std::string(VerdictLabel(e.verdict))});
  }
  out << table.ToString();
  out << "perfgate: FAIL (refresh stale baselines with "
         "tools/perfgate.py --update-baselines)\n";
  return out.str();
}

}  // namespace emigre::obs
