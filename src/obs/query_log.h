#ifndef EMIGRE_OBS_QUERY_LOG_H_
#define EMIGRE_OBS_QUERY_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace emigre::obs {

/// \brief Per-query audit log: one JSON object per line (JSONL), schema
/// `emigre.query.v1`.
///
/// Every `Emigre::Explain` call appends one record capturing what the query
/// was, what it was allowed to spend (budgets), what happened (phase
/// durations, faults fired, degradation) and what came out (the explanation
/// edge set) — enough to replay the query bit-for-bit after the fact. The
/// eval runner and the CLI query commands attach a log via
/// `EmigreOptions::query_log` / `--query-log FILE`.
///
/// Record schema (absent numeric fields read as 0, strings as ""):
///
///   {"schema": "emigre.query.v1", "query_id": 7,
///    "user": 12, "why_not_item": 48,
///    "mode": "remove", "heuristic": "Incremental",
///    "heuristic_chain": ["remove/Incremental"],
///    "budgets": {"deadline_seconds": 1.0, "max_tests": 20000,
///                "test_threads": 1, "tester": "exact", "anytime": false},
///    "found": true, "verified": true, "degraded": false,
///    "degraded_gap": 0, "failure": "none", "error": "",
///    "original_rec": 3, "new_rec": 48,
///    "search_space_size": 9, "candidates_considered": 4,
///    "tests_performed": 4, "seconds": 0.012,
///    "phase_seconds": {"ranking": 0.004, "search_space": 0.003,
///                      "heuristic": 0.005},
///    "faults_fired": {"explain.query": 1},
///    "edges": [{"src": 12, "dst": 30, "type": 0}]}

/// \brief One audited query, flattened to plain values so the obs layer
/// stays independent of the explain types that produce it.
struct QueryRecord {
  uint64_t query_id = 0;
  uint64_t user = 0;
  uint64_t why_not_item = 0;
  std::string mode;
  std::string heuristic;
  /// "mode/heuristic" attempts in order; one entry per Explain call (an
  /// ExplainAuto fallback shows up as separate records sharing nothing but
  /// adjacent query ids).
  std::vector<std::string> heuristic_chain;

  // Budgets the query ran under — what a replay must reproduce.
  double deadline_seconds = 0.0;
  uint64_t max_tests = 0;
  uint64_t test_threads = 1;
  std::string tester;  ///< "exact" | "dynamic_push"
  bool anytime = false;

  // Outcome.
  bool found = false;
  bool verified = false;
  bool degraded = false;
  double degraded_gap = 0.0;
  std::string failure;  ///< FailureReasonName, e.g. "none", "budget-exceeded"
  std::string error;    ///< non-OK Status text when the pipeline errored

  uint64_t original_rec = 0;
  uint64_t new_rec = 0;
  uint64_t search_space_size = 0;
  uint64_t candidates_considered = 0;
  uint64_t tests_performed = 0;
  double seconds = 0.0;

  /// Wall time per pipeline phase, in pipeline order ("ranking",
  /// "search_space", "heuristic").
  std::vector<std::pair<std::string, double>> phase_seconds;
  /// Fault sites that fired during this query, with fire counts.
  std::vector<std::pair<std::string, uint64_t>> faults_fired;

  struct Edge {
    uint64_t src = 0;
    uint64_t dst = 0;
    uint64_t type = 0;
  };
  std::vector<Edge> edges;  ///< the explanation edge set (A*)
};

/// Serializes a record as one emigre.query.v1 JSON line (no trailing
/// newline).
std::string QueryRecordJson(const QueryRecord& record);

/// Parses one emigre.query.v1 line back into a record.
[[nodiscard]] Result<QueryRecord> ParseQueryRecord(const std::string& line);

/// \brief Append-only JSONL sink; `Append` is thread-safe and flushes per
/// record so a crash loses at most the in-flight line.
class QueryLog {
 public:
  /// Opens `path` for appending.
  [[nodiscard]] static Result<std::unique_ptr<QueryLog>> Open(
      const std::string& path);

  [[nodiscard]] Status Append(const QueryRecord& record) EXCLUDES(mutex_);

  const std::string& path() const { return path_; }

 private:
  QueryLog(std::string path, std::ofstream file)
      : path_(std::move(path)), file_(std::move(file)) {}

  const std::string path_;  // NOLINT(guarded-by) const after ctor
  util::Mutex mutex_;
  std::ofstream file_ GUARDED_BY(mutex_);
};

}  // namespace emigre::obs

#endif  // EMIGRE_OBS_QUERY_LOG_H_
