#include "obs/timeline.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/json.h"
#include "util/string_util.h"

namespace emigre::obs {

namespace {

std::atomic<bool> g_timeline_enabled{false};

constexpr size_t kRingCapacity = 1 << 14;  // 16384 events per thread

struct Ring {
  util::Mutex mutex;  // uncontended on the hot path; export briefly locks
  uint64_t thread_id GUARDED_BY(mutex) = 0;
  // Ring storage, capacity kRingCapacity.
  std::vector<TimelineEvent> events GUARDED_BY(mutex);
  // Insertion cursor once the ring has wrapped.
  size_t next GUARDED_BY(mutex) = 0;
  bool wrapped GUARDED_BY(mutex) = false;
};

struct RingList {
  // Lock order: `mutex` before any `Ring::mutex` (registration and the
  // snapshot/reset walks both follow it; the record hot path takes only the
  // ring's own lock).
  util::Mutex mutex;
  // Leaked with the registry; threads never unregister.
  std::vector<Ring*> rings GUARDED_BY(mutex);
  uint64_t next_thread_id GUARDED_BY(mutex) = 0;
};

RingList& Rings() {
  static RingList* list = new RingList();  // NOLINT(naked-new) leaky singleton
  return *list;
}

/// The timeline epoch: all event timestamps are µs since this point.
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

Ring& ThreadRing() {
  thread_local Ring* ring = [] {
    Ring* r = new Ring();  // NOLINT(naked-new) flight-recorder ring, process lifetime
    RingList& list = Rings();
    util::MutexLock list_lock(&list.mutex);
    // The ring is not published until the push_back below, but its members
    // are lock-annotated, so initialize them under its (uncontended) lock.
    util::MutexLock ring_lock(&r->mutex);
    r->events.reserve(kRingCapacity);
    r->thread_id = list.next_thread_id++;
    list.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::atomic<uint64_t> g_next_query_id{1};

uint64_t& CurrentQueryIdSlot() {
  thread_local uint64_t query_id = 0;
  return query_id;
}

}  // namespace

void SetTimelineEnabled(bool enabled) {
  g_timeline_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) (void)Epoch();  // pin the epoch before the first event
}

bool TimelineEnabled() {
  return g_timeline_enabled.load(std::memory_order_relaxed);
}

void RecordTimelineEvent(const std::string& path,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  TimelineEvent event;
  event.path = path;
  event.query_id = CurrentQueryId();
  event.start_us =
      std::chrono::duration<double, std::micro>(start - Epoch()).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - start).count();

  Ring& ring = ThreadRing();
  util::MutexLock lock(&ring.mutex);
  event.thread_id = ring.thread_id;
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(std::move(event));
  } else {
    ring.events[ring.next] = std::move(event);
    ring.next = (ring.next + 1) % kRingCapacity;
    ring.wrapped = true;
    EMIGRE_COUNTER("obs.timeline.dropped").Increment();
  }
}

std::vector<TimelineEvent> TimelineSnapshot() {
  std::vector<TimelineEvent> out;
  RingList& list = Rings();
  util::MutexLock list_lock(&list.mutex);
  for (Ring* ring : list.rings) {
    util::MutexLock lock(&ring->mutex);
    // In ring order (oldest first) the wrapped portion starts at `next`.
    size_t n = ring->events.size();
    size_t first = ring->wrapped ? ring->next : 0;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(ring->events[(first + i) % n]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

void ResetTimeline() {
  RingList& list = Rings();
  util::MutexLock list_lock(&list.mutex);
  for (Ring* ring : list.rings) {
    util::MutexLock lock(&ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

std::string ExportChromeTrace(const std::vector<TimelineEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TimelineEvent& e = events[i];
    size_t last_slash = e.path.rfind('/');
    std::string leaf = last_slash == std::string::npos
                           ? e.path
                           : e.path.substr(last_slash + 1);
    out << (i == 0 ? "\n" : ",\n") << "  {\"name\": " << json::Escape(leaf)
        << ", \"cat\": \"emigre\", \"ph\": \"X\""
        << ", \"ts\": " << json::Number(e.start_us)
        << ", \"dur\": " << json::Number(e.dur_us) << ", \"pid\": 1"
        << ", \"tid\": " << e.thread_id
        << ", \"args\": {\"path\": " << json::Escape(e.path)
        << ", \"query\": " << e.query_id << "}}";
  }
  out << (events.empty() ? "]" : "\n]")
      << ", \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.good()) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  file << ExportChromeTrace(TimelineSnapshot());
  file.flush();
  if (!file.good()) {
    return Status::IOError(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

uint64_t BeginQuery() {
  uint64_t id = g_next_query_id.fetch_add(1, std::memory_order_relaxed);
  CurrentQueryIdSlot() = id;
  return id;
}

void SetCurrentQueryId(uint64_t query_id) { CurrentQueryIdSlot() = query_id; }

uint64_t CurrentQueryId() { return CurrentQueryIdSlot(); }

}  // namespace emigre::obs
