#ifndef EMIGRE_OBS_TIMELINE_H_
#define EMIGRE_OBS_TIMELINE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace emigre::obs {

/// \brief Flight-recorder timeline: individual span begin/end events.
///
/// Where trace.h aggregates spans into per-path totals, the timeline keeps
/// the individual events — timestamp, duration, thread, query id — in a
/// fixed-capacity ring per thread, so a capture is a bounded-memory "last N
/// events per thread" flight recording. Capture is lock-light: each thread
/// appends to its own ring (a mutex contended only during export), and the
/// whole layer sits behind the same enabled-flag fast path as spans.
/// Enable with `SetTimelineEnabled(true)` *in addition to*
/// `SetTracingEnabled(true)` — only active spans produce events.
///
/// Export targets Chrome's `chrome://tracing` / Perfetto JSON
/// ("traceEvents" complete events), the `--trace-out FILE` flag on the CLI
/// query commands.

/// Enables/disables timeline event capture (needs tracing enabled too).
void SetTimelineEnabled(bool enabled);
bool TimelineEnabled();

/// \brief One completed span occurrence.
struct TimelineEvent {
  std::string path;      ///< full span path, e.g. "explain/incremental"
  uint64_t thread_id = 0;  ///< dense per-process thread index (0, 1, ...)
  uint64_t query_id = 0;   ///< query the span ran under; 0 = outside a query
  double start_us = 0.0;   ///< µs since the process timeline epoch
  double dur_us = 0.0;     ///< span duration in µs
};

/// Appends a completed span to the calling thread's ring (called from
/// Span::~Span when the timeline is enabled). When the ring is full the
/// oldest event is overwritten — flight-recorder semantics — and the
/// `obs.timeline.dropped` counter ticks.
void RecordTimelineEvent(const std::string& path,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end);

/// All captured events from every thread's ring, sorted by start time.
std::vector<TimelineEvent> TimelineSnapshot();

/// Clears every ring (the enabled flag is untouched).
void ResetTimeline();

/// Renders events as Chrome trace-event JSON (`{"traceEvents": [...]}`):
/// complete events ("ph": "X") with the span leaf name, the full path and
/// query id under "args", µs timestamps.
std::string ExportChromeTrace(const std::vector<TimelineEvent>& events);

/// `ExportChromeTrace(TimelineSnapshot())` written to `path`, overwriting.
[[nodiscard]] Status WriteChromeTrace(const std::string& path);

// --- Query ids ------------------------------------------------------------
//
// A query id stitches timeline events and audit-log records to the query
// that produced them. `Emigre::Explain` calls `BeginQuery` once per query;
// worker threads serving that query (ParallelTester) inherit the id via
// `SetCurrentQueryId`.

/// Allocates a fresh process-unique query id (1, 2, ...) and makes it the
/// calling thread's current id. Returns the id.
uint64_t BeginQuery();

/// Sets/reads the calling thread's current query id (0 = none).
void SetCurrentQueryId(uint64_t query_id);
uint64_t CurrentQueryId();

}  // namespace emigre::obs

#endif  // EMIGRE_OBS_TIMELINE_H_
