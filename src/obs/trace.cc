#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <map>

#include "obs/timeline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/string_util.h"
#include "util/table.h"

namespace emigre::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

struct SpanTotals {
  uint64_t count = 0;
  double total_seconds = 0.0;
};

struct TraceStore {
  util::Mutex mutex;
  std::map<std::string, SpanTotals> by_path GUARDED_BY(mutex);
};

TraceStore& Store() {
  static TraceStore* store = new TraceStore();  // NOLINT(naked-new) leaky singleton
  return *store;
}

/// Stack of full paths for the current thread; back() is the innermost
/// live span's path.
std::vector<std::string>& PathStack() {
  thread_local std::vector<std::string> stack;
  return stack;
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (!TracingEnabled()) return;
  active_ = true;
  std::vector<std::string>& stack = PathStack();
  if (stack.empty()) {
    stack.emplace_back(name);
  } else {
    stack.push_back(stack.back() + "/" + name);
  }
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  std::chrono::steady_clock::time_point end = std::chrono::steady_clock::now();
  double seconds = std::chrono::duration<double>(end - start_).count();
  std::vector<std::string>& stack = PathStack();
  // The stack cannot be empty here: spans are scoped objects, so this
  // thread's innermost live span is exactly the back entry we pushed.
  std::string path = std::move(stack.back());
  stack.pop_back();
  if (TimelineEnabled()) RecordTimelineEvent(path, start_, end);
  TraceStore& store = Store();
  util::MutexLock lock(&store.mutex);
  SpanTotals& totals = store.by_path[path];
  ++totals.count;
  totals.total_seconds += seconds;
}

std::vector<SpanStat> TraceSnapshot() {
  TraceStore& store = Store();
  util::MutexLock lock(&store.mutex);
  std::vector<SpanStat> out;
  out.reserve(store.by_path.size());
  for (const auto& [path, totals] : store.by_path) {
    SpanStat stat;
    stat.path = path;
    stat.depth =
        static_cast<int>(std::count(path.begin(), path.end(), '/'));
    stat.count = totals.count;
    stat.total_seconds = totals.total_seconds;
    out.push_back(std::move(stat));
  }
  return out;  // std::map iteration is already path-sorted
}

void ResetTrace() {
  TraceStore& store = Store();
  util::MutexLock lock(&store.mutex);
  store.by_path.clear();
}

std::string FormatTraceTree(const std::vector<SpanStat>& stats) {
  if (stats.empty()) return "(no spans recorded)\n";
  double root_total = 0.0;
  for (const SpanStat& s : stats) {
    if (s.depth == 0) root_total += s.total_seconds;
  }
  TextTable table({"span", "calls", "total ms", "mean ms", "%"});
  for (size_t col = 1; col <= 4; ++col) table.SetAlign(col, Align::kRight);
  for (const SpanStat& s : stats) {
    std::string label(static_cast<size_t>(s.depth) * 2, ' ');
    size_t last_slash = s.path.rfind('/');
    label += last_slash == std::string::npos ? s.path
                                             : s.path.substr(last_slash + 1);
    double mean_ms =
        s.count > 0 ? s.total_seconds * 1e3 / static_cast<double>(s.count)
                    : 0.0;
    double share =
        root_total > 0.0 ? 100.0 * s.total_seconds / root_total : 0.0;
    table.AddRow({label, StrFormat("%llu", (unsigned long long)s.count),
                  StrFormat("%.2f", s.total_seconds * 1e3),
                  StrFormat("%.3f", mean_ms), StrFormat("%.1f", share)});
  }
  return table.ToString();
}

}  // namespace emigre::obs
