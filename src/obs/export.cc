#include "obs/export.h"

#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/string_util.h"
#include "util/table.h"

namespace emigre::obs {

namespace {

/// Writes the shared counters/gauges/histograms/trace body used by both
/// emigre.metrics.v1 and emigre.bench.v1 (everything after the header
/// fields, without the closing brace).
void AppendMetricsBody(std::ostringstream& out, const MetricsSnapshot& snapshot,
                       const std::vector<SpanStat>& trace) {
  out << "  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << json::Escape(c.name) << ": "
        << c.value;
  }
  out << (snapshot.counters.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << json::Escape(g.name) << ": "
        << json::Number(g.value);
  }
  out << (snapshot.gauges.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << json::Escape(h.name) << ": {";
    out << "\"count\": " << h.count << ", \"sum\": " << json::Number(h.sum)
        << ", \"min\": " << json::Number(h.min)
        << ", \"max\": " << json::Number(h.max)
        << ", \"mean\": " << json::Number(h.Mean())
        << ", \"p50\": " << json::Number(h.Percentile(50))
        << ", \"p95\": " << json::Number(h.Percentile(95))
        << ", \"p99\": " << json::Number(h.Percentile(99))
        << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << h.buckets[b];
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "}" : "\n  }");

  if (!trace.empty()) {
    out << ",\n  \"trace\": [";
    for (size_t i = 0; i < trace.size(); ++i) {
      const SpanStat& s = trace[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"path\": "
          << json::Escape(s.path) << ", \"depth\": " << s.depth
          << ", \"count\": " << s.count
          << ", \"seconds\": " << json::Number(s.total_seconds) << "}";
    }
    out << "\n  ]";
  }
}

/// Reads the shared body back. `trace_out` may be null.
void ParseMetricsBody(const json::JsonValue& root, MetricsSnapshot* out,
                      std::vector<SpanStat>* trace_out) {
  if (const json::JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, v] : counters->object) {
      out->counters.push_back(CounterSample{name, v.AsUint(0)});
    }
  }
  if (const json::JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      out->gauges.push_back(GaugeSample{name, v.AsDouble(0.0)});
    }
  }
  if (const json::JsonValue* histograms = root.Find("histograms")) {
    for (const auto& [name, v] : histograms->object) {
      HistogramSample h;
      h.name = name;
      h.count = json::UintOr(v, "count");
      h.sum = json::DoubleOr(v, "sum");
      h.min = json::DoubleOr(v, "min");
      h.max = json::DoubleOr(v, "max");
      if (const json::JsonValue* buckets = v.Find("buckets")) {
        for (const json::JsonValue& b : buckets->array) {
          h.buckets.push_back(b.AsUint(0));
        }
      }
      h.buckets.resize(Histogram::kNumBuckets, 0);
      out->histograms.push_back(std::move(h));
    }
  }
  if (trace_out != nullptr) {
    trace_out->clear();
    if (const json::JsonValue* trace = root.Find("trace")) {
      for (const json::JsonValue& entry : trace->array) {
        SpanStat stat;
        stat.path = json::StringOr(entry, "path");
        stat.depth = static_cast<int>(entry.Find("depth") != nullptr
                                          ? entry.Find("depth")->AsInt(0)
                                          : 0);
        stat.count = json::UintOr(entry, "count");
        stat.total_seconds = json::DoubleOr(entry, "seconds");
        trace_out->push_back(std::move(stat));
      }
    }
  }
}

}  // namespace

std::string FormatMetricsTable(const MetricsSnapshot& snapshot) {
  if (snapshot.Empty()) return "(no metrics recorded)\n";
  TextTable table({"metric", "value", "detail"});
  table.SetAlign(1, Align::kRight);
  for (const CounterSample& c : snapshot.counters) {
    table.AddRow({c.name, StrFormat("%llu", (unsigned long long)c.value), ""});
  }
  for (const GaugeSample& g : snapshot.gauges) {
    table.AddRow({g.name, FormatDouble(g.value, 6), "gauge"});
  }
  for (const HistogramSample& h : snapshot.histograms) {
    // Timing histograms end in "seconds" by convention; everything else
    // (sizes, counts) prints as plain numbers.
    bool is_duration = h.name.size() >= 7 &&
                       h.name.compare(h.name.size() - 7, 7, "seconds") == 0;
    auto fmt = [is_duration](double v) {
      return is_duration ? FormatDuration(v) : FormatDouble(v, 2);
    };
    table.AddRow(
        {h.name, StrFormat("%llu", (unsigned long long)h.count),
         StrFormat("mean %s  p50 %s  p95 %s  p99 %s  max %s",
                   fmt(h.Mean()).c_str(), fmt(h.Percentile(50)).c_str(),
                   fmt(h.Percentile(95)).c_str(),
                   fmt(h.Percentile(99)).c_str(), fmt(h.max).c_str())});
  }
  return table.ToString();
}

std::string MetricsJson(const MetricsSnapshot& snapshot,
                        const std::vector<SpanStat>& trace) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"emigre.metrics.v1\",\n";
  AppendMetricsBody(out, snapshot, trace);
  out << "\n}\n";
  return out.str();
}

Status WriteMetricsJson(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const std::vector<SpanStat>& trace) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.good()) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  file << MetricsJson(snapshot, trace);
  file.flush();
  if (!file.good()) {
    return Status::IOError(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

Result<MetricsSnapshot> ParseMetricsJson(const std::string& json,
                                         std::vector<SpanStat>* trace_out) {
  EMIGRE_ASSIGN_OR_RETURN(json::JsonValue root, json::Parse(json));
  if (root.kind != json::JsonValue::Kind::kObject) {
    return Status::InvalidArgument("metrics JSON: top level is not an object");
  }
  if (json::StringOr(root, "schema") != "emigre.metrics.v1") {
    return Status::InvalidArgument(
        "metrics JSON: missing or unknown \"schema\"");
  }
  MetricsSnapshot out;
  ParseMetricsBody(root, &out, trace_out);
  return out;
}

std::string BenchJson(const BenchDoc& doc) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"emigre.bench.v1\",\n"
      << "  \"bench\": " << json::Escape(doc.bench) << ",\n"
      << "  \"scale\": " << doc.scale << ",\n";
  AppendMetricsBody(out, doc.metrics, doc.trace);
  out << "\n}\n";
  return out.str();
}

Status WriteBenchJson(const std::string& path, const BenchDoc& doc) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.good()) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  file << BenchJson(doc);
  file.flush();
  if (!file.good()) {
    return Status::IOError(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

Result<BenchDoc> ParseBenchJson(const std::string& json) {
  EMIGRE_ASSIGN_OR_RETURN(json::JsonValue root, json::Parse(json));
  if (root.kind != json::JsonValue::Kind::kObject) {
    return Status::InvalidArgument("bench JSON: top level is not an object");
  }
  if (json::StringOr(root, "schema") != "emigre.bench.v1") {
    return Status::InvalidArgument("bench JSON: missing or unknown \"schema\"");
  }
  BenchDoc doc;
  doc.bench = json::StringOr(root, "bench");
  const json::JsonValue* scale = root.Find("scale");
  doc.scale = scale != nullptr ? static_cast<int>(scale->AsInt(0)) : 0;
  ParseMetricsBody(root, &doc.metrics, &doc.trace);
  return doc;
}

}  // namespace emigre::obs
