#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/string_util.h"
#include "util/table.h"

namespace emigre::obs {

namespace {

/// Shortest representation that parses back to the same double.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  for (int precision = 6; precision <= 17; ++precision) {
    std::string s = StrFormat("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return StrFormat("%.17g", v);
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

// --- Minimal JSON value parser (objects/arrays/strings/numbers) -----------
//
// Just enough JSON to read back what MetricsJson writes (and any
// hand-edited BENCH_*.json): no unicode escapes beyond \uXXXX pass-through,
// numbers via strtod.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    EMIGRE_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) return Error("expected a value");
    pos_ += static_cast<size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // ASCII-only emitter; decode the BMP code point as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    if (!Consume('{')) return Error("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      std::string key;
      EMIGRE_RETURN_IF_ERROR(ParseString(&key));
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      EMIGRE_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    if (!Consume('[')) return Error("expected '['");
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      EMIGRE_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

}  // namespace

std::string FormatMetricsTable(const MetricsSnapshot& snapshot) {
  if (snapshot.Empty()) return "(no metrics recorded)\n";
  TextTable table({"metric", "value", "detail"});
  table.SetAlign(1, Align::kRight);
  for (const CounterSample& c : snapshot.counters) {
    table.AddRow({c.name, StrFormat("%llu", (unsigned long long)c.value), ""});
  }
  for (const GaugeSample& g : snapshot.gauges) {
    table.AddRow({g.name, FormatDouble(g.value, 6), "gauge"});
  }
  for (const HistogramSample& h : snapshot.histograms) {
    // Timing histograms end in "seconds" by convention; everything else
    // (sizes, counts) prints as plain numbers.
    bool is_duration = h.name.size() >= 7 &&
                       h.name.compare(h.name.size() - 7, 7, "seconds") == 0;
    auto fmt = [is_duration](double v) {
      return is_duration ? FormatDuration(v) : FormatDouble(v, 2);
    };
    table.AddRow(
        {h.name, StrFormat("%llu", (unsigned long long)h.count),
         StrFormat("mean %s  p50 %s  p95 %s  p99 %s  max %s",
                   fmt(h.Mean()).c_str(), fmt(h.Percentile(50)).c_str(),
                   fmt(h.Percentile(95)).c_str(),
                   fmt(h.Percentile(99)).c_str(), fmt(h.max).c_str())});
  }
  return table.ToString();
}

std::string MetricsJson(const MetricsSnapshot& snapshot,
                        const std::vector<SpanStat>& trace) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"emigre.metrics.v1\",\n";

  out << "  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << JsonString(c.name) << ": "
        << c.value;
  }
  out << (snapshot.counters.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << JsonString(g.name) << ": "
        << JsonNumber(g.value);
  }
  out << (snapshot.gauges.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    " << JsonString(h.name) << ": {";
    out << "\"count\": " << h.count << ", \"sum\": " << JsonNumber(h.sum)
        << ", \"min\": " << JsonNumber(h.min)
        << ", \"max\": " << JsonNumber(h.max)
        << ", \"mean\": " << JsonNumber(h.Mean())
        << ", \"p50\": " << JsonNumber(h.Percentile(50))
        << ", \"p95\": " << JsonNumber(h.Percentile(95))
        << ", \"p99\": " << JsonNumber(h.Percentile(99)) << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out << ", ";
      out << h.buckets[b];
    }
    out << "]}";
  }
  out << (snapshot.histograms.empty() ? "}" : "\n  }");

  if (!trace.empty()) {
    out << ",\n  \"trace\": [";
    for (size_t i = 0; i < trace.size(); ++i) {
      const SpanStat& s = trace[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"path\": "
          << JsonString(s.path) << ", \"depth\": " << s.depth
          << ", \"count\": " << s.count
          << ", \"seconds\": " << JsonNumber(s.total_seconds) << "}";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
  return out.str();
}

Status WriteMetricsJson(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const std::vector<SpanStat>& trace) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.good()) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  file << MetricsJson(snapshot, trace);
  file.flush();
  if (!file.good()) {
    return Status::IOError(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::OK();
}

Result<MetricsSnapshot> ParseMetricsJson(const std::string& json,
                                         std::vector<SpanStat>* trace_out) {
  EMIGRE_ASSIGN_OR_RETURN(JsonValue root, JsonParser(json).Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("metrics JSON: top level is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->string != "emigre.metrics.v1") {
    return Status::InvalidArgument(
        "metrics JSON: missing or unknown \"schema\"");
  }

  MetricsSnapshot out;
  if (const JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, v] : counters->object) {
      out.counters.push_back(
          CounterSample{name, static_cast<uint64_t>(NumberOr(&v, 0.0))});
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      out.gauges.push_back(GaugeSample{name, NumberOr(&v, 0.0)});
    }
  }
  if (const JsonValue* histograms = root.Find("histograms")) {
    for (const auto& [name, v] : histograms->object) {
      HistogramSample h;
      h.name = name;
      h.count = static_cast<uint64_t>(NumberOr(v.Find("count"), 0.0));
      h.sum = NumberOr(v.Find("sum"), 0.0);
      h.min = NumberOr(v.Find("min"), 0.0);
      h.max = NumberOr(v.Find("max"), 0.0);
      if (const JsonValue* buckets = v.Find("buckets")) {
        for (const JsonValue& b : buckets->array) {
          h.buckets.push_back(static_cast<uint64_t>(NumberOr(&b, 0.0)));
        }
      }
      h.buckets.resize(Histogram::kNumBuckets, 0);
      out.histograms.push_back(std::move(h));
    }
  }
  if (trace_out != nullptr) {
    trace_out->clear();
    if (const JsonValue* trace = root.Find("trace")) {
      for (const JsonValue& entry : trace->array) {
        SpanStat stat;
        if (const JsonValue* path = entry.Find("path")) stat.path = path->string;
        stat.depth = static_cast<int>(NumberOr(entry.Find("depth"), 0.0));
        stat.count = static_cast<uint64_t>(NumberOr(entry.Find("count"), 0.0));
        stat.total_seconds = NumberOr(entry.Find("seconds"), 0.0);
        trace_out->push_back(std::move(stat));
      }
    }
  }
  return out;
}

}  // namespace emigre::obs
