#ifndef EMIGRE_OBS_EXPORT_H_
#define EMIGRE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"
#include "util/status.h"

namespace emigre::obs {

/// \brief Sinks for metrics snapshots and trace trees.
///
/// Two output forms:
///   - a human-readable table (`FormatMetricsTable`) via util/table, the
///     thing `--trace` prints after a query;
///   - the machine-readable JSON (`MetricsJson` / `WriteMetricsJson`) that
///     `--metrics-out` and the bench binaries emit — the `BENCH_*.json`
///     perf-trajectory format.
///
/// JSON schema (`"schema": "emigre.metrics.v1"`), documented in
/// docs/observability.md:
///
///   {
///     "schema": "emigre.metrics.v1",
///     "counters":   {"ppr.flp.pushes": 1234, ...},
///     "gauges":     {"ppr.flp.max_queue": 17, ...},
///     "histograms": {"explain.query.seconds":
///                      {"count": 3, "sum": 0.5, "min": ..., "max": ...,
///                       "mean": ..., "p50": ..., "p95": ..., "p99": ...,
///                       "buckets": [0, 2, 1, ...]}, ...},
///     "trace":      [{"path": "explain/rank", "depth": 1,
///                     "count": 2, "seconds": 0.04}, ...]
///   }
///
/// `mean`/`p50`/`p95`/`p99` are derived from the buckets and ignored by the
/// parser; `ParseMetricsJson` reconstructs a `MetricsSnapshot` losslessly
/// from the raw fields (the round-trip the tests assert).

/// Human-readable table of a snapshot (typically a Delta).
std::string FormatMetricsTable(const MetricsSnapshot& snapshot);

/// Serializes a snapshot (plus an optional trace tree) as pretty JSON.
std::string MetricsJson(const MetricsSnapshot& snapshot,
                        const std::vector<SpanStat>& trace = {});

/// Writes `MetricsJson` to `path`, overwriting.
[[nodiscard]] Status WriteMetricsJson(const std::string& path,
                        const MetricsSnapshot& snapshot,
                        const std::vector<SpanStat>& trace = {});

/// Parses the emigre.metrics.v1 JSON back into a snapshot. The "trace"
/// section, when present, is returned through `trace_out` (optional).
[[nodiscard]] Result<MetricsSnapshot> ParseMetricsJson(
    const std::string& json, std::vector<SpanStat>* trace_out = nullptr);

// --- emigre.bench.v1 ------------------------------------------------------
//
// The perf-trajectory format every bench binary emits (BENCH_*.json) and
// the perf gate compares against bench/baselines/. Identical to
// emigre.metrics.v1 plus identification fields:
//
//   {
//     "schema": "emigre.bench.v1",
//     "bench": "ppr_kernels",       // bench binary name
//     "scale": 0,                   // EMIGRE_BENCH_SCALE the run used
//     "counters": {...}, "gauges": {...}, "histograms": {...},
//     "trace": [...]                // optional
//   }

/// \brief One bench run: which bench, at what scale, and what it measured.
struct BenchDoc {
  std::string bench;
  int scale = 0;
  MetricsSnapshot metrics;
  std::vector<SpanStat> trace;
};

/// Serializes a bench run as pretty emigre.bench.v1 JSON.
std::string BenchJson(const BenchDoc& doc);

/// Writes `BenchJson` to `path`, overwriting.
[[nodiscard]] Status WriteBenchJson(const std::string& path,
                                    const BenchDoc& doc);

/// Parses emigre.bench.v1 JSON back into a BenchDoc.
[[nodiscard]] Result<BenchDoc> ParseBenchJson(const std::string& json);

}  // namespace emigre::obs

#endif  // EMIGRE_OBS_EXPORT_H_
