#ifndef EMIGRE_OBS_PERFGATE_H_
#define EMIGRE_OBS_PERFGATE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/result.h"

namespace emigre::obs {

/// \brief Benchmark regression gate: compares a fresh emigre.bench.v1 run
/// against a checked-in baseline (bench/baselines/) with per-metric noise
/// tolerances, and fails on out-of-band drift in either direction.
///
/// Metrics are flattened to scalar series:
///   - counter `c`            -> "c"            (counter tolerance)
///   - gauge `g`              -> "g"            (counter tolerance)
///   - histogram `h`          -> "h/count"      (counter tolerance)
///                               "h/sum"        (latency tolerance when the
///                                               name ends in "seconds")
///
/// A metric passes when `current` lies in the two-sided band
/// `[baseline / (1 + tol), baseline * (1 + tol)]`. The lower bound is
/// deliberate: a current value far *below* baseline means the baseline is
/// stale (or the workload changed) and must be refreshed — silently keeping
/// it would let the band drift upward forever. Metrics whose values sit
/// below the noise floor on both sides are ignored, as are names matched by
/// a `skip` glob (nondeterministic under parallelism: cache hit/miss
/// splits, cancellation counts).

struct PerfGateOptions {
  /// Relative tolerance for event counts (counters, gauges, bucket counts).
  double counter_tol = 0.10;
  /// Relative tolerance for wall-clock sums (histograms named *seconds) —
  /// wide, because absolute timings vary run to run and machine to machine.
  double latency_tol = 0.50;
  /// Noise floors: a metric is compared only when baseline or current
  /// exceeds the floor (counts, and seconds respectively).
  double counter_min = 16.0;
  double latency_min = 1e-3;
  /// Glob patterns ('*' wildcard) of flattened metric names to skip.
  std::vector<std::string> skip;
  /// Absolute minimums, keyed by bench name then exact flattened metric
  /// name (the config is shared across every bench/baseline pair, so
  /// floors scope to the bench that emits the metric). Unlike the relative
  /// band, a floor is asserted REGARDLESS of the noise floors and skip
  /// globs — it encodes a hard contract ("this speedup stays above 1.0"),
  /// not a drift check, so a sub-`counter_min` value cannot dodge it. A
  /// floored metric absent from its bench's current run is a failure too.
  std::map<std::string, std::map<std::string, double>> floors;
};

/// Parses the checked-in gate configuration (emigre.perfgate.v1):
///   {"schema": "emigre.perfgate.v1", "counter_tol": 0.1, "latency_tol":
///    0.5, "counter_min": 16, "latency_min": 0.001, "skip": ["ppr.cache.*"],
///    "floors": {"ppr_kernels": {"bench.ppr_kernels.repair_speedup": 1.0}}}
/// Absent fields keep their defaults.
[[nodiscard]] Result<PerfGateOptions> ParsePerfGateConfig(
    const std::string& json);

/// \brief One flattened metric's comparison outcome.
struct PerfGateEntry {
  enum class Verdict {
    kOk,          ///< inside the tolerance band
    kSkipped,     ///< matched a skip glob
    kBelowFloor,  ///< both sides under the noise floor
    kRegression,  ///< current > baseline * (1 + tol)
    kOutOfBand,   ///< current < baseline / (1 + tol): stale baseline
    kMissing,     ///< in baseline (above floor) but absent from current
    kNew,         ///< only in current (reported, never a failure)
    kBelowMin,    ///< current < its configured absolute floor
  };
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when baseline is 0)
  double tolerance = 0.0;
  double floor = 0.0;  ///< configured absolute minimum (kBelowMin only)
  Verdict verdict = Verdict::kOk;

  bool Failed() const {
    return verdict == Verdict::kRegression || verdict == Verdict::kOutOfBand ||
           verdict == Verdict::kMissing || verdict == Verdict::kBelowMin;
  }
};

/// \brief Full comparison result; `pass` iff no entry failed.
struct PerfGateReport {
  std::string bench;
  int scale = 0;
  bool pass = true;
  size_t compared = 0;
  size_t failed = 0;
  size_t skipped = 0;
  std::vector<PerfGateEntry> entries;  ///< every flattened metric, in order

  /// Human-readable report: the per-metric diff table of failures (or a
  /// one-line pass summary) plus counts.
  std::string Format() const;
};

/// Compares `current` against `baseline`. Fails with InvalidArgument (a
/// usage error, not a regression) when the two runs are not comparable —
/// different bench names or scales.
[[nodiscard]] Result<PerfGateReport> ComparePerf(const BenchDoc& baseline,
                                                 const BenchDoc& current,
                                                 const PerfGateOptions& opts);

/// '*'-wildcard glob match (no character classes), anchored at both ends.
bool GlobMatch(const std::string& pattern, const std::string& text);

}  // namespace emigre::obs

#endif  // EMIGRE_OBS_PERFGATE_H_
