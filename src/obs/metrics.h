#ifndef EMIGRE_OBS_METRICS_H_
#define EMIGRE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace emigre::obs {

/// \brief Process-wide metrics for the PPR/EMiGRe pipeline.
///
/// Three metric kinds, all safe to touch from any thread:
///   - `Counter`: monotonic event counts (pushes performed, TESTs run).
///   - `Gauge`: last-written / high-watermark values (max queue depth).
///   - `Histogram`: latency/size distributions with percentile estimates.
///
/// Metrics live in the global `Registry`, are created on first use, and are
/// never destroyed, so hot paths may cache the returned reference:
///
///   static obs::Counter& pushes = EMIGRE_COUNTER("ppr.flp.pushes");
///   pushes.Increment(n);
///
/// Increments are relaxed atomics — a handful of nanoseconds — so counters
/// stay enabled unconditionally; trace spans (see trace.h) are the opt-in,
/// comparatively heavier layer. Naming convention: dot-separated
/// `<module>.<entity>.<what>`, with units spelled out in the final segment
/// when not a plain count (`.seconds`). See docs/observability.md for the
/// full catalog.

/// \brief Monotonic counter. Relaxed increments; exact totals.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-written value, with a compare-and-swap high-watermark helper.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if `v` is larger (watermark semantics).
  void SetMax(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram of positive doubles.
///
/// Buckets are log2-spaced: bucket 0 holds values ≤ `kFirstBound` (1 µs when
/// recording seconds) and each subsequent bucket doubles the upper bound, so
/// the 40 buckets span 1 µs .. ~6 days. Percentiles interpolate linearly
/// inside a bucket; the estimate's relative error is bounded by the bucket
/// width (a factor of 2 worst case, typically far less).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;
  static constexpr double kFirstBound = 1e-6;

  /// Upper bound of bucket `i` (inclusive).
  static double BucketBound(size_t i);
  /// Index of the bucket a value lands in.
  static size_t BucketIndex(double value);

  void Record(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  friend class Registry;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid when count_ > 0
  std::atomic<double> max_{0.0};
};

// --- Snapshots ------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<uint64_t> buckets;  // size Histogram::kNumBuckets

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Percentile estimate, `p` in [0, 100] (e.g. 50, 95, 99).
  double Percentile(double p) const;
};

/// \brief Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Folds `other` into this snapshot (combining runs or per-thread
  /// shards): counters and histogram counts/sums/buckets add; gauge values
  /// and histogram min/max take the extremum (max for gauges — they are
  /// watermarks in practice; min-of-mins / max-of-maxes for histograms).
  /// Metrics only present on one side carry over unchanged. The result
  /// stays name-sorted.
  void Merge(const MetricsSnapshot& other);
};

/// \brief `after − before`, the per-phase accounting primitive: counters and
/// histogram counts/sums/buckets subtract; gauges keep the `after` value
/// (they are not cumulative); histogram min/max also come from `after` (a
/// windowed min/max is not recoverable from two cumulative snapshots).
/// Metrics absent from `before` are treated as zero. Entries whose delta is
/// entirely zero are dropped, so a delta reads as "what this phase did".
MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after);

// --- Registry -------------------------------------------------------------

/// \brief Process-wide, thread-safe metric registry.
///
/// Lookup takes a mutex; hot paths should look up once and cache the
/// reference (the EMIGRE_COUNTER/GAUGE/HISTOGRAM macros do this with a
/// function-local static). Returned references stay valid forever —
/// `Reset()` zeroes values in place and never removes registrations.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name) EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mutex_);
  Histogram& GetHistogram(const std::string& name) EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const EXCLUDES(mutex_);

  /// Zeroes every metric (registrations and cached references survive).
  void Reset() EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  // The maps (not the metrics) are guarded: values are leaked-forever
  // atomics, so returned references outlive the lock by design.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace emigre::obs

/// Cached-handle accessors: one registry lookup per call site, ever.
#define EMIGRE_COUNTER(name)                                               \
  ([]() -> ::emigre::obs::Counter& {                                       \
    static ::emigre::obs::Counter& metric =                                \
        ::emigre::obs::Registry::Global().GetCounter(name);                \
    return metric;                                                         \
  }())
#define EMIGRE_GAUGE(name)                                                 \
  ([]() -> ::emigre::obs::Gauge& {                                         \
    static ::emigre::obs::Gauge& metric =                                  \
        ::emigre::obs::Registry::Global().GetGauge(name);                  \
    return metric;                                                         \
  }())
#define EMIGRE_HISTOGRAM(name)                                             \
  ([]() -> ::emigre::obs::Histogram& {                                     \
    static ::emigre::obs::Histogram& metric =                              \
        ::emigre::obs::Registry::Global().GetHistogram(name);              \
    return metric;                                                         \
  }())

#endif  // EMIGRE_OBS_METRICS_H_
