#ifndef EMIGRE_FAULT_FAULT_H_
#define EMIGRE_FAULT_FAULT_H_

/// \file
/// Deterministic, seed-driven fault injection (docs/robustness.md).
///
/// Production code marks the places that can actually fail — dataset
/// loaders, push engines, the thread pool, batch verification — with
/// `EMIGRE_FAULT_POINT("site")` (non-Status contexts) or
/// `EMIGRE_FAULT_POINT_STATUS("site")` (Status-returning contexts). In
/// normal builds both macros compile to `do {} while (false)`: zero code,
/// zero branches, zero overhead. Configured with
/// `-DEMIGRE_FAULT_INJECTION=ON`, each site consults the process-wide
/// `FaultRegistry`; a site armed with a `FaultSpec` then fires a
/// Status-error, an induced latency, or a foreign exception on a
/// deterministic trigger (nth hit or seeded per-hit probability).
///
/// Every firing increments the `fault.<site>.fired` obs counter and the
/// registry's own per-site tally, so the chaos harness can assert the two
/// accounts agree — no fault fires unobserved.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace emigre::fault {

/// \brief What an armed fault does when its trigger fires.
enum class FaultKind {
  /// `Check` returns the configured error Status (Status contexts) /
  /// `CheckOrThrow` throws it wrapped in an `InjectedFaultError`.
  kStatus,
  /// Sleeps for `latency_seconds`, then proceeds normally — models a slow
  /// dependency rather than a failing one (exercises deadline paths).
  kLatency,
  /// Throws a `std::runtime_error` — models a foreign exception escaping a
  /// dependency (exercises the exception-safety boundaries).
  kThrow,
};

std::string_view FaultKindName(FaultKind kind);

/// \brief One armed fault: a site, a kind, and a deterministic trigger.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kStatus;

  /// Trigger: `nth > 0` fires on the nth hit of the site after arming
  /// (1-based; hits count from `Arm`/`Reset`). `nth == 0` draws per hit
  /// from the registry's seeded RNG and fires with `probability`.
  size_t nth = 1;
  double probability = 0.0;

  /// Cap on firings (0 = unlimited). With `nth > 0` the fault re-fires on
  /// every subsequent hit once reached, up to this cap — a persistent
  /// fault; set `max_fires = 1` for a transient one.
  size_t max_fires = 1;

  /// Error category and message of `kStatus` faults. An empty message is
  /// replaced by "injected fault at <site>".
  StatusCode code = StatusCode::kInternal;
  std::string message;

  /// Sleep duration of `kLatency` faults.
  double latency_seconds = 0.001;
};

/// \brief Exception form of an injected Status fault, for non-Status
/// contexts. Converted back to its Status at the same boundaries as any
/// other `StatusError`.
class InjectedFaultError : public StatusError {
 public:
  using StatusError::StatusError;
};

/// \brief Process-wide registry of armed faults and site hit accounting.
///
/// Thread-safe. The unarmed fast path is one relaxed atomic load; tests
/// arm faults, run the scenario, and `Reset()` between seeds. Determinism:
/// nth-hit triggers depend only on the per-site hit count, and
/// probabilistic triggers draw from a `SetSeed`-controlled RNG under the
/// registry lock — a single-threaded run with a fixed seed fires an
/// identical fault schedule every time (concurrent hits of one site are
/// ordered by the lock, so multi-threaded schedules are deterministic per
/// interleaving, not across them).
class FaultRegistry {
 public:
  static FaultRegistry& Global() {
    // Intentionally leaked: fault points may fire during static teardown.
    static FaultRegistry* registry = new FaultRegistry();  // NOLINT(naked-new)
    return *registry;
  }

  /// Arms `spec`, replacing any fault previously armed at the same site
  /// (hit counts restart). Rejects malformed specs: empty site, no
  /// trigger (nth == 0 with probability <= 0), kStatus with kOk.
  [[nodiscard]] Status Arm(FaultSpec spec) {
    if (spec.site.empty()) {
      return Status::InvalidArgument("fault spec has an empty site");
    }
    if (spec.nth == 0 && spec.probability <= 0.0) {
      return Status::InvalidArgument(
          "fault spec for " + spec.site +
          " has no trigger: nth == 0 requires probability > 0");
    }
    if (spec.kind == FaultKind::kStatus && spec.code == StatusCode::kOk) {
      return Status::InvalidArgument(
          "fault spec for " + spec.site + " injects StatusCode::kOk");
    }
    if (spec.message.empty()) {
      spec.message = "injected fault at " + spec.site;
    }
    util::MutexLock lock(&mutex_);
    SiteState& state = sites_[spec.site];
    state.spec = spec;
    state.armed = true;
    state.hits = 0;
    state.fires = 0;
    armed_count_.store(CountArmedLocked(), std::memory_order_relaxed);
    return Status::OK();
  }

  /// Arms from a textual spec, the CLI / check.sh surface:
  ///   "site=<name>[,kind=status|latency|throw][,nth=<N>][,p=<prob>]
  ///    [,max=<N>][,code=<StatusCode name>][,latency=<seconds>][,msg=<text>]"
  [[nodiscard]] Status ArmFromString(std::string_view text) {
    FaultSpec spec;
    std::vector<std::string> fields;
    for (size_t pos = 0; pos <= text.size();) {
      size_t comma = text.find(',', pos);
      if (comma == std::string_view::npos) comma = text.size();
      if (comma > pos) fields.emplace_back(text.substr(pos, comma - pos));
      pos = comma + 1;
    }
    for (const std::string& field : fields) {
      size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault spec field without '=': " +
                                       field);
      }
      std::string key = field.substr(0, eq);
      std::string value = field.substr(eq + 1);
      try {
      if (key == "site") {
        spec.site = value;
      } else if (key == "kind") {
        if (value == "status") {
          spec.kind = FaultKind::kStatus;
        } else if (value == "latency") {
          spec.kind = FaultKind::kLatency;
        } else if (value == "throw") {
          spec.kind = FaultKind::kThrow;
        } else {
          return Status::InvalidArgument("unknown fault kind: " + value);
        }
      } else if (key == "nth") {
        spec.nth = static_cast<size_t>(std::stoull(value));
      } else if (key == "p") {
        spec.nth = 0;
        spec.probability = std::stod(value);
      } else if (key == "max") {
        spec.max_fires = static_cast<size_t>(std::stoull(value));
      } else if (key == "code") {
        bool known = false;
        for (int c = 1; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
          if (value == StatusCodeToString(static_cast<StatusCode>(c))) {
            spec.code = static_cast<StatusCode>(c);
            known = true;
            break;
          }
        }
        if (!known) {
          return Status::InvalidArgument("unknown status code: " + value);
        }
      } else if (key == "latency") {
        spec.latency_seconds = std::stod(value);
      } else if (key == "msg") {
        spec.message = value;
      } else {
        return Status::InvalidArgument("unknown fault spec key: " + key);
      }
      } catch (const std::exception&) {
        return Status::InvalidArgument("unparsable fault spec field: " +
                                       field);
      }
    }
    return Arm(std::move(spec));
  }

  /// Disarms every fault and zeroes all hit/fire accounting. The seed is
  /// untouched (call `SetSeed` per chaos schedule).
  void Reset() {
    util::MutexLock lock(&mutex_);
    sites_.clear();
    armed_count_.store(0, std::memory_order_relaxed);
  }

  /// Reseeds the probabilistic-trigger RNG.
  void SetSeed(uint64_t seed) {
    util::MutexLock lock(&mutex_);
    rng_ = Rng(seed);
  }

  bool armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Hits/fires of one site since it was last armed (0 for unknown sites).
  size_t hits(std::string_view site) const {
    util::MutexLock lock(&mutex_);
    auto it = sites_.find(std::string(site));
    return it == sites_.end() ? 0 : it->second.hits;
  }
  size_t fires(std::string_view site) const {
    util::MutexLock lock(&mutex_);
    auto it = sites_.find(std::string(site));
    return it == sites_.end() ? 0 : it->second.fires;
  }

  /// Total firings across all sites since the last `Reset`.
  size_t total_fires() const {
    util::MutexLock lock(&mutex_);
    size_t total = 0;
    for (const auto& [site, state] : sites_) total += state.fires;
    return total;
  }

  /// (site, fires) for every site with at least one hit, sorted by site —
  /// the registry side of the metrics-accounting assertion.
  std::vector<std::pair<std::string, size_t>> FireCounts() const {
    util::MutexLock lock(&mutex_);
    std::vector<std::pair<std::string, size_t>> out;
    for (const auto& [site, state] : sites_) {
      out.emplace_back(site, state.fires);
    }
    return out;
  }

  /// The `EMIGRE_FAULT_POINT_STATUS` body: returns the injected error when
  /// a kStatus fault fires, sleeps through kLatency faults, throws kThrow
  /// faults. OK when the site is unarmed or the trigger does not fire.
  [[nodiscard]] Status Check(const char* site) {
    if (!armed()) return Status::OK();
    FaultSpec fired;
    if (!Hit(site, &fired)) return Status::OK();
    switch (fired.kind) {
      case FaultKind::kStatus:
        return Status(fired.code, fired.message);
      case FaultKind::kLatency:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fired.latency_seconds));
        return Status::OK();
      case FaultKind::kThrow:
        throw std::runtime_error(fired.message);
    }
    return Status::OK();
  }

  /// The `EMIGRE_FAULT_POINT` body, for contexts that cannot return a
  /// Status: kStatus faults travel as `InjectedFaultError` (converted back
  /// at the library's exception boundaries), the other kinds behave as in
  /// `Check`.
  void CheckOrThrow(const char* site) {
    if (!armed()) return;
    FaultSpec fired;
    if (!Hit(site, &fired)) return;
    switch (fired.kind) {
      case FaultKind::kStatus:
        throw InjectedFaultError(Status(fired.code, fired.message));
      case FaultKind::kLatency:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fired.latency_seconds));
        return;
      case FaultKind::kThrow:
        throw std::runtime_error(fired.message);
    }
  }

 private:
  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    size_t hits = 0;
    size_t fires = 0;
  };

  FaultRegistry() = default;

  size_t CountArmedLocked() const REQUIRES(mutex_) {
    size_t count = 0;
    for (const auto& [site, state] : sites_) {
      if (state.armed) ++count;
    }
    return count;
  }

  /// Counts the hit; true iff the armed trigger fires. The spec is copied
  /// out under the lock so every side effect — including the
  /// `fault.<site>.fired` counter, whose registry has a lock of its own —
  /// runs outside it: the fault registry lock never nests another lock.
  bool Hit(const char* site, FaultSpec* fired) EXCLUDES(mutex_) {
    {
      util::MutexLock lock(&mutex_);
      auto it = sites_.find(site);
      if (it == sites_.end() || !it->second.armed) return false;
      SiteState& state = it->second;
      ++state.hits;
      if (state.spec.max_fires > 0 && state.fires >= state.spec.max_fires) {
        return false;
      }
      bool fire = state.spec.nth > 0
                      ? state.hits >= state.spec.nth
                      : rng_.NextDouble() < state.spec.probability;
      if (!fire) return false;
      ++state.fires;
      *fired = state.spec;
    }
    obs::Registry::Global()
        .GetCounter("fault." + fired->site + ".fired")
        .Increment();
    return true;
  }

  mutable util::Mutex mutex_;
  std::map<std::string, SiteState> sites_ GUARDED_BY(mutex_);
  std::atomic<size_t> armed_count_{0};
  Rng rng_ GUARDED_BY(mutex_) = Rng(0x9E3779B97F4A7C15ull);
};

inline std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStatus:
      return "status";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kThrow:
      return "throw";
  }
  return "?";
}

/// True when this build compiled the fault sites in
/// (`-DEMIGRE_FAULT_INJECTION=ON`); false when every site is a no-op.
#ifdef EMIGRE_FAULT_INJECTION
inline constexpr bool kFaultInjectionEnabled = true;
#else
inline constexpr bool kFaultInjectionEnabled = false;
#endif

/// Every `EMIGRE_FAULT_POINT*` site compiled into the library, one line per
/// site (tools/lint.py enforces name uniqueness). The chaos harness arms
/// randomized schedules over this catalog; keep it in sync when adding
/// sites.
inline constexpr const char* kFaultSites[] = {
    "data.load_dataset",       ///< CSV dataset loader
    "data.bin.read",           ///< binary dataset reader (binfmt)
    "graph.load",              ///< graph file reader
    "graph.snapshot.map",      ///< CSR snapshot mapper (csr_snapshot)
    "ppr.flp.kernel",          ///< forward-push kernel loop
    "ppr.flp.legacy",          ///< legacy forward push loop
    "ppr.flp.fast",            ///< priority-scheduled forward push (kFast)
    "ppr.rlp.kernel",          ///< reverse-push kernel loop
    "ppr.rlp.legacy",          ///< legacy reverse push loop
    "ppr.rlp.fast",            ///< priority-scheduled reverse push (kFast)
    "ppr.rlp.fast.batch",      ///< batched multi-target reverse push (kFast)
    "ppr.dyn.refine",          ///< dynamic-push repair refine
    "ppr.cache.fill",          ///< ReversePushCache miss fill
    "ppr.cache.fill.batch",    ///< ReversePushCache batched miss fill
    "threadpool.task",         ///< ThreadPool worker task execution
    "threadpool.serial",       ///< ParallelFor's single-thread fast path
    "explain.parallel.batch",  ///< ParallelTester batch entry
    "explain.query",           ///< Emigre::Explain entry
    "eval.scenario",           ///< eval runner per-record attempt
};

}  // namespace emigre::fault

#ifdef EMIGRE_FAULT_INJECTION
/// Injection point for non-Status contexts: injected Status faults travel
/// as `InjectedFaultError` to the nearest conversion boundary.
#define EMIGRE_FAULT_POINT(site) \
  ::emigre::fault::FaultRegistry::Global().CheckOrThrow(site)
/// Injection point for Status-returning functions: injected Status faults
/// propagate as an early return.
#define EMIGRE_FAULT_POINT_STATUS(site) \
  EMIGRE_RETURN_IF_ERROR(::emigre::fault::FaultRegistry::Global().Check(site))
#else
#define EMIGRE_FAULT_POINT(site) \
  do {                           \
  } while (false)
#define EMIGRE_FAULT_POINT_STATUS(site) \
  do {                                  \
  } while (false)
#endif

#endif  // EMIGRE_FAULT_FAULT_H_
