#include "recsys/rec_list.h"

#include <algorithm>

namespace emigre::recsys {

RecommendationList::RecommendationList(std::vector<ScoredItem> items)
    : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
}

size_t RecommendationList::RankOf(graph::NodeId item) const {
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].item == item) return i;
  }
  return items_.size();
}

double RecommendationList::ScoreOf(graph::NodeId item) const {
  size_t rank = RankOf(item);
  return rank < items_.size() ? items_[rank].score : 0.0;
}

RecommendationList RecommendationList::TopN(size_t n) const {
  RecommendationList out;
  out.items_.assign(items_.begin(),
                    items_.begin() + std::min(n, items_.size()));
  return out;
}

}  // namespace emigre::recsys
