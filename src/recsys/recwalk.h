#ifndef EMIGRE_RECSYS_RECWALK_H_
#define EMIGRE_RECSYS_RECWALK_H_

#include <cstddef>

#include "graph/hin_graph.h"
#include "util/result.h"

namespace emigre::recsys {

/// \brief Parameters for the RecWalk-style graph augmentation.
struct RecWalkOptions {
  /// Mixing weight β between the original inter-entity transitions and the
  /// item–item similarity model (paper §6.1 sets β = 0.5). β = 1 reduces to
  /// the plain HIN walk.
  double beta = 0.5;

  /// Keep, per item, at most this many most-similar items (sparsifies the
  /// similarity model; 0 means keep all).
  size_t top_k_similar = 10;

  /// Discard similarity scores below this threshold.
  double min_similarity = 0.05;
};

/// \brief Builds the RecWalk-augmented graph of Nikolakopoulos & Karypis
/// (the paper's substrate [24]), adapted to the HIN setting.
///
/// RecWalk defines a nearly uncoupled walk whose item-level transition is
///   M = β·H + (1−β)·S,
/// where H is the original transition and S an item–item similarity model.
/// We realize M by graph rewriting, which keeps every PPR engine unchanged:
/// item–item "similar-to" edges (cosine similarity over co-interaction
/// vectors) are added, and weights are scaled per item so that a walk at an
/// item follows an original edge with probability β and a similarity edge
/// with probability 1−β. Items with no similar neighbors keep their
/// original transitions intact.
///
/// `item_type` selects which nodes participate in the similarity model;
/// similarity is computed from common in-neighbors of user type
/// `user_type` ("users who interacted with both").
///
/// Returns the augmented copy of `g` (the input is not modified) with a new
/// edge type "similar-to" registered.
[[nodiscard]]
Result<graph::HinGraph> BuildRecWalkGraph(const graph::HinGraph& g,
                                          graph::NodeTypeId item_type,
                                          graph::NodeTypeId user_type,
                                          const RecWalkOptions& opts = {});

}  // namespace emigre::recsys

#endif  // EMIGRE_RECSYS_RECWALK_H_
