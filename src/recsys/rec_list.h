#ifndef EMIGRE_RECSYS_REC_LIST_H_
#define EMIGRE_RECSYS_REC_LIST_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace emigre::recsys {

/// \brief One candidate item with its relevance score p(u, t).
struct ScoredItem {
  graph::NodeId item = graph::kInvalidNode;
  double score = 0.0;

  friend bool operator==(const ScoredItem&, const ScoredItem&) = default;
};

/// \brief A descending-score ranking of candidate items for one user.
///
/// Ties are broken by ascending node id so rankings are deterministic —
/// the explanation algorithms compare rankings before/after counterfactual
/// edits and must not be confused by arbitrary tie order.
class RecommendationList {
 public:
  RecommendationList() = default;

  /// Takes unordered scored items and sorts them into ranking order.
  explicit RecommendationList(std::vector<ScoredItem> items);

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  const ScoredItem& at(size_t rank) const { return items_.at(rank); }
  const std::vector<ScoredItem>& items() const { return items_; }

  /// The top-1 recommendation (`rec` of paper Eq. 2), or kInvalidNode if
  /// the candidate set is empty.
  graph::NodeId Top() const {
    return items_.empty() ? graph::kInvalidNode : items_.front().item;
  }

  /// 0-based rank of `item`, or `size()` when absent.
  size_t RankOf(graph::NodeId item) const;

  bool Contains(graph::NodeId item) const { return RankOf(item) < size(); }

  /// Score of `item`, or 0.0 when absent.
  double ScoreOf(graph::NodeId item) const;

  /// A copy truncated to the best `n` entries.
  RecommendationList TopN(size_t n) const;

 private:
  std::vector<ScoredItem> items_;
};

}  // namespace emigre::recsys

#endif  // EMIGRE_RECSYS_REC_LIST_H_
