#include "recsys/recwalk.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace emigre::recsys {

using graph::EdgeTypeId;
using graph::HinGraph;
using graph::NodeId;
using graph::NodeTypeId;

Result<HinGraph> BuildRecWalkGraph(const HinGraph& g, NodeTypeId item_type,
                                   NodeTypeId user_type,
                                   const RecWalkOptions& opts) {
  if (!(opts.beta >= 0.0 && opts.beta <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("RecWalk beta must be in [0,1], got %f", opts.beta));
  }
  if (item_type >= g.NumNodeTypes() || user_type >= g.NumNodeTypes()) {
    return Status::InvalidArgument("unknown item/user node type");
  }

  // --- Item–item cosine similarity over shared user interactions. ---------
  // norms[i] = ||interaction vector of item i||; dot products accumulate by
  // iterating each user's item neighborhood once (the co-interaction trick),
  // which is O(Σ_u deg_items(u)^2) — fine at the paper's user degrees (~22).
  std::vector<double> norm_sq(g.NumNodes(), 0.0);
  std::map<std::pair<NodeId, NodeId>, double> dot;

  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.NodeType(u) != user_type) continue;
    // Deduplicate multi-edges (rated + reviewed) into one weight per item.
    std::unordered_map<NodeId, double> items;
    g.ForEachOutEdge(u, [&](NodeId dst, EdgeTypeId, double w) {
      if (g.NodeType(dst) == item_type) items[dst] += w;
    });
    std::vector<std::pair<NodeId, double>> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [i, wi] : sorted) norm_sq[i] += wi * wi;
    for (size_t a = 0; a < sorted.size(); ++a) {
      for (size_t b = a + 1; b < sorted.size(); ++b) {
        dot[{sorted[a].first, sorted[b].first}] +=
            sorted[a].second * sorted[b].second;
      }
    }
  }

  // Per-item top-k similar neighbors above the threshold.
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, double>>> similar;
  for (const auto& [pair, d] : dot) {
    auto [i, j] = pair;
    double denom = std::sqrt(norm_sq[i] * norm_sq[j]);
    if (denom <= 0.0) continue;
    double cos = d / denom;
    if (cos < opts.min_similarity) continue;
    similar[i].emplace_back(j, cos);
    similar[j].emplace_back(i, cos);
  }
  for (auto& [i, list] : similar) {
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (opts.top_k_similar > 0 && list.size() > opts.top_k_similar) {
      list.resize(opts.top_k_similar);
    }
  }

  // --- Rewrite the graph: M = β·H + (1−β)·S at item nodes. ----------------
  HinGraph out;
  for (NodeTypeId t = 0; t < g.NumNodeTypes(); ++t) {
    out.RegisterNodeType(g.NodeTypeName(t));
  }
  for (EdgeTypeId t = 0; t < g.NumEdgeTypes(); ++t) {
    out.RegisterEdgeType(g.EdgeTypeName(t));
  }
  EdgeTypeId similar_type = out.RegisterEdgeType("similar-to");

  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    out.AddNode(g.NodeType(n), g.Label(n));
  }
  for (NodeId src = 0; src < g.NumNodes(); ++src) {
    bool mixes = g.NodeType(src) == item_type && similar.count(src) > 0 &&
                 g.OutWeight(src) > 0.0;
    double edge_scale = mixes ? opts.beta : 1.0;
    for (const graph::Edge& e : g.OutEdges(src)) {
      // β = 0 with similarity present would zero original edges; keep a
      // vanishing weight instead so the edge (an existing user action)
      // remains representable in the graph.
      double w = std::max(e.weight * edge_scale, 1e-12);
      EMIGRE_RETURN_IF_ERROR(out.AddEdge(src, e.node, e.type, w));
    }
    if (g.NodeType(src) != item_type) continue;
    auto it = similar.find(src);
    if (it == similar.end() || it->second.empty()) continue;
    double sim_total = 0.0;
    for (const auto& [j, cos] : it->second) sim_total += cos;
    if (sim_total <= 0.0) continue;
    // Weight budget for the similarity block: (1−β) of the item's original
    // out-weight (or a unit budget when the item had no out-edges at all).
    double orig_total = g.OutWeight(src);
    double budget =
        orig_total > 0.0 ? (1.0 - opts.beta) * orig_total : 1.0;
    if (budget <= 0.0) continue;
    for (const auto& [j, cos] : it->second) {
      EMIGRE_RETURN_IF_ERROR(
          out.AddEdge(src, j, similar_type, budget * cos / sim_total));
    }
  }
  return out;
}

}  // namespace emigre::recsys
