#ifndef EMIGRE_RECSYS_RECOMMENDER_H_
#define EMIGRE_RECSYS_RECOMMENDER_H_

#include <vector>

#include "graph/traits.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ppr/forward_push.h"
#include "ppr/kernels.h"
#include "ppr/options.h"
#include "ppr/power_iteration.h"
#include "ppr/workspace.h"
#include "recsys/rec_list.h"

namespace emigre::recsys {

/// \brief How candidate items are scored.
enum class Scorer {
  /// Exact PPR by power iteration — the reference, used everywhere
  /// correctness matters (the TEST verifier in particular).
  kPowerIteration,
  /// Forward Local Push estimates — cheaper on large graphs, but a lower
  /// bound of the true PPR whose error can reorder near-tied items. Offered
  /// for throughput-sensitive serving paths and as an ablation.
  kForwardPush,
};

/// \brief Parameters of the PPR recommender (paper Eq. 2).
struct RecommenderOptions {
  /// PPR parameters (α, tolerances).
  ppr::PprOptions ppr;

  /// Node type of recommendable items. Candidates are all nodes of this
  /// type except those the user already points an edge to (the paper's
  /// `I \ N_out(u)`), and except the user itself.
  graph::NodeTypeId item_type = graph::kInvalidNodeType;

  /// Scoring engine (see Scorer).
  Scorer scorer = Scorer::kPowerIteration;
};

/// \brief True if `user` has any out-edge to `node` in the view `g`.
///
/// Implemented via traversal so it works uniformly over `HinGraph`,
/// `GraphOverlay` and `CsrGraph` (the latter has no HasEdge lookup).
template <graph::GraphLike G>
bool HasOutEdgeTo(const G& g, graph::NodeId user, graph::NodeId node) {
  bool found = false;
  g.ForEachOutEdge(user, [&](graph::NodeId dst, graph::EdgeTypeId, double) {
    if (dst == node) found = true;
  });
  return found;
}

/// \brief True if `item` is a recommendation candidate for `user` in `g`:
/// an item-typed node the user has no outgoing edge to.
template <graph::GraphLike G>
bool IsCandidateItem(const G& g, graph::NodeId user, graph::NodeId item,
                     graph::NodeTypeId item_type) {
  if (item == user) return false;
  if (g.NodeType(item) != item_type) return false;
  return !HasOutEdgeTo(g, user, item);
}

/// \brief Scores every candidate item for `user` with PPR and returns the
/// full ranking (descending score, id-ascending tie-break).
///
/// This is the recommender of paper §3.2: relevance p(u, t) = PPR(u, t),
/// candidates restricted to items the user has not interacted with, and the
/// top-1 of the ranking being `rec`.
template <graph::GraphLike G>
RecommendationList RankItems(const G& g, graph::NodeId user,
                             const RecommenderOptions& opts) {
  EMIGRE_SPAN("rank");
  EMIGRE_COUNTER("recsys.rank.calls").Increment();
  std::vector<double> scores =
      opts.scorer == Scorer::kForwardPush
          ? ppr::ForwardPush(g, user, opts.ppr).estimate
          : ppr::PowerIterationPpr(g, user, opts.ppr);

  // Collect the user's current out-neighborhood once (O(deg)) instead of
  // probing per item.
  std::vector<char> interacted(g.NumNodes(), 0);
  g.ForEachOutEdge(user, [&](graph::NodeId dst, graph::EdgeTypeId, double) {
    interacted[dst] = 1;
  });

  std::vector<ScoredItem> scored;
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (n == user || interacted[n]) continue;
    if (g.NodeType(n) != opts.item_type) continue;
    scored.push_back(ScoredItem{n, scores[n]});
  }
  return RecommendationList(std::move(scored));
}

/// \brief Workspace-backed `RankItems`: identical scores and ranking, but
/// the PPR scratch state and the interacted-bitmap live in the reusable
/// `PushWorkspace` instead of per-call allocations. Passing nullptr falls
/// back to the allocating overload.
template <graph::GraphLike G>
RecommendationList RankItems(const G& g, graph::NodeId user,
                             const RecommenderOptions& opts,
                             ppr::PushWorkspace* ws) {
  if (ws == nullptr) return RankItems(g, user, opts);
  EMIGRE_SPAN("rank");
  EMIGRE_COUNTER("recsys.rank.calls").Increment();
  const size_t n = g.NumNodes();
  std::vector<ScoredItem> scored;

  if (opts.scorer == Scorer::kForwardPush &&
      opts.ppr.engine != ppr::PushEngine::kLegacy) {
    // Fully sparse path: scores stay in the workspace (untouched ⇒ 0.0,
    // exactly as the legacy dense vector starts at 0.0).
    if (opts.ppr.engine == ppr::PushEngine::kFast) {
      ppr::ForwardPushKernelFast(g, user, opts.ppr, *ws);
    } else {
      ppr::ForwardPushKernel(g, user, opts.ppr, *ws);
    }
    g.ForEachOutEdge(user, [&](graph::NodeId dst, graph::EdgeTypeId,
                               double) { ws->Mark(dst); });
    for (graph::NodeId v = 0; v < n; ++v) {
      if (v == user || ws->Marked(v)) continue;
      if (g.NodeType(v) != opts.item_type) continue;
      scored.push_back(ScoredItem{v, ws->Estimate(v)});
    }
    return RecommendationList(std::move(scored));
  }

  // Dense scorers: reuse the workspace's dense buffers for the
  // distribution and its epoch marks for the interacted bitmap.
  std::vector<double>* scores = nullptr;
  std::vector<double> legacy_scores;
  if (opts.scorer == Scorer::kForwardPush) {
    legacy_scores = ppr::ForwardPush(g, user, opts.ppr).estimate;
    scores = &legacy_scores;
  } else {
    ppr::PowerIterationPprInto(g, user, opts.ppr, *ws, &scores);
  }
  ws->Begin(n);
  g.ForEachOutEdge(user, [&](graph::NodeId dst, graph::EdgeTypeId, double) {
    ws->Mark(dst);
  });
  for (graph::NodeId v = 0; v < n; ++v) {
    if (v == user || ws->Marked(v)) continue;
    if (g.NodeType(v) != opts.item_type) continue;
    scored.push_back(ScoredItem{v, (*scores)[v]});
  }
  return RecommendationList(std::move(scored));
}

/// \brief The top-1 recommendation `rec` for `user` (Eq. 2), or
/// kInvalidNode when no candidate exists.
template <graph::GraphLike G>
graph::NodeId Recommend(const G& g, graph::NodeId user,
                        const RecommenderOptions& opts) {
  return RankItems(g, user, opts).Top();
}

/// Workspace-backed variant of `Recommend` (see the RankItems overload).
template <graph::GraphLike G>
graph::NodeId Recommend(const G& g, graph::NodeId user,
                        const RecommenderOptions& opts,
                        ppr::PushWorkspace* ws) {
  return RankItems(g, user, opts, ws).Top();
}

}  // namespace emigre::recsys

#endif  // EMIGRE_RECSYS_RECOMMENDER_H_
