#include "check/selfcheck.h"

#include <algorithm>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "explain/emigre.h"
#include "graph/overlay.h"
#include "graph/types.h"
#include "obs/trace.h"
#include "ppr/dynamic.h"
#include "ppr/forward_push.h"
#include "ppr/kernels.h"
#include "ppr/reverse_push.h"
#include "ppr/workspace.h"
#include "util/rng.h"

namespace emigre::check {
namespace {

void Record(SelfCheckReport* report, const std::string& suite,
            const Status& st) {
  ++report->checks_run;
  if (st.ok()) {
    report->lines.push_back(suite + ": OK");
  } else {
    ++report->violations;
    report->lines.push_back(suite + ": FAIL " + st.message());
  }
}

/// Sample `k` distinct node ids, preferring nodes of `type` (falling back
/// to arbitrary nodes when fewer than `k` exist of that type).
std::vector<graph::NodeId> SampleNodes(const graph::HinGraph& g, Rng& rng,
                                       size_t k, graph::NodeTypeId type) {
  std::vector<graph::NodeId> pool;
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (type == graph::kInvalidNodeType || g.NodeType(n) == type) {
      pool.push_back(n);
    }
  }
  if (pool.size() < k) {
    for (graph::NodeId n = 0; n < g.NumNodes(); ++n) pool.push_back(n);
  }
  std::vector<graph::NodeId> out;
  for (size_t idx : rng.SampleWithoutReplacement(pool.size(),
                                                 std::min(k, pool.size()))) {
    out.push_back(pool[idx]);
  }
  return out;
}

/// A node of `type` with at least one out-edge, or kInvalidNode.
graph::NodeId PickActiveNode(const graph::HinGraph& g, Rng& rng,
                             graph::NodeTypeId type) {
  std::vector<graph::NodeId> pool;
  for (graph::NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.OutDegree(n) == 0) continue;
    if (type != graph::kInvalidNodeType && g.NodeType(n) != type) continue;
    pool.push_back(n);
  }
  if (pool.empty()) return graph::kInvalidNode;
  return pool[rng.NextBounded(pool.size())];
}

void RunPprSuites(const graph::HinGraph& g,
                  const explain::EmigreOptions& opts,
                  const SelfCheckOptions& sc, Rng& rng,
                  SelfCheckReport* report) {
  const ppr::PprOptions& ppr_opts = opts.rec.ppr;

  // Static FLP identity (Eq. 3) from sampled sources.
  graph::NodeTypeId user_type = g.FindNodeType("user");
  for (graph::NodeId s :
       SampleNodes(g, rng, sc.num_samples, user_type)) {
    ppr::PushResult state = ppr::ForwardPush(g, s, ppr_opts);
    Record(report, "flp(source " + std::to_string(s) + ")",
           ValidateForwardPushInvariant(g, s, state, ppr_opts));
  }

  // Static RLP identity (Eq. 4) toward sampled targets.
  for (graph::NodeId t :
       SampleNodes(g, rng, sc.num_samples, opts.rec.item_type)) {
    ppr::PushResult state = ppr::ReversePush(g, t, ppr_opts);
    Record(report, "rlp(target " + std::to_string(t) + ")",
           ValidateReversePushInvariant(g, t, state, ppr_opts));
  }

  // Kernel engines on ONE workspace reused across every sample: the Eq. 3/4
  // identities must hold on epoch-stamped workspace state exactly as on the
  // freshly-allocated dense reference, and the estimates must agree bitwise
  // (same push schedule, same float-op order).
  ppr::PushWorkspace ws;
  for (graph::NodeId s : SampleNodes(g, rng, sc.num_samples, user_type)) {
    ppr::KernelResult kr = ppr::ForwardPushKernel(g, s, ppr_opts, ws);
    ppr::PushResult state =
        ppr::ExportDensePush(ws, g.NumNodes(), kr.residual_mass);
    Status st = ValidateForwardPushInvariant(g, s, state, ppr_opts);
    if (st.ok() && state.estimate != ppr::ForwardPush(g, s, ppr_opts).estimate) {
      st = Status::Internal("kernel estimates differ from legacy ForwardPush");
    }
    Record(report, "flp-kernel(source " + std::to_string(s) + ")", st);
  }
  for (graph::NodeId t :
       SampleNodes(g, rng, sc.num_samples, opts.rec.item_type)) {
    ppr::KernelResult kr = ppr::ReversePushKernel(g, t, ppr_opts, ws);
    ppr::PushResult state =
        ppr::ExportDensePush(ws, g.NumNodes(), kr.residual_mass);
    Status st = ValidateReversePushInvariant(g, t, state, ppr_opts);
    if (st.ok() && state.estimate != ppr::ReversePush(g, t, ppr_opts).estimate) {
      st = Status::Internal("kernel estimates differ from legacy ReversePush");
    }
    Record(report, "rlp-kernel(target " + std::to_string(t) + ")", st);
  }

  // FLP identity under dynamic edge updates ([38]): remove then re-add a
  // random out-edge on a mutable copy, repairing the push state in place,
  // and re-verify Eq. 3 after every repair.
  graph::HinGraph mutable_g = g;
  graph::NodeId source = PickActiveNode(mutable_g, rng, user_type);
  if (source != graph::kInvalidNode) {
    // Legacy dense refine and workspace-backed sparse refine run the same
    // edit sequence side by side; Eq. 3 must hold for both after every
    // repair, and their states must stay bitwise identical.
    ppr::DynamicForwardPush<graph::HinGraph> dyn(mutable_g, source, ppr_opts);
    ppr::DynamicForwardPush<graph::HinGraph> dyn_ws(mutable_g, source,
                                                    ppr_opts, &ws);
    auto check_both = [&](const std::string& suite) {
      ppr::PushResult state{dyn.Estimates(), dyn.Residuals()};
      Status st = ValidateForwardPushInvariant(mutable_g, source, state,
                                               ppr_opts);
      if (st.ok()) {
        ppr::PushResult ws_state{dyn_ws.Estimates(), dyn_ws.Residuals()};
        st = ValidateForwardPushInvariant(mutable_g, source, ws_state,
                                          ppr_opts);
        if (st.ok() && (ws_state.estimate != state.estimate ||
                        ws_state.residual != state.residual)) {
          st = Status::Internal(
              "workspace-refined state differs from legacy refine");
        }
      }
      Record(report, suite, st);
    };
    for (size_t i = 0; i < sc.num_edits; ++i) {
      graph::NodeId u = PickActiveNode(mutable_g, rng, graph::kInvalidNodeType);
      if (u == graph::kInvalidNode) break;
      auto edges = mutable_g.OutEdges(u);
      const graph::Edge picked = edges[rng.NextBounded(edges.size())];
      dyn.BeforeOutEdgeChange(u);
      dyn_ws.BeforeOutEdgeChange(u);
      Status st = mutable_g.RemoveEdge(u, picked.node, picked.type);
      dyn.AfterOutEdgeChange(u);
      dyn_ws.AfterOutEdgeChange(u);
      if (st.ok()) {
        check_both("flp-dynamic(remove " + std::to_string(u) + "->" +
                   std::to_string(picked.node) + ")");
        dyn.BeforeOutEdgeChange(u);
        dyn_ws.BeforeOutEdgeChange(u);
        st = mutable_g.AddEdge(u, picked.node, picked.type, picked.weight);
        dyn.AfterOutEdgeChange(u);
        dyn_ws.AfterOutEdgeChange(u);
      }
      if (st.ok()) {
        check_both("flp-dynamic(re-add)");
      } else {
        Record(report, "flp-dynamic(edit)",
               Status::Internal("graph edit failed: " + st.message()));
      }
    }
  }
}

void RunOverlaySuite(const graph::HinGraph& g,
                     const explain::EmigreOptions& opts,
                     const SelfCheckOptions& sc, Rng& rng,
                     SelfCheckReport* report) {
  graph::GraphOverlay overlay(g);
  size_t applied = 0;
  for (size_t i = 0; i < sc.num_edits; ++i) {
    graph::NodeId u = PickActiveNode(g, rng, graph::kInvalidNodeType);
    if (u == graph::kInvalidNode) break;
    auto edges = g.OutEdges(u);
    const graph::Edge picked = edges[rng.NextBounded(edges.size())];
    if (rng.NextBool(0.5)) {
      if (overlay.RemoveEdge(u, picked.node, picked.type).ok()) ++applied;
    } else {
      if (overlay
              .SetWeight(u, picked.node, picked.type,
                         picked.weight + 1.0)
              .ok()) {
        ++applied;
      }
    }
  }
  // One addition: a fresh edge from an active node to a sampled node.
  graph::NodeId u = PickActiveNode(g, rng, graph::kInvalidNodeType);
  if (u != graph::kInvalidNode && g.NumEdgeTypes() > 0) {
    graph::NodeId v = static_cast<graph::NodeId>(
        rng.NextBounded(g.NumNodes()));
    graph::EdgeTypeId t = static_cast<graph::EdgeTypeId>(
        rng.NextBounded(g.NumEdgeTypes()));
    if (u != v && overlay.AddEdge(u, v, t, 1.0).ok()) ++applied;
  }
  std::vector<graph::NodeId> sources =
      SampleNodes(g, rng, sc.num_samples, g.FindNodeType("user"));
  Record(report,
         "overlay(" + std::to_string(applied) + " edits, " +
             std::to_string(sources.size()) + " sources)",
         ValidateOverlayEquivalence(overlay, sources, opts.rec.ppr));
}

void RunExplanationSuite(const graph::HinGraph& g,
                         const explain::EmigreOptions& opts, Rng& rng,
                         SelfCheckReport* report) {
  if (opts.rec.item_type == graph::kInvalidNodeType) return;
  graph::NodeId user = PickActiveNode(g, rng, g.FindNodeType("user"));
  if (user == graph::kInvalidNode) return;

  explain::Emigre engine(g, opts);
  recsys::RecommendationList ranking = engine.CurrentRanking(user);
  if (ranking.size() < 2) return;  // no runner-up for a Why-Not question
  explain::WhyNotQuestion q{user, ranking.at(1).item};
  Result<explain::Explanation> result =
      engine.ExplainAuto(q, explain::Heuristic::kIncremental);
  if (!result.ok()) {
    Record(report, "explanation(user " + std::to_string(user) + ")",
           Status::Internal("ExplainAuto failed: " +
                            result.status().message()));
    return;
  }
  const explain::Explanation& e = result.value();
  if (!e.found || !e.verified) {
    ++report->checks_run;
    report->lines.push_back(
        "explanation(user " + std::to_string(user) +
        "): SKIP no verified explanation (" +
        std::string(explain::FailureReasonName(e.failure)) + ")");
    return;
  }
  Record(report,
         "explanation(user " + std::to_string(user) + ", wni " +
             std::to_string(q.why_not_item) + ")",
         ValidateExplanation(g, q, e, opts));
}

}  // namespace

Result<SelfCheckReport> RunSelfCheck(const graph::HinGraph& g,
                                     const explain::EmigreOptions& opts,
                                     const SelfCheckOptions& sc) {
  EMIGRE_SPAN("check.selfcheck");
  if (g.NumNodes() == 0) {
    return Status::InvalidArgument("selfcheck: graph has no nodes");
  }
  SelfCheckReport report;
  if (sc.level == CheckLevel::kOff) return report;

  Rng rng(sc.seed);
  // Qualified to suppress ADL, which would also find graph::ValidateGraph.
  Record(&report, "graph", check::ValidateGraph(g));

  if (static_cast<int>(sc.level) >= static_cast<int>(CheckLevel::kFull)) {
    RunPprSuites(g, opts, sc, rng, &report);
    RunOverlaySuite(g, opts, sc, rng, &report);
    RunExplanationSuite(g, opts, rng, &report);
  }
  return report;
}

}  // namespace emigre::check
