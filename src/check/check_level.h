#ifndef EMIGRE_CHECK_CHECK_LEVEL_H_
#define EMIGRE_CHECK_CHECK_LEVEL_H_

#include <string_view>

namespace emigre::check {

/// \brief How much invariant validation the debug validators perform.
///
/// The knob lives in `EmigreOptions::check_level` and only has an effect in
/// builds configured with `-DEMIGRE_DCHECK_INVARIANTS=ON` (see
/// docs/invariants.md); release builds compile the checks away entirely.
enum class CheckLevel : int {
  kOff = 0,    ///< never validate, even in DCHECK builds
  kBasic = 1,  ///< cheap checks: graph structure once, explanation replay
  kFull = 2,   ///< everything: per-query graph + PPR residual identities
};

inline std::string_view CheckLevelName(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff:
      return "off";
    case CheckLevel::kBasic:
      return "basic";
    case CheckLevel::kFull:
      return "full";
  }
  return "unknown";
}

/// Inverse of CheckLevelName. Returns false (leaving `level` untouched)
/// when `name` matches no value.
inline bool CheckLevelFromName(std::string_view name, CheckLevel* level) {
  if (name == "off") {
    *level = CheckLevel::kOff;
  } else if (name == "basic") {
    *level = CheckLevel::kBasic;
  } else if (name == "full") {
    *level = CheckLevel::kFull;
  } else {
    return false;
  }
  return true;
}

/// True in builds compiled with EMIGRE_DCHECK_INVARIANTS.
inline constexpr bool kDcheckInvariantsEnabled =
#ifdef EMIGRE_DCHECK_INVARIANTS
    true;
#else
    false;
#endif

/// True when a validator gated at `required` should run under the
/// configured `level`. Constant-folds to `false` in non-DCHECK builds so
/// the guarded validation code is dead-stripped.
inline constexpr bool ShouldCheck(CheckLevel level, CheckLevel required) {
  return kDcheckInvariantsEnabled &&
         static_cast<int>(level) >= static_cast<int>(required);
}

}  // namespace emigre::check

#endif  // EMIGRE_CHECK_CHECK_LEVEL_H_
