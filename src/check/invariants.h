#ifndef EMIGRE_CHECK_INVARIANTS_H_
#define EMIGRE_CHECK_INVARIANTS_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/check_level.h"
#include "explain/explanation.h"
#include "explain/options.h"
#include "explain/search_space.h"
#include "graph/csr.h"
#include "graph/hin_graph.h"
#include "graph/overlay.h"
#include "graph/traits.h"
#include "graph/types.h"
#include "graph/validate.h"
#include "obs/metrics.h"
#include "ppr/forward_push.h"
#include "ppr/options.h"
#include "recsys/recommender.h"
#include "util/status.h"

namespace emigre::check {

/// \file
/// Debug invariant validators (docs/invariants.md).
///
/// Each validator re-derives a property the algorithms rely on but never
/// restate — adjacency mirror symmetry, the Eq. 3/4 local-push residual
/// identities, overlay-vs-materialized equivalence, explanation replay — and
/// returns the first violation as a Status whose message names the offending
/// node/edge and the observed-vs-expected values. They are header-only
/// templates so tests can drive them with corrupting adapter views, and so
/// call sites in `src/explain/` need no extra link dependency.
///
/// Every validator records `check.<name>.pass` / `check.<name>.fail`
/// counters in the global obs registry; `selfcheck` surfaces them via
/// `--metrics-out`.

namespace internal {

/// Counter names vary at runtime, so this bypasses the per-call-site cache
/// of EMIGRE_COUNTER and pays the registry lookup — validators are debug
/// paths, never hot.
inline void RecordOutcome(const char* validator, bool ok) {
  obs::Registry::Global()
      .GetCounter(std::string("check.") + validator + (ok ? ".pass" : ".fail"))
      .Increment();
}

inline std::string FormatEdge(graph::NodeId src, graph::NodeId dst,
                              graph::EdgeTypeId type) {
  std::ostringstream os;
  os << "(" << src << " -> " << dst << ", type " << type << ")";
  return os.str();
}

}  // namespace internal

// --- Graph structure --------------------------------------------------------

/// Validates structural invariants of any GraphLike view `g`:
///  - every out-edge (u, v, t, w) has exactly one mirroring in-edge and
///    vice versa (multiset equality, so multigraph edges count),
///  - all edge weights are positive and finite,
///  - `OutWeight(u)` equals the sum of u's out-edge weights,
///  - a `CsrGraph` snapshot of `g` reproduces the same adjacency
///    (degree, destination, type, weight, node type) — CSR fidelity.
/// Returns the first violation, or OK.
template <graph::GraphLike G>
[[nodiscard]] Status ValidateGraphView(const G& g) {
  const size_t n = g.NumNodes();
  using Key = std::tuple<graph::NodeId, graph::NodeId, graph::EdgeTypeId,
                         double>;

  // Mirror symmetry: collect the out-edge and in-edge multisets and diff.
  std::map<Key, long> balance;
  for (graph::NodeId u = 0; u < n; ++u) {
    double out_sum = 0.0;
    bool bad_weight = false;
    graph::NodeId bad_dst = 0;
    graph::EdgeTypeId bad_type = 0;
    double bad_w = 0.0;
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId t, double w) {
      if (!(w > 0.0) || !std::isfinite(w)) {
        bad_weight = true;
        bad_dst = v;
        bad_type = t;
        bad_w = w;
      }
      out_sum += w;
      ++balance[Key{u, v, t, w}];
    });
    if (bad_weight) {
      internal::RecordOutcome("graph", false);
      return Status::Internal(
          "graph invariant violated: edge " +
          internal::FormatEdge(u, bad_dst, bad_type) +
          " has non-positive or non-finite weight " + std::to_string(bad_w));
    }
    double cached = g.OutWeight(u);
    if (std::abs(cached - out_sum) >
        1e-9 * std::max(1.0, std::abs(out_sum))) {
      internal::RecordOutcome("graph", false);
      return Status::Internal(
          "graph invariant violated: node " + std::to_string(u) +
          " cached OutWeight " + std::to_string(cached) +
          " != sum of out-edge weights " + std::to_string(out_sum));
    }
    g.ForEachInEdge(u, [&](graph::NodeId v, graph::EdgeTypeId t, double w) {
      --balance[Key{v, u, t, w}];
    });
  }
  for (const auto& [key, count] : balance) {
    if (count == 0) continue;
    const auto& [src, dst, type, w] = key;
    internal::RecordOutcome("graph", false);
    return Status::Internal(
        "graph invariant violated: edge " +
        internal::FormatEdge(src, dst, type) + " with weight " +
        std::to_string(w) +
        (count > 0 ? " appears in an out-list without a mirroring in-edge"
                   : " appears in an in-list without a mirroring out-edge"));
  }

  // CSR fidelity: the packed snapshot must reproduce the adjacency exactly.
  graph::CsrGraph csr(g, 0);
  if (csr.NumNodes() != n) {
    internal::RecordOutcome("graph", false);
    return Status::Internal("graph invariant violated: CSR snapshot has " +
                            std::to_string(csr.NumNodes()) + " nodes, view has " +
                            std::to_string(n));
  }
  for (graph::NodeId u = 0; u < n; ++u) {
    if (csr.NodeType(u) != g.NodeType(u)) {
      internal::RecordOutcome("graph", false);
      return Status::Internal(
          "graph invariant violated: CSR node type of " + std::to_string(u) +
          " diverges from the view");
    }
    std::vector<std::tuple<graph::NodeId, graph::EdgeTypeId, double>> a;
    std::vector<std::tuple<graph::NodeId, graph::EdgeTypeId, double>> b;
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId t, double w) {
      a.emplace_back(v, t, w);
    });
    csr.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId t, double w) {
      b.emplace_back(v, t, w);
    });
    if (a != b) {
      internal::RecordOutcome("graph", false);
      return Status::Internal(
          "graph invariant violated: CSR out-adjacency of node " +
          std::to_string(u) + " diverges from the view (degree " +
          std::to_string(a.size()) + " vs " + std::to_string(b.size()) + ")");
    }
  }
  internal::RecordOutcome("graph", true);
  return Status::OK();
}

/// Full validation of a concrete `HinGraph`: the structural checks of
/// `ValidateGraphView` plus the type-registry consistency checks of
/// `graph::ValidateGraph` (every node/edge type registered).
[[nodiscard]] inline Status ValidateGraph(const graph::HinGraph& g) {
  Status registry = graph::ValidateGraph(g);
  if (!registry.ok()) {
    internal::RecordOutcome("graph", false);
    return Status::Internal("graph invariant violated: " + registry.message());
  }
  return ValidateGraphView(g);
}

// --- PPR residual identities (paper Eq. 3 / Eq. 4) ---------------------------

/// Validates the Forward Local Push invariant for a push state rooted at
/// `source` (paper Eq. 3, [39]). In vector form, with p = estimate,
/// r = residual, and W the out-transition matrix (dangling nodes carry the
/// implicit self-loop W(u,u) = 1, see `ppr::kDanglingSelfLoop`):
///
///   r = e_source − p/α + (1−α)/α · (p·W)
///
/// Pushes preserve this identity exactly, so `tol` only has to absorb
/// floating-point accumulation. Works on the state as returned by
/// `ForwardPush` and on states evolved through `DynamicForwardPush` edge
/// updates — the dynamic maintenance contract [38] is precisely that the
/// identity keeps holding on the updated graph.
template <graph::GraphLike G>
[[nodiscard]] Status ValidateForwardPushInvariant(
    const G& g, graph::NodeId source, const ppr::PushResult& state,
    const ppr::PprOptions& opts = {}, double tol = 1e-8) {
  const size_t n = g.NumNodes();
  if (state.estimate.size() != n || state.residual.size() != n) {
    internal::RecordOutcome("flp", false);
    return Status::Internal(
        "flp invariant violated: state sized for " +
        std::to_string(state.estimate.size()) + " nodes, graph has " +
        std::to_string(n));
  }
  // acc[v] = Σ_u p(u)·W(u,v); dangling u contributes its mass to itself.
  std::vector<double> acc(n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) {
    double p = state.estimate[u];
    if (p == 0.0) continue;
    double out_w = g.OutWeight(u);
    if (out_w <= 0.0) {
      acc[u] += p;
      continue;
    }
    g.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
      acc[v] += p * w / out_w;
    });
  }
  const double alpha = opts.alpha;
  for (graph::NodeId v = 0; v < n; ++v) {
    double expected = (v == source ? 1.0 : 0.0) - state.estimate[v] / alpha +
                      (1.0 - alpha) / alpha * acc[v];
    double got = state.residual[v];
    if (std::abs(got - expected) > tol) {
      internal::RecordOutcome("flp", false);
      return Status::Internal(
          "flp invariant (Eq. 3) violated at node " + std::to_string(v) +
          " for source " + std::to_string(source) + ": residual " +
          std::to_string(got) + ", identity requires " +
          std::to_string(expected) + " (|diff| " +
          std::to_string(std::abs(got - expected)) + " > tol " +
          std::to_string(tol) + ")");
    }
  }
  internal::RecordOutcome("flp", true);
  return Status::OK();
}

/// Validates the Reverse Local Push invariant for a push state rooted at
/// `target` (paper Eq. 4). Column form of the same identity: with
/// p(s) = estimate[s] ≈ PPR(s, target) and r the reverse residual,
///
///   r(s) = e_target(s) − p(s)/α + (1−α)/α · Σ_v W(s,v)·p(v)
///
/// where the row sum runs over s's out-transitions (a dangling s has the
/// self-loop row W(s,s) = 1, so its row sum is p(s)).
template <graph::GraphLike G>
[[nodiscard]] Status ValidateReversePushInvariant(
    const G& g, graph::NodeId target, const ppr::PushResult& state,
    const ppr::PprOptions& opts = {}, double tol = 1e-8) {
  const size_t n = g.NumNodes();
  if (state.estimate.size() != n || state.residual.size() != n) {
    internal::RecordOutcome("rlp", false);
    return Status::Internal(
        "rlp invariant violated: state sized for " +
        std::to_string(state.estimate.size()) + " nodes, graph has " +
        std::to_string(n));
  }
  const double alpha = opts.alpha;
  for (graph::NodeId s = 0; s < n; ++s) {
    double row_sum = 0.0;
    double out_w = g.OutWeight(s);
    if (out_w <= 0.0) {
      row_sum = state.estimate[s];
    } else {
      g.ForEachOutEdge(s, [&](graph::NodeId v, graph::EdgeTypeId, double w) {
        row_sum += w / out_w * state.estimate[v];
      });
    }
    double expected = (s == target ? 1.0 : 0.0) - state.estimate[s] / alpha +
                      (1.0 - alpha) / alpha * row_sum;
    double got = state.residual[s];
    if (std::abs(got - expected) > tol) {
      internal::RecordOutcome("rlp", false);
      return Status::Internal(
          "rlp invariant (Eq. 4) violated at node " + std::to_string(s) +
          " for target " + std::to_string(target) + ": residual " +
          std::to_string(got) + ", identity requires " +
          std::to_string(expected) + " (|diff| " +
          std::to_string(std::abs(got - expected)) + " > tol " +
          std::to_string(tol) + ")");
    }
  }
  internal::RecordOutcome("rlp", true);
  return Status::OK();
}

// --- Overlay-vs-materialized equivalence -------------------------------------

/// Validates that `overlay` behaves identically to a materialized edit of
/// its base graph. Builds a `HinGraph` copy, replays the overlay's effective
/// per-node edge diff onto it (removals, additions, and weight overrides as
/// remove+add), then checks
///  (a) structural equality: per-node effective out-edge multisets,
///      in-edge multisets (out/in desync is the classic overlay bug), and
///      cached out-weights all match,
///  (b) behavioural equality: `ForwardPush` from each node in `sources`
///      produces estimates within `massA + massB + tol` per node, the bound
///      both lower-bound estimates obey relative to the shared true PPR.
/// Templated over the overlay type so tests can drive it with corrupting
/// wrappers; `OverlayT` must expose `base()` plus the GraphLike traversal
/// surface (`graph::GraphOverlay` does).
template <typename OverlayT>
[[nodiscard]] Status ValidateOverlayEquivalence(
    const OverlayT& overlay, const std::vector<graph::NodeId>& sources,
    const ppr::PprOptions& opts = {}, double tol = 1e-9) {
  const graph::HinGraph& base = overlay.base();
  graph::HinGraph copy = base;
  const size_t n = base.NumNodes();

  using EdgeKey = std::pair<graph::NodeId, graph::EdgeTypeId>;
  for (graph::NodeId u = 0; u < n; ++u) {
    // Effective (dst, type) -> weight maps for base and overlay. The graph
    // rejects duplicate (src, dst, type) triples, so the maps are faithful.
    std::map<EdgeKey, double> base_edges;
    std::map<EdgeKey, double> eff_edges;
    base.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId t,
                               double w) { base_edges[{v, t}] = w; });
    overlay.ForEachOutEdge(u, [&](graph::NodeId v, graph::EdgeTypeId t,
                                  double w) { eff_edges[{v, t}] = w; });
    for (const auto& [key, w] : base_edges) {
      auto it = eff_edges.find(key);
      if (it == eff_edges.end()) {
        Status st = copy.RemoveEdge(u, key.first, key.second);
        if (!st.ok()) {
          internal::RecordOutcome("overlay", false);
          return Status::Internal(
              "overlay invariant violated: materializing removal of " +
              internal::FormatEdge(u, key.first, key.second) +
              " failed: " + st.message());
        }
      } else if (it->second != w) {
        // Weight override: realize as remove + re-add at the new weight.
        Status st = copy.RemoveEdge(u, key.first, key.second);
        if (st.ok()) st = copy.AddEdge(u, key.first, key.second, it->second);
        if (!st.ok()) {
          internal::RecordOutcome("overlay", false);
          return Status::Internal(
              "overlay invariant violated: materializing reweight of " +
              internal::FormatEdge(u, key.first, key.second) +
              " failed: " + st.message());
        }
      }
    }
    for (const auto& [key, w] : eff_edges) {
      if (base_edges.count(key)) continue;
      Status st = copy.AddEdge(u, key.first, key.second, w);
      if (!st.ok()) {
        internal::RecordOutcome("overlay", false);
        return Status::Internal(
            "overlay invariant violated: materializing addition of " +
            internal::FormatEdge(u, key.first, key.second) +
            " failed: " + st.message());
      }
    }
  }

  // (a) Structural equality of effective adjacency (multisets; removal and
  // re-addition may reorder edges relative to the overlay's view). The
  // in-edge comparison is the load-bearing one: the copy's in-lists are
  // rebuilt from the out-diff, so an overlay whose in-view desynced from
  // its out-view shows up here.
  for (graph::NodeId u = 0; u < n; ++u) {
    for (bool out_side : {true, false}) {
      std::map<std::tuple<graph::NodeId, graph::EdgeTypeId, double>, long>
          diff;
      auto add = [&](graph::NodeId v, graph::EdgeTypeId t, double w) {
        ++diff[{v, t, w}];
      };
      auto sub = [&](graph::NodeId v, graph::EdgeTypeId t, double w) {
        --diff[{v, t, w}];
      };
      if (out_side) {
        overlay.ForEachOutEdge(u, add);
        copy.ForEachOutEdge(u, sub);
      } else {
        overlay.ForEachInEdge(u, add);
        copy.ForEachInEdge(u, sub);
      }
      for (const auto& [key, count] : diff) {
        if (count == 0) continue;
        internal::RecordOutcome("overlay", false);
        return Status::Internal(
            "overlay invariant violated: node " + std::to_string(u) +
            " effective " + (out_side ? "out" : "in") + "-edge " +
            (out_side ? "to " : "from ") +
            std::to_string(std::get<0>(key)) + " (type " +
            std::to_string(std::get<1>(key)) + ", weight " +
            std::to_string(std::get<2>(key)) +
            (count > 0
                 ? ") present in the overlay but not the materialized copy"
                 : ") present in the materialized copy but not the "
                   "overlay"));
      }
    }
    double ow = overlay.OutWeight(u);
    double cw = copy.OutWeight(u);
    if (std::abs(ow - cw) > 1e-9 * std::max(1.0, std::abs(cw))) {
      internal::RecordOutcome("overlay", false);
      return Status::Internal(
          "overlay invariant violated: node " + std::to_string(u) +
          " effective OutWeight " + std::to_string(ow) +
          " != materialized OutWeight " + std::to_string(cw));
    }
  }

  // (b) Behavioural equality through the PPR engine on sampled sources.
  for (graph::NodeId s : sources) {
    if (s >= n) continue;
    ppr::PushResult a = ppr::ForwardPush(overlay, s, opts);
    ppr::PushResult b = ppr::ForwardPush(copy, s, opts);
    double bound = a.ResidualMass() + b.ResidualMass() + tol;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (std::abs(a.estimate[v] - b.estimate[v]) > bound) {
        internal::RecordOutcome("overlay", false);
        return Status::Internal(
            "overlay invariant violated: ForwardPush from source " +
            std::to_string(s) + " diverges at node " + std::to_string(v) +
            ": overlay estimate " + std::to_string(a.estimate[v]) +
            " vs materialized " + std::to_string(b.estimate[v]) +
            " (allowed " + std::to_string(bound) + ")");
      }
    }
  }
  internal::RecordOutcome("overlay", true);
  return Status::OK();
}

// --- Explanation replay ------------------------------------------------------

/// Validates that a found explanation actually flips the recommendation:
/// replays `e.edges` on a fresh overlay over `base` (adding them in Add
/// mode with `opts.add_edge_weight`, removing them in Remove mode — the
/// exact semantics of `ExplanationTester::Test`) and checks that the top-1
/// recommendation for `q.user` becomes `q.why_not_item`.
///
/// Only meaningful for explanations with `found && verified`; approximate
/// testers may report unverified candidates that legitimately fail replay.
///
/// Generic over the base graph `G` (`HinGraph` or an mmap-backed
/// `CsrSnapshotView`): the replay runs on a `BasicGraphOverlay<G>`.
template <graph::GraphLike G>
[[nodiscard]] Status ValidateExplanation(
    const G& base, const explain::WhyNotQuestion& q,
    const explain::Explanation& e, const explain::EmigreOptions& opts) {
  if (e.degraded) {
    // A degraded (anytime best-so-far) result is by definition not a proven
    // explanation; accepting one as validated would launder an unverified
    // candidate into a Definition 4.2 guarantee.
    internal::RecordOutcome("explanation", false);
    return Status::FailedPrecondition(
        "degraded (anytime best-so-far) results are not valid explanations "
        "and must not be replay-validated");
  }
  if (!e.found) {
    internal::RecordOutcome("explanation", true);
    return Status::OK();
  }
  graph::BasicGraphOverlay<G> overlay(base);
  for (const graph::EdgeRef& edge : e.edges) {
    Status st = e.mode == explain::Mode::kAdd
                    ? overlay.AddEdge(edge.src, edge.dst, edge.type,
                                      opts.add_edge_weight)
                    : overlay.RemoveEdge(edge.src, edge.dst, edge.type);
    if (!st.ok()) {
      internal::RecordOutcome("explanation", false);
      return Status::Internal(
          "explanation invariant violated: replaying " +
          std::string(explain::ModeName(e.mode)) + " edit " +
          internal::FormatEdge(edge.src, edge.dst, edge.type) +
          " failed: " + st.message());
    }
  }
  graph::NodeId top = recsys::Recommend(overlay, q.user, opts.rec);
  if (top != q.why_not_item) {
    internal::RecordOutcome("explanation", false);
    return Status::Internal(
        "explanation invariant violated: replaying the " +
        std::to_string(e.edges.size()) + "-edge " +
        std::string(explain::ModeName(e.mode)) + " explanation for user " +
        std::to_string(q.user) + " yields top recommendation " +
        std::to_string(top) + ", expected why-not item " +
        std::to_string(q.why_not_item));
  }
  internal::RecordOutcome("explanation", true);
  return Status::OK();
}

/// Validates that every edge of a found explanation is a member of the
/// search space H it was computed from — the subset-enumerating searches
/// (Powerset, BruteForce) must never invent actions outside Algorithm 1/2's
/// candidate list, and must respect the configured size cap.
[[nodiscard]] inline Status ValidateExplanationInSpace(
    const explain::SearchSpace& space, const explain::Explanation& e,
    const explain::EmigreOptions& opts) {
  if (!e.found) {
    internal::RecordOutcome("space", true);
    return Status::OK();
  }
  if (opts.max_explanation_size > 0 &&
      e.edges.size() > opts.max_explanation_size) {
    internal::RecordOutcome("space", false);
    return Status::Internal(
        "search-space invariant violated: explanation has " +
        std::to_string(e.edges.size()) +
        " edges, exceeding max_explanation_size " +
        std::to_string(opts.max_explanation_size));
  }
  for (const graph::EdgeRef& edge : e.edges) {
    bool member = false;
    for (const explain::CandidateAction& a : space.actions) {
      if (a.edge == edge) {
        member = true;
        break;
      }
    }
    if (!member) {
      internal::RecordOutcome("space", false);
      return Status::Internal(
          "search-space invariant violated: explanation edge " +
          internal::FormatEdge(edge.src, edge.dst, edge.type) +
          " is not a member of the candidate list H (|H| = " +
          std::to_string(space.actions.size()) + ")");
    }
  }
  internal::RecordOutcome("space", true);
  return Status::OK();
}

// --- DCHECK plumbing ---------------------------------------------------------

/// Aborts with the validator's message when `status` is an error. The
/// invariant hooks in search code funnel through this so a violation stops
/// the run at the point of corruption rather than surfacing as a wrong
/// answer later.
inline void DcheckOk(const Status& status, const char* where) {
  if (status.ok()) return;
  std::fprintf(stderr, "EMIGRE_DCHECK_INVARIANTS failure in %s: %s\n", where,
               status.ToString().c_str());
  std::abort();
}

}  // namespace emigre::check

#endif  // EMIGRE_CHECK_INVARIANTS_H_
