#ifndef EMIGRE_CHECK_SELFCHECK_H_
#define EMIGRE_CHECK_SELFCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/check_level.h"
#include "explain/options.h"
#include "graph/hin_graph.h"
#include "util/result.h"

namespace emigre::check {

/// \brief Configuration of the invariant self-check suite.
struct SelfCheckOptions {
  /// Which suites run: kBasic validates graph structure only; kFull adds
  /// the PPR residual identities (static and after dynamic edge updates),
  /// overlay-vs-materialized equivalence, and an end-to-end explanation
  /// replay. kOff runs nothing.
  CheckLevel level = CheckLevel::kFull;

  /// Sampled source/target nodes per PPR suite.
  size_t num_samples = 3;

  /// Random overlay edits and dynamic edge updates exercised.
  size_t num_edits = 3;

  /// Sampling seed (deterministic SplitMix64 stream).
  uint64_t seed = 20240416;
};

/// \brief Outcome of one self-check run: one line per suite plus totals.
struct SelfCheckReport {
  size_t checks_run = 0;
  size_t violations = 0;
  /// One human-readable line per executed check, "<suite>: OK" or
  /// "<suite>: FAIL <why>".
  std::vector<std::string> lines;

  bool ok() const { return violations == 0; }
};

/// \brief Runs every invariant validator against `g` (docs/invariants.md).
///
/// Unlike the `EMIGRE_DCHECK_INVARIANTS` hooks, this is an explicit entry
/// point — it validates in any build. `opts` supplies the recommender
/// configuration (item type, add-edge type) the overlay and explanation
/// suites need. The run is wrapped in a `check.selfcheck` trace span and
/// every validator outcome lands in the `check.*.pass/fail` counters, so
/// `selfcheck --metrics-out` surfaces the totals.
///
/// Returns an error Status only when the suite cannot run at all (e.g. an
/// empty graph); invariant violations are reported in the returned report,
/// not as an error.
[[nodiscard]] Result<SelfCheckReport> RunSelfCheck(
    const graph::HinGraph& g, const explain::EmigreOptions& opts,
    const SelfCheckOptions& sc = {});

}  // namespace emigre::check

#endif  // EMIGRE_CHECK_SELFCHECK_H_
