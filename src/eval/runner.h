#ifndef EMIGRE_EVAL_RUNNER_H_
#define EMIGRE_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "eval/methods.h"
#include "eval/scenario.h"
#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/hin_graph.h"
#include "util/result.h"

namespace emigre::eval {

/// \brief Measurement for one (method, scenario) pair.
struct ScenarioRecord {
  std::string method;
  Scenario scenario;

  bool returned = false;  ///< the method produced an explanation
  bool correct = false;   ///< ... and it independently verifies (success)
  size_t explanation_size = 0;
  double seconds = 0.0;  ///< method runtime (verification excluded)
  explain::FailureReason failure = explain::FailureReason::kNone;
};

/// \brief All measurements of one experiment run.
struct ExperimentResult {
  std::vector<ScenarioRecord> records;

  /// Records of one method, scenario order preserved.
  std::vector<const ScenarioRecord*> ForMethod(
      const std::string& method) const;
};

/// \brief Runner configuration.
struct RunnerOptions {
  /// Worker threads across scenarios (1 = serial; 0 = hardware threads).
  /// Composes with `EmigreOptions::test_threads` (the per-candidate TEST
  /// fan-out): the runner caps the scenario workers so that
  /// scenario_threads × test_threads stays within the machine.
  size_t num_threads = 1;
  /// Log a progress line roughly every this many scenario completions
  /// (0 = silent).
  size_t progress_every = 0;

  // --- Degradation policy (docs/robustness.md) -------------------------------
  /// Retries per (method, scenario) record when Explain fails with a
  /// transient infrastructure error (Internal / IOError / ResourceExhausted
  /// / Cancelled — e.g. an injected fault). 0 = no retry.
  size_t max_retries = 2;
  /// Backoff before the first retry, doubling per subsequent retry. Kept
  /// tiny by default so honest-failure runs stay fast; 0 disables sleeping.
  double retry_backoff_seconds = 0.001;
  /// Heuristics to try, in order, after every retry of the method's own
  /// heuristic failed transiently. A record produced by a fallback keeps
  /// the original method name (the scenario still counts for that method).
  std::vector<explain::Heuristic> fallback_heuristics;
};

/// \brief Executes every method on every scenario (the paper's §6.2 design)
/// and collects success/size/runtime records.
///
/// Success is measured as the paper does: an explanation counts only if it
/// actually places the Why-Not item at the top — results the method did not
/// verify itself (Exhaustive-direct) are re-checked here, outside the
/// method's timed section. Scenarios are independent; with
/// `num_threads > 1` they run in parallel over the shared immutable graph.
[[nodiscard]] Result<ExperimentResult> RunExperiment(const graph::HinGraph& g,
                                       const std::vector<Scenario>& scenarios,
                                       const std::vector<MethodSpec>& methods,
                                       const explain::EmigreOptions& opts,
                                       const RunnerOptions& run_opts = {});

}  // namespace emigre::eval

#endif  // EMIGRE_EVAL_RUNNER_H_
