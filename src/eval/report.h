#ifndef EMIGRE_EVAL_REPORT_H_
#define EMIGRE_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace emigre::eval {

/// Paper Figure 4 — "Explanation success rate per method" — as an ASCII
/// bar chart over all scenarios.
std::string FormatFigure4(const std::vector<MethodAggregate>& aggregates);

/// Paper Figure 5 — Remove-mode success rates restricted to brute-force-
/// solvable scenarios, shown absolute and relative to the oracle.
/// `oracle` must be one of the aggregated methods (remove_brute).
std::string FormatFigure5(const std::vector<MethodAggregate>& aggregates,
                          const std::string& oracle);

/// Paper Figure 6 — "Average explanation size per method".
std::string FormatFigure6(const std::vector<MethodAggregate>& aggregates);

/// Paper Table 5 — average runtime per method: (a) overall, (b) when an
/// explanation is found, (c) when none is found.
std::string FormatTable5(const std::vector<MethodAggregate>& aggregates);

/// Failure-reason breakdown per method (the §6.4 taxonomy: cold start /
/// popular item / search exhausted / budget), counted over non-successful
/// scenarios. The paper proposes surfacing exactly this as
/// "meta-explanations" for the low Remove-mode success rate.
std::string FormatFailureBreakdown(const ExperimentResult& result,
                                   const std::vector<std::string>& methods);

}  // namespace emigre::eval

#endif  // EMIGRE_EVAL_REPORT_H_
