#include "eval/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "check/invariants.h"
#include "explain/emigre.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace emigre::eval {

std::vector<const ScenarioRecord*> ExperimentResult::ForMethod(
    const std::string& method) const {
  std::vector<const ScenarioRecord*> out;
  for (const ScenarioRecord& r : records) {
    if (r.method == method) out.push_back(&r);
  }
  return out;
}

Result<ExperimentResult> RunExperiment(const graph::HinGraph& g,
                                       const std::vector<Scenario>& scenarios,
                                       const std::vector<MethodSpec>& methods,
                                       const explain::EmigreOptions& opts,
                                       const RunnerOptions& run_opts) {
  if (methods.empty()) {
    return Status::InvalidArgument("no methods to evaluate");
  }
  // One up-front structural validation covers the whole run: the graph is
  // immutable below, so per-scenario revalidation would only repeat it.
  if (check::ShouldCheck(opts.check_level, check::CheckLevel::kBasic)) {
    check::DcheckOk(check::ValidateGraph(g), "RunExperiment");
  }
  explain::Emigre engine(g, opts);

  EMIGRE_COUNTER("eval.scenarios").Increment(scenarios.size());
  ExperimentResult result;
  result.records.resize(scenarios.size() * methods.size());
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};

  auto run_one = [&](size_t si) {
    if (failed.load(std::memory_order_relaxed)) return;
    const Scenario& scenario = scenarios[si];
    // One re-verification checker per scenario, created on first unverified
    // result and reused across methods: it shares the engine's CSR snapshot
    // and keeps its overlay/workspace warm instead of paying a fresh
    // allocation per record.
    std::unique_ptr<explain::ExplanationTester> checker;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      const MethodSpec& method = methods[mi];
      ScenarioRecord& record = result.records[si * methods.size() + mi];
      record.method = method.name;
      record.scenario = scenario;

      Result<explain::Explanation> expl = engine.Explain(
          explain::WhyNotQuestion{scenario.user, scenario.wni}, method.mode,
          method.heuristic);
      if (!expl.ok()) {
        // Scenario generation guarantees Definition 4.1, so an error here
        // is a harness bug worth surfacing, not a data point.
        EMIGRE_LOG(kError) << "method " << method.name << " failed on user "
                           << scenario.user << ", wni " << scenario.wni
                           << ": " << expl.status().ToString();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      const explain::Explanation& e = expl.value();
      EMIGRE_COUNTER("eval.records").Increment();
      EMIGRE_HISTOGRAM("eval.record.seconds").Record(e.seconds);
      record.returned = e.found;
      record.explanation_size = e.size();
      record.seconds = e.seconds;
      record.failure = e.failure;
      if (e.found && e.verified) {
        record.correct = true;
      } else if (e.found) {
        // Unverified output (Exhaustive-direct, or any approximate-tester
        // result): success is decided by an untimed independent check,
        // mirroring the paper's accounting.
        if (checker == nullptr) {
          checker = std::make_unique<explain::ExplanationTester>(
              g, scenario.user, scenario.wni, opts, &engine.csr());
        }
        record.correct = checker->Test(e.edges, e.mode);
      }
      if (!e.found && e.failure == explain::FailureReason::kSearchExhausted) {
        // Refine the failure label with the §6.4 meta-explanation taxonomy
        // (e.g. "popular item"), outside the method's timed section.
        auto space =
            method.mode == explain::Mode::kRemove
                ? explain::BuildRemoveSearchSpace(g, scenario.user,
                                                  e.original_rec,
                                                  scenario.wni, opts)
                : explain::BuildAddSearchSpace(g, scenario.user,
                                               e.original_rec, scenario.wni,
                                               opts);
        if (space.ok()) {
          record.failure =
              explain::DiagnoseFailure(g, space.value(), e, opts).reason;
        }
      }
    }
    size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (run_opts.progress_every > 0 &&
        completed % run_opts.progress_every == 0) {
      EMIGRE_LOG(kInfo) << "scenarios " << completed << "/"
                        << scenarios.size();
    }
  };

  // Scenario-level fan-out composes with the candidate-level TEST fan-out
  // (opts.test_threads, docs/parallelism.md): each scenario worker may spin
  // up test_threads verification workers of its own, so cap the scenario
  // workers at hardware / test_threads to keep the product within the
  // machine instead of oversubscribing every core test_threads-fold.
  size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  size_t scenario_threads =
      run_opts.num_threads == 0 ? hardware : run_opts.num_threads;
  size_t test_threads =
      opts.test_threads == 0 ? hardware : opts.test_threads;
  if (test_threads > 1) {
    scenario_threads =
        std::min(scenario_threads, std::max<size_t>(1, hardware / test_threads));
  }
  ThreadPool::ParallelFor(scenarios.size(), scenario_threads, run_one);

  if (failed.load()) {
    return Status::Internal("experiment aborted; see error log");
  }
  return result;
}

}  // namespace emigre::eval
