#include "eval/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "check/invariants.h"
#include "explain/emigre.h"
#include "explain/meta.h"
#include "explain/search_space.h"
#include "explain/tester.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace emigre::eval {

namespace {

/// A failure worth retrying: infrastructure went wrong (injected fault,
/// worker-task error), not the question or the configuration.
bool IsTransient(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<const ScenarioRecord*> ExperimentResult::ForMethod(
    const std::string& method) const {
  std::vector<const ScenarioRecord*> out;
  for (const ScenarioRecord& r : records) {
    if (r.method == method) out.push_back(&r);
  }
  return out;
}

Result<ExperimentResult> RunExperiment(const graph::HinGraph& g,
                                       const std::vector<Scenario>& scenarios,
                                       const std::vector<MethodSpec>& methods,
                                       const explain::EmigreOptions& opts,
                                       const RunnerOptions& run_opts) {
  if (methods.empty()) {
    return Status::InvalidArgument("no methods to evaluate");
  }
  // One up-front structural validation covers the whole run: the graph is
  // immutable below, so per-scenario revalidation would only repeat it.
  if (check::ShouldCheck(opts.check_level, check::CheckLevel::kBasic)) {
    check::DcheckOk(check::ValidateGraph(g), "RunExperiment");
  }
  explain::Emigre engine(g, opts);

  EMIGRE_COUNTER("eval.scenarios").Increment(scenarios.size());
  // Concurrency contract of the fan-out below: `records` is sized up front
  // and every worker writes only its own disjoint `si * methods + mi`
  // slots, so the records need no lock; `done` is the only cross-worker
  // state and is atomic. The pool's `Wait()` barrier orders all record
  // writes before the return. (This file intentionally has no mutex of its
  // own — see docs/static_analysis.md on lock-free fan-out patterns.)
  ExperimentResult result;
  result.records.resize(scenarios.size() * methods.size());
  std::atomic<size_t> done{0};

  // One Explain attempt, with the scenario-loop fault site inside it so an
  // injected fault is subject to the same retry policy as a real one.
  auto attempt_once = [&](const Scenario& scenario, const MethodSpec& method,
                          explain::Heuristic heuristic)
      -> Result<explain::Explanation> {
    try {
      EMIGRE_FAULT_POINT("eval.scenario");
    } catch (const StatusError& err) {
      return err.status();
    }
    return engine.Explain(explain::WhyNotQuestion{scenario.user, scenario.wni},
                          method.mode, heuristic);
  };

  // Bounded retry with doubling backoff on transient failures.
  auto run_with_retries = [&](const Scenario& scenario,
                              const MethodSpec& method,
                              explain::Heuristic heuristic)
      -> Result<explain::Explanation> {
    Result<explain::Explanation> expl =
        attempt_once(scenario, method, heuristic);
    double backoff = run_opts.retry_backoff_seconds;
    for (size_t retry = 0;
         retry < run_opts.max_retries && !expl.ok() &&
         IsTransient(expl.status());
         ++retry) {
      EMIGRE_COUNTER("eval.retries").Increment();
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2.0;
      }
      expl = attempt_once(scenario, method, heuristic);
    }
    return expl;
  };

  auto run_one = [&](size_t si) {
    const Scenario& scenario = scenarios[si];
    // One re-verification checker per scenario, created on first unverified
    // result and reused across methods: it shares the engine's CSR snapshot
    // and keeps its overlay/workspace warm instead of paying a fresh
    // allocation per record.
    std::unique_ptr<explain::ExplanationTester> checker;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      const MethodSpec& method = methods[mi];
      ScenarioRecord& record = result.records[si * methods.size() + mi];
      record.method = method.name;
      record.scenario = scenario;

      Result<explain::Explanation> expl =
          run_with_retries(scenario, method, method.heuristic);
      if (!expl.ok() && IsTransient(expl.status())) {
        // Retries exhausted: walk the configured heuristic fallback chain
        // before giving up on the record.
        for (explain::Heuristic fb : run_opts.fallback_heuristics) {
          if (fb == method.heuristic) continue;
          EMIGRE_COUNTER("eval.fallbacks").Increment();
          expl = run_with_retries(scenario, method, fb);
          if (expl.ok()) break;
        }
      }
      if (!expl.ok()) {
        // Degrade, don't die: a persistent failure becomes a typed
        // per-record outcome instead of aborting the whole experiment
        // (scenario generation guarantees Definition 4.1, so this is an
        // infrastructure failure, and the other records stay valid).
        EMIGRE_LOG(kError) << "method " << method.name << " failed on user "
                           << scenario.user << ", wni " << scenario.wni
                           << ": " << expl.status().ToString();
        EMIGRE_COUNTER("eval.records.internal_error").Increment();
        EMIGRE_COUNTER("eval.records").Increment();
        record.failure = explain::FailureReason::kInternalError;
        continue;
      }
      const explain::Explanation& e = expl.value();
      EMIGRE_COUNTER("eval.records").Increment();
      EMIGRE_HISTOGRAM("eval.record.seconds").Record(e.seconds);
      record.returned = e.found;
      record.explanation_size = e.size();
      record.seconds = e.seconds;
      record.failure = e.failure;
      if (e.found && e.verified) {
        record.correct = true;
      } else if (e.found) {
        // Unverified output (Exhaustive-direct, or any approximate-tester
        // result): success is decided by an untimed independent check,
        // mirroring the paper's accounting.
        if (checker == nullptr) {
          checker = std::make_unique<explain::ExplanationTester>(
              g, scenario.user, scenario.wni, opts, &engine.csr());
        }
        record.correct = checker->Test(e.edges, e.mode);
      }
      if (!e.found && e.failure == explain::FailureReason::kSearchExhausted) {
        // Refine the failure label with the §6.4 meta-explanation taxonomy
        // (e.g. "popular item"), outside the method's timed section.
        auto space =
            method.mode == explain::Mode::kRemove
                ? explain::BuildRemoveSearchSpace(g, scenario.user,
                                                  e.original_rec,
                                                  scenario.wni, opts)
                : explain::BuildAddSearchSpace(g, scenario.user,
                                               e.original_rec, scenario.wni,
                                               opts);
        if (space.ok()) {
          record.failure =
              explain::DiagnoseFailure(g, space.value(), e, opts).reason;
        }
      }
    }
    size_t completed = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (run_opts.progress_every > 0 &&
        completed % run_opts.progress_every == 0) {
      EMIGRE_LOG(kInfo) << "scenarios " << completed << "/"
                        << scenarios.size();
    }
  };

  // Scenario-level fan-out composes with the candidate-level TEST fan-out
  // (opts.test_threads, docs/parallelism.md): each scenario worker may spin
  // up test_threads verification workers of its own, so cap the scenario
  // workers at hardware / test_threads to keep the product within the
  // machine instead of oversubscribing every core test_threads-fold.
  size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  size_t scenario_threads =
      run_opts.num_threads == 0 ? hardware : run_opts.num_threads;
  size_t test_threads =
      opts.test_threads == 0 ? hardware : opts.test_threads;
  if (test_threads > 1) {
    scenario_threads =
        std::min(scenario_threads, std::max<size_t>(1, hardware / test_threads));
  }
  EMIGRE_RETURN_IF_ERROR(
      ThreadPool::ParallelFor(scenarios.size(), scenario_threads, run_one));
  return result;
}

}  // namespace emigre::eval
