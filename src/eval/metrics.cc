#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/csv.h"
#include "util/string_util.h"

namespace emigre::eval {

namespace {

/// Conventional (ceil) nearest-rank percentile over a copy of the samples:
/// the smallest sample such that at least `fraction` of the data is ≤ it,
/// i.e. rank ⌈fraction·n⌉ of the sorted samples (1-based). p50 of {a, b}
/// is a, p95 of 20 samples is the 19th.
double Percentile(std::vector<double> samples, double fraction) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

MethodAggregate AggregateRecords(
    const std::string& method,
    const std::vector<const ScenarioRecord*>& records) {
  MethodAggregate agg;
  agg.method = method;
  agg.scenarios = records.size();
  std::vector<double> times;
  times.reserve(records.size());
  double time_all = 0.0;
  double time_found = 0.0;
  double time_not_found = 0.0;
  double size_sum = 0.0;
  size_t not_found = 0;
  for (const ScenarioRecord* r : records) {
    times.push_back(r->seconds);
    time_all += r->seconds;
    if (r->returned) {
      ++agg.returned;
      time_found += r->seconds;
    } else {
      ++not_found;
      time_not_found += r->seconds;
    }
    if (r->correct) {
      ++agg.correct;
      size_sum += static_cast<double>(r->explanation_size);
    }
  }
  if (agg.scenarios > 0) {
    agg.success_rate = 100.0 * static_cast<double>(agg.correct) /
                       static_cast<double>(agg.scenarios);
    agg.avg_time_all = time_all / static_cast<double>(agg.scenarios);
  }
  if (agg.returned > 0) {
    agg.avg_time_found = time_found / static_cast<double>(agg.returned);
  }
  if (not_found > 0) {
    agg.avg_time_not_found =
        time_not_found / static_cast<double>(not_found);
  }
  if (agg.correct > 0) {
    agg.avg_size = size_sum / static_cast<double>(agg.correct);
  }
  agg.p50_time = Percentile(times, 0.50);
  agg.p95_time = Percentile(times, 0.95);
  return agg;
}

}  // namespace

std::vector<MethodAggregate> Aggregate(
    const ExperimentResult& result,
    const std::vector<std::string>& method_order) {
  std::vector<MethodAggregate> out;
  out.reserve(method_order.size());
  for (const std::string& method : method_order) {
    out.push_back(AggregateRecords(method, result.ForMethod(method)));
  }
  return out;
}

std::vector<std::pair<graph::NodeId, graph::NodeId>> OracleSolvableScenarios(
    const ExperimentResult& result, const std::string& oracle_method) {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> out;
  for (const ScenarioRecord& r : result.records) {
    if (r.method == oracle_method && r.correct) {
      out.emplace_back(r.scenario.user, r.scenario.wni);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<graph::NodeId, graph::NodeId>> ProvablySolvableScenarios(
    const ExperimentResult& result, const std::vector<std::string>& methods) {
  std::set<std::string> wanted(methods.begin(), methods.end());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> out;
  for (const ScenarioRecord& r : result.records) {
    if (r.correct && wanted.count(r.method) > 0) {
      out.emplace_back(r.scenario.user, r.scenario.wni);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<MethodAggregate> AggregateOnScenarios(
    const ExperimentResult& result,
    const std::vector<std::string>& method_order,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& subset) {
  std::set<std::pair<graph::NodeId, graph::NodeId>> keys(subset.begin(),
                                                         subset.end());
  std::vector<MethodAggregate> out;
  for (const std::string& method : method_order) {
    std::vector<const ScenarioRecord*> filtered;
    for (const ScenarioRecord* r : result.ForMethod(method)) {
      if (keys.count({r->scenario.user, r->scenario.wni}) > 0) {
        filtered.push_back(r);
      }
    }
    out.push_back(AggregateRecords(method, filtered));
  }
  return out;
}

Status WriteRecordsCsv(const ExperimentResult& result,
                       const std::string& path) {
  CsvWriter w(path);
  EMIGRE_RETURN_IF_ERROR(w.status());
  EMIGRE_RETURN_IF_ERROR(w.WriteRow({"method", "user", "wni", "wni_rank",
                                     "returned", "correct", "size",
                                     "seconds", "failure"}));
  for (const ScenarioRecord& r : result.records) {
    EMIGRE_RETURN_IF_ERROR(w.WriteRow(
        {r.method, StrFormat("%u", r.scenario.user),
         StrFormat("%u", r.scenario.wni),
         StrFormat("%zu", r.scenario.wni_rank), r.returned ? "1" : "0",
         r.correct ? "1" : "0", StrFormat("%zu", r.explanation_size),
         StrFormat("%.6f", r.seconds),
         std::string(explain::FailureReasonName(r.failure))}));
  }
  return w.Close();
}

Result<ExperimentResult> LoadRecordsCsv(const std::string& path) {
  CsvReader reader(path);
  EMIGRE_RETURN_IF_ERROR(reader.status());
  std::vector<std::string> row;
  if (!reader.ReadRow(&row) || row.empty() || row[0] != "method") {
    return Status::InvalidArgument("missing records header in " + path);
  }
  ExperimentResult result;
  while (reader.ReadRow(&row)) {
    if (row.size() < 9) {
      return Status::InvalidArgument("short record row in " + path);
    }
    ScenarioRecord r;
    r.method = row[0];
    int64_t user = 0;
    int64_t wni = 0;
    int64_t rank = 0;
    int64_t size = 0;
    double seconds = 0.0;
    if (!ParseInt64(row[1], &user) || !ParseInt64(row[2], &wni) ||
        !ParseInt64(row[3], &rank) || !ParseInt64(row[6], &size) ||
        !ParseDouble(row[7], &seconds)) {
      return Status::InvalidArgument("malformed record row in " + path);
    }
    r.scenario.user = static_cast<graph::NodeId>(user);
    r.scenario.wni = static_cast<graph::NodeId>(wni);
    r.scenario.wni_rank = static_cast<size_t>(rank);
    r.returned = row[4] == "1";
    r.correct = row[5] == "1";
    r.explanation_size = static_cast<size_t>(size);
    r.seconds = seconds;
    if (!explain::FailureReasonFromName(row[8], &r.failure)) {
      return Status::InvalidArgument("unknown failure reason '" + row[8] +
                                     "' in " + path);
    }
    result.records.push_back(std::move(r));
  }
  return result;
}

}  // namespace emigre::eval
