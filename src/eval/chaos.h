#ifndef EMIGRE_EVAL_CHAOS_H_
#define EMIGRE_EVAL_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eval/scenario.h"
#include "explain/explanation.h"
#include "explain/options.h"
#include "graph/hin_graph.h"
#include "util/result.h"

namespace emigre::eval {

/// \brief Configuration of a chaos soak (docs/robustness.md).
struct ChaosOptions {
  /// Seed of schedule 0; schedule s uses base_seed + s, so a soak is fully
  /// reproducible from this one number.
  uint64_t base_seed = 20240416;
  /// Number of independent fault schedules.
  size_t num_schedules = 20;
  /// Explain queries per schedule (drawn round-robin from the scenarios).
  size_t queries_per_schedule = 3;
  /// Faults armed per schedule, in [1, max_faults_per_schedule].
  size_t max_faults_per_schedule = 3;
  /// Heuristics cycled across queries. Empty = all paper heuristics.
  std::vector<explain::Heuristic> heuristics;
  /// Candidate-verification threads (exercises the pool error paths when
  /// > 1; 1 keeps everything in the calling thread).
  size_t test_threads = 2;
  /// Every third schedule additionally runs under a tiny wall-clock query
  /// deadline to exercise the anytime/degraded paths. Wall-clock expiry is
  /// inherently run-to-run dependent, so turn this off (with
  /// `test_threads == 1`) when a soak must replay bit-identically.
  bool tiny_deadlines = true;
};

/// \brief Outcome of a chaos soak.
struct ChaosReport {
  size_t schedules_run = 0;
  size_t queries_run = 0;
  size_t faults_fired = 0;      ///< registry total across all schedules
  size_t typed_failures = 0;    ///< queries that returned an error Status
  size_t degraded_results = 0;  ///< anytime best-so-far results
  size_t explanations_found = 0;

  /// Invariant breaches observed during the soak. Empty = the soak passed:
  /// no crash (trivially, by returning), every failure was a typed Status,
  /// every degraded result obeyed the degraded contract, the graph
  /// validators passed after every recovery, and the obs counters account
  /// for every fault the registry fired.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// \brief Runs randomized seeded fault schedules over full explain queries.
///
/// Per schedule: resets the global `fault::FaultRegistry`, arms 1..max
/// faults at random sites (random kind / trigger / status code), runs
/// `queries_per_schedule` `ExplainAuto` calls over `scenarios`, and checks
/// the robustness contract after every query (see `ChaosReport::violations`).
/// Deterministic given (graph, scenarios, options): all randomness derives
/// from `base_seed`.
///
/// Builds without `-DEMIGRE_FAULT_INJECTION=ON` still run the soak — the
/// sites compile away, so no fault ever fires and the soak degenerates to a
/// plain-pipeline smoke pass (fault::kFaultInjectionEnabled tells callers
/// which build they have).
[[nodiscard]] Result<ChaosReport> RunChaosSoak(
    const graph::HinGraph& g, const std::vector<Scenario>& scenarios,
    const explain::EmigreOptions& opts, const ChaosOptions& chaos_opts = {});

}  // namespace emigre::eval

#endif  // EMIGRE_EVAL_CHAOS_H_
