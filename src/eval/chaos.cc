#include "eval/chaos.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.h"
#include "explain/emigre.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace emigre::eval {

namespace {

constexpr size_t kNumFaultSites =
    sizeof(fault::kFaultSites) / sizeof(fault::kFaultSites[0]);

/// Draws one randomized fault spec for `site` from `rng`. Every choice is a
/// pure function of the RNG stream, so a schedule replays exactly from its
/// seed.
fault::FaultSpec DrawSpec(const char* site, Rng& rng) {
  fault::FaultSpec spec;
  spec.site = site;
  // Kind mix: mostly Status errors (the common failure), some foreign
  // exceptions, a few slow-dependency latencies.
  double kind_draw = rng.NextDouble();
  if (kind_draw < 0.6) {
    spec.kind = fault::FaultKind::kStatus;
  } else if (kind_draw < 0.85) {
    spec.kind = fault::FaultKind::kThrow;
  } else {
    spec.kind = fault::FaultKind::kLatency;
    spec.latency_seconds = 0.0002 + 0.0008 * rng.NextDouble();
  }
  // Trigger: half nth-hit, half probabilistic.
  if (rng.NextBool(0.5)) {
    spec.nth = static_cast<size_t>(rng.NextInt(1, 4));
  } else {
    spec.nth = 0;
    spec.probability = 0.2 + 0.6 * rng.NextDouble();
  }
  spec.max_fires = static_cast<size_t>(rng.NextInt(1, 3));
  constexpr StatusCode kCodes[] = {
      StatusCode::kInternal,
      StatusCode::kIOError,
      StatusCode::kResourceExhausted,
      StatusCode::kCancelled,
  };
  spec.code = kCodes[rng.NextBounded(4)];
  return spec;
}

/// Current values of every `fault.<site>.fired` obs counter.
std::map<std::string, uint64_t> FiredCounters() {
  std::map<std::string, uint64_t> out;
  obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name.rfind("fault.", 0) == 0 &&
        c.name.size() > 6 + 6 &&
        c.name.compare(c.name.size() - 6, 6, ".fired") == 0) {
      out[c.name.substr(6, c.name.size() - 6 - 6)] = c.value;
    }
  }
  return out;
}

}  // namespace

Result<ChaosReport> RunChaosSoak(const graph::HinGraph& g,
                                 const std::vector<Scenario>& scenarios,
                                 const explain::EmigreOptions& opts,
                                 const ChaosOptions& chaos_opts) {
  if (scenarios.empty()) {
    return Status::InvalidArgument("chaos soak needs at least one scenario");
  }
  std::vector<explain::Heuristic> heuristics = chaos_opts.heuristics;
  if (heuristics.empty()) {
    heuristics = {explain::Heuristic::kIncremental,
                  explain::Heuristic::kPowerset,
                  explain::Heuristic::kExhaustive};
  }

  fault::FaultRegistry& registry = fault::FaultRegistry::Global();
  ChaosReport report;
  auto violation = [&report](std::string text) {
    EMIGRE_LOG(kError) << "chaos violation: " << text;
    report.violations.push_back(std::move(text));
  };

  for (size_t s = 0; s < chaos_opts.num_schedules; ++s) {
    uint64_t seed = chaos_opts.base_seed + s;
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    registry.Reset();
    registry.SetSeed(seed);

    // Arm 1..max faults at distinct random sites.
    size_t num_faults =
        1 + rng.NextBounded(std::max<size_t>(1,
                                             chaos_opts.max_faults_per_schedule));
    std::vector<size_t> site_order(kNumFaultSites);
    for (size_t i = 0; i < kNumFaultSites; ++i) site_order[i] = i;
    for (size_t i = kNumFaultSites - 1; i > 0; --i) {
      std::swap(site_order[i], site_order[rng.NextBounded(i + 1)]);
    }
    num_faults = std::min(num_faults, kNumFaultSites);
    for (size_t f = 0; f < num_faults; ++f) {
      fault::FaultSpec spec = DrawSpec(fault::kFaultSites[site_order[f]], rng);
      Status armed = registry.Arm(spec);
      if (!armed.ok()) {
        violation("schedule " + std::to_string(s) + ": Arm(" + spec.site +
                  ") rejected a generated spec: " + armed.ToString());
      }
    }

    std::map<std::string, uint64_t> fired_before = FiredCounters();

    // Vary the engine configuration per schedule so the soak covers the
    // anytime/deadline paths as well as the plain ones.
    explain::EmigreOptions eopts = opts;
    eopts.test_threads = chaos_opts.test_threads;
    if (s % 3 == 1) {
      eopts.anytime = true;
      if (chaos_opts.tiny_deadlines) eopts.deadline_seconds = 0.002;
    } else if (s % 3 == 2) {
      eopts.anytime = true;
    }
    explain::Emigre engine(g, eopts);

    for (size_t q = 0; q < chaos_opts.queries_per_schedule; ++q) {
      const Scenario& scenario =
          scenarios[(s * chaos_opts.queries_per_schedule + q) %
                    scenarios.size()];
      explain::Heuristic heuristic = heuristics[(s + q) % heuristics.size()];
      ++report.queries_run;

      Result<explain::Explanation> res =
          Status::Internal("chaos: query did not run");
      try {
        res = engine.ExplainAuto(
            explain::WhyNotQuestion{scenario.user, scenario.wni}, heuristic);
      } catch (const std::exception& e) {
        // The Explain boundary is supposed to make this impossible.
        violation("schedule " + std::to_string(s) + " query " + std::to_string(q) +
                  ": exception escaped the Explain boundary: " + e.what());
        continue;
      }

      if (!res.ok()) {
        ++report.typed_failures;
        if (res.status().code() == StatusCode::kOk) {
          violation("schedule " + std::to_string(s) +
                    ": failure carried StatusCode::kOk");
        }
      } else {
        const explain::Explanation& e = res.value();
        if (e.found) ++report.explanations_found;
        if (e.degraded) {
          ++report.degraded_results;
          // The degraded contract: best-so-far, never presented as proven.
          if (!e.found || e.verified ||
              e.failure != explain::FailureReason::kBudgetExceeded) {
            violation("schedule " + std::to_string(s) +
                      ": degraded result violates the degraded contract");
          }
          Status replay = check::ValidateExplanation(
              g, explain::WhyNotQuestion{scenario.user, scenario.wni}, e,
              eopts);
          if (replay.ok()) {
            violation("schedule " + std::to_string(s) +
                      ": ValidateExplanation accepted a degraded result");
          }
        }
      }

      // Recovery must leave shared state sound: the source graph and the
      // engine's CSR snapshot both still satisfy the structural invariants.
      Status graph_ok = check::ValidateGraph(g);
      if (!graph_ok.ok()) {
        violation("schedule " + std::to_string(s) +
                  ": graph invariants broken after recovery: " +
                  graph_ok.ToString());
      }
      Status csr_ok = check::ValidateGraphView(engine.csr());
      if (!csr_ok.ok()) {
        violation("schedule " + std::to_string(s) +
                  ": CSR snapshot invariants broken after recovery: " +
                  csr_ok.ToString());
      }
    }

    // Metrics accounting: the registry's per-site fire tallies and the
    // `fault.<site>.fired` obs counters must agree exactly.
    std::map<std::string, uint64_t> fired_after = FiredCounters();
    for (const auto& [site, fires] : registry.FireCounts()) {
      uint64_t before =
          fired_before.count(site) != 0 ? fired_before.at(site) : 0;
      uint64_t after = fired_after.count(site) != 0 ? fired_after.at(site) : 0;
      if (after - before != fires) {
        violation("schedule " + std::to_string(s) + ": site " + site +
                  " fired " + std::to_string(fires) + " per registry but " +
                  std::to_string(after - before) + " per obs counters");
      }
      report.faults_fired += fires;
    }
    ++report.schedules_run;
  }

  registry.Reset();
  return report;
}

}  // namespace emigre::eval
