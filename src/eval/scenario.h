#ifndef EMIGRE_EVAL_SCENARIO_H_
#define EMIGRE_EVAL_SCENARIO_H_

#include <cstddef>
#include <vector>

#include "explain/options.h"
#include "graph/hin_graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace emigre::eval {

/// \brief One evaluation case: a (user, Why-Not item) pair (paper §6.2).
struct Scenario {
  graph::NodeId user = graph::kInvalidNode;
  graph::NodeId wni = graph::kInvalidNode;
  /// 0-based rank of the Why-Not item in the user's original list (1..k-1;
  /// rank 0 is the current recommendation and is never a Why-Not item).
  size_t wni_rank = 0;
  /// The user's original top-1, cached so methods need not recompute it.
  graph::NodeId original_rec = graph::kInvalidNode;
};

/// \brief Reproduces the paper's experimental design (§6.2): for each
/// evaluation user, compute the top-`top_k` recommendation list and emit
/// one scenario per list position except the first.
///
/// `max_per_user` truncates positions per user (0 = all of 1..top_k-1);
/// the benchmark harness uses it to scale runs down.
[[nodiscard]] Result<std::vector<Scenario>> GenerateScenarios(
    const graph::HinGraph& g, const std::vector<graph::NodeId>& users,
    const explain::EmigreOptions& opts, size_t top_k = 10,
    size_t max_per_user = 0);

}  // namespace emigre::eval

#endif  // EMIGRE_EVAL_SCENARIO_H_
