#ifndef EMIGRE_EVAL_METRICS_H_
#define EMIGRE_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "eval/runner.h"

namespace emigre::eval {

/// \brief Per-method aggregates, the quantities behind the paper's Figures
/// 4–6 and Table 5.
struct MethodAggregate {
  std::string method;
  size_t scenarios = 0;
  size_t returned = 0;  ///< produced an explanation
  size_t correct = 0;   ///< ... that verifies (the paper's "success")

  /// Success rate in percent (Fig. 4 / Fig. 5).
  double success_rate = 0.0;
  /// Mean explanation size over correct explanations (Fig. 6).
  double avg_size = 0.0;
  /// Mean runtime in seconds: (a) all scenarios, (b) explanation found,
  /// (c) none found (Table 5 columns).
  double avg_time_all = 0.0;
  double avg_time_found = 0.0;
  double avg_time_not_found = 0.0;
  /// Runtime distribution over all scenarios (medians resist the long tail
  /// the budget caps produce; extensions beyond the paper's Table 5).
  double p50_time = 0.0;
  double p95_time = 0.0;
};

/// Aggregates per method over all scenarios, in `method_order` order.
std::vector<MethodAggregate> Aggregate(
    const ExperimentResult& result,
    const std::vector<std::string>& method_order);

/// The scenario subset on which `oracle_method` succeeded — the paper's
/// "cases when a solution can be found, given the current data structure"
/// (Fig. 5 uses remove_brute as the oracle). Returned as (user, wni) keys.
std::vector<std::pair<graph::NodeId, graph::NodeId>> OracleSolvableScenarios(
    const ExperimentResult& result, const std::string& oracle_method);

/// Budget-robust variant: scenarios where *any* of the listed methods
/// produced a correct (independently verified) explanation. Every such
/// scenario is provably solvable even when the brute-force oracle ran out
/// of budget before reaching the witness (the paper's unbounded brute force
/// needs ~900 s per scenario; ours is capped).
std::vector<std::pair<graph::NodeId, graph::NodeId>> ProvablySolvableScenarios(
    const ExperimentResult& result, const std::vector<std::string>& methods);

/// Aggregates per method restricted to the given scenario subset (Fig. 5).
std::vector<MethodAggregate> AggregateOnScenarios(
    const ExperimentResult& result,
    const std::vector<std::string>& method_order,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& subset);

/// Writes the raw per-(method, scenario) records as CSV for offline
/// analysis. Columns: method,user,wni,wni_rank,returned,correct,size,
/// seconds,failure.
[[nodiscard]] Status WriteRecordsCsv(const ExperimentResult& result,
                       const std::string& path);

/// Reads records written by `WriteRecordsCsv`. Used by the benchmark
/// binaries to share one experiment run across the per-figure reports.
[[nodiscard]] Result<ExperimentResult> LoadRecordsCsv(const std::string& path);

}  // namespace emigre::eval

#endif  // EMIGRE_EVAL_METRICS_H_
