#include "eval/methods.h"

namespace emigre::eval {

using explain::Heuristic;
using explain::Mode;

std::vector<MethodSpec> PaperMethods() {
  return {
      {"add_Incremental", Mode::kAdd, Heuristic::kIncremental},
      {"add_Powerset", Mode::kAdd, Heuristic::kPowerset},
      {"add_ex", Mode::kAdd, Heuristic::kExhaustive},
      {"remove_Incremental", Mode::kRemove, Heuristic::kIncremental},
      {"remove_Powerset", Mode::kRemove, Heuristic::kPowerset},
      {"remove_ex", Mode::kRemove, Heuristic::kExhaustive},
      {"remove_ex_direct", Mode::kRemove, Heuristic::kExhaustiveDirect},
      {"remove_brute", Mode::kRemove, Heuristic::kBruteForce},
  };
}

std::vector<MethodSpec> RemoveMethods() {
  std::vector<MethodSpec> out;
  for (MethodSpec& m : PaperMethods()) {
    if (m.mode == Mode::kRemove) out.push_back(std::move(m));
  }
  return out;
}

std::vector<MethodSpec> AddMethods() {
  std::vector<MethodSpec> out;
  for (MethodSpec& m : PaperMethods()) {
    if (m.mode == Mode::kAdd) out.push_back(std::move(m));
  }
  return out;
}

const MethodSpec* FindMethod(const std::vector<MethodSpec>& methods,
                             const std::string& name) {
  for (const MethodSpec& m : methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace emigre::eval
