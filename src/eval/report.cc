#include "eval/report.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/table.h"

namespace emigre::eval {

std::string FormatFigure4(const std::vector<MethodAggregate>& aggregates) {
  std::vector<std::string> labels;
  std::vector<double> values;
  for (const MethodAggregate& a : aggregates) {
    labels.push_back(a.method);
    values.push_back(a.success_rate);
  }
  std::string out = "Figure 4: Explanation success rate per method (%)\n";
  out += BarChart(labels, values, 100.0, "%");
  return out;
}

std::string FormatFigure5(const std::vector<MethodAggregate>& aggregates,
                          const std::string& oracle) {
  double oracle_rate = 0.0;
  for (const MethodAggregate& a : aggregates) {
    if (a.method == oracle) oracle_rate = a.success_rate;
  }
  std::string out =
      "Figure 5: Success rate on brute-force-solvable scenarios "
      "(oracle: " +
      oracle + ")\n";
  std::vector<std::string> labels;
  std::vector<double> values;
  for (const MethodAggregate& a : aggregates) {
    labels.push_back(a.method);
    values.push_back(a.success_rate);
  }
  out += BarChart(labels, values, 100.0, "%");
  if (oracle_rate > 0.0) {
    out += "\nRelative to oracle:\n";
    TextTable table({"Method", "Success", "Relative"});
    table.SetAlign(1, Align::kRight);
    table.SetAlign(2, Align::kRight);
    for (const MethodAggregate& a : aggregates) {
      table.AddRow({a.method, FormatDouble(a.success_rate, 1) + "%",
                    FormatDouble(100.0 * a.success_rate / oracle_rate, 1) +
                        "%"});
    }
    out += table.ToString();
  }
  return out;
}

std::string FormatFigure6(const std::vector<MethodAggregate>& aggregates) {
  double max_size = 1.0;
  for (const MethodAggregate& a : aggregates) {
    max_size = std::max(max_size, a.avg_size);
  }
  std::vector<std::string> labels;
  std::vector<double> values;
  for (const MethodAggregate& a : aggregates) {
    labels.push_back(a.method);
    values.push_back(a.avg_size);
  }
  std::string out =
      "Figure 6: Average explanation size per method (# edges, over "
      "correct explanations)\n";
  out += BarChart(labels, values, max_size, " edges");
  return out;
}

std::string FormatTable5(const std::vector<MethodAggregate>& aggregates) {
  TextTable table({"Method", "(a) all", "(b) found", "(c) not found", "p50",
                   "p95"});
  for (size_t c = 1; c <= 5; ++c) table.SetAlign(c, Align::kRight);
  for (const MethodAggregate& a : aggregates) {
    table.AddRow({a.method, FormatDuration(a.avg_time_all),
                  a.returned > 0 ? FormatDuration(a.avg_time_found) : "-",
                  a.returned < a.scenarios
                      ? FormatDuration(a.avg_time_not_found)
                      : "-",
                  FormatDuration(a.p50_time), FormatDuration(a.p95_time)});
  }
  return "Table 5: Average runtime per method\n" + table.ToString();
}

std::string FormatFailureBreakdown(
    const ExperimentResult& result,
    const std::vector<std::string>& methods) {
  const explain::FailureReason kReasons[] = {
      explain::FailureReason::kColdStart,
      explain::FailureReason::kPopularItem,
      explain::FailureReason::kSearchExhausted,
      explain::FailureReason::kBudgetExceeded,
  };
  std::vector<std::string> headers = {"Method", "failed"};
  for (explain::FailureReason r : kReasons) {
    headers.emplace_back(FailureReasonName(r));
  }
  TextTable table(headers);
  for (size_t c = 1; c < headers.size(); ++c) table.SetAlign(c, Align::kRight);
  for (const std::string& method : methods) {
    size_t failed = 0;
    std::vector<size_t> counts(std::size(kReasons), 0);
    for (const ScenarioRecord* r : result.ForMethod(method)) {
      if (r->correct) continue;
      ++failed;
      for (size_t i = 0; i < std::size(kReasons); ++i) {
        if (r->failure == kReasons[i]) ++counts[i];
      }
    }
    std::vector<std::string> row = {method, StrFormat("%zu", failed)};
    for (size_t c : counts) row.push_back(StrFormat("%zu", c));
    table.AddRow(row);
  }
  return "Failure breakdown per method (meta-explanation taxonomy, paper "
         "\u00a76.4)\n" +
         table.ToString();
}

}  // namespace emigre::eval
